"""Shrinker guarantees: 1-minimality, validity at every step, and the
acceptance bar -- an injected fault shrinks to a tiny bundle."""

from __future__ import annotations

import pytest

from repro.netlist.validate import validate
from repro.qa.differential import injected_fault, run_differential
from repro.qa.generate import Case, build_case, random_recipe
from repro.qa.shrink import shrink_case, shrink_circuit, shrink_moves


def _disagrees(case, matrix="quick"):
    return not run_differential(case, matrix=matrix).agreed


def test_shrink_requires_an_interesting_case():
    case = build_case(random_recipe(0, 0))
    with pytest.raises(ValueError, match="not interesting"):
        shrink_case(case, lambda c: False)


def test_shrink_circuit_respects_predicate():
    circuit = build_case(random_recipe(0, 0)).original
    # "Interesting" = still has at least one latch; minimal result must
    # be valid and keep exactly the property.
    shrunk = shrink_circuit(circuit, lambda c: c.num_latches >= 1)
    validate(shrunk)
    assert shrunk.num_latches >= 1
    assert shrunk.num_cells <= circuit.num_cells


def test_shrink_moves_preserves_session_accounting():
    case = next(
        c
        for c in (build_case(random_recipe(0, i)) for i in range(50))
        if c.session is not None and len(c.moves) >= 3
    )
    shrunk = shrink_moves(case, lambda c: c.session is not None)
    assert shrunk.session is not None
    assert len(shrunk.moves) <= len(case.moves)
    assert shrunk.session.theorem45_k <= case.session.theorem45_k + len(case.moves)


def test_injected_fault_shrinks_to_a_tiny_reproducer():
    """The ISSUE acceptance bar: a deliberately broken engine branch is
    caught and shrunk to a bundle of <= 8 cells."""
    with injected_fault("explicit-misses-deep-witnesses"):
        hit = None
        for i in range(120):
            case = build_case(random_recipe(42, i))
            if _disagrees(case):
                hit = case
                break
        assert hit is not None, "fault never surfaced in 120 cases"
        shrunk = shrink_case(hit, _disagrees)
        # still reproduces under the fault...
        assert _disagrees(shrunk)
        total = shrunk.candidate.num_cells + shrunk.original.num_cells
        assert total <= 8, "shrunk reproducer has %d cells" % total
        validate(shrunk.candidate)
        validate(shrunk.original)
    # ...and agrees the moment the fault is lifted (it was never a real
    # engine bug).
    assert not _disagrees(shrunk)


def test_shrunk_case_is_one_minimal():
    with injected_fault("explicit-misses-deep-witnesses"):
        hit = next(
            c
            for c in (build_case(random_recipe(42, i)) for i in range(120))
            if _disagrees(c)
        )
        shrunk = shrink_case(hit, _disagrees)
        # No further single-cell deletion may keep the disagreement:
        # re-shrinking is a fixpoint.
        again = shrink_case(shrunk, _disagrees)
        assert again.candidate.num_cells == shrunk.candidate.num_cells
        assert again.original.num_cells == shrunk.original.num_cells
        assert again.candidate.num_latches == shrunk.candidate.num_latches
        assert again.original.num_latches == shrunk.original.num_latches
