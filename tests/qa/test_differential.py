"""The differential itself: agreement on honest engines, splits on
injected faults, paper-theorem ballots."""

from __future__ import annotations

import pytest

from repro.bench.paper_circuits import figure1_design_c, figure1_design_d
from repro.qa.differential import (
    FAULT_NAMES,
    MATRICES,
    active_faults,
    injected_fault,
    run_differential,
)
from repro.qa.generate import Case, Recipe, build_case, random_recipe


def _case(master, index):
    return build_case(random_recipe(master, index))


def test_matrices_are_well_formed():
    assert set(MATRICES) == {"quick", "std", "full"}
    for spec in MATRICES.values():
        assert "explicit" in spec["arms"]
        assert "compiled" in spec["cls"]


@pytest.mark.parametrize("index", range(8))
def test_quick_matrix_agrees_on_random_cases(index):
    result = run_differential(_case(0, index), matrix="quick")
    assert result.agreed, result.disagreements


@pytest.mark.parametrize("index", range(3))
def test_std_matrix_agrees_on_random_cases(index):
    result = run_differential(_case(0, index), matrix="std")
    assert result.agreed, result.disagreements


def test_paper_figure1_pair_agrees_and_is_unsafe():
    """The paper's own C/D pair: every arm must report the Figure 1
    story -- not safe, implication fails, delay 1 repairs it."""
    recipe = Recipe(kind="pair", seed=0, num_inputs=2, num_outputs=1,
                    num_gates=3, num_latches=2)
    case = Case(recipe=recipe, original=figure1_design_d(),
                candidate=figure1_design_c())
    result = run_differential(case, matrix="std")
    assert result.agreed, result.disagreements
    consensus = result.consensus()
    assert consensus["implies"] is False
    assert consensus["safe"] is False
    assert consensus["delay"] == 1
    assert consensus["witness_length"] >= 1


def test_consensus_on_identity():
    d = figure1_design_d()
    recipe = Recipe(kind="pair", seed=0, num_inputs=2, num_outputs=1,
                    num_gates=3, num_latches=2)
    case = Case(recipe=recipe, original=d, candidate=d)
    result = run_differential(case, matrix="quick")
    assert result.agreed
    consensus = result.consensus()
    assert consensus["implies"] is True
    assert consensus["safe"] is True
    assert consensus["delay"] == 0
    assert consensus["cls_equivalent"] is True


def test_injected_fault_is_scoped():
    assert active_faults() == ()
    with injected_fault(FAULT_NAMES[0]):
        assert active_faults() == (FAULT_NAMES[0],)
    assert active_faults() == ()
    with pytest.raises(ValueError, match="unknown fault"):
        with injected_fault("no-such-fault"):
            pass


def _first_disagreement(fault, master, matrix="quick", budget=120):
    with injected_fault(fault):
        for i in range(budget):
            result = run_differential(_case(master, i), matrix=matrix)
            if not result.agreed:
                return result
    return None


def test_explicit_witness_fault_is_caught():
    result = _first_disagreement("explicit-misses-deep-witnesses", 42)
    assert result is not None
    assert any("safe ballot split" in p for p in result.disagreements)


def test_symbolic_delay_fault_is_caught():
    result = _first_disagreement("symbolic-underreports-delay", 1234)
    assert result is not None
    assert any(
        "delay ballot split" in p or "Thm 4.5" in p or "Cor 4.3" in p
        for p in result.disagreements
    )


def test_retiming_cases_check_the_paper_theorems():
    """On a hazard-free retiming the theorem ballots are armed: break
    the implication verdict by hand and Cor 4.4 must fire."""
    case = next(
        c
        for c in (_case(0, i) for i in range(50))
        if c.session is not None and c.session.hazardous_move_count == 0
    )
    result = run_differential(case, matrix="quick")
    assert result.agreed
    # Forge a verdict to prove the ballot is actually wired.
    from repro.qa.differential import _diff

    forged = dict(result.verdicts)
    forged["explicit"].implies = False
    problems = _diff(case, forged, result.cls_votes)
    assert any("Cor 4.4" in p for p in problems)
