"""The fuzz driver and the ``repro fuzz`` CLI contract."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.qa.corpus import iter_bundles
from repro.qa.differential import injected_fault
from repro.qa.fuzz import run_fuzz


def test_run_needs_a_bound():
    with pytest.raises(ValueError, match="bound the run"):
        run_fuzz(seed=0)


def test_unknown_matrix_rejected():
    with pytest.raises(ValueError, match="unknown matrix"):
        run_fuzz(seed=0, iterations=1, matrix="bogus")


def test_clean_run_is_ok():
    outcome = run_fuzz(seed=7, iterations=5, matrix="quick")
    assert outcome.ok
    assert outcome.iterations_run == 5
    assert outcome.corpus_replayed == 0
    assert "no disagreements survive" in outcome.summary()


def test_time_budget_stops_the_run():
    outcome = run_fuzz(seed=7, time_budget=0.0, matrix="quick")
    assert outcome.iterations_run == 0


def test_fault_is_caught_shrunk_and_bundled(tmp_path):
    with injected_fault("explicit-misses-deep-witnesses"):
        outcome = run_fuzz(seed=42, iterations=5, matrix="quick", corpus_dir=tmp_path)
    assert not outcome.ok
    [failure] = outcome.failures
    assert failure.source == "fuzz"
    assert failure.bundle is not None and failure.bundle.is_dir()
    [bundle] = iter_bundles(tmp_path)
    total = bundle.case.candidate.num_cells + bundle.case.original.num_cells
    assert total <= 8
    assert "SURVIVING" in outcome.summary()
    # With the fault gone the bundle replays clean: corpus-only run.
    replay = run_fuzz(seed=42, iterations=0, corpus_dir=tmp_path, matrix="quick")
    assert replay.ok
    assert replay.corpus_replayed == 1


def test_corpus_regression_survives(tmp_path):
    """A committed bundle that disagrees again counts as a surviving
    failure -- the regression contract."""
    with injected_fault("explicit-misses-deep-witnesses"):
        run_fuzz(seed=42, iterations=5, matrix="quick", corpus_dir=tmp_path)
        outcome = run_fuzz(seed=42, iterations=0, matrix="quick", corpus_dir=tmp_path)
    assert not outcome.ok
    assert outcome.failures[0].source == "corpus"


def test_cli_exit_codes(tmp_path, capsys):
    assert main(["fuzz", "--seed", "7", "--iterations", "3", "--matrix", "quick"]) == 0
    assert "no disagreements survive" in capsys.readouterr().out
    with injected_fault("explicit-misses-deep-witnesses"):
        code = main(
            ["fuzz", "--seed", "42", "--iterations", "5", "--matrix", "quick",
             "--corpus", str(tmp_path)]
        )
    assert code == 1
    out = capsys.readouterr().out
    assert "SURVIVING" in out and "bundle:" in out


def test_cli_counters_in_report(tmp_path, capsys):
    report = tmp_path / "report.json"
    assert main(
        ["--report", str(report), "fuzz", "--seed", "7", "--iterations", "2",
         "--matrix", "quick"]
    ) == 0
    capsys.readouterr()
    import json

    doc = json.loads(report.read_text())
    assert doc["counters"].get("qa.fuzz.cases") == 2


@pytest.mark.fuzz
def test_nightly_std_sweep():
    """The nightly tier: a longer std-matrix sweep (the PR smoke runs
    60 seconds of this via the CLI)."""
    outcome = run_fuzz(seed=0, iterations=200, matrix="std")
    assert outcome.ok, outcome.summary()
