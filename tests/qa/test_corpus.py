"""Bundle round-trips and the committed-corpus replay contract."""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.qa.corpus import (bundle_name, canonical_bench, iter_bundles,
                             load_bundle, write_bundle)
from repro.qa.differential import run_differential
from repro.qa.generate import build_case, random_recipe

SEED_CORPUS = pathlib.Path(__file__).parent / "corpus"


def _bundle_of(case, tmp_path, matrix="quick"):
    result = run_differential(case, matrix=matrix)
    return write_bundle(
        tmp_path,
        case,
        matrix=matrix,
        expected=result.consensus(),
        observed=[v.as_json() for v in result.verdicts.values()],
        disagreements=result.disagreements,
    )


def test_bundle_round_trip(tmp_path):
    case = build_case(random_recipe(0, 1))
    path = _bundle_of(case, tmp_path)
    assert path.name == bundle_name(case)
    bundle = load_bundle(path)
    assert bundle.case.recipe == case.recipe
    assert canonical_bench(bundle.case.original) == canonical_bench(case.original)
    assert canonical_bench(bundle.case.candidate) == canonical_bench(case.candidate)
    assert bundle.matrix == "quick"
    assert bundle.disagreements == []


def test_bundle_is_self_contained(tmp_path):
    """Replay must come from the .bench pair, not the recipe: corrupt
    the recipe's seed and the loaded circuits must not change."""
    case = build_case(random_recipe(0, 1))
    path = _bundle_of(case, tmp_path)
    doc = json.loads((path / "recipe.json").read_text())
    doc["recipe"]["seed"] = 999999
    (path / "recipe.json").write_text(json.dumps(doc))
    bundle = load_bundle(path)
    assert canonical_bench(bundle.case.original) == canonical_bench(case.original)


def test_retiming_bundle_revives_its_session(tmp_path):
    case = next(
        c
        for c in (build_case(random_recipe(0, i)) for i in range(50))
        if c.session is not None and c.moves
    )
    bundle = load_bundle(_bundle_of(case, tmp_path))
    assert bundle.case.session is not None
    assert bundle.case.session.theorem45_k == case.session.theorem45_k
    assert bundle.case.moves == case.moves


def test_iter_bundles_on_missing_dir(tmp_path):
    assert list(iter_bundles(tmp_path / "nope")) == []


def test_committed_corpus_layout():
    bundles = list(iter_bundles(SEED_CORPUS))
    assert len(bundles) >= 2
    for bundle in bundles:
        assert (bundle.path / "candidate.bench").is_file()
        assert (bundle.path / "original.bench").is_file()
        assert bundle.disagreements, "committed bundles record the split they fixed"


@pytest.mark.parametrize(
    "name", sorted(p.name for p in SEED_CORPUS.iterdir() if p.is_dir())
)
def test_committed_corpus_replays_clean(name):
    """The replay contract: every committed bundle (a caught-and-fixed
    disagreement -- here, fault-injection captures) must agree when
    replayed against today's engines."""
    bundle = load_bundle(SEED_CORPUS / name)
    result = run_differential(bundle.case, matrix=bundle.matrix)
    assert result.agreed, result.disagreements
