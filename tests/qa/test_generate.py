"""Recipe determinism and round-trip guarantees."""

from __future__ import annotations

import pytest

from repro.netlist.io_bench import write_bench
from repro.qa.generate import (
    Recipe,
    build_case,
    moves_from_json,
    moves_to_json,
    random_recipe,
)


def test_recipe_json_round_trip():
    recipe = random_recipe(0, 17)
    again = Recipe.from_json(recipe.to_json())
    assert again == recipe


def test_recipe_rejects_unknown_kind():
    with pytest.raises(ValueError, match="kind"):
        Recipe(kind="mystery", seed=1, num_inputs=1, num_outputs=1,
               num_gates=4, num_latches=1)


def test_recipe_stream_is_deterministic():
    first = [random_recipe(5, i) for i in range(20)]
    second = [random_recipe(5, i) for i in range(20)]
    assert first == second


def test_different_master_seeds_differ():
    assert [random_recipe(1, i) for i in range(10)] != [
        random_recipe(2, i) for i in range(10)
    ]


def test_build_case_is_deterministic():
    recipe = random_recipe(0, 3)
    a, b = build_case(recipe), build_case(recipe)
    assert write_bench(a.original) == write_bench(b.original)
    assert write_bench(a.candidate) == write_bench(b.candidate)
    assert a.moves == b.moves


def test_retiming_case_carries_session():
    recipe = next(
        random_recipe(0, i)
        for i in range(50)
        if random_recipe(0, i).kind == "retiming"
    )
    case = build_case(recipe)
    assert case.session is not None
    assert case.session.moves == case.moves
    assert len(case.moves) <= recipe.num_moves
    assert write_bench(case.session.current) == write_bench(case.candidate)


def test_pair_case_has_matching_interface():
    recipe = next(
        random_recipe(0, i) for i in range(50) if random_recipe(0, i).kind == "pair"
    )
    case = build_case(recipe)
    assert case.session is None
    assert case.candidate.inputs == case.original.inputs
    assert len(case.candidate.outputs) == len(case.original.outputs)


def test_moves_json_round_trip():
    case = build_case(
        next(
            random_recipe(0, i)
            for i in range(50)
            if random_recipe(0, i).kind == "retiming"
        )
    )
    assert moves_from_json(moves_to_json(case.moves)) == case.moves
