"""Structural mutations must invalidate both evaluation caches.

The circuit object memoises two derived structures: the topological
cell order (``_topo_cache``) and the lowered flat program
(``_compiled_cache`` from :mod:`repro.sim.compiled`).  Every mutator
must drop both, otherwise a simulator can silently keep evaluating a
stale program after a retiming move or a netlist edit.
"""

from __future__ import annotations

import pytest

from repro.logic.functions import AND, NOT, OR
from repro.netlist.circuit import Cell, Circuit
from repro.retime.engine import RetimingSession
from repro.retime.moves import enabled_moves
from repro.sim.compiled import compile_circuit
from repro.sim.binary import BinarySimulator


def small_circuit():
    c = Circuit("cache_probe")
    c.add_input("a")
    c.add_input("b")
    c.add_cell("g1", AND, ("a", "b"), ("n1",))
    c.add_latch("l1", "n1", "q1")
    c.add_cell("g2", NOT, ("q1",), ("n2",))
    c.add_output("n2")
    return c


def warm(circuit):
    """Populate both caches and return their identities."""
    circuit.topological_cells()
    compile_circuit(circuit)
    assert circuit._topo_cache is not None
    assert circuit._compiled_cache is not None
    return circuit._topo_cache, circuit._compiled_cache


MUTATIONS = {
    "add_input": lambda c: c.add_input("extra"),
    "add_output": lambda c: c.add_output("n1"),
    "add_cell": lambda c: c.add_cell("g3", OR, ("a", "n2"), ("n3",)),
    "add_latch": lambda c: c.add_latch("l2", "n2", "q2"),
    "remove_cell": lambda c: c.remove_cell("g2"),
    "remove_latch": lambda c: c.remove_latch("l1"),
    "replace_cell": lambda c: c.replace_cell(
        "g1", Cell("g1", OR, ("a", "b"), ("n1",))
    ),
}


@pytest.mark.parametrize("mutation", sorted(MUTATIONS))
def test_mutators_drop_both_caches(mutation):
    c = small_circuit()
    warm(c)
    MUTATIONS[mutation](c)
    assert c._topo_cache is None
    assert c._compiled_cache is None


def test_copy_shares_caches_without_aliasing_mutations():
    c = small_circuit()
    topo, compiled = warm(c)
    d = c.copy()
    # The copy reuses the already-computed caches ...
    assert d._topo_cache is topo
    assert d._compiled_cache is compiled
    # ... but mutating the copy must not clobber the original's.
    d.add_input("extra")
    assert d._topo_cache is None and d._compiled_cache is None
    assert c._topo_cache is topo and c._compiled_cache is compiled


def test_recompile_after_mutation_reflects_new_logic():
    c = small_circuit()
    warm(c)
    # AND(1, 1) -> latch -> NOT gives output 0 on the second cycle.
    sim = BinarySimulator(c)
    (_, state) = sim.step((False,), (True, True))
    assert sim.step(state, (True, True))[0] == (False,)
    c.replace_cell("g1", Cell("g1", OR, ("a", "b"), ("n1",)))
    # Same pins, but the program changed; a stale cache would still
    # produce the AND behaviour on (True, False).
    sim = BinarySimulator(c)
    (_, state) = sim.step((False,), (True, False))
    assert state == (True,)  # OR(1, 0) latched, not AND(1, 0)


def test_retiming_moves_invalidate_the_moved_circuit():
    from repro.bench.paper_circuits import figure1_design_d

    session = RetimingSession(figure1_design_d())
    warm(session.current)
    moves = enabled_moves(session.current)
    assert moves
    before = session.current
    session.apply(moves[0])
    # The engine works on copies, so the pre-move circuit keeps its
    # caches while the post-move circuit gets a fresh lowering.
    assert before._topo_cache is not None
    fresh = compile_circuit(session.current)
    assert session.current._compiled_cache is fresh
