"""Tests for the fluent circuit builder."""

from __future__ import annotations

import pytest

from repro.logic.functions import junction
from repro.netlist.builder import CircuitBuilder
from repro.netlist.validate import ValidationError


def test_quickstart_shape():
    b = CircuitBuilder("demo")
    i = b.input("I")
    q = b.net("Q")
    n = b.gate("NOT", q, name="inv")
    a = b.gate("AND", i, n, name="and1")
    b.latch(a, q, name="L")
    b.output(n)
    c = b.build()
    assert c.inputs == ("I",)
    assert c.latch_names == ("L",)
    assert c.cell("and1").inputs == ("I", c.cell("inv").outputs[0])


def test_gate_arity_follows_argument_count():
    b = CircuitBuilder()
    x, y, z = b.input(), b.input(), b.input()
    out = b.gate("AND", x, y, z)
    b.output(out)
    c = b.build()
    (cell,) = c.cells
    assert cell.function.name == "AND3"


def test_auto_names_are_deterministic():
    def build():
        b = CircuitBuilder()
        i = b.input()
        o = b.gate("NOT", i)
        b.output(o)
        return b.build()

    assert build().structurally_equal(build())


def test_fanout_helper_creates_junction():
    b = CircuitBuilder()
    i = b.input("i")
    x, y, z = b.fanout(i, 3)
    b.output(b.gate("AND", x, y))
    b.output(b.gate("NOT", z))
    c = b.build()
    assert len(c.junction_cells()) == 1
    assert c.junction_cells()[0].function is junction(3)


def test_multi_output_cell_instantiation():
    b = CircuitBuilder()
    i = b.input("i")
    outs = b.cell(junction(2), [i], outs=("a", "b"))
    assert outs == ("a", "b")
    b.output("a")
    b.output("b")
    b.build()


def test_const_helper():
    b = CircuitBuilder()
    one = b.const(1)
    zero = b.const(0)
    b.output(b.gate("OR", one, zero))
    c = b.build()
    kinds = sorted(cell.function.name for cell in c.cells)
    assert kinds == ["CONST0", "CONST1", "OR"]


def test_build_validates_by_default():
    b = CircuitBuilder()
    b.input("i")
    b.gate("NOT", "ghost")  # reads an undriven net
    with pytest.raises(ValidationError):
        b.build()
    # but the unchecked escape hatch works
    assert b.build(check=False) is b.circuit


def test_latch_with_reserved_feedback_net():
    b = CircuitBuilder()
    i = b.input("i")
    q = b.net("q")
    d = b.gate("XOR", i, q)
    out_net = b.latch(d, q, name="ff")
    assert out_net == "q"
    b.output(b.gate("NOT", q))
    c = b.build()
    assert c.latch("ff").data_out == "q"
