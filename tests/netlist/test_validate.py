"""Tests for structural validation."""

from __future__ import annotations

import pytest

from repro.logic.functions import AND, NOT
from repro.netlist.circuit import Circuit
from repro.netlist.validate import ValidationError, check_normal_form, validate


def test_valid_circuit_passes():
    c = Circuit()
    c.add_input("a")
    c.add_cell("g", NOT, ("a",), ("n",))
    c.add_output("n")
    validate(c)
    validate(c, require_normal_form=True)


def test_dangling_cell_input_reported():
    c = Circuit()
    c.add_input("a")
    c.add_cell("g", AND, ("a", "ghost"), ("n",))
    c.add_output("n")
    with pytest.raises(ValidationError, match="ghost"):
        validate(c)


def test_dangling_latch_input_reported():
    c = Circuit()
    c.add_input("a")
    c.add_latch("l", "ghost", "q")
    c.add_output("q")
    c.add_output("a")
    with pytest.raises(ValidationError, match="latch l"):
        validate(c)


def test_dangling_output_reported():
    c = Circuit()
    c.add_input("a")
    c.add_cell("g", NOT, ("a",), ("n",))
    c.add_output("nope")
    with pytest.raises(ValidationError, match="primary output"):
        validate(c)


def test_all_problems_collected_at_once():
    c = Circuit()
    c.add_input("a")
    c.add_cell("g", AND, ("ghost1", "ghost2"), ("n",))
    c.add_output("missing")
    try:
        validate(c)
    except ValidationError as exc:
        assert len(exc.problems) == 3
    else:  # pragma: no cover
        pytest.fail("expected ValidationError")


def test_combinational_cycle_reported():
    c = Circuit()
    c.add_input("a")
    c.add_cell("g1", AND, ("a", "n2"), ("n1",))
    c.add_cell("g2", NOT, ("n1",), ("n2",))
    c.add_output("n1")
    with pytest.raises(ValidationError, match="cycle"):
        validate(c)


def test_check_normal_form_flags_unread_and_shared_nets():
    c = Circuit()
    c.add_input("a")
    c.add_cell("g1", NOT, ("a",), ("n1",))
    c.add_cell("g2", NOT, ("a",), ("n2",))  # "a" read twice
    c.add_output("n1")  # n2 unread
    problems = check_normal_form(c)
    assert any("no reader" in p for p in problems)
    assert any("2 readers" in p for p in problems)
    with pytest.raises(ValidationError):
        validate(c, require_normal_form=True)
    validate(c)  # fine without the normal-form requirement
