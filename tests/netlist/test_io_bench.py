"""Tests for the ISCAS-89 .bench reader/writer."""

from __future__ import annotations

import pytest

from repro.bench.generators import random_sequential_circuit
from repro.netlist.io_bench import BenchParseError, parse_bench, write_bench
from repro.netlist.transform import normalize_fanout
from repro.stg.equivalence import machines_equivalent
from repro.stg.explicit import extract_stg

SIMPLE = """
# a tiny machine
INPUT(x)
OUTPUT(z)
q = DFF(d)
nx = NOT(x)
d = AND(nx, q)
z = OR(x, q)
"""


def test_parse_simple():
    c = parse_bench(SIMPLE, name="simple")
    assert c.inputs == ("x",)
    assert c.outputs == ("z",)
    assert c.latch_names == ("dff_q",)
    assert c.latch("dff_q").data_in == "d"
    assert {cell.function.name for cell in c.cells} == {"NOT", "AND", "OR"}


def test_parse_is_order_insensitive():
    shuffled = "\n".join(reversed([l for l in SIMPLE.splitlines() if l.strip()]))
    a = parse_bench(SIMPLE)
    b = parse_bench(shuffled)
    assert machines_equivalent(extract_stg(a), extract_stg(b))


def test_comments_and_blank_lines_ignored():
    c = parse_bench("# hi\n\nINPUT(a)\nOUTPUT(b)\nb = NOT(a)  # inline\n")
    assert c.num_cells == 1


def test_buff_and_inv_aliases():
    c = parse_bench("INPUT(a)\nOUTPUT(b)\nOUTPUT(d)\nb = BUFF(a)\nd = INV(a)\n")
    kinds = sorted(cell.function.name for cell in c.cells)
    assert kinds == ["BUF", "NOT"]


def test_undefined_signal_rejected():
    with pytest.raises(BenchParseError, match="never defined"):
        parse_bench("INPUT(a)\nOUTPUT(z)\nz = AND(a, ghost)\n")


def test_undefined_output_rejected():
    with pytest.raises(BenchParseError, match="never defined"):
        parse_bench("INPUT(a)\nOUTPUT(z)\nq = NOT(a)\n")


def test_bad_arity_rejected():
    with pytest.raises(BenchParseError, match="one argument"):
        parse_bench("INPUT(a)\nOUTPUT(z)\nz = NOT(a, a)\n")
    with pytest.raises(BenchParseError, match="DFF"):
        parse_bench("INPUT(a)\nOUTPUT(z)\nz = DFF(a, a)\n")


def test_unknown_keyword_rejected():
    with pytest.raises(BenchParseError, match="unknown gate"):
        parse_bench("INPUT(a)\nOUTPUT(z)\nz = FROB(a)\n")


def test_garbage_line_rejected():
    with pytest.raises(BenchParseError, match="unrecognised"):
        parse_bench("INPUT(a)\nwhat is this\n")


def test_write_then_parse_roundtrips_behaviour():
    original = parse_bench(SIMPLE, name="rt")
    text = write_bench(original)
    back = parse_bench(text, name="rt2")
    assert machines_equivalent(extract_stg(original), extract_stg(back))


def test_write_collapses_junctions():
    c = normalize_fanout(parse_bench(SIMPLE))
    assert c.junction_cells()
    text = write_bench(c)
    assert "JUNC" not in text
    back = parse_bench(text)
    assert machines_equivalent(extract_stg(c), extract_stg(back))


def test_roundtrip_generated_circuits():
    for seed in (0, 7):
        c = random_sequential_circuit(seed)
        back = parse_bench(write_bench(c), name="back")
        assert machines_equivalent(extract_stg(c), extract_stg(back))


def test_header_comment():
    c = parse_bench(SIMPLE, name="named")
    assert write_bench(c, header="custom header").startswith("# custom header")
