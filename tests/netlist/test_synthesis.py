"""Tests for two-level STG synthesis (the extract_stg inverse)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.iscas import load
from repro.bench.paper_circuits import figure1_design_c, figure1_design_d
from repro.netlist.synthesis import synthesize_stg
from repro.netlist.validate import validate
from repro.stg.equivalence import machines_equivalent
from repro.stg.explicit import STG, extract_stg


def random_stg(seed: int, *, latches=2, inputs=1, outputs=1) -> STG:
    rng = random.Random(seed)
    num_states = 1 << latches
    num_symbols = 1 << inputs
    return STG(
        num_latches=latches,
        num_inputs=inputs,
        num_outputs=outputs,
        next_state=[
            [rng.randrange(num_states) for _ in range(num_symbols)]
            for _ in range(num_states)
        ],
        output=[
            [rng.randrange(1 << outputs) for _ in range(num_symbols)]
            for _ in range(num_states)
        ],
        name="spec%d" % seed,
    )


def test_round_trip_on_paper_machines():
    for circuit in (figure1_design_d(), figure1_design_c()):
        spec = extract_stg(circuit)
        synth = synthesize_stg(spec)
        validate(synth, require_normal_form=True)
        back = extract_stg(synth)
        assert back.next_state == spec.next_state
        assert back.output == spec.output


def test_round_trip_on_s27():
    spec = extract_stg(load("s27"))
    synth = synthesize_stg(spec)
    back = extract_stg(synth)
    assert back.next_state == spec.next_state
    assert back.output == spec.output


@settings(deadline=None, max_examples=15)
@given(seed=st.integers(0, 10_000))
def test_round_trip_on_random_specs(seed):
    spec = random_stg(seed)
    # Random tables may leave a state bit unobservable; those are
    # rejected by contract, so only check accepting runs.
    try:
        synth = synthesize_stg(spec)
    except ValueError:
        return
    back = extract_stg(synth)
    assert back.next_state == spec.next_state
    assert back.output == spec.output


def test_hand_written_spec_becomes_usable_circuit():
    """A transition-table spec flows into the rest of the library:
    synthesize, retime, verify CLS invariance."""
    # A 2-bit machine: input 1 cycles 00->01->10->00, input 0 holds;
    # output = (state == 10).
    spec = STG(
        num_latches=2,
        num_inputs=1,
        num_outputs=1,
        next_state=[[0, 1], [1, 2], [2, 0], [3, 0]],
        output=[[0, 0], [0, 0], [1, 1], [0, 0]],
        name="cycler",
    )
    circuit = synthesize_stg(spec)
    assert machines_equivalent(extract_stg(circuit), spec)

    from repro.retime.engine import RetimingSession
    from repro.retime.moves import enabled_moves
    from repro.retime.validity import cls_equivalent

    session = RetimingSession(circuit)
    for _ in range(4):
        moves = enabled_moves(session.current)
        if not moves:
            break
        session.apply(moves[0])
    assert cls_equivalent(circuit, session.current, count=5, length=8, seed=0)


def test_constant_output_bit_synthesised_as_constant():
    spec = STG(
        num_latches=1,
        num_inputs=1,
        num_outputs=2,
        next_state=[[0, 1], [1, 0]],
        output=[[0b10, 0b10], [0b10, 0b10]],  # out0 = 1 always, out1 = 0
        name="consts",
    )
    circuit = synthesize_stg(spec)
    back = extract_stg(circuit)
    assert back.output == spec.output
    kinds = {cell.function.name for cell in circuit.cells}
    assert "CONST1" in kinds and "CONST0" in kinds


def test_logically_dead_bit_still_synthesised():
    """A state bit that is logically irrelevant but mentioned by the
    full minterms stays in the circuit: the round trip preserves the
    full 2**n state space."""
    spec = STG(
        num_latches=2,
        num_inputs=1,
        num_outputs=1,
        next_state=[[0, 2], [0, 2], [0, 2], [0, 2]],
        output=[[0, 1], [0, 1], [0, 1], [0, 1]],
        name="dead_bit",
    )
    circuit = synthesize_stg(spec)
    assert circuit.num_latches == 2
    back = extract_stg(circuit)
    assert back.next_state == spec.next_state


def test_structurally_unobservable_state_rejected():
    """When every next-state bit and output is constant in the state,
    the latches would dangle and the synthesiser refuses rather than
    silently shrinking the state space."""
    spec = STG(
        num_latches=2,
        num_inputs=1,
        num_outputs=1,
        next_state=[[0, 0], [0, 0], [0, 0], [0, 0]],  # always -> 00
        output=[[0, 0], [0, 0], [0, 0], [0, 0]],  # constant 0
        name="all_const",
    )
    with pytest.raises(ValueError, match="unobservable"):
        synthesize_stg(spec)


def test_zero_latch_machine():
    spec = STG(
        num_latches=0,
        num_inputs=1,
        num_outputs=1,
        next_state=[[0, 0]],
        output=[[0, 1]],  # pure combinational echo
        name="echo",
    )
    circuit = synthesize_stg(spec)
    back = extract_stg(circuit)
    assert back.output == spec.output
    assert circuit.num_latches == 0
