"""Tests for the BLIF reader/writer."""

from __future__ import annotations

import pytest

from repro.bench.generators import random_sequential_circuit
from repro.bench.iscas import load
from repro.netlist.io_blif import BlifParseError, parse_blif, write_blif
from repro.netlist.validate import validate
from repro.stg.equivalence import machines_equivalent
from repro.stg.explicit import extract_stg

SIMPLE = """
# a small machine
.model simple
.inputs x
.outputs z
.latch d q 3
.names x q d
11 1
.names x q z
0- 1
-1 1
.end
"""


def test_parse_simple():
    model = parse_blif(SIMPLE)
    assert model.name == "simple"
    c = model.circuit
    validate(c)
    assert c.inputs == ("x",)
    assert c.outputs == ("z",)
    assert c.latch_names == ("lat_q",)
    # d = AND(x, q); z = OR(NOT x, q)
    stg = extract_stg(c)
    # state 0, input 1: d = 0; z = q = 0 -> output OR(0, 0) = 0
    assert stg.output[0][1] == 0
    assert stg.output[1][0] == 1  # NOT x
    assert stg.next_state[1][1] == 1  # AND(1,1)


def test_parse_offset_cubes():
    text = """
.model offset
.inputs a b
.outputs y
.names a b y
11 0
.end
"""
    c = parse_blif(text).circuit
    stg = extract_stg(c)
    # y = NOT(a AND b) = NAND
    assert [stg.output[0][a] for a in range(4)] == [1, 1, 1, 0]


def test_parse_constant_blocks():
    text = """
.model consts
.inputs a
.outputs k1 k0
.names k1
1
.names k0
.end
"""
    c = parse_blif(text).circuit
    stg = extract_stg(c)
    assert stg.output[0][0] == 0b10
    assert stg.output[0][1] == 0b10


def test_parse_all_dontcare_cube_is_constant():
    text = """
.model dc
.inputs a
.outputs y
.names a y
- 1
.end
"""
    c = parse_blif(text).circuit
    stg = extract_stg(c)
    assert stg.output[0][0] == 1 and stg.output[0][1] == 1


def test_latch_inits_reported_but_not_applied():
    text = """
.model withinit
.inputs x
.outputs q
.latch d q re clk 1
.names x d
1 1
.end
"""
    model = parse_blif(text)
    assert model.latch_inits == {"lat_q": 1}
    # The circuit itself has no initial value anywhere (paper model).
    assert model.circuit.latch("lat_q").data_in == "d"


def test_line_continuation_and_comments():
    text = ".model c\n.inputs a \\\nb\n.outputs y # trailing\n.names a b y\n11 1\n.end\n"
    c = parse_blif(text).circuit
    assert c.inputs == ("a", "b")


def test_parse_errors():
    with pytest.raises(BlifParseError, match="at least an output"):
        parse_blif(".model m\n.names\n.end")
    with pytest.raises(BlifParseError, match="bad cube pattern"):
        parse_blif(".model m\n.inputs a\n.outputs y\n.names a y\n2 1\n.end")
    with pytest.raises(BlifParseError, match="mixed"):
        parse_blif(".model m\n.inputs a b\n.outputs y\n.names a b y\n11 1\n00 0\n.end")
    with pytest.raises(BlifParseError, match="unsupported"):
        parse_blif(".model m\n.subckt foo\n.end")
    with pytest.raises(BlifParseError, match="never defined"):
        parse_blif(".model m\n.inputs a\n.outputs y\n.names a ghost y\n11 1\n.end")
    with pytest.raises(BlifParseError, match=".latch needs"):
        parse_blif(".model m\n.latch x\n.end")


def test_write_then_parse_roundtrips_behaviour():
    original = parse_blif(SIMPLE).circuit
    text = write_blif(original)
    back = parse_blif(text).circuit
    assert machines_equivalent(extract_stg(original), extract_stg(back))


def test_roundtrip_benchmarks(iscas_circuit):
    text = write_blif(iscas_circuit)
    back = parse_blif(text).circuit
    assert machines_equivalent(extract_stg(iscas_circuit), extract_stg(back))


def test_roundtrip_generated():
    for seed in (0, 11):
        c = random_sequential_circuit(seed)
        back = parse_blif(write_blif(c)).circuit
        assert machines_equivalent(extract_stg(c), extract_stg(back))


def test_write_emits_expected_sections():
    c = load("mini_traffic")
    text = write_blif(c, model="traffic")
    assert text.startswith(".model traffic")
    assert ".inputs car" in text
    assert ".latch" in text
    assert text.rstrip().endswith(".end")
    # latches carry the "unknown" init code 3
    for line in text.splitlines():
        if line.startswith(".latch"):
            assert line.endswith(" 3")
