"""Tests for the core circuit data model."""

from __future__ import annotations

import pytest

from repro.logic.functions import AND, NOT, OR, junction
from repro.netlist.circuit import Cell, Circuit, CircuitError, Latch


def small_circuit():
    c = Circuit("small")
    c.add_input("a")
    c.add_input("b")
    c.add_cell("g1", AND, ("a", "b"), ("n1",))
    c.add_latch("l1", "n1", "q1")
    c.add_cell("g2", NOT, ("q1",), ("n2",))
    c.add_output("n2")
    return c


# ---------------------------------------------------------------------------
# Construction and lookups.
# ---------------------------------------------------------------------------


def test_basic_construction_and_stats():
    c = small_circuit()
    assert c.inputs == ("a", "b")
    assert c.outputs == ("n2",)
    assert c.cell_names == ("g1", "g2")
    assert c.latch_names == ("l1",)
    assert c.num_cells == 2 and c.num_latches == 1
    stats = c.stats()
    assert stats == {
        "inputs": 2,
        "outputs": 1,
        "cells": 2,
        "latches": 1,
        "nets": 5,
        "junctions": 0,
    }


def test_drivers_and_readers():
    c = small_circuit()
    assert c.driver_of("a") == ("input", "a")
    assert c.driver_of("n1") == ("cell", "g1", 0)
    assert c.driver_of("q1") == ("latch", "l1")
    assert c.readers_of("n1") == (("latch", "l1"),)
    assert c.readers_of("q1") == (("cell", "g2", 0),)
    assert c.readers_of("n2") == (("output", 0),)
    assert c.fanout_count("a") == 1


def test_lookup_errors():
    c = small_circuit()
    with pytest.raises(CircuitError):
        c.cell("nope")
    with pytest.raises(CircuitError):
        c.latch("nope")
    with pytest.raises(CircuitError):
        c.driver_of("ghost")


def test_duplicate_names_rejected():
    c = small_circuit()
    with pytest.raises(CircuitError):
        c.add_cell("g1", NOT, ("a",), ("zz",))
    with pytest.raises(CircuitError):
        c.add_latch("g2", "a", "zz")  # clashes with a cell name
    with pytest.raises(CircuitError):
        c.add_input("a")  # net already driven


def test_double_driven_net_rejected():
    c = small_circuit()
    with pytest.raises(CircuitError):
        c.add_cell("g3", NOT, ("a",), ("n1",))


def test_cell_pin_arity_checked():
    c = Circuit()
    c.add_input("a")
    with pytest.raises(CircuitError):
        c.add_cell("g", AND, ("a",), ("n",))
    with pytest.raises(CircuitError):
        c.add_cell("g", NOT, ("a",), ("n", "m"))


def test_cell_may_not_drive_same_net_twice():
    with pytest.raises(CircuitError):
        Cell("j", junction(2), ("a",), ("n", "n"))


# ---------------------------------------------------------------------------
# Removal and replacement.
# ---------------------------------------------------------------------------


def test_remove_cell_releases_nets():
    c = small_circuit()
    c.remove_cell("g2")
    assert not c.has_net("n2")
    assert not c.has_cell("g2")
    c.add_cell("g2", NOT, ("q1",), ("n2",))  # can be re-added
    assert c.has_net("n2")


def test_remove_latch_releases_output_net():
    c = small_circuit()
    c.remove_latch("l1")
    assert not c.has_net("q1")


def test_replace_cell_swaps_pins():
    c = small_circuit()
    c.replace_cell("g1", Cell("g1", OR, ("a", "b"), ("n1",)))
    assert c.cell("g1").function is OR


def test_replace_cell_must_keep_name():
    c = small_circuit()
    with pytest.raises(CircuitError):
        c.replace_cell("g1", Cell("other", AND, ("a", "b"), ("n1",)))


def test_fresh_names_avoid_collisions():
    c = small_circuit()
    assert c.fresh_net("zzz") == "zzz"
    assert c.fresh_net("n1") != "n1"
    assert not c.has_net(c.fresh_net("n1"))
    assert c.fresh_name("g1") != "g1"
    assert c.fresh_name("brand_new") == "brand_new"


# ---------------------------------------------------------------------------
# Topological order.
# ---------------------------------------------------------------------------


def test_topological_cells_respects_dependencies():
    c = Circuit()
    c.add_input("a")
    c.add_cell("x", NOT, ("a",), ("n1",))
    c.add_cell("y", NOT, ("n1",), ("n2",))
    c.add_cell("z", NOT, ("n2",), ("n3",))
    c.add_output("n3")
    order = c.topological_cells()
    assert order.index("x") < order.index("y") < order.index("z")


def test_latch_breaks_dependency():
    c = Circuit()
    c.add_input("a")
    q = "q"
    c.add_cell("g", AND, ("a", q), ("n",))
    c.add_latch("l", "n", q)
    c.add_output("n")
    # No combinational cycle: the latch breaks it.
    assert c.topological_cells() == ("g",)


def test_combinational_cycle_detected():
    c = Circuit()
    c.add_input("a")
    c.add_cell("g1", AND, ("a", "n2"), ("n1",))
    c.add_cell("g2", NOT, ("n1",), ("n2",))
    c.add_output("n1")
    with pytest.raises(CircuitError, match="combinational cycle"):
        c.topological_cells()


def test_topo_cache_invalidated_on_mutation():
    c = small_circuit()
    first = c.topological_cells()
    c.add_cell("g3", NOT, ("n2",), ("n3",))
    second = c.topological_cells()
    assert "g3" in second and "g3" not in first


# ---------------------------------------------------------------------------
# Copy and equality.
# ---------------------------------------------------------------------------


def test_copy_is_independent():
    c = small_circuit()
    d = c.copy()
    assert d.structurally_equal(c)
    d.add_cell("extra", NOT, ("n2",), ("n9",))
    assert not d.structurally_equal(c)
    assert not c.has_cell("extra")


def test_normal_form_detection():
    c = small_circuit()
    assert c.is_normal_form()  # every net read exactly once here
    c.add_cell("g3", NOT, ("a",), ("n4",))  # now "a" is read twice
    c.add_output("n4")
    assert not c.is_normal_form()


def test_pretty_and_repr_mention_elements():
    c = small_circuit()
    text = c.pretty()
    assert "g1" in text and "l1" in text and "small" in text
    assert "1 latches" in repr(c)


def test_source_nets_are_inputs_plus_latch_outputs():
    c = small_circuit()
    assert set(c.source_nets()) == {"a", "b", "q1"}


def test_replace_cell_rolls_back_on_conflict():
    """A failed replacement leaves the circuit exactly as before."""
    c = small_circuit()
    snapshot = c.copy()
    with pytest.raises(CircuitError):
        # "a" is already driven by the primary input -> claim conflict.
        c.replace_cell("g1", Cell("g1", AND, ("a", "b"), ("a",)))
    assert c.structurally_equal(snapshot)
    assert c.driver_of("n1") == ("cell", "g1", 0)
    # The circuit is still fully usable.
    c.replace_cell("g1", Cell("g1", OR, ("a", "b"), ("n1",)))
    assert c.cell("g1").function is OR
