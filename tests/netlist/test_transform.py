"""Tests for fanout normalisation, junction collapsing and latch lowering."""

from __future__ import annotations

import pytest

from repro.bench.generators import random_sequential_circuit
from repro.logic.ternary import ONE, ZERO
from repro.netlist.builder import CircuitBuilder
from repro.netlist.circuit import Circuit, CircuitError
from repro.netlist.transform import (
    collapse_junctions,
    enable_latch,
    normalize_fanout,
    synchronous_reset_latch,
    synchronous_set_latch,
)
from repro.netlist.validate import check_normal_form, validate
from repro.sim.binary import BinarySimulator, all_power_up_states
from repro.stg.equivalence import machines_equivalent
from repro.stg.explicit import extract_stg


def fanouty_circuit():
    b = CircuitBuilder("fanouty")
    i = b.input("i")
    n = b.gate("NOT", i, name="inv")
    a = b.gate("AND", n, n, name="and1")  # n read twice
    o = b.gate("OR", a, i, name="or1")  # i read twice (gate + NOT)
    b.output(o)
    return b.build()


def test_normalize_fanout_gives_normal_form():
    c = fanouty_circuit()
    assert not c.is_normal_form()
    nf = normalize_fanout(c)
    assert nf.is_normal_form()
    assert check_normal_form(nf) == []
    validate(nf, require_normal_form=True)
    assert len(nf.junction_cells()) == 2  # one for i, one for n


def test_normalize_is_identity_on_normal_form():
    c = normalize_fanout(fanouty_circuit())
    again = normalize_fanout(c)
    assert again.structurally_equal(c)


def test_normalize_preserves_behaviour():
    c = fanouty_circuit()
    nf = normalize_fanout(c)
    assert machines_equivalent(extract_stg(c), extract_stg(nf))


def test_normalize_rejects_dangling_nets():
    c = Circuit()
    c.add_input("a")
    from repro.logic.functions import NOT

    c.add_cell("g", NOT, ("a",), ("unread",))
    with pytest.raises(CircuitError, match="no readers"):
        normalize_fanout(c)


def test_collapse_inverts_normalize():
    c = fanouty_circuit()
    nf = normalize_fanout(c)
    back = collapse_junctions(nf)
    assert back.structurally_equal(c)


def test_collapse_handles_junction_chains():
    b = CircuitBuilder()
    i = b.input("i")
    x, y = b.fanout(i, 2)
    p, q = b.fanout(x, 2)
    b.output(b.gate("AND", p, y))
    b.output(b.gate("NOT", q))
    c = b.build()
    flat = collapse_junctions(c)
    assert not flat.junction_cells()
    # every gate input resolves transitively to the primary input
    for cell in flat.cells:
        assert all(net == "i" for net in cell.inputs)


def test_roundtrip_on_generated_circuits():
    for seed in range(5):
        c = random_sequential_circuit(seed)
        back = normalize_fanout(collapse_junctions(c))
        assert machines_equivalent(extract_stg(c), extract_stg(back))


# ---------------------------------------------------------------------------
# Synchronous-control latch lowering (Section 1 models).
# ---------------------------------------------------------------------------


def _step(circuit, state, inputs):
    return BinarySimulator(circuit).step(state, inputs)


def test_synchronous_reset_latch_model():
    b = CircuitBuilder("rlatch")
    d = b.input("d")
    r = b.input("r")
    q = synchronous_reset_latch(b, d, r, name="ff")
    b.output(q)
    c = b.build()
    # Reset asserted: next state 0 regardless of d and current state.
    for state in all_power_up_states(c):
        _, nxt = _step(c, state, (True, True))
        assert nxt == (False,)
        _, nxt = _step(c, state, (False, True))
        assert nxt == (False,)
    # Reset deasserted: latch samples d.
    _, nxt = _step(c, (False,), (True, False))
    assert nxt == (True,)


def test_synchronous_set_latch_model():
    b = CircuitBuilder("slatch")
    d = b.input("d")
    s = b.input("s")
    q = synchronous_set_latch(b, d, s, name="ff")
    b.output(q)
    c = b.build()
    for state in all_power_up_states(c):
        _, nxt = _step(c, state, (False, True))
        assert nxt == (True,)
    _, nxt = _step(c, (True,), (False, False))
    assert nxt == (False,)


def test_enable_latch_holds_when_disabled():
    b = CircuitBuilder("elatch")
    d = b.input("d")
    en = b.input("en")
    q = enable_latch(b, d, en, name="ff")
    b.output(q)
    c = b.build()
    # enable=0: hold.
    for state in all_power_up_states(c):
        _, nxt = _step(c, state, (True, False))
        assert nxt == state
    # enable=1: load d.
    _, nxt = _step(c, (False,), (True, True))
    assert nxt == (True,)
    _, nxt = _step(c, (True,), (False, True))
    assert nxt == (False,)
