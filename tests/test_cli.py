"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.bench.iscas import BENCHMARKS
from repro.cli import main
from repro.obs import RunReport, TRACER


@pytest.fixture
def s27_path(tmp_path):
    path = tmp_path / "s27.bench"
    path.write_text(BENCHMARKS["s27"])
    return str(path)


@pytest.fixture
def traffic_path(tmp_path):
    path = tmp_path / "traffic.bench"
    path.write_text(BENCHMARKS["mini_traffic"])
    return str(path)


def test_info(s27_path, capsys):
    assert main(["info", s27_path]) == 0
    out = capsys.readouterr().out
    assert "clock period" in out
    assert "registers:" in out
    assert "SHE:" in out
    assert "essentially resettable" in out


def test_info_skips_large_stg(s27_path, capsys):
    assert main(["info", s27_path, "--max-stg-bits", "2"]) == 0
    assert "skipped" in capsys.readouterr().out


def test_simulate_cls(s27_path, capsys):
    assert main(["simulate", s27_path, "--sequence", "0000,1111,0101"]) == 0
    out = capsys.readouterr().out
    assert "cycle" in out and "outputs" in out


def test_simulate_binary_requires_state(s27_path, capsys):
    with pytest.raises(SystemExit):
        main(["simulate", s27_path, "--mode", "binary", "--sequence", "0000"])
    assert main(
        ["simulate", s27_path, "--mode", "binary", "--state", "000", "--sequence", "0000,1111"]
    ) == 0


def test_simulate_exact(s27_path, capsys):
    assert main(["simulate", s27_path, "--mode", "exact", "--sequence", "0000,1111"]) == 0
    out = capsys.readouterr().out
    assert "power-up" in out


def test_simulate_exact_rejects_x_inputs(s27_path):
    with pytest.raises(SystemExit, match="definite"):
        main(["simulate", s27_path, "--mode", "exact", "--sequence", "0X00,1111"])


def test_simulate_width_mismatch(s27_path):
    with pytest.raises(SystemExit, match="width"):
        main(["simulate", s27_path, "--sequence", "01"])


def test_retime_roundtrip(traffic_path, tmp_path, capsys):
    out_path = str(tmp_path / "retimed.bench")
    assert main(["retime", traffic_path, "-o", out_path]) == 0
    text = capsys.readouterr().out
    assert "period:" in text and "CLS invariance (sampled): OK" in text
    # The written file must check out against the original.
    assert main(["check", traffic_path, out_path, "--exhaustive"]) == 0
    out = capsys.readouterr().out
    assert "EQUIVALENT" in out


def test_retime_min_area(traffic_path, capsys):
    assert main(["retime", traffic_path, "--objective", "min-area"]) == 0
    assert "registers:" in capsys.readouterr().out


def test_check_detects_difference(traffic_path, tmp_path, capsys):
    other = tmp_path / "other.bench"
    other.write_text(BENCHMARKS["mini_traffic"].replace("NOR(s0, s1)", "NOR(s1, s0)").replace(
        "green = NOR", "green = OR"
    ))
    assert main(["check", traffic_path, str(other)]) == 1


def test_atpg(traffic_path, capsys):
    assert main(["atpg", traffic_path, "--attempts", "40", "--verbose"]) == 0
    out = capsys.readouterr().out
    assert "faults detected" in out
    assert "test 0:" in out


def test_paper_command(capsys):
    assert main(["paper"]) == 0
    out = capsys.readouterr().out
    assert "0·0·1·0" in out
    assert "0·X·X·X" in out


def test_simulate_vcd_output(s27_path, tmp_path, capsys):
    vcd_path = str(tmp_path / "wave.vcd")
    assert main(
        ["simulate", s27_path, "--sequence", "0000,1111", "--vcd", vcd_path]
    ) == 0
    text = open(vcd_path).read()
    assert "$enddefinitions $end" in text
    assert "in.G0" in text


def test_simulate_vcd_rejected_for_exact_mode(s27_path, tmp_path):
    with pytest.raises(SystemExit, match="full trace"):
        main(
            [
                "simulate",
                s27_path,
                "--mode",
                "exact",
                "--sequence",
                "0000,1111",
                "--vcd",
                str(tmp_path / "w.vcd"),
            ]
        )


def test_check_with_stg_analysis(traffic_path, tmp_path, capsys):
    out_path = str(tmp_path / "ret.bench")
    assert main(["retime", traffic_path, "-o", out_path]) == 0
    capsys.readouterr()
    assert main(["check", traffic_path, out_path, "--stg"]) == 0
    out = capsys.readouterr().out
    assert "implication" in out
    assert "safe replacement" in out


def test_check_stg_skipped_when_large(traffic_path, tmp_path, capsys):
    out_path = str(tmp_path / "ret.bench")
    main(["retime", traffic_path, "-o", out_path])
    capsys.readouterr()
    assert main(["check", traffic_path, out_path, "--stg", "--max-stg-bits", "1"]) == 0
    assert "skipped" in capsys.readouterr().out


def test_redundancy_command(tmp_path, capsys):
    bench = tmp_path / "red.bench"
    bench.write_text(
        "INPUT(x)\nINPUT(y)\nOUTPUT(z)\n"
        "q = DFF(w)\n"
        "inner = AND(x, y)\n"
        "w = OR(x, inner)\n"
        "z = BUF(q)\n"
    )
    out_path = str(tmp_path / "opt.bench")
    assert main(["redundancy", str(bench), "-o", out_path]) == 0
    out = capsys.readouterr().out
    assert "applied" in out
    # The optimised file must be CLS-equivalent to the original.
    capsys.readouterr()
    assert main(["check", str(bench), out_path, "--exhaustive"]) == 0


def test_blif_workflow(tmp_path, capsys):
    """CLI dispatches on .blif extension for both read and write."""
    blif = tmp_path / "machine.blif"
    blif.write_text(
        ".model m\n.inputs x\n.outputs z\n.latch d q 3\n"
        ".names x q d\n11 1\n.names q z\n1 1\n.end\n"
    )
    assert main(["info", str(blif)]) == 0
    out_path = str(tmp_path / "retimed.blif")
    capsys.readouterr()
    assert main(["retime", str(blif), "-o", out_path]) == 0
    text = open(out_path).read()
    assert text.startswith(".model")
    capsys.readouterr()
    assert main(["check", str(blif), out_path, "--exhaustive"]) == 0
    assert "EQUIVALENT" in capsys.readouterr().out


def test_cross_format_check(tmp_path, capsys):
    """A .bench original can be checked against a .blif retiming."""
    bench = tmp_path / "m.bench"
    bench.write_text("INPUT(x)\nOUTPUT(z)\nq = DFF(d)\nd = AND(x, q)\nz = NOT(q)\n")
    out_path = str(tmp_path / "m.blif")
    assert main(["retime", str(bench), "-o", out_path]) == 0
    capsys.readouterr()
    assert main(["check", str(bench), out_path, "--exhaustive", "--stg"]) == 0


class TestObservabilityFlags:
    def test_trace_prints_summary_to_stderr(self, s27_path, capsys):
        assert main(["--trace", "simulate", s27_path, "--sequence", "0000,1111"]) == 0
        captured = capsys.readouterr()
        assert "RunReport" in captured.err
        assert "sim.cls.runs" in captured.err
        assert "RunReport" not in captured.out

    def test_report_writes_valid_json(self, s27_path, tmp_path, capsys):
        target = str(tmp_path / "run.json")
        assert main(["--report", target, "atpg", s27_path, "--attempts", "20"]) == 0
        report = RunReport.load(target)
        assert report.meta["command"] == "atpg"
        assert report.counter("sim.atpg.candidates") > 0
        assert report.span("sim.atpg.generate") is not None

    def test_tracing_is_off_after_main_returns(self, s27_path, capsys):
        main(["--trace", "info", s27_path])
        assert TRACER.enabled is False
        assert TRACER.counters == {}

    def test_plain_runs_leave_tracer_silent(self, s27_path, capsys):
        main(["info", s27_path])
        assert TRACER.enabled is False
        assert TRACER.counters == {}


class TestBenchCommand:
    def test_bench_default_workload(self, capsys):
        assert main(["bench", "--seed", "3", "--cycles", "4", "--tests", "2"]) == 0
        out = capsys.readouterr().out
        assert "bench workload" in out
        assert "compile:" in out
        assert "retime:" in out
        assert "fault-grading:" in out
        # Without --trace/--report, bench prints its summary to stdout.
        assert "RunReport" in out

    def test_bench_on_a_named_circuit(self, s27_path, capsys):
        assert main(["bench", s27_path, "--cycles", "4", "--tests", "2"]) == 0
        assert "s27" in capsys.readouterr().out

    def test_bench_report_covers_all_phases(self, tmp_path, capsys):
        target = str(tmp_path / "bench.json")
        assert main(
            ["bench", "--seed", "1", "--cycles", "4", "--tests", "2", "--report", target]
        ) == 0
        doc = json.loads(open(target).read())
        assert doc["schema"] == 1
        paths = [s["path"] for s in doc["spans"]]
        for phase in ("compile", "simulate", "retime", "fault-grading"):
            assert phase in paths, "missing phase span %r" % phase
        assert doc["counters"]["compile.circuits"] >= 1
        assert doc["counters"]["sim.fault.faults"] > 0
        # Phase spans nest the library's own instrumentation beneath them.
        assert any(p.startswith("fault-grading/") for p in paths)

    def test_bench_subcommand_position_of_global_flags(self, tmp_path, capsys):
        # The flags are accepted both before and after the subcommand.
        target = str(tmp_path / "late.json")
        assert main(
            ["bench", "--report", target, "--seed", "2", "--cycles", "3", "--tests", "2"]
        ) == 0
        assert RunReport.load(target).counter("compile.circuits") >= 1


def test_retime_with_delay_model_and_period(traffic_path, capsys):
    assert main(
        [
            "retime",
            traffic_path,
            "--objective",
            "min-area",
            "--delay-model",
            "loaded",
            "--period",
            "9",
        ]
    ) == 0
    out = capsys.readouterr().out
    assert "period:" in out and "CLS invariance (sampled): OK" in out


# ---------------------------------------------------------------------------
# The exit-code contract: 0 = valid, 1 = violation, 2 = undecided,
# across every --engine value (including --certificates on the sat arm).
# ---------------------------------------------------------------------------

ENGINES = ("explicit", "symbolic", "sat", "auto")

_GOOD_BENCH = """\
INPUT(a)
OUTPUT(y)
q = DFF(a)
y = XOR(a, q)
"""

# The same machine with the output polarity flipped: CLS tells them
# apart from cycle 1 on (cycle 0 is X-masked by the power-up state).
_BAD_BENCH = _GOOD_BENCH.replace("XOR", "XNOR")


@pytest.fixture
def check_pair(tmp_path):
    good = tmp_path / "good.bench"
    good.write_text(_GOOD_BENCH)
    bad = tmp_path / "bad.bench"
    bad.write_text(_BAD_BENCH)
    return str(good), str(bad)


class TestCheckExitCodeMatrix:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_valid_pair_exits_0(self, engine, check_pair, capsys):
        good, _ = check_pair
        assert main(["--engine", engine, "check", good, good, "--stg"]) == 0
        out = capsys.readouterr().out
        assert "True" in out

    @pytest.mark.parametrize("engine", ENGINES)
    def test_violation_exits_1(self, engine, check_pair, capsys):
        good, bad = check_pair
        assert main(["--engine", engine, "check", good, bad, "--stg"]) == 1
        out = capsys.readouterr().out
        assert "False" in out

    @pytest.mark.parametrize("engine", ENGINES)
    def test_undecided_exits_2(self, engine, check_pair, capsys, monkeypatch):
        """A budget blow-up anywhere in the STG analysis must answer
        exit 2 (undecided), never a crash or a fake verdict."""
        from repro.stg.replaceability import SearchBudgetExceeded

        def boom(*args, **kwargs):
            raise SearchBudgetExceeded("forced for the exit-code contract")

        if engine == "sat":
            import repro.sat

            monkeypatch.setattr(repro.sat, "sat_implies", boom)
        elif engine == "symbolic":
            from repro.stg.symbolic_replaceability import SymbolicContainmentChecker

            monkeypatch.setattr(SymbolicContainmentChecker, "implies", boom)
        else:  # explicit, and auto (which resolves to explicit here)
            import repro.cli

            monkeypatch.setattr(repro.cli, "extract_stg", boom)
        good, _ = check_pair
        assert main(["--engine", engine, "check", good, good, "--stg"]) == 2
        assert "aborted" in capsys.readouterr().err

    def test_sat_certificates_on_valid_pair(self, check_pair, tmp_path, capsys):
        good, _ = check_pair
        certs = tmp_path / "certs"
        assert main(
            ["--engine", "sat", "check", good, good, "--stg",
             "--certificates", str(certs)]
        ) == 0
        out = capsys.readouterr().out
        assert "certificates: wrote" in out
        assert any(certs.iterdir())

    def test_sat_certificates_on_violation(self, check_pair, tmp_path, capsys):
        good, bad = check_pair
        certs = tmp_path / "certs"
        assert main(
            ["--engine", "sat", "check", good, bad, "--stg",
             "--certificates", str(certs)]
        ) == 1
        out = capsys.readouterr().out
        assert "certificates: wrote" in out
        assert any(certs.iterdir())

    def test_seed_is_logged_in_the_verdict_line(self, check_pair, capsys):
        good, bad = check_pair
        assert main(["check", good, bad, "--seed", "3"]) == 1
        assert "seed 3" in capsys.readouterr().out
