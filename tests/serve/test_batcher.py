"""Unit tests for the micro-batcher (:mod:`repro.serve.batcher`).

The contract: compatible sweeps submitted inside one window run as a
single merged lane pass, and every requester gets back bit-for-bit the
slice it would have computed alone.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.bench.paper_circuits import figure1_design_c, figure1_design_d
from repro.retime.validity import random_ternary_sequences
from repro.serve.batcher import MicroBatcher
from repro.serve.report import ServiceStats
from repro.sim.ternary_multi import BatchedTernarySimulator


async def _run_inline(fn):
    return fn()


def _sequences(circuit, count, seed):
    return random_ternary_sequences(
        len(circuit.inputs), count=count, length=6, seed=seed
    )


def _batch(coro):
    return asyncio.run(coro)


class TestMerging:
    def test_compatible_sweeps_merge_into_one_pass(self):
        circuit = figure1_design_d()
        stats = ServiceStats()
        batcher = MicroBatcher(_run_inline, window_s=0.05, stats=stats)
        seqs_a = _sequences(circuit, 4, seed=0)
        seqs_b = _sequences(circuit, 3, seed=1)

        async def scenario():
            return await asyncio.gather(
                batcher.sweep(circuit, seqs_a), batcher.sweep(circuit, seqs_b)
            )

        got_a, got_b = _batch(scenario())
        batch = stats.snapshot()["batch"]
        assert batch["sweeps"] == 1
        assert batch["jobs"] == 2
        assert batch["lanes"] == 7

        # Bit-for-bit the results of serving each sweep alone.
        sim = BatchedTernarySimulator(circuit)
        assert got_a == sim.run_sequences(seqs_a)
        assert got_b == sim.run_sequences(seqs_b)

    def test_different_circuits_never_merge(self):
        d, c = figure1_design_d(), figure1_design_c()
        stats = ServiceStats()
        batcher = MicroBatcher(_run_inline, window_s=0.05, stats=stats)

        async def scenario():
            return await asyncio.gather(
                batcher.sweep(d, _sequences(d, 2, seed=0)),
                batcher.sweep(c, _sequences(c, 2, seed=0)),
            )

        _batch(scenario())
        assert stats.snapshot()["batch"]["sweeps"] == 2

    def test_different_lengths_never_merge(self):
        circuit = figure1_design_d()
        stats = ServiceStats()
        batcher = MicroBatcher(_run_inline, window_s=0.05, stats=stats)
        short = random_ternary_sequences(1, count=2, length=3, seed=0)
        long = random_ternary_sequences(1, count=2, length=9, seed=0)

        async def scenario():
            return await asyncio.gather(
                batcher.sweep(circuit, short), batcher.sweep(circuit, long)
            )

        got_short, got_long = _batch(scenario())
        assert stats.snapshot()["batch"]["sweeps"] == 2
        assert len(got_short[0]) == 3 and len(got_long[0]) == 9

    def test_lane_cap_flushes_early(self):
        circuit = figure1_design_d()
        stats = ServiceStats()
        batcher = MicroBatcher(_run_inline, window_s=10.0, max_lanes=4, stats=stats)

        async def scenario():
            # Window is effectively forever; only the lane cap can flush.
            return await asyncio.wait_for(
                asyncio.gather(
                    batcher.sweep(circuit, _sequences(circuit, 2, seed=0)),
                    batcher.sweep(circuit, _sequences(circuit, 2, seed=1)),
                ),
                timeout=5.0,
            )

        _batch(scenario())
        assert stats.snapshot()["batch"]["sweeps"] == 1

    def test_empty_submission_short_circuits(self):
        batcher = MicroBatcher(_run_inline)

        async def scenario():
            return await batcher.sweep(figure1_design_d(), [])

        assert _batch(scenario()) == []

    def test_ragged_submission_rejected(self):
        batcher = MicroBatcher(_run_inline)
        ragged = [(((0, 0),),), (((0, 0),), ((0, 0),))]

        async def scenario():
            return await batcher.sweep(figure1_design_d(), ragged)

        with pytest.raises(ValueError, match="one length"):
            _batch(scenario())

    def test_simulator_failure_fans_out_to_every_job(self):
        circuit = figure1_design_d()

        async def boom(fn):
            raise RuntimeError("simulator exploded")

        batcher = MicroBatcher(boom, window_s=0.05)

        async def scenario():
            return await asyncio.gather(
                batcher.sweep(circuit, _sequences(circuit, 2, seed=0)),
                batcher.sweep(circuit, _sequences(circuit, 2, seed=1)),
                return_exceptions=True,
            )

        results = _batch(scenario())
        assert [type(r) for r in results] == [RuntimeError, RuntimeError]
