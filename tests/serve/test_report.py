"""Unit tests for the rolling service report (:mod:`repro.serve.report`)."""

from __future__ import annotations

import json

from repro.serve.report import LATENCY_WINDOW, SERVICE_SCHEMA_VERSION, ServiceStats


class TestServiceStats:
    def test_empty_snapshot_schema(self):
        snap = ServiceStats().snapshot()
        assert snap["schema"] == SERVICE_SCHEMA_VERSION
        assert snap["service"]["requests"] == 0
        assert snap["requests"] == {}
        assert snap["latency_s"] == {}
        assert snap["batch"]["sweeps"] == 0
        assert snap["cache"] == {
            "circuits": {"hits": 0, "misses": 0},
            "parsed": {"hits": 0, "misses": 0},
        }
        assert snap["reorder"] == {
            "requests": {},
            "runs": 0,
            "auto_triggers": 0,
            "swaps": 0,
            "nodes_reclaimed": 0,
        }

    def test_record_reorder_folds_manager_counters(self):
        stats = ServiceStats()
        stats.record_reorder(
            "auto",
            {"reorder.runs": 2, "reorder.auto_triggers": 2, "reorder.swaps": 40,
             "reorder.nodes_reclaimed": 900, "peak_live_nodes": 12345},
        )
        stats.record_reorder("off", {})
        stats.record_reorder("auto", {"reorder.runs": 1, "reorder.swaps": 5})
        snap = stats.snapshot()["reorder"]
        assert snap["requests"] == {"auto": 2, "off": 1}
        assert snap["runs"] == 3
        assert snap["auto_triggers"] == 2
        assert snap["swaps"] == 45
        assert snap["nodes_reclaimed"] == 900
        # Unrelated manager stats (peak_live_nodes) are not folded in.
        assert set(snap) == {
            "requests", "runs", "auto_triggers", "swaps", "nodes_reclaimed"
        }

    def test_latency_first_p50_max(self):
        stats = ServiceStats()
        for elapsed in (0.5, 0.01, 0.02, 0.03):
            stats.record_request("check-validity", elapsed)
        rec = stats.snapshot()["latency_s"]["check-validity"]
        assert rec["count"] == 4
        assert rec["first"] == 0.5  # the cold request, kept forever
        assert rec["last"] == 0.03
        assert rec["max"] == 0.5
        assert rec["p50"] == 0.02  # nearest-rank over the sorted window
        assert rec["p99"] == 0.03  # floor rank: 4 samples land below the tail

    def test_latency_window_is_bounded_but_first_survives(self):
        stats = ServiceStats()
        stats.record_request("ping", 9.0)
        for _ in range(LATENCY_WINDOW + 10):
            stats.record_request("ping", 0.001)
        rec = stats.snapshot()["latency_s"]["ping"]
        assert rec["count"] == LATENCY_WINDOW + 11
        assert rec["first"] == 9.0  # evicted from the window, not from memory
        assert rec["p99"] == 0.001  # the window no longer holds the outlier

    def test_errors_count_as_requests_with_codes(self):
        stats = ServiceStats()
        stats.record_request("load", 0.1)
        stats.record_error("load", "bad-request")
        stats.record_error("load", "bad-request")
        snap = stats.snapshot()
        assert snap["service"]["requests"] == 3
        assert snap["service"]["errors"] == 2
        assert snap["requests"]["load"] == {
            "count": 3,
            "errors": {"bad-request": 2},
        }

    def test_batch_occupancy(self):
        stats = ServiceStats()
        stats.record_batch(jobs=1, lanes=20)
        stats.record_batch(jobs=3, lanes=60)
        batch = stats.snapshot()["batch"]
        assert batch == {
            "sweeps": 2,
            "jobs": 4,
            "lanes": 80,
            "max_jobs_per_sweep": 3,
            "mean_jobs_per_sweep": 2.0,
        }

    def test_request_count_helper(self):
        stats = ServiceStats()
        stats.record_request("ping", 0.1)
        stats.record_request("report", 0.1)
        assert stats.request_count() == 2
        assert stats.request_count("ping") == 1
        assert stats.request_count("nope") == 0

    def test_write_round_trips_as_json(self, tmp_path):
        stats = ServiceStats()
        stats.record_request("ping", 0.1)
        stats.record_cache("parsed", hit=False)
        path = tmp_path / "service-report.json"
        stats.write(str(path))
        snap = json.loads(path.read_text())
        assert snap["schema"] == SERVICE_SCHEMA_VERSION
        assert snap["requests"]["ping"]["count"] == 1
        assert snap["cache"]["parsed"]["misses"] == 1
