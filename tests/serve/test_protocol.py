"""Unit tests for the wire protocol (:mod:`repro.serve.protocol`)."""

from __future__ import annotations

import json

import pytest

from repro.serve.protocol import (
    ERROR_CODES,
    OPS,
    PROTOCOL_VERSION,
    RequestError,
    encode_response,
    error_response,
    ok_response,
    parse_binary_tests,
    parse_request_line,
    require_str,
    take_int,
)


class TestParseRequestLine:
    def test_object_round_trip(self):
        assert parse_request_line('{"op": "ping", "id": 3}') == {"op": "ping", "id": 3}

    @pytest.mark.parametrize("line", ["not json", "[1, 2]", '"string"', "42"])
    def test_non_objects_are_parse_errors(self, line):
        with pytest.raises(RequestError) as err:
            parse_request_line(line)
        assert err.value.code == "parse-error"


class TestEnvelopes:
    def test_ok_envelope_echoes_id_and_op(self):
        resp = ok_response({"op": "ping", "id": "abc"}, {"pong": True})
        assert resp == {
            "v": PROTOCOL_VERSION,
            "id": "abc",
            "op": "ping",
            "ok": True,
            "result": {"pong": True},
        }

    def test_ok_envelope_optional_fields(self):
        resp = ok_response({"op": "x"}, 1, elapsed_ms=1.23456, report={"schema": 1})
        assert resp["elapsed_ms"] == 1.235
        assert resp["report"] == {"schema": 1}
        assert resp["id"] is None  # omitted id echoes as null

    def test_error_envelope(self):
        resp = error_response({"op": "load", "id": 9}, "bad-request", "nope")
        assert resp["ok"] is False
        assert resp["id"] == 9
        assert resp["error"] == {"code": "bad-request", "message": "nope"}

    def test_error_envelope_without_request(self):
        resp = error_response(None, "parse-error", "bad line")
        assert resp["id"] is None and resp["op"] is None

    def test_unknown_code_rejected_everywhere(self):
        with pytest.raises(ValueError):
            error_response(None, "no-such-code", "x")
        with pytest.raises(ValueError):
            RequestError("no-such-code", "x")

    def test_encode_is_one_json_line(self):
        raw = encode_response(ok_response({"op": "ping"}, {}))
        assert raw.endswith(b"\n") and raw.count(b"\n") == 1
        assert json.loads(raw)["ok"] is True

    def test_vocabulary_is_frozen(self):
        # Growing either tuple is fine; the documented members must stay.
        assert "check-validity" in OPS and "shutdown" in OPS
        assert "budget-exceeded" in ERROR_CODES and "shutting-down" in ERROR_CODES


class TestFieldHelpers:
    def test_require_str(self):
        assert require_str({"name": "x"}, "name") == "x"
        for bad in ({}, {"name": ""}, {"name": 3}):
            with pytest.raises(RequestError) as err:
                require_str(bad, "name")
            assert err.value.code == "bad-request"

    def test_take_int_defaults_and_bounds(self):
        assert take_int({}, "n", 5) == 5
        assert take_int({"n": 2}, "n", 5, minimum=1) == 2
        for bad in ({"n": True}, {"n": "3"}, {"n": -1}):
            with pytest.raises(RequestError):
                take_int(bad, "n", 5)

    def test_parse_binary_tests(self):
        assert parse_binary_tests(["01,10"], 2) == (
            ((False, True), (True, False)),
        )

    @pytest.mark.parametrize(
        "tests", [None, [], "01", [""], ["012"], ["0"], ["01,1"]]
    )
    def test_parse_binary_tests_rejects_malformed(self, tests):
        with pytest.raises(RequestError) as err:
            parse_binary_tests(tests, 2)
        assert err.value.code == "bad-request"
