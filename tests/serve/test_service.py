"""End-to-end functional tests for the verification service.

Every test talks to a real server over a real socket through the
reference client.  The headline contracts: verdicts are **bit-for-bit
identical** to the direct library path the one-shot CLI takes (even
when concurrent requests batch), budget exhaustion is a structured
envelope rather than a crash, and shutdown drains in-flight work.
"""

from __future__ import annotations

import json
import socket
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.bench.generators import random_sequential_circuit
from repro.bench.paper_circuits import figure1_design_c, figure1_design_d
from repro.netlist.io_bench import write_bench
from repro.retime.apply import lag_to_moves
from repro.retime.graph import build_retiming_graph
from repro.retime.leiserson_saxe import min_period_retiming
from repro.retime.validity import first_cls_difference, random_ternary_sequences
from repro.serve import ServeClient, start_background_server
from repro.sim.fault import FaultSimulator
from repro.serve.protocol import parse_binary_tests
from repro.stg.explicit import extract_stg
from repro.stg.replaceability import find_violation

TESTS = ["010,110,001,111", "101,011,000,110"]


def _pair(seed=11):
    """A random circuit and its min-period retiming, as .bench text."""
    original = random_sequential_circuit(
        seed, num_inputs=3, num_gates=24, num_latches=5, name="orig"
    )
    retimed = lag_to_moves(
        original, min_period_retiming(build_retiming_graph(original)).lag
    ).current
    return original, retimed


@pytest.fixture()
def server(request):
    kwargs = getattr(request, "param", {})
    server, address, thread = start_background_server(**kwargs)
    yield server, address
    if thread.is_alive():
        try:
            with ServeClient(address) as client:
                client.request({"op": "shutdown"})
        except (ConnectionError, OSError):
            pass
        thread.join(timeout=30)
    assert not thread.is_alive()


@pytest.fixture()
def client(server):
    _, address = server
    with ServeClient(address) as client:
        yield client


def _load_pair(client, original, retimed):
    client.result({"op": "load", "name": "orig", "bench": write_bench(original)})
    client.result({"op": "load", "name": "ret", "bench": write_bench(retimed)})


class TestLifecycle:
    def test_ping_reports_configuration(self, client):
        pong = client.result({"op": "ping"})
        assert pong["pong"] is True and pong["protocol"] == 1
        assert pong["circuits"] == []

    def test_responses_carry_the_envelope(self, client):
        resp = client.request({"op": "ping", "id": ["any", "json", 1]})
        assert resp["v"] == 1
        assert resp["id"] == ["any", "json", 1]
        assert resp["ok"] is True and resp["elapsed_ms"] >= 0

    def test_shutdown_closes_the_server(self, server):
        _, address = server
        with ServeClient(address) as client:
            resp = client.request({"op": "shutdown"})
            assert resp["ok"] and resp["result"]["draining"] >= 1
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            try:
                socket.create_connection(tuple(address), timeout=2).close()
            except OSError:
                break  # the listener is gone
            time.sleep(0.02)
        else:
            pytest.fail("server still accepting connections after shutdown")

    def test_shutdown_drains_inflight_requests(self, client):
        _load_pair(client, *_pair())
        # Pipelined on one connection: the sweep is in flight when the
        # shutdown lands; draining must still answer it.
        check, down = client.request_many(
            [
                {"op": "check-validity", "original": "orig", "retimed": "ret"},
                {"op": "shutdown"},
            ]
        )
        assert down["ok"]
        assert check["ok"] and check["result"]["equivalent"] is True

    def test_service_report_written_on_shutdown(self, tmp_path):
        path = tmp_path / "service-report.json"
        server, address, thread = start_background_server(
            service_report_path=str(path)
        )
        with ServeClient(address) as client:
            client.result({"op": "ping"})
            client.request({"op": "shutdown"})
        thread.join(timeout=30)
        snap = json.loads(path.read_text())
        assert snap["schema"] == 1
        assert snap["requests"]["ping"]["count"] == 1


class TestRegistry:
    def test_load_reports_shape_and_residency(self, client):
        original, _ = _pair()
        text = write_bench(original)
        first = client.result({"op": "load", "name": "a", "bench": text})
        assert first["cached"] is False
        assert first["inputs"] == 3 and first["latches"] == 5
        # Same text under another name: a parse-cache hit, one object.
        client.result({"op": "load", "name": "b", "bench": text})
        again = client.result({"op": "load", "name": "a", "bench": text})
        assert again["cached"] is True
        report = client.result({"op": "report"})
        assert report["cache"]["parsed"] == {"hits": 2, "misses": 1}

    def test_inline_circuit_references(self, client):
        original, retimed = _pair()
        result = client.result(
            {
                "op": "check-validity",
                "original": {"bench": write_bench(original)},
                "retimed": {"bench": write_bench(retimed)},
            }
        )
        assert result["equivalent"] is True

    def test_unknown_circuit_envelope(self, client):
        resp = client.request(
            {"op": "check-validity", "original": "ghost", "retimed": "ghost"}
        )
        assert resp["ok"] is False
        assert resp["error"]["code"] == "unknown-circuit"

    def test_unparseable_circuit_is_bad_request(self, client):
        resp = client.request(
            {"op": "load", "name": "junk", "bench": "THIS = ISNT(BENCH"}
        )
        assert resp["error"]["code"] == "bad-request"


class TestVerdictsMatchDirectPath:
    """The served answer must equal the one-shot library answer, bit for bit."""

    def test_check_validity_equivalent_pair(self, client):
        original, retimed = _pair()
        _load_pair(client, original, retimed)
        result = client.result(
            {"op": "check-validity", "original": "orig", "retimed": "ret"}
        )
        sequences = random_ternary_sequences(3, count=20, length=12, seed=0)
        assert first_cls_difference(original, retimed, sequences) is None
        assert result["equivalent"] is True
        assert result["first_difference"] is None

    def test_check_validity_locates_the_same_first_difference(self, client):
        # Figure 1's D against a copy with its output AND inverted to
        # NAND: definitely CLS-different, and the served (sequence,
        # cycle) must be exactly what the serial scan reports.
        d = figure1_design_d()
        broken = figure1_design_d()
        cell = broken.cell("and2")
        from repro.logic.functions import make_gate
        from repro.netlist.circuit import Cell

        broken.replace_cell(
            cell.name,
            Cell(cell.name, make_gate("NAND", 2), cell.inputs, cell.outputs),
        )
        client.result({"op": "load", "name": "d", "bench": write_bench(d)})
        client.result({"op": "load", "name": "x", "bench": write_bench(broken)})
        result = client.result(
            {"op": "check-validity", "original": "d", "retimed": "x"}
        )
        sequences = random_ternary_sequences(1, count=20, length=12, seed=0)
        expected = first_cls_difference(d, broken, sequences)
        assert expected is not None
        assert result["equivalent"] is False
        assert result["first_difference"] == {
            "sequence": expected[0],
            "cycle": expected[1],
        }

    def test_exhaustive_and_samples_parameters(self, client):
        _load_pair(client, *_pair())
        result = client.result(
            {
                "op": "check-validity",
                "original": "orig",
                "retimed": "ret",
                "samples": 5,
                "length": 7,
                "exhaustive": True,
            }
        )
        assert result["samples"] == 5 and result["length"] == 7
        assert result["exhaustive"] == {"equivalent": True, "witness": None}

    def test_safe_replacement_figure1_witness(self, client):
        d, c = figure1_design_d(), figure1_design_c()
        client.result({"op": "load", "name": "d", "bench": write_bench(d)})
        client.result({"op": "load", "name": "c", "bench": write_bench(c)})
        result = client.result(
            {"op": "safe-replacement", "candidate": "c", "original": "d"}
        )
        violation = find_violation(extract_stg(c), extract_stg(d))
        assert violation is not None
        assert result["safe"] is False
        assert result["witness"] == {
            "c_state": violation.c_state,
            "inputs": list(violation.input_symbols),
            "outputs": list(violation.c_outputs),
            "length": len(violation.input_symbols),
        }

    def test_fault_grade_matches_direct_simulator(self, client):
        original, _ = _pair()
        text = write_bench(original)
        client.result({"op": "load", "name": "orig", "bench": text})
        result = client.result(
            {"op": "fault-grade", "circuit": "orig", "tests": TESTS}
        )
        # The direct path a CLI run takes on the same .bench file (the
        # write/parse round trip renames internal nets, so fault names
        # must come from the parsed text, not the generator's object).
        from repro.netlist.io_bench import parse_bench
        from repro.netlist.transform import normalize_fanout

        reloaded = normalize_fanout(parse_bench(text, name="orig"))
        verdicts = FaultSimulator(reloaded, semantics="cls").run_test_set(
            parse_binary_tests(TESTS, 3)
        )
        assert result["faults"] == len(verdicts)
        assert result["detected"] == sum(
            1 for v in verdicts.values() if v is not None
        )
        assert result["verdicts"] == [
            {"fault": str(fault), "first_test": index}
            for fault, index in verdicts.items()
        ]

    def test_mismatched_interfaces_are_bad_requests(self, client):
        original, _ = _pair()
        client.result({"op": "load", "name": "orig", "bench": write_bench(original)})
        client.result(
            {"op": "load", "name": "tiny", "bench": write_bench(figure1_design_d())}
        )
        resp = client.request(
            {"op": "check-validity", "original": "orig", "retimed": "tiny"}
        )
        assert resp["error"]["code"] == "bad-request"


class TestConcurrencyAndBatching:
    def test_concurrent_mixed_requests_match_direct_path(self, server):
        """Nine concurrent requests of three types over nine connections,
        every verdict identical to the direct library path."""
        _, address = server
        original, retimed = _pair()
        with ServeClient(address) as setup:
            _load_pair(setup, original, retimed)

        sequences = random_ternary_sequences(3, count=20, length=12, seed=0)
        verdicts = FaultSimulator(original, semantics="cls").run_test_set(
            parse_binary_tests(TESTS, 3)
        )
        expected = {
            "check-validity": {
                "equivalent": first_cls_difference(original, retimed, sequences)
                is None,
                "first_difference": None,
            },
            "safe-replacement": {
                "safe": find_violation(extract_stg(retimed), extract_stg(original))
                is None
            },
            "fault-grade": {
                "faults": len(verdicts),
                "detected": sum(1 for v in verdicts.values() if v is not None),
            },
        }
        requests = [
            {"op": "check-validity", "original": "orig", "retimed": "ret"},
            {"op": "safe-replacement", "candidate": "ret", "original": "orig"},
            {"op": "fault-grade", "circuit": "orig", "tests": TESTS},
        ] * 3

        def fire(request):
            with ServeClient(address) as client:
                return client.request(request)

        with ThreadPoolExecutor(max_workers=len(requests)) as pool:
            responses = list(pool.map(fire, requests))
        assert len(responses) >= 8
        for request, response in zip(requests, responses):
            assert response["ok"], response
            result = response["result"]
            want = expected[request["op"]]
            assert {key: result[key] for key in want} == want

    @pytest.mark.parametrize(
        "server", [{"batch_window_s": 0.05}], indirect=True
    )
    def test_pipelined_sweeps_batch_and_stay_deterministic(self, server):
        _, address = server
        original, retimed = _pair()
        with ServeClient(address) as client:
            _load_pair(client, original, retimed)
            responses = client.request_many(
                [
                    {"op": "check-validity", "original": "orig", "retimed": "ret",
                     "seed": seed}
                    for seed in range(4)
                ]
            )
            report = client.result({"op": "report"})
        for seed, response in enumerate(responses):
            assert response["ok"]
            sequences = random_ternary_sequences(3, count=20, length=12, seed=seed)
            expected = first_cls_difference(original, retimed, sequences)
            assert response["result"]["equivalent"] is (expected is None)
        # The four concurrent requests merged their compatible sweeps.
        assert report["batch"]["max_jobs_per_sweep"] > 1
        assert report["batch"]["jobs"] > report["batch"]["sweeps"]


class TestBudgets:
    def test_budget_exceeded_is_an_envelope_not_a_crash(self, client):
        _load_pair(client, *_pair())
        resp = client.request(
            {
                "op": "safe-replacement",
                "candidate": "ret",
                "original": "orig",
                "engine": "explicit",
                "budget": 1,
            }
        )
        assert resp["ok"] is False
        assert resp["error"]["code"] == "budget-exceeded"
        assert "undecided" in resp["error"]["message"]
        # The server survives and still answers.
        assert client.result({"op": "ping"})["pong"] is True

    def test_server_default_budget_applies(self):
        server, address, thread = start_background_server(budget=1)
        try:
            with ServeClient(address) as client:
                _load_pair(client, *_pair())
                resp = client.request(
                    {
                        "op": "safe-replacement",
                        "candidate": "ret",
                        "original": "orig",
                        "engine": "explicit",
                    }
                )
                assert resp["error"]["code"] == "budget-exceeded"
                # A per-request budget overrides the server default.
                result = client.result(
                    {
                        "op": "safe-replacement",
                        "candidate": "ret",
                        "original": "orig",
                        "engine": "explicit",
                        "budget": 500_000,
                    }
                )
                assert result["safe"] in (True, False)
                client.request({"op": "shutdown"})
        finally:
            thread.join(timeout=30)

    def test_sat_engine_blown_budget_is_an_envelope(self, client):
        """A SAT conflict budget that runs out mid-search must surface
        as the structured budget-exceeded envelope, never a crash."""
        _load_pair(client, *_pair())
        resp = client.request(
            {
                "op": "safe-replacement",
                "candidate": "ret",
                "original": "orig",
                "engine": "sat",
                "budget": 1,
            }
        )
        assert resp["ok"] is False
        assert resp["error"]["code"] == "budget-exceeded"
        assert "undecided" in resp["error"]["message"]
        assert client.result({"op": "ping"})["pong"] is True

    def test_sat_engine_blown_budget_on_check_validity(self, client):
        _load_pair(client, *_pair())
        resp = client.request(
            {
                "op": "check-validity",
                "original": "orig",
                "retimed": "ret",
                "exhaustive": True,
                "engine": "sat",
                "budget": 1,
            }
        )
        assert resp["ok"] is False
        assert resp["error"]["code"] == "budget-exceeded"
        assert "undecided" in resp["error"]["message"]
        # The server survives; a non-exhaustive check still works.
        result = client.result(
            {"op": "check-validity", "original": "orig", "retimed": "ret"}
        )
        assert result["equivalent"] is True

    def test_sat_engine_decides_within_budget(self, client):
        """The paper's Figure 1 pair is small enough for the SAT engine
        to finish: a definitive verdict, not an envelope."""
        c, d = figure1_design_c(), figure1_design_d()
        client.result({"op": "load", "name": "c", "bench": write_bench(c)})
        client.result({"op": "load", "name": "d", "bench": write_bench(d)})
        result = client.result(
            {
                "op": "safe-replacement",
                "candidate": "c",
                "original": "d",
                "engine": "sat",
            }
        )
        assert result["safe"] is False and result["engine"] == "sat"
        assert result["witness"]["c_state"] == 2
        assert result["witness"]["length"] == 2
        exhaustive = client.result(
            {
                "op": "check-validity",
                "original": "d",
                "retimed": "c",
                "exhaustive": True,
                "engine": "sat",
            }
        )["exhaustive"]
        assert exhaustive["engine"] == "sat"
        assert exhaustive["equivalent"] is True and exhaustive["witness"] is None

    def test_bad_budget_rejected(self, client):
        _load_pair(client, *_pair())
        resp = client.request(
            {
                "op": "safe-replacement",
                "candidate": "ret",
                "original": "orig",
                "budget": 0,
            }
        )
        assert resp["error"]["code"] == "bad-request"


class TestProtocolErrors:
    def test_parse_error_keeps_the_connection(self, client):
        client._file.write(b"this is not json\n")
        client._file.flush()
        resp = client.recv()
        assert resp["error"]["code"] == "parse-error"
        assert client.result({"op": "ping"})["pong"] is True

    def test_unknown_op(self, client):
        resp = client.request({"op": "transmogrify"})
        assert resp["error"]["code"] == "unknown-op"

    def test_missing_fields(self, client):
        assert client.request({"op": "load"})["error"]["code"] == "bad-request"
        assert (
            client.request({"op": "fault-grade", "circuit": "x"})["error"]["code"]
            == "unknown-circuit"
        )


class TestTracing:
    def test_traced_request_attaches_a_run_report(self, client):
        _load_pair(client, *_pair())
        plain = client.result(
            {"op": "check-validity", "original": "orig", "retimed": "ret"}
        )
        resp = client.request(
            {
                "op": "check-validity",
                "original": "orig",
                "retimed": "ret",
                "trace": True,
            }
        )
        assert resp["ok"]
        assert resp["result"] == plain  # tracing never changes the verdict
        report = resp["report"]
        assert report["schema"] >= 1
        assert report["meta"]["label"] == "serve.check-validity"
        assert report["spans"], "traced request recorded no spans"


class TestReorder:
    """Dynamic BDD reordering through the service: a performance knob,
    never a semantic one -- envelopes must be bit-identical across
    modes, with the reorder activity visible only in the report."""

    def test_ping_exposes_reorder_default(self, client):
        pong = client.result({"op": "ping"})
        assert pong["reorder"] in ("off", "auto", "manual")

    def test_bad_reorder_mode_rejected(self, client):
        _load_pair(client, *_pair())
        resp = client.request(
            {
                "op": "safe-replacement",
                "candidate": "ret",
                "original": "orig",
                "engine": "symbolic",
                "reorder": "sometimes",
            }
        )
        assert resp["error"]["code"] == "bad-request"
        assert "reorder" in resp["error"]["message"]

    def test_envelopes_bit_identical_across_reorder_modes(self, client):
        """The whole response envelope -- verdict, engine tag, witness
        fields included -- is byte-for-byte identical under
        ``reorder=off``, ``auto`` and ``manual``, for both a safe pair
        and one with a violation (the paper's Figure 1 pair)."""
        original, retimed = _pair()
        _load_pair(client, original, retimed)
        c, d = figure1_design_c(), figure1_design_d()
        client.result({"op": "load", "name": "c", "bench": write_bench(c)})
        client.result({"op": "load", "name": "d", "bench": write_bench(d)})
        for candidate, orig in (("ret", "orig"), ("c", "d")):
            envelopes = {}
            for mode in ("off", "auto", "manual"):
                resp = client.request(
                    {
                        "op": "safe-replacement",
                        "candidate": candidate,
                        "original": orig,
                        "engine": "symbolic",
                        "reorder": mode,
                    }
                )
                assert resp["ok"], resp
                # Timing and the client's running request id are the
                # only legitimately varying fields.
                del resp["elapsed_ms"], resp["id"]
                envelopes[mode] = json.dumps(resp, sort_keys=True)
            assert envelopes["auto"] == envelopes["off"]
            assert envelopes["manual"] == envelopes["off"]

    def test_report_accumulates_reorder_counters(self, client):
        _load_pair(client, *_pair())
        for mode in ("off", "auto", "auto", "manual"):
            client.result(
                {
                    "op": "safe-replacement",
                    "candidate": "ret",
                    "original": "orig",
                    "engine": "symbolic",
                    "reorder": mode,
                }
            )
        reorder = client.result({"op": "report"})["reorder"]
        assert reorder["requests"] == {"off": 1, "auto": 2, "manual": 1}
        # Manual mode sifts up front on every request, so the run and
        # swap counters must have moved; nothing ever goes negative.
        assert reorder["runs"] >= 1
        assert reorder["swaps"] >= 1
        for key in ("runs", "auto_triggers", "swaps", "nodes_reclaimed"):
            assert reorder[key] >= 0
