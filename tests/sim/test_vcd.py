"""Tests for the VCD waveform export."""

from __future__ import annotations

from repro.bench.paper_circuits import TABLE1_INPUT_SEQUENCE, figure1_design_d
from repro.logic.ternary import ONE, ZERO
from repro.sim.binary import BinarySimulator
from repro.sim.ternary_sim import TernarySimulator
from repro.sim.vcd import trace_to_vcd


def binary_trace():
    d = figure1_design_d()
    return d, BinarySimulator(d).run((False,), TABLE1_INPUT_SEQUENCE)


def test_vcd_header_and_signals():
    d, trace = binary_trace()
    vcd = trace_to_vcd(d, trace)
    assert "$timescale 1ns $end" in vcd
    assert "$var wire 1" in vcd
    assert "in.I" in vcd
    assert "state.L" in vcd
    assert "out.O_0" in vcd
    assert "$enddefinitions $end" in vcd


def test_vcd_timestamps_cover_all_cycles():
    d, trace = binary_trace()
    vcd = trace_to_vcd(d, trace)
    for cycle in range(len(trace) + 1):
        assert "#%d" % cycle in vcd


def test_vcd_only_changes_after_dumpvars():
    d, trace = binary_trace()
    vcd = trace_to_vcd(d, trace)
    lines = vcd.splitlines()
    # Between #1 and #2 the input I changes 0->1 once; later 1->1 holds
    # and must NOT be re-emitted.
    start2 = lines.index("#2")
    end3 = lines.index("#3")
    between = lines[start2 + 1 : end3]
    # cycle 2: input stays 1 -> no input change line expected.
    input_id = None
    for line in lines:
        if line.startswith("$var") and "in.I" in line:
            input_id = line.split()[3]
    assert input_id is not None
    assert not any(line.endswith(input_id) and len(line) <= 3 for line in between)


def test_vcd_renders_x_values():
    d = figure1_design_d()
    trace = TernarySimulator(d).run_from_unknown([(ZERO,), (ONE,)])
    vcd = trace_to_vcd(d, trace)
    assert "x" in vcd.splitlines()[-10:] or any(
        line.startswith("x") for line in vcd.splitlines()
    )


def test_vcd_custom_options():
    d, trace = binary_trace()
    vcd = trace_to_vcd(d, trace, timescale="10ps", module="dut")
    assert "$timescale 10ps $end" in vcd
    assert "$scope module dut $end" in vcd
