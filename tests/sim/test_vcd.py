"""Tests for the VCD waveform export and its round-trip parser."""

from __future__ import annotations

import pytest

from repro.bench.generators import random_sequential_circuit
from repro.bench.paper_circuits import TABLE1_INPUT_SEQUENCE, figure1_design_d
from repro.logic.ternary import ONE, X, ZERO, to_ternary
from repro.sim.binary import BinarySimulator
from repro.sim.ternary_sim import TernarySimulator, all_x_state
from repro.sim.vcd import parse_vcd, trace_to_vcd


def binary_trace():
    d = figure1_design_d()
    return d, BinarySimulator(d).run((False,), TABLE1_INPUT_SEQUENCE)


def test_vcd_header_and_signals():
    d, trace = binary_trace()
    vcd = trace_to_vcd(d, trace)
    assert "$timescale 1ns $end" in vcd
    assert "$var wire 1" in vcd
    assert "in.I" in vcd
    assert "state.L" in vcd
    assert "out.O_0" in vcd
    assert "$enddefinitions $end" in vcd


def test_vcd_timestamps_cover_all_cycles():
    d, trace = binary_trace()
    vcd = trace_to_vcd(d, trace)
    for cycle in range(len(trace) + 1):
        assert "#%d" % cycle in vcd


def test_vcd_only_changes_after_dumpvars():
    d, trace = binary_trace()
    vcd = trace_to_vcd(d, trace)
    lines = vcd.splitlines()
    # Between #1 and #2 the input I changes 0->1 once; later 1->1 holds
    # and must NOT be re-emitted.
    start2 = lines.index("#2")
    end3 = lines.index("#3")
    between = lines[start2 + 1 : end3]
    # cycle 2: input stays 1 -> no input change line expected.
    input_id = None
    for line in lines:
        if line.startswith("$var") and "in.I" in line:
            input_id = line.split()[3]
    assert input_id is not None
    assert not any(line.endswith(input_id) and len(line) <= 3 for line in between)


def test_vcd_renders_x_values():
    d = figure1_design_d()
    trace = TernarySimulator(d).run_from_unknown([(ZERO,), (ONE,)])
    vcd = trace_to_vcd(d, trace)
    assert "x" in vcd.splitlines()[-10:] or any(
        line.startswith("x") for line in vcd.splitlines()
    )


def test_vcd_custom_options():
    d, trace = binary_trace()
    vcd = trace_to_vcd(d, trace, timescale="10ps", module="dut")
    assert "$timescale 10ps $end" in vcd
    assert "$scope module dut $end" in vcd


class TestRoundTrip:
    """``parse_vcd(trace_to_vcd(...))`` recovers every waveform."""

    def _assert_matches(self, circuit, trace, waves):
        assert waves.num_cycles == len(trace)
        for pin, net in enumerate(circuit.inputs):
            expected = tuple(
                to_ternary(trace.inputs[t][pin]) for t in range(len(trace))
            )
            assert waves.wave("in.%s" % net) == expected
        for pin, net in enumerate(circuit.outputs):
            expected = tuple(
                to_ternary(trace.outputs[t][pin]) for t in range(len(trace))
            )
            assert waves.wave("out.%s_%d" % (net, pin)) == expected
        for pos, latch_name in enumerate(circuit.latch_names):
            expected = tuple(
                to_ternary(trace.states[t][pos]) for t in range(len(trace))
            )
            assert waves.wave("state.%s" % latch_name) == expected

    def test_binary_trace_round_trips(self):
        d, trace = binary_trace()
        waves = parse_vcd(trace_to_vcd(d, trace))
        self._assert_matches(d, trace, waves)

    def test_ternary_trace_round_trips_with_x(self):
        d = figure1_design_d()
        trace = TernarySimulator(d).run(all_x_state(d), [(ZERO,), (ONE,), (X,)])
        waves = parse_vcd(trace_to_vcd(d, trace))
        self._assert_matches(d, trace, waves)
        assert X in waves.wave("state.L")

    def test_random_circuits_round_trip(self):
        for seed in range(5):
            circuit = random_sequential_circuit(
                seed, num_inputs=2, num_gates=9, num_latches=3, num_outputs=2
            )
            state = tuple(bool((seed >> i) & 1) for i in range(3))
            seq = [
                tuple(bool((seed * 3 + t + i) % 2) for i in range(2))
                for t in range(6)
            ]
            trace = BinarySimulator(circuit).run(state, seq)
            waves = parse_vcd(trace_to_vcd(circuit, trace))
            self._assert_matches(circuit, trace, waves)

    def test_parser_preserves_header_fields(self):
        d, trace = binary_trace()
        waves = parse_vcd(trace_to_vcd(d, trace, timescale="10ps", module="dut"))
        assert waves.timescale == "10ps"
        assert waves.module == "dut"
        assert waves.signals[0] == "in.I"

    def test_parser_rejects_vector_changes(self):
        with pytest.raises(ValueError, match="vector"):
            parse_vcd(
                "$var wire 1 a sig $end\n$enddefinitions $end\n#0\nb101 a\n#1\n"
            )

    def test_parser_rejects_undeclared_ids(self):
        with pytest.raises(ValueError, match="undeclared"):
            parse_vcd("$enddefinitions $end\n#0\n1zz\n#1\n")
