"""Tests for stuck-at faults and sequential test evaluation."""

from __future__ import annotations

import pytest

from repro.bench.paper_circuits import (
    FIGURE3_TEST_SEQUENCE,
    figure3_design_c,
    figure3_design_d,
    figure3_fault,
)
from repro.sim.fault import (
    FaultSimulator,
    StuckAtFault,
    detects_cls,
    detects_exact,
    detection_time,
    enumerate_faults,
    faulty_overrides,
)


def test_fault_string_and_overrides():
    f = StuckAtFault("n1", True)
    assert str(f) == "n1/s-a-1"
    assert faulty_overrides(f) == {"n1": True}


def test_enumerate_faults_counts():
    d = figure3_design_d()
    faults = enumerate_faults(d)
    assert len(faults) == 2 * len(d.nets())
    subset = enumerate_faults(d, nets=("q2b",))
    assert subset == (StuckAtFault("q2b", False), StuckAtFault("q2b", True))


def test_figure3_test_works_on_original_design():
    """Section 2.2: test 0·1 detects the stuck-at-1 fault in D --
    fault-free outputs 0·0 from all power-up states, faulty 0·1."""
    d = figure3_design_d()
    verdict = detects_exact(d, figure3_fault(), FIGURE3_TEST_SEQUENCE)
    assert verdict.detected
    assert verdict.time_step == 1
    assert verdict.good_value is False


def test_figure3_test_lost_after_retiming():
    """Section 2.2's punchline: the same test no longer detects the same
    fault in the retimed C (fault-free C may output 0·1 itself)."""
    c = figure3_design_c()
    verdict = detects_exact(c, figure3_fault(), FIGURE3_TEST_SEQUENCE)
    assert not verdict.detected


def test_prefixed_tests_recover_detection_in_c():
    """Theorem 4.6's illustration: 0·0·1 and 1·0·1 both test the fault
    in C, distinguishing on the 3rd clock cycle."""
    c = figure3_design_c()
    for warmup in (False, True):
        test = ((warmup,),) + FIGURE3_TEST_SEQUENCE
        verdict = detects_exact(c, figure3_fault(), test)
        assert verdict.detected
        assert verdict.time_step == 2  # the 3rd cycle, 0-based


def test_detection_time_api():
    d = figure3_design_d()
    assert detection_time(d, figure3_fault(), FIGURE3_TEST_SEQUENCE) == 1
    c = figure3_design_c()
    assert detection_time(c, figure3_fault(), FIGURE3_TEST_SEQUENCE) is None
    with pytest.raises(ValueError):
        detection_time(d, figure3_fault(), FIGURE3_TEST_SEQUENCE, semantics="bogus")


def test_cls_detection_implies_exact_detection():
    """CLS-based detection is sound: whatever the CLS can distinguish,
    the exhaustive sweep distinguishes too."""
    d = figure3_design_d()
    for fault in enumerate_faults(d):
        for test in ([(False,), (True,)], [(True,), (True,), (False,)]):
            if detects_cls(d, fault, test).detected:
                assert detects_exact(d, fault, test).detected, (fault, test)


def test_fault_simulator_with_dropping():
    d = figure3_design_d()
    tests = [FIGURE3_TEST_SEQUENCE, ((False,), (True,), (True,))]
    sim = FaultSimulator(d, semantics="exact")
    verdicts = sim.run_test_set(tests, faults=[figure3_fault(), StuckAtFault("O", False)])
    assert verdicts[figure3_fault()] == 0  # first test catches it
    # O stuck-at-0: output always 0; test 0·1 gives good 0·0 == faulty, so
    # the first test misses it, but 0·1·1 drives the good output to a
    # definite 1 on the 3rd cycle and catches it.
    assert verdicts[StuckAtFault("O", False)] == 1


def test_fault_simulator_coverage():
    d = figure3_design_d()
    sim = FaultSimulator(d)
    tests = [FIGURE3_TEST_SEQUENCE]
    cov = sim.coverage(tests, faults=[figure3_fault()])
    assert cov == 1.0
    cov_all = sim.coverage(tests)
    assert 0.0 < cov_all < 1.0  # one short test cannot catch everything


def test_fault_simulator_rejects_bad_semantics():
    with pytest.raises(ValueError):
        FaultSimulator(figure3_design_d(), semantics="quantum")


def test_undetectable_fault_reports_none():
    d = figure3_design_d()
    sim = FaultSimulator(d)
    # A fault on the *output* net stuck at the value the good circuit
    # produces at every observed step of this trivial test.
    verdicts = sim.run_test_set([((False,),)], faults=[StuckAtFault("O", False)])
    assert verdicts[StuckAtFault("O", False)] is None
