"""Property tests: the compiled core agrees with ``propagate`` exactly.

:func:`repro.sim.core.propagate` is the reference interpreter; the
compiled flat program in :mod:`repro.sim.compiled` must be
observationally identical in all three backends:

* scalar binary (``step_binary``),
* scalar conservative ternary / CLS (``step_ternary``),
* batched lane masks (``step_binary_masks`` / ``step_ternary_masks``).

Each property drives randomly generated sequential circuits with random
states, inputs and stuck-at override maps and compares outputs and
next-state bit-for-bit, plus a spot-check of CLS X-monotonicity on the
compiled ternary backend.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.generators import random_sequential_circuit
from repro.logic.ternary import ONE, T, X, ZERO
from repro.sim.compiled import (
    column_to_mask,
    compile_circuit,
    mask_to_column,
)
from repro.sim.core import propagate

TERNARY = (ZERO, ONE, X)


def build(seed, num_inputs, num_gates, num_latches):
    return random_sequential_circuit(
        seed,
        num_inputs=num_inputs,
        num_gates=num_gates,
        num_latches=num_latches,
    )


circuits = st.builds(
    build,
    seed=st.integers(0, 40),
    num_inputs=st.integers(1, 3),
    num_gates=st.integers(2, 12),
    num_latches=st.integers(0, 4),
)


def reference_step(circuit, state, inputs, *, ternary, overrides=None):
    """One cycle through ``propagate``: ``(outputs, next_state)``."""
    values = propagate(
        circuit, inputs, state, ternary=ternary, overrides=overrides
    )
    return (
        tuple(values[net] for net in circuit.outputs),
        tuple(values[latch.data_in] for latch in circuit.latches),
    )


def draw_overrides(data, circuit, domain):
    """An optional stuck-at map over a few of the circuit's nets."""
    nets = sorted(circuit.nets())
    picked = data.draw(
        st.lists(st.sampled_from(nets), max_size=3, unique=True),
        label="override_nets",
    )
    if not picked:
        return None
    return {
        net: data.draw(domain, label="forced_%s" % net) for net in picked
    }


@settings(max_examples=60, deadline=None)
@given(circuit=circuits, data=st.data())
def test_scalar_binary_matches_propagate(circuit, data):
    state = tuple(
        data.draw(st.booleans()) for _ in range(circuit.num_latches)
    )
    inputs = tuple(data.draw(st.booleans()) for _ in circuit.inputs)
    overrides = draw_overrides(data, circuit, st.booleans())
    expected = reference_step(
        circuit, state, inputs, ternary=False, overrides=overrides
    )
    got = compile_circuit(circuit).step_binary(
        state, inputs, overrides=overrides
    )
    assert got == expected


@settings(max_examples=60, deadline=None)
@given(circuit=circuits, data=st.data())
def test_scalar_ternary_matches_propagate(circuit, data):
    tern = st.sampled_from(TERNARY)
    state = tuple(data.draw(tern) for _ in range(circuit.num_latches))
    inputs = tuple(data.draw(tern) for _ in circuit.inputs)
    overrides = draw_overrides(data, circuit, tern)
    expected = reference_step(
        circuit, state, inputs, ternary=True, overrides=overrides
    )
    got = compile_circuit(circuit).step_ternary(
        state, inputs, overrides=overrides
    )
    assert got == expected


@settings(max_examples=25, deadline=None)
@given(circuit=circuits, data=st.data())
def test_batched_binary_masks_match_per_lane_propagate(circuit, data):
    lanes = data.draw(st.integers(1, 7), label="lanes")
    states = [
        tuple(data.draw(st.booleans()) for _ in range(circuit.num_latches))
        for _ in range(lanes)
    ]
    inputs = [
        tuple(data.draw(st.booleans()) for _ in circuit.inputs)
        for _ in range(lanes)
    ]
    compiled = compile_circuit(circuit)
    all_lanes = (1 << lanes) - 1
    state_masks = [
        column_to_mask([row[j] for row in states])
        for j in range(circuit.num_latches)
    ]
    input_masks = [
        column_to_mask([row[j] for row in inputs])
        for j in range(len(circuit.inputs))
    ]
    out_masks, next_masks = compiled.step_binary_masks(
        state_masks, input_masks, all_lanes
    )
    for lane in range(lanes):
        expected = reference_step(
            circuit, states[lane], inputs[lane], ternary=False
        )
        got_outs = tuple(
            bool(mask_to_column(m, lanes)[lane]) for m in out_masks
        )
        got_next = tuple(
            bool(mask_to_column(m, lanes)[lane]) for m in next_masks
        )
        assert (got_outs, got_next) == expected


def _rails(vec):
    """Pack per-lane ternary columns into dual-rail masks."""
    can0 = can1 = 0
    for lane, value in enumerate(vec):
        if value is not ONE:
            can0 |= 1 << lane
        if value is not ZERO:
            can1 |= 1 << lane
    return can0, can1


@settings(max_examples=25, deadline=None)
@given(circuit=circuits, data=st.data())
def test_batched_ternary_rails_match_per_lane_propagate(circuit, data):
    tern = st.sampled_from(TERNARY)
    lanes = data.draw(st.integers(1, 7), label="lanes")
    states = [
        tuple(data.draw(tern) for _ in range(circuit.num_latches))
        for _ in range(lanes)
    ]
    inputs = [
        tuple(data.draw(tern) for _ in circuit.inputs)
        for _ in range(lanes)
    ]
    compiled = compile_circuit(circuit)
    all_lanes = (1 << lanes) - 1
    state_rails = [
        _rails([row[j] for row in states])
        for j in range(circuit.num_latches)
    ]
    input_rails = [
        _rails([row[j] for row in inputs])
        for j in range(len(circuit.inputs))
    ]
    out_rails, next_rails = compiled.step_ternary_masks(
        state_rails, input_rails, all_lanes
    )

    def unpack(rails, lane):
        a, b = rails
        lo, hi = (a >> lane) & 1, (b >> lane) & 1
        return X if lo and hi else (ONE if hi else ZERO)

    for lane in range(lanes):
        expected = reference_step(
            circuit, states[lane], inputs[lane], ternary=True
        )
        got_outs = tuple(unpack(r, lane) for r in out_rails)
        got_next = tuple(unpack(r, lane) for r in next_rails)
        assert (got_outs, got_next) == expected


@settings(max_examples=40, deadline=None)
@given(circuit=circuits, data=st.data())
def test_compiled_ternary_is_x_monotone(circuit, data):
    """Replacing any definite value with X can only lose information.

    Conservative ternary evaluation is monotone in the information
    order (X below 0 and 1): blurring one input or state position to X
    must leave every output and next-state pin either unchanged or X.
    """
    tern = st.sampled_from(TERNARY)
    state = tuple(data.draw(tern) for _ in range(circuit.num_latches))
    inputs = tuple(data.draw(tern) for _ in circuit.inputs)
    positions = len(state) + len(inputs)
    if positions == 0:
        return
    pos = data.draw(st.integers(0, positions - 1), label="blur_position")
    blur_state = list(state)
    blur_inputs = list(inputs)
    if pos < len(state):
        blur_state[pos] = X
    else:
        blur_inputs[pos - len(state)] = X
    compiled = compile_circuit(circuit)
    sharp = compiled.step_ternary(state, inputs)
    blurred = compiled.step_ternary(tuple(blur_state), tuple(blur_inputs))
    for sharp_vec, blur_vec in zip(sharp, blurred):
        for a, b in zip(sharp_vec, blur_vec):
            assert b is a or b is X


def test_compiled_rejects_arity_mismatch():
    circuit = build(0, num_inputs=2, num_gates=4, num_latches=2)
    compiled = compile_circuit(circuit)
    with pytest.raises(ValueError, match="inputs"):
        compiled.step_binary((False, False), (True,))
    with pytest.raises(ValueError, match="latches"):
        compiled.step_ternary((X,), (ZERO, ONE))


def test_compile_is_cached_per_circuit():
    circuit = build(1, num_inputs=2, num_gates=4, num_latches=2)
    assert compile_circuit(circuit) is compile_circuit(circuit)
