"""Tests for the batched (numpy) binary simulator."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.generators import random_sequential_circuit
from repro.bench.iscas import load
from repro.logic.functions import CellFunction
from repro.netlist.builder import CircuitBuilder
from repro.sim.binary import BinarySimulator, all_power_up_states
from repro.sim.multi import BatchedBinarySimulator, all_states_array


def test_all_states_array_matches_scalar_enumeration():
    c = load("s27")
    arr = all_states_array(c.num_latches)
    scalar = list(all_power_up_states(c))
    assert arr.shape == (8, 3)
    for row, state in zip(arr, scalar):
        assert tuple(bool(v) for v in row) == state


def test_all_states_array_zero_latches():
    arr = all_states_array(0)
    assert arr.shape == (1, 0)
    with pytest.raises(ValueError):
        all_states_array(-1)


@settings(deadline=None, max_examples=20)
@given(seed=st.integers(0, 500), data=st.data())
def test_batched_equals_scalar_simulation(seed, data):
    """Every lane of the batched simulator must match the scalar one."""
    circuit = random_sequential_circuit(
        seed, num_inputs=2, num_gates=7, num_latches=3
    )
    length = data.draw(st.integers(1, 4))
    seq = [
        tuple(data.draw(st.booleans()) for _ in circuit.inputs) for _ in range(length)
    ]
    states = all_states_array(circuit.num_latches)
    batched = BatchedBinarySimulator(circuit)
    per_cycle, final = batched.run(states, seq)

    scalar = BinarySimulator(circuit)
    for lane, state in enumerate(all_power_up_states(circuit)):
        trace = scalar.run(state, seq)
        for t, outputs in enumerate(trace.outputs):
            assert tuple(bool(v) for v in per_cycle[t][lane]) == outputs
        assert tuple(bool(v) for v in final[lane]) == trace.final_state


def test_batched_on_iscas_matches_scalar(iscas_circuit):
    seq = [tuple((i + j) % 2 == 0 for j, _ in enumerate(iscas_circuit.inputs)) for i in range(3)]
    states = all_states_array(iscas_circuit.num_latches)
    per_cycle, _ = BatchedBinarySimulator(iscas_circuit).run(states, seq)
    scalar = BinarySimulator(iscas_circuit)
    for lane, state in enumerate(all_power_up_states(iscas_circuit)):
        outs = scalar.output_sequence(state, seq)
        for t in range(len(seq)):
            assert tuple(bool(v) for v in per_cycle[t][lane]) == outs[t]


def test_batched_overrides():
    b = CircuitBuilder()
    i = b.input("i")
    q = b.net("q")
    b.latch(b.gate("AND", i, q, out="d"), q, name="ff")
    b.output(b.gate("NOT", q, out="o"))
    c = b.build()
    sim = BatchedBinarySimulator(c, overrides={"d": True})
    states = all_states_array(1)
    outs, nxt = sim.step(states, (False,))
    assert nxt[:, 0].all()  # latch forced to load 1


def test_scalar_fallback_for_exotic_cells():
    """A cell family the vectoriser doesn't know falls back per-lane."""
    maj = CellFunction(
        "MAJ", 3, 1, lambda v: (sum(v) >= 2,)
    )
    b = CircuitBuilder()
    x, y = b.input("x"), b.input("y")
    q = b.net("q")
    (out,) = b.cell(maj, (x, y, q), name="m")
    b.latch(out, q, name="ff")
    b.output(b.gate("BUF", q))
    c = b.build()
    states = all_states_array(1)
    outs, nxt = BatchedBinarySimulator(c).step(states, (True, False))
    # MAJ(1, 0, q) = q
    assert list(nxt[:, 0]) == [False, True]


def test_shape_validation():
    c = load("s27")
    sim = BatchedBinarySimulator(c)
    with pytest.raises(ValueError, match="latches"):
        sim.step(np.zeros((4, 2), dtype=bool), (False,) * 4)
    with pytest.raises(ValueError, match="inputs"):
        sim.step(np.zeros((4, 3), dtype=bool), (False,) * 2)


def test_no_output_circuit():
    b = CircuitBuilder()
    i = b.input("i")
    b.latch(i, name="ff")
    c = b.circuit
    # The latch output is unread; keep it legal by making it a PO-free
    # circuit: batched sim should return empty output arrays.
    sim = BatchedBinarySimulator(c)
    outs, nxt = sim.step(all_states_array(1), (True,))
    assert outs.shape == (2, 0)
    assert nxt.shape == (2, 1)
