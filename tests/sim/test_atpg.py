"""Tests for the simulation-based sequential ATPG."""

from __future__ import annotations

import pytest

from repro.analysis.testability import delayed_tests
from repro.bench.paper_circuits import figure1_design_d, figure3_fault
from repro.bench.iscas import load
from repro.retime.engine import RetimingSession
from repro.sim.atpg import AtpgResult, generate_tests, grade_test_set
from repro.sim.fault import StuckAtFault, detects_exact, enumerate_faults


def test_generation_is_deterministic():
    d = figure1_design_d()
    a = generate_tests(d, seed=5, max_attempts=40)
    b = generate_tests(d, seed=5, max_attempts=40)
    assert a.tests == b.tests
    assert a.detected == b.detected


def test_generated_tests_really_detect():
    d = figure1_design_d()
    result = generate_tests(d, seed=1, max_attempts=60)
    for fault, index in result.detected.items():
        assert detects_exact(d, fault, result.tests[index]).detected, fault


def test_coverage_accounting():
    d = figure1_design_d()
    result = generate_tests(d, seed=2, max_attempts=80)
    assert 0.0 < result.coverage <= 1.0
    assert len(result.detected) + len(result.undetected) == 2 * len(d.nets())
    assert "faults detected" in result.summary()


def test_figure3_fault_gets_covered():
    d = figure1_design_d()
    result = generate_tests(d, faults=[figure3_fault()], seed=0, max_attempts=60)
    assert figure3_fault() in result.detected


def test_target_coverage_stops_early():
    d = figure1_design_d()
    greedy = generate_tests(d, seed=3, max_attempts=100, target_coverage=1.0)
    lazy = generate_tests(d, seed=3, max_attempts=100, target_coverage=0.25)
    assert lazy.attempts <= greedy.attempts
    assert lazy.coverage >= 0.25 or not lazy.undetected


def test_semantics_validation():
    with pytest.raises(ValueError):
        generate_tests(figure1_design_d(), semantics="quantum")
    with pytest.raises(ValueError):
        generate_tests(figure1_design_d(), target_coverage=2.0)


def test_cls_semantics_detects_fewer_or_equal():
    """CLS-graded coverage can never beat exact-graded coverage on the
    same sequences (conservativeness, again)."""
    d = load("mini_traffic")
    exact = generate_tests(d, seed=4, max_attempts=50, semantics="exact")
    replay = grade_test_set(d, exact.tests, semantics="cls")
    assert set(replay.detected) <= set(exact.detected)


def test_grade_on_retimed_circuit_shows_the_papers_loss():
    """Generate for D with exact semantics, replay on hazardously
    retimed D: coverage can drop; prefixing each test with one warm-up
    cycle per Theorem 4.6 recovers every lost fault (k = 1 here)."""
    d = figure1_design_d()
    session = RetimingSession(d)
    session.forward("fanQ")
    c = session.current
    k = session.theorem45_k
    assert k == 1

    generated = generate_tests(d, seed=7, max_attempts=80)
    # Only faults on nets that still exist in C can be replayed.
    shared = [f for f in generated.detected if c.has_net(f.net)]
    replay = grade_test_set(c, generated.tests, faults=shared)
    lost = [f for f in shared if f not in replay.detected]

    # Theorem 4.6: every originally-detected shared fault is detected by
    # every k-prefixed variant of its original detecting test.
    for fault in shared:
        test = generated.tests[generated.detected[fault]]
        for variant in delayed_tests(test, k, len(c.inputs)):
            assert detects_exact(c, fault, variant).detected, (fault, variant)
    # And the loss phenomenon itself is real for the Figure 3 fault/test
    # shape whenever the generator happened to rely on an initializing
    # prefix -- we don't assert `lost` nonempty (seed-dependent), only
    # report it via the delayed recovery above.
    assert isinstance(lost, list)


def test_empty_fault_list():
    result = generate_tests(figure1_design_d(), faults=[], seed=0)
    assert result.coverage == 1.0
    assert result.tests == []
