"""Cross-engine consistency: every simulator agrees with every other.

The library ships four execution engines (scalar levelised, batched
numpy, event-driven, and for ternary the dual-rail batch).  Whatever
the engine, the semantics must be identical -- these tests run the same
workloads through all of them and compare bit-for-bit.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.generators import random_sequential_circuit
from repro.bench.iscas import load, names
from repro.logic.ternary import ONE, T, X, ZERO
from repro.sim.binary import BinarySimulator, all_power_up_states
from repro.sim.event_driven import EventDrivenSimulator
from repro.sim.multi import BatchedBinarySimulator, all_states_array
from repro.sim.ternary_multi import BatchedTernarySimulator
from repro.sim.ternary_sim import TernarySimulator, all_x_state

TERNARY = (ZERO, ONE, X)


def _pattern_inputs(circuit, length):
    width = len(circuit.inputs)
    return [
        tuple(((cycle * 3 + pin) % 2) == 0 for pin in range(width))
        for cycle in range(length)
    ]


def _ternary_pattern(circuit, length):
    width = len(circuit.inputs)
    return [
        tuple(TERNARY[(cycle + pin) % 3] for pin in range(width))
        for cycle in range(length)
    ]


@pytest.mark.parametrize("name", names())
def test_binary_engines_agree_on_benchmarks(name):
    circuit = load(name)
    seq = _pattern_inputs(circuit, 5)
    scalar = BinarySimulator(circuit)
    event = EventDrivenSimulator(circuit)
    batched = BatchedBinarySimulator(circuit)
    states = all_states_array(circuit.num_latches)
    per_cycle, final = batched.run(states, seq)

    for lane, state in enumerate(all_power_up_states(circuit)):
        scalar_trace = scalar.run(state, seq)
        event_trace = EventDrivenSimulator(circuit).run(state, seq)
        assert event_trace.outputs == scalar_trace.outputs
        assert event_trace.final_state == scalar_trace.final_state
        for cycle in range(len(seq)):
            assert (
                tuple(bool(v) for v in per_cycle[cycle][lane])
                == scalar_trace.outputs[cycle]
            )
        assert tuple(bool(v) for v in final[lane]) == scalar_trace.final_state


@pytest.mark.parametrize("name", names())
def test_ternary_engines_agree_on_benchmarks(name):
    circuit = load(name)
    seq = _ternary_pattern(circuit, 5)
    start = all_x_state(circuit)
    scalar = TernarySimulator(circuit).run(start, seq)
    event = EventDrivenSimulator(circuit, ternary=True).run(start, seq)
    batched = BatchedTernarySimulator(circuit).run_sequences([seq])
    assert event.outputs == scalar.outputs
    assert event.final_state == scalar.final_state
    assert [tuple(v) for v in batched[0]] == scalar.outputs


@settings(deadline=None, max_examples=10)
@given(seed=st.integers(0, 1000), data=st.data())
def test_all_ternary_engines_agree_randomised(seed, data):
    circuit = random_sequential_circuit(seed, num_inputs=2, num_gates=9, num_latches=3)
    length = data.draw(st.integers(1, 5))
    seq = [
        tuple(data.draw(st.sampled_from(TERNARY)) for _ in circuit.inputs)
        for _ in range(length)
    ]
    start = all_x_state(circuit)
    scalar = TernarySimulator(circuit).run(start, seq)
    event = EventDrivenSimulator(circuit, ternary=True).run(start, seq)
    batched = BatchedTernarySimulator(circuit).run_sequences([seq])
    assert event.outputs == scalar.outputs
    assert [tuple(v) for v in batched[0]] == scalar.outputs
