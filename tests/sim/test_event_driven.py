"""Tests for the event-driven simulator."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.generators import pipeline_circuit, random_sequential_circuit
from repro.bench.iscas import load
from repro.bench.paper_circuits import TABLE1_INPUT_SEQUENCE, figure1_design_d
from repro.logic.ternary import ONE, X, ZERO
from repro.sim.binary import BinarySimulator
from repro.sim.event_driven import EventDrivenSimulator
from repro.sim.ternary_sim import TernarySimulator, all_x_state


@settings(deadline=None, max_examples=20)
@given(seed=st.integers(0, 500), data=st.data())
def test_event_driven_matches_oblivious_binary(seed, data):
    circuit = random_sequential_circuit(seed, num_inputs=2, num_gates=8, num_latches=3)
    length = data.draw(st.integers(1, 5))
    seq = [tuple(data.draw(st.booleans()) for _ in circuit.inputs) for _ in range(length)]
    state = tuple(data.draw(st.booleans()) for _ in range(circuit.num_latches))

    reference = BinarySimulator(circuit).run(state, seq)
    event = EventDrivenSimulator(circuit).run(state, seq)
    assert event.outputs == reference.outputs
    assert event.states == reference.states


@settings(deadline=None, max_examples=20)
@given(seed=st.integers(0, 500), data=st.data())
def test_event_driven_matches_compiled_backend(seed, data):
    """The event-driven engine agrees with the flat-program compiled
    backend, not just the interpreted reference, on random circuits."""
    circuit = random_sequential_circuit(seed, num_inputs=2, num_gates=9, num_latches=3)
    length = data.draw(st.integers(1, 5))
    seq = [tuple(data.draw(st.booleans()) for _ in circuit.inputs) for _ in range(length)]
    state = tuple(data.draw(st.booleans()) for _ in range(circuit.num_latches))

    compiled = BinarySimulator(circuit, backend="compiled").run(state, seq)
    event = EventDrivenSimulator(circuit).run(state, seq)
    assert event.outputs == compiled.outputs
    assert event.states == compiled.states


@settings(deadline=None, max_examples=10)
@given(seed=st.integers(0, 300))
def test_event_driven_matches_oblivious_ternary(seed):
    circuit = random_sequential_circuit(seed, num_inputs=1, num_gates=7, num_latches=3)
    seq = [(ZERO,), (X,), (ONE,), (ONE,), (X,), (ZERO,)]
    reference = TernarySimulator(circuit).run(all_x_state(circuit), seq)
    event = EventDrivenSimulator(circuit, ternary=True).run(all_x_state(circuit), seq)
    assert event.outputs == reference.outputs
    assert event.states == reference.states


def test_event_driven_cls_on_paper_circuit():
    d = figure1_design_d()
    seq = [tuple(ONE if v else ZERO for v in vec) for vec in TABLE1_INPUT_SEQUENCE]
    reference = TernarySimulator(d).run_from_unknown(seq)
    event = EventDrivenSimulator(d, ternary=True).run(all_x_state(d), seq)
    assert event.outputs == reference.outputs


def test_quiet_inputs_produce_low_activity():
    """Holding the inputs constant after the first cycle must evaluate
    (almost) nothing -- the point of event-driven simulation."""
    circuit = load("s27")
    sim = EventDrivenSimulator(circuit)
    state = (False,) * 3
    seq = [(False, False, False, False)] * 10
    sim.run(state, seq)
    stats = sim.stats
    assert stats.evaluations[0] == circuit.num_cells  # first cycle: all
    # After the state settles, cycles cost zero evaluations.
    assert stats.evaluations[-1] == 0
    assert stats.activity_factor < 1.0


def test_activity_stats_accounting():
    circuit = load("s27")
    sim = EventDrivenSimulator(circuit)
    sim.run((False,) * 3, [(True, False, True, False), (False, True, False, True)])
    stats = sim.stats
    assert len(stats.evaluations) == 2
    assert stats.total_evaluations == sum(stats.evaluations)
    assert 0.0 < stats.activity_factor <= 1.0


def test_overrides_respected():
    d = figure1_design_d()
    sim = EventDrivenSimulator(d, overrides={"q2b": True})
    outputs, _ = sim.step((False,), (True,))
    assert outputs == (True,)  # AND(1, stuck-1)


def test_arity_validation():
    d = figure1_design_d()
    sim = EventDrivenSimulator(d)
    with pytest.raises(ValueError):
        sim.step((False,), (True, True))
    with pytest.raises(ValueError):
        sim.step((False, False), (True,))


def test_pipeline_activity_tracks_waves():
    """A pipeline fed one pulse then silence: activity decays as the
    pulse drains through the stages."""
    circuit = pipeline_circuit(4, 2, seed=0)
    sim = EventDrivenSimulator(circuit)
    state = (False,) * circuit.num_latches
    pulse = [(True, True)] + [(False, False)] * 8
    sim.run(state, pulse)
    evals = sim.stats.evaluations
    assert evals[-1] <= evals[1]
