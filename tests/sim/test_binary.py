"""Tests for the two-valued simulator and state helpers."""

from __future__ import annotations

import pytest

from repro.bench.paper_circuits import TABLE1_INPUT_SEQUENCE, figure1_design_d
from repro.netlist.builder import CircuitBuilder
from repro.sim.binary import (
    BinarySimulator,
    all_power_up_states,
    format_state,
    parse_state,
    state_from_int,
    state_to_int,
)


def toggle_circuit():
    """One latch toggling on input 1, output = state."""
    b = CircuitBuilder("toggle")
    i = b.input("i")
    q = b.net("q")
    nxt = b.gate("XOR", i, q)
    b.latch(nxt, q, name="ff")
    b.output(b.gate("BUF", q))
    return b.build()


def test_step_computes_outputs_and_next_state():
    c = toggle_circuit()
    sim = BinarySimulator(c)
    outputs, nxt = sim.step((False,), (True,))
    assert outputs == (False,)  # Moore-ish: output is the current state
    assert nxt == (True,)
    outputs, nxt = sim.step((True,), (True,))
    assert outputs == (True,)
    assert nxt == (False,)


def test_run_trace_shapes():
    c = toggle_circuit()
    sim = BinarySimulator(c)
    trace = sim.run((False,), [(True,), (True,), (False,)])
    assert len(trace) == 3
    assert len(trace.states) == 4
    assert trace.states[0] == (False,)
    assert trace.final_state == (False,)  # toggled twice, held once
    assert trace.output_column(0) == (False, True, False)


def test_run_accepts_truthy_values():
    c = toggle_circuit()
    sim = BinarySimulator(c)
    trace = sim.run([0], [[1], [0]])
    assert trace.states[0] == (False,)
    assert trace.inputs[0] == (True,)


def test_wrong_arity_raises():
    c = toggle_circuit()
    sim = BinarySimulator(c)
    with pytest.raises(ValueError, match="inputs"):
        sim.step((False,), (True, True))
    with pytest.raises(ValueError, match="latches"):
        sim.step((False, True), (True,))


def test_table1_rows_for_design_d():
    """Both power-up states of D output 0·0·1·0 on 0·1·1·1 (Table 1)."""
    d = figure1_design_d()
    sim = BinarySimulator(d)
    for state in all_power_up_states(d):
        outs = sim.output_sequence(state, TABLE1_INPUT_SEQUENCE)
        assert [o[0] for o in outs] == [False, False, True, False]


def test_overrides_force_net_values():
    c = toggle_circuit()
    # Force the XOR output to 1: latch always loads 1.
    xor_net = c.latch("ff").data_in
    sim = BinarySimulator(c, overrides={xor_net: True})
    _, nxt = sim.step((True,), (True,))
    assert nxt == (True,)


def test_override_on_source_net():
    c = toggle_circuit()
    sim = BinarySimulator(c, overrides={"q": False})  # latch output stuck 0
    outputs, nxt = sim.step((True,), (True,))
    assert outputs == (False,)
    assert nxt == (True,)  # XOR(1, 0)


# ---------------------------------------------------------------------------
# State helpers.
# ---------------------------------------------------------------------------


def test_all_power_up_states_order_and_count():
    c = toggle_circuit()
    assert list(all_power_up_states(c)) == [(False,), (True,)]


def test_state_int_roundtrip():
    for n_bits, value in ((3, 5), (1, 0), (4, 15)):
        class FakeCircuit:
            num_latches = n_bits

        state = state_from_int(FakeCircuit, value)
        assert len(state) == n_bits
        assert state_to_int(state) == value


def test_state_from_int_msb_first():
    class FakeCircuit:
        num_latches = 3

    assert state_from_int(FakeCircuit, 4) == (True, False, False)
    with pytest.raises(ValueError):
        state_from_int(FakeCircuit, 8)


def test_parse_and_format_state():
    assert parse_state("10") == (True, False)
    assert parse_state("1_0 1") == (True, False, True)
    assert format_state((True, False)) == "10"
    with pytest.raises(ValueError):
        parse_state("2")
