"""Tests for the batched dual-rail ternary simulator."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.generators import random_sequential_circuit
from repro.bench.paper_circuits import figure1_design_c, figure1_design_d
from repro.logic.functions import AND, MUX, NOT, OR, XNOR, XOR, junction, make_gate
from repro.logic.ternary import ONE, T, X, ZERO, all_ternary_vectors
from repro.sim.ternary_multi import (
    BatchedTernarySimulator,
    decode_ternary,
    encode_ternary,
)
from repro.sim.ternary_multi import _eval_cell  # noqa: PLC2701 - white-box
from repro.sim.ternary_sim import TernarySimulator, all_x_state, cls_outputs

ternary = st.sampled_from((ZERO, ONE, X))


def test_encode_decode_roundtrip():
    values = (ZERO, ONE, X, X, ONE)
    assert decode_ternary(encode_ternary(values)) == values


def test_decode_rejects_empty_rail_pair():
    with pytest.raises(ValueError):
        decode_ternary((np.array([False]), np.array([False])))


@pytest.mark.parametrize(
    "fn",
    (AND, OR, NOT, XOR, XNOR, MUX, junction(2), junction(3),
     make_gate("NAND", 3), make_gate("NOR", 2), make_gate("CONST1", 0)),
)
def test_dual_rail_cell_evaluators_are_exact(fn):
    """Every vectorised family must equal the scalar conservative
    ternary evaluator, on every input vector, lane-parallel."""
    vectors = list(all_ternary_vectors(fn.n_inputs))
    batch = len(vectors)
    rails = [
        encode_ternary([vec[pin] for vec in vectors]) for pin in range(fn.n_inputs)
    ]
    out_rails = _eval_cell(fn, rails, batch)
    for pin in range(fn.n_outputs):
        got = decode_ternary(out_rails[pin])
        for lane, vec in enumerate(vectors):
            assert got[lane] is fn.eval_ternary(vec)[pin], (fn.name, vec)


def test_scalar_fallback_for_exotic_cells():
    from repro.logic.functions import CellFunction

    maj = CellFunction("MAJ", 3, 1, lambda v: (sum(v) >= 2,))
    vectors = list(all_ternary_vectors(3))
    rails = [encode_ternary([vec[pin] for vec in vectors]) for pin in range(3)]
    out = decode_ternary(_eval_cell(maj, rails, len(vectors))[0])
    for lane, vec in enumerate(vectors):
        assert out[lane] is maj.eval_ternary(vec)[0]


def test_run_sequences_matches_scalar_cls_on_paper_pair():
    sequences = [
        ((ZERO,), (ONE,), (ONE,), (ONE,)),
        ((X,), (ZERO,), (ONE,), (X,)),
        ((ONE,), (ONE,), (ZERO,), (ZERO,)),
    ]
    for circuit in (figure1_design_d(), figure1_design_c()):
        batched = BatchedTernarySimulator(circuit).run_sequences(sequences)
        for lane, seq in enumerate(sequences):
            assert tuple(batched[lane]) == cls_outputs(circuit, seq)


@settings(deadline=None, max_examples=15)
@given(seed=st.integers(0, 400), data=st.data())
def test_run_sequences_matches_scalar_cls_randomised(seed, data):
    circuit = random_sequential_circuit(seed, num_inputs=2, num_gates=8, num_latches=3)
    length = data.draw(st.integers(1, 4))
    count = data.draw(st.integers(1, 4))
    sequences = [
        tuple(
            tuple(data.draw(ternary) for _ in circuit.inputs) for _ in range(length)
        )
        for _ in range(count)
    ]
    batched = BatchedTernarySimulator(circuit).run_sequences(sequences)
    for lane, seq in enumerate(sequences):
        assert tuple(batched[lane]) == cls_outputs(circuit, seq)


def test_run_sequences_validations():
    d = figure1_design_d()
    sim = BatchedTernarySimulator(d)
    assert sim.run_sequences([]) == []
    with pytest.raises(ValueError, match="length"):
        sim.run_sequences([((ZERO,),), ((ZERO,), (ONE,))])


def test_overrides():
    d = figure1_design_d()
    sim = BatchedTernarySimulator(d, overrides={"q2b": ONE})
    results = sim.run_sequences([((ONE,),)])
    assert results[0][0] == (ONE,)  # AND(1, stuck-1)
