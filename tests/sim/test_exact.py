"""Tests for the exact ("powerful") unknown-power-up simulator."""

from __future__ import annotations

import pytest

from repro.bench.paper_circuits import (
    TABLE1_INPUT_SEQUENCE,
    figure1_design_c,
    figure1_design_d,
)
from repro.bench.generators import shift_register
from repro.logic.ternary import ONE, X, ZERO
from repro.sim.exact import (
    ExactSimulator,
    exact_outputs,
    is_initializing_sequence,
    synchronized_state,
)


def test_section21_powerful_simulator_outputs():
    """Section 2.1: the powerful simulator outputs 0·0·1·0 for D and
    0·X·X·X for C on input 0·1·1·1."""
    d = figure1_design_d()
    c = figure1_design_c()
    assert exact_outputs(d, TABLE1_INPUT_SEQUENCE) == (
        (ZERO,),
        (ZERO,),
        (ONE,),
        (ZERO,),
    )
    assert exact_outputs(c, TABLE1_INPUT_SEQUENCE) == (
        (ZERO,),
        (X,),
        (X,),
        (X,),
    )


def test_one_redundant_cycle_reconciles_d_and_c():
    """Section 2.1: clocking one redundant cycle before the sequence
    makes even the powerful simulator agree on D and C."""
    d, c = figure1_design_d(), figure1_design_c()
    for warmup in ((False,), (True,)):
        seq = (warmup,) + TABLE1_INPUT_SEQUENCE
        assert exact_outputs(d, seq)[1:] == exact_outputs(c, seq)[1:]


def test_initializing_sequence_claims_from_figure2():
    d, c = figure1_design_d(), figure1_design_c()
    zero = [(False,)]
    assert is_initializing_sequence(d, zero)
    assert synchronized_state(d, zero) == (False,)
    assert not is_initializing_sequence(c, zero)
    assert synchronized_state(c, zero) is None
    # Two cycles initialise C (any first input, then 0).
    assert is_initializing_sequence(c, [(True,), (False,)])
    assert is_initializing_sequence(c, [(False,), (False,)])


def test_restricting_states_models_delayed_design():
    """Restricting the sweep to C^1's states makes C look like D."""
    import numpy as np

    c = figure1_design_c()
    sim = ExactSimulator(c)
    delayed = np.array([[False, False], [True, True]])  # states 00 and 11
    outs = sim.outputs(TABLE1_INPUT_SEQUENCE, states=delayed)
    assert outs == ((ZERO,), (ZERO,), (ONE,), (ZERO,))


def test_max_latch_guard_and_sampling():
    sr = shift_register(25)
    with pytest.raises(ValueError, match="capped"):
        ExactSimulator(sr, max_latches=20)
    # Sampling keeps it usable.
    sim = ExactSimulator(sr, sample=64, seed=1)
    outs = sim.outputs([(True,)] * 3)
    assert outs[0] == (X,)  # sampled states disagree on the tail bit


def test_shift_register_becomes_definite_after_fill():
    sr = shift_register(3)
    seq = [(True,)] * 5
    outs = exact_outputs(sr, seq)
    assert outs[0] == (X,) and outs[1] == (X,) and outs[2] == (X,)
    assert outs[3] == (ONE,) and outs[4] == (ONE,)


def test_final_states_shape():
    d = figure1_design_d()
    sim = ExactSimulator(d)
    final = sim.final_states([(False,)])
    assert final.shape == (2, 1)
    assert not final.any()  # both states reset to 0


def test_overrides_flow_through():
    d = figure1_design_d()
    sim = ExactSimulator(d, overrides={"q2b": True})
    outs = sim.outputs(TABLE1_INPUT_SEQUENCE)
    # Output gate = AND(I, 1) = I.
    assert outs == ((ZERO,), (ONE,), (ONE,), (ONE,))
