"""Tests for the shared simulation core (propagate / SimulationTrace)."""

from __future__ import annotations

import pytest

from repro.bench.paper_circuits import figure1_design_d
from repro.sim.core import SimulationTrace, propagate


def test_propagate_returns_full_net_map():
    d = figure1_design_d()
    values = propagate(d, (True,), (False,), ternary=False)
    assert set(values) == set(d.nets())
    assert values["O"] == False  # AND(1, q=0)
    assert values["P"] == True  # AND(OR(1,0), NOT 0)


def test_propagate_arity_errors():
    d = figure1_design_d()
    with pytest.raises(ValueError, match="inputs"):
        propagate(d, (True, False), (False,), ternary=False)
    with pytest.raises(ValueError, match="latches"):
        propagate(d, (True,), (False, True), ternary=False)


def test_propagate_overrides_apply_everywhere():
    d = figure1_design_d()
    values = propagate(d, (True,), (False,), ternary=False, overrides={"q2b": True})
    assert values["q2b"] is True
    assert values["O"] == True


def test_trace_helpers():
    trace = SimulationTrace()
    with pytest.raises(ValueError, match="final state"):
        trace.final_state
    trace.states.append((False,))
    trace.inputs.append((True,))
    trace.outputs.append((True,))
    trace.states.append((True,))
    assert len(trace) == 1
    assert trace.final_state == (True,)
    assert trace.output_column(0) == (True,)
