"""Tests for the conservative three-valued simulator (CLS)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.generators import random_sequential_circuit
from repro.bench.paper_circuits import (
    TABLE1_INPUT_SEQUENCE,
    figure1_design_c,
    figure1_design_d,
)
from repro.logic.ternary import ONE, T, X, ZERO, refines
from repro.netlist.builder import CircuitBuilder
from repro.sim.binary import BinarySimulator, all_power_up_states
from repro.sim.exact import exact_outputs
from repro.sim.ternary_sim import (
    TernarySimulator,
    all_x_state,
    cls_outputs,
    cls_resets,
)


def test_all_x_state_width():
    d = figure1_design_d()
    assert all_x_state(d) == (X,)
    c = figure1_design_c()
    assert all_x_state(c) == (X, X)


def test_cls_loses_complement_correlation_paper_example():
    """Section 5's narrative: with the latch at X and input 0, AND
    gate-1 of design D sees two complementary X's and outputs X, even
    though the true value is 0."""
    d = figure1_design_d()
    sim = TernarySimulator(d)
    outputs, next_state = sim.step((X,), (ZERO,))
    assert next_state == (X,)  # CLS cannot see the reset
    # ... whereas concretely input 0 resets the latch from both states.
    bsim = BinarySimulator(d)
    for state in all_power_up_states(d):
        _, nxt = bsim.step(state, (False,))
        assert nxt == (False,)


def test_cls_outputs_for_table1_sequence():
    d = figure1_design_d()
    c = figure1_design_c()
    expected = ((ZERO,), (X,), (X,), (X,))
    assert cls_outputs(d, TABLE1_INPUT_SEQUENCE) == expected
    assert cls_outputs(c, TABLE1_INPUT_SEQUENCE) == expected  # Cor 5.3


def test_cls_accepts_ternary_inputs():
    d = figure1_design_d()
    outs = cls_outputs(d, [(X,), (ONE,)])
    assert outs[0] == (X,)  # AND(X, X-state) = X


def test_run_from_unknown_equals_run_from_all_x():
    d = figure1_design_d()
    sim = TernarySimulator(d)
    seq = [(ZERO,), (ONE,)]
    assert sim.run_from_unknown(seq).outputs == sim.run(all_x_state(d), seq).outputs


def test_cls_resets_detects_definite_final_state():
    b = CircuitBuilder("resettable")
    i = b.input("i")
    q = b.net("q")
    nxt = b.gate("AND", i, q)  # input 0 -> next state definite 0 in CLS
    b.latch(nxt, q, name="ff")
    b.output(b.gate("BUF", q))
    c = b.build()
    assert cls_resets(c, [(ZERO,)])
    assert not cls_resets(c, [(ONE,)])  # AND(1, X) = X


def test_cls_never_resets_figure1_designs():
    # Figure 1's D is initialisable in reality but never in the CLS.
    for circuit in (figure1_design_d(), figure1_design_c()):
        assert not cls_resets(circuit, [(ZERO,), (ONE,), (ZERO,), (ONE,)])


def test_overrides_inject_ternary_faults():
    d = figure1_design_d()
    sim = TernarySimulator(d, overrides={"q2b": ONE})
    outputs, _ = sim.step((X,), (ONE,))
    assert outputs == (ONE,)  # output AND(1, stuck-1) = 1


# ---------------------------------------------------------------------------
# The conservativeness invariant: CLS definite ==> exact agrees.
# ---------------------------------------------------------------------------


@settings(deadline=None, max_examples=25)
@given(
    seed=st.integers(0, 1000),
    data=st.data(),
)
def test_cls_is_conservative_wrt_exact(seed, data):
    """If the CLS reports 0/1 at (cycle, pin), every power-up state
    produces that same value there (the well-known soundness property
    quoted in Section 5)."""
    circuit = random_sequential_circuit(
        seed, num_inputs=2, num_gates=6, num_latches=3
    )
    length = data.draw(st.integers(1, 5))
    seq = [
        tuple(data.draw(st.booleans()) for _ in circuit.inputs) for _ in range(length)
    ]
    cls = cls_outputs(circuit, seq)
    exact = exact_outputs(circuit, seq)
    for cls_vec, exact_vec in zip(cls, exact):
        for c_val, e_val in zip(cls_vec, exact_vec):
            assert refines(e_val, c_val), (
                "CLS claimed %s but exact disagrees: %s" % (c_val, e_val)
            )


def test_cls_conservative_on_paper_circuit():
    d = figure1_design_d()
    cls = cls_outputs(d, TABLE1_INPUT_SEQUENCE)
    exact = exact_outputs(d, TABLE1_INPUT_SEQUENCE)
    for cls_vec, exact_vec in zip(cls, exact):
        for c_val, e_val in zip(cls_vec, exact_vec):
            assert refines(e_val, c_val)
    # and the gap is real: exact knows 0·0·1·0, CLS only 0·X·X·X.
    assert exact[2] == (ONE,) and cls[2] == (X,)
