"""Property tests for the lane backends (int masks vs ``uint64`` words).

The historical int-mask engine is the differential oracle here: for
every circuit, batch size, override map and cell family the word
engine must produce **bit-for-bit** the same lane values once both are
unpacked back into boolean columns.  The suite covers

* round trips of the packing helpers (``column_to_mask`` /
  ``mask_to_column`` and ``column_to_words`` / ``words_to_column``)
  across batch sizes that are not multiples of 8, batch 0 and
  batches crossing the 64-lane word boundary,
* mask-vs-words agreement on hypothesis-generated random circuits and
  on the paper's Figure 1 designs, binary and dual-rail ternary, with
  and without forced (stuck-at) overrides and with GENERIC cells,
* the sparse set-bit walk in the generic-cell fallbacks,
* the :class:`~repro.sim.compiled.LaneBackend` registry contract and
  the lane-engine-aware consumers.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.generators import random_sequential_circuit
from repro.bench.paper_circuits import figure1_design_c, figure1_design_d
from repro.logic.functions import CellFunction, make_gate
from repro.logic.ternary import ONE, X, ZERO
from repro.netlist.circuit import Circuit
from repro.sim.compiled import (
    LANE_ENGINES,
    MaskLaneBackend,
    WordLaneBackend,
    _generic_binary,
    _generic_binary_words,
    _generic_ternary,
    _generic_ternary_words,
    column_to_mask,
    column_to_words,
    compile_circuit,
    get_default_backend,
    get_lane_engine,
    mask_to_column,
    num_words_for,
    resolve_lane_engine,
    set_default_backend,
    words_to_column,
)
from repro.sim.exact import ExactSimulator
from repro.sim.multi import BatchedBinarySimulator, all_states_array
from repro.sim.ternary_multi import BatchedTernarySimulator

MASK = get_lane_engine("mask")
WORDS = get_lane_engine("words")
TERNARY = (ZERO, ONE, X)

# Batch sizes probing every packing edge: empty, sub-byte, byte
# boundaries, the 64-lane word boundary, and multi-word tails.
EDGE_BATCHES = (0, 1, 5, 7, 8, 9, 63, 64, 65, 100, 128, 130)


def build(seed, num_inputs, num_gates, num_latches):
    return random_sequential_circuit(
        seed,
        num_inputs=num_inputs,
        num_gates=num_gates,
        num_latches=num_latches,
    )


circuits = st.builds(
    build,
    seed=st.integers(0, 40),
    num_inputs=st.integers(1, 3),
    num_gates=st.integers(2, 12),
    num_latches=st.integers(0, 4),
)


# ---------------------------------------------------------------------------
# Packing round trips.
# ---------------------------------------------------------------------------


class TestPackingRoundTrips:
    def test_num_words_for(self):
        assert num_words_for(0) == 0
        assert num_words_for(1) == 1
        assert num_words_for(64) == 1
        assert num_words_for(65) == 2
        assert num_words_for(128) == 2
        assert num_words_for(129) == 3
        with pytest.raises(ValueError):
            num_words_for(-1)

    @settings(max_examples=80, deadline=None)
    @given(st.lists(st.booleans(), min_size=0, max_size=200))
    def test_mask_round_trip(self, column):
        col = np.asarray(column, dtype=bool)
        mask = column_to_mask(col)
        assert np.array_equal(mask_to_column(mask, col.size), col)

    @settings(max_examples=80, deadline=None)
    @given(st.lists(st.booleans(), min_size=0, max_size=200))
    def test_words_round_trip(self, column):
        col = np.asarray(column, dtype=bool)
        words = column_to_words(col)
        assert words.dtype == np.uint64
        assert words.shape == (num_words_for(col.size),)
        assert np.array_equal(words_to_column(words, col.size), col)

    @settings(max_examples=80, deadline=None)
    @given(st.lists(st.booleans(), min_size=0, max_size=200))
    def test_words_and_mask_describe_the_same_lane_order(self, column):
        col = np.asarray(column, dtype=bool)
        words = column_to_words(col)
        as_int = sum(int(w) << (64 * i) for i, w in enumerate(words))
        assert as_int == column_to_mask(col)

    @pytest.mark.parametrize("batch", EDGE_BATCHES)
    def test_edge_batches(self, batch):
        rng = np.random.default_rng(batch)
        col = rng.random(batch) < 0.5
        assert np.array_equal(mask_to_column(column_to_mask(col), batch), col)
        assert np.array_equal(words_to_column(column_to_words(col), batch), col)

    def test_batch_zero_is_empty_everywhere(self):
        empty = np.zeros(0, dtype=bool)
        assert column_to_mask(empty) == 0
        assert mask_to_column(0, 0).size == 0
        assert column_to_words(empty).size == 0
        assert words_to_column(np.zeros(0, dtype=np.uint64), 0).size == 0

    def test_tail_bits_beyond_batch_are_zero(self):
        col = np.ones(70, dtype=bool)
        words = column_to_words(col)
        assert words.shape == (2,)
        assert int(words[0]) == (1 << 64) - 1
        assert int(words[1]) == (1 << 6) - 1  # 70 - 64 live lanes only


# ---------------------------------------------------------------------------
# Backend contexts and verdict helpers.
# ---------------------------------------------------------------------------


class TestBackendContexts:
    @pytest.mark.parametrize("batch", EDGE_BATCHES)
    def test_contexts_agree(self, batch):
        mask_ctx = MASK.context(batch)
        word_ctx = WORDS.context(batch)
        assert mask_ctx == (1 << batch) - 1
        assert word_ctx.shape == (num_words_for(batch),)
        as_int = sum(int(w) << (64 * i) for i, w in enumerate(word_ctx))
        assert as_int == mask_ctx

    @pytest.mark.parametrize("engine", [MASK, WORDS])
    @pytest.mark.parametrize("batch", (1, 63, 64, 65, 130))
    def test_verdicts(self, engine, batch):
        ctx = engine.context(batch)
        assert engine.all_ones(engine.constant(True, ctx), ctx)
        assert not engine.all_zeros(engine.constant(True, ctx))
        assert engine.all_zeros(engine.constant(False, ctx))
        assert not engine.all_ones(engine.constant(False, ctx), ctx)
        mixed = np.zeros(batch, dtype=bool)
        mixed[0] = True
        packed = engine.pack_column(mixed)
        if batch > 1:
            assert not engine.all_ones(packed, ctx)
        assert not engine.all_zeros(packed)

    @pytest.mark.parametrize("engine", [MASK, WORDS])
    def test_ternary_constants_and_columns(self, engine):
        batch = 67
        ctx = engine.context(batch)
        for value in TERNARY:
            rails = engine.constant_ternary(value, ctx)
            decoded = engine.unpack_ternary_column(rails, batch)
            assert decoded == (value,) * batch
        rng = np.random.default_rng(7)
        column = tuple(TERNARY[i] for i in rng.integers(0, 3, size=batch))
        rails = engine.pack_ternary_column(column)
        assert engine.unpack_ternary_column(rails, batch) == column
        # Decoded values must be the module singletons: downstream code
        # compares with ``is``.
        for value in engine.unpack_ternary_column(rails, batch):
            assert value in (ZERO, ONE, X)


# ---------------------------------------------------------------------------
# Differential: the word engine against the mask oracle.
# ---------------------------------------------------------------------------


def _step_both_binary(circuit, states, inputs, overrides=None):
    """Step both engines over the same lane block; return unpacked columns."""
    compiled = compile_circuit(circuit)
    batch = len(states)
    forced = compiled.forced_binary(overrides)
    results = []
    for engine in (MASK, WORDS):
        ctx = engine.context(batch)
        state_vals = [
            engine.pack_column(np.array([row[j] for row in states], dtype=bool))
            for j in range(circuit.num_latches)
        ]
        input_vals = [
            engine.pack_column(np.array([row[j] for row in inputs], dtype=bool))
            for j in range(len(circuit.inputs))
        ]
        outs, nxt = engine.step_binary(compiled, state_vals, input_vals, ctx, forced)
        results.append(
            (
                tuple(engine.unpack_column(v, batch).tolist() for v in outs),
                tuple(engine.unpack_column(v, batch).tolist() for v in nxt),
            )
        )
    return results


def _step_both_ternary(circuit, states, inputs, overrides=None):
    compiled = compile_circuit(circuit)
    batch = len(states)
    forced = compiled.forced_ternary(overrides)
    results = []
    for engine in (MASK, WORDS):
        ctx = engine.context(batch)
        state_vals = [
            engine.pack_ternary_column([row[j] for row in states])
            for j in range(circuit.num_latches)
        ]
        input_vals = [
            engine.pack_ternary_column([row[j] for row in inputs])
            for j in range(len(circuit.inputs))
        ]
        outs, nxt = engine.step_ternary(compiled, state_vals, input_vals, ctx, forced)
        results.append(
            (
                tuple(engine.unpack_ternary_column(r, batch) for r in outs),
                tuple(engine.unpack_ternary_column(r, batch) for r in nxt),
            )
        )
    return results


class TestWordsMatchMasks:
    @settings(max_examples=40, deadline=None)
    @given(circuit=circuits, data=st.data())
    def test_binary_random_circuits(self, circuit, data):
        # Lane counts beyond 64 force multi-word values with tails.
        lanes = data.draw(st.integers(1, 130), label="lanes")
        rng = np.random.default_rng(data.draw(st.integers(0, 2**31), label="rng"))
        states = (rng.random((lanes, circuit.num_latches)) < 0.5).tolist()
        inputs = (rng.random((lanes, len(circuit.inputs))) < 0.5).tolist()
        nets = sorted(circuit.nets())
        picked = data.draw(
            st.lists(st.sampled_from(nets), max_size=2, unique=True),
            label="override_nets",
        )
        overrides = (
            {net: data.draw(st.booleans(), label=net) for net in picked} or None
        )
        got_mask, got_words = _step_both_binary(circuit, states, inputs, overrides)
        assert got_words == got_mask

    @settings(max_examples=30, deadline=None)
    @given(circuit=circuits, data=st.data())
    def test_ternary_random_circuits(self, circuit, data):
        tern = st.sampled_from(TERNARY)
        lanes = data.draw(st.integers(1, 130), label="lanes")
        states = [
            tuple(data.draw(tern) for _ in range(circuit.num_latches))
            for _ in range(min(lanes, 5))
        ]
        # Tile a few drawn rows out to the full lane count to keep the
        # draw budget small while still crossing word boundaries.
        states = [states[i % len(states)] for i in range(lanes)] if states else []
        base_inputs = [
            tuple(data.draw(tern) for _ in circuit.inputs) for _ in range(min(lanes, 5))
        ]
        inputs = [base_inputs[i % len(base_inputs)] for i in range(lanes)]
        nets = sorted(circuit.nets())
        picked = data.draw(
            st.lists(st.sampled_from(nets), max_size=2, unique=True),
            label="override_nets",
        )
        overrides = {net: data.draw(tern, label=net) for net in picked} or None
        got_mask, got_words = _step_both_ternary(circuit, states, inputs, overrides)
        assert got_words == got_mask

    @pytest.mark.parametrize("batch", (1, 2, 63, 64, 65, 130))
    def test_paper_circuits_binary(self, batch):
        for circuit in (figure1_design_d(), figure1_design_c()):
            rng = np.random.default_rng(batch)
            states = (rng.random((batch, circuit.num_latches)) < 0.5).tolist()
            inputs = (rng.random((batch, len(circuit.inputs))) < 0.5).tolist()
            for overrides in (None, {circuit.outputs[0]: True}):
                got_mask, got_words = _step_both_binary(
                    circuit, states, inputs, overrides
                )
                assert got_words == got_mask

    @pytest.mark.parametrize("batch", (1, 63, 64, 65, 130))
    def test_paper_circuits_ternary(self, batch):
        for circuit in (figure1_design_d(), figure1_design_c()):
            rng = np.random.default_rng(batch)
            states = [
                tuple(TERNARY[i] for i in row)
                for row in rng.integers(0, 3, size=(batch, circuit.num_latches))
            ]
            inputs = [
                tuple(TERNARY[i] for i in row)
                for row in rng.integers(0, 3, size=(batch, len(circuit.inputs)))
            ]
            for overrides in (None, {circuit.outputs[0]: X}):
                got_mask, got_words = _step_both_ternary(
                    circuit, states, inputs, overrides
                )
                assert got_words == got_mask


# ---------------------------------------------------------------------------
# GENERIC cells: the lane-by-lane fallback inside both engines.
# ---------------------------------------------------------------------------


def _half_adder_eval(inputs):
    a, b = inputs
    return (a != b, a and b)


HALF_ADDER = CellFunction("HA2", 2, 2, _half_adder_eval)


def _generic_circuit():
    """One GENERIC half-adder feeding a latch and two outputs."""
    circuit = Circuit("generic-lane")
    a = circuit.add_input("a")
    b = circuit.add_input("b")
    circuit.add_cell("ha", HALF_ADDER, (a, b), ("sum", "carry"))
    circuit.add_cell("mix", make_gate("AND", 2), ("sum", "q"), ("out",))
    circuit.add_latch("l0", "carry", "q")
    circuit.add_output("out")
    circuit.add_output("sum")
    return circuit


class TestGenericCells:
    def test_family_is_generic(self):
        assert HALF_ADDER.family == "GENERIC"

    @pytest.mark.parametrize("batch", (1, 63, 64, 65, 130))
    def test_binary_generic_words_match_masks(self, batch):
        circuit = _generic_circuit()
        rng = np.random.default_rng(batch)
        states = (rng.random((batch, 1)) < 0.5).tolist()
        inputs = (rng.random((batch, 2)) < 0.5).tolist()
        got_mask, got_words = _step_both_binary(circuit, states, inputs)
        assert got_words == got_mask

    @pytest.mark.parametrize("batch", (1, 64, 100))
    def test_ternary_generic_words_match_masks(self, batch):
        circuit = _generic_circuit()
        rng = np.random.default_rng(batch)
        states = [
            tuple(TERNARY[i] for i in row)
            for row in rng.integers(0, 3, size=(batch, 1))
        ]
        inputs = [
            tuple(TERNARY[i] for i in row)
            for row in rng.integers(0, 3, size=(batch, 2))
        ]
        got_mask, got_words = _step_both_ternary(circuit, states, inputs)
        assert got_words == got_mask


# ---------------------------------------------------------------------------
# The sparse set-bit walk (regression for the O(num_lanes) scan).
# ---------------------------------------------------------------------------


class TestSparseGenericWalk:
    # A lane context with a handful of set bits spread over >1000 lane
    # positions: the old implementation walked every position up to the
    # highest bit; the fixed one visits set bits only, so results on
    # sparse contexts must still match a dense per-lane reference.
    SPARSE = (1 << 0) | (1 << 1) | (1 << 63) | (1 << 64) | (1 << 1000)

    def _dense_binary_reference(self, fn, ins, all_lanes):
        outs = [0] * fn.n_outputs
        for lane in range(all_lanes.bit_length()):
            bit = 1 << lane
            if not (all_lanes & bit):
                continue
            vals = fn.eval_binary(tuple(bool(m & bit) for m in ins))
            for pin, v in enumerate(vals):
                if v:
                    outs[pin] |= bit
        return outs

    def test_binary_sparse_context(self):
        fn = make_gate("XOR", 2)
        ins = [
            (1 << 0) | (1 << 64),
            (1 << 0) | (1 << 63) | (1 << 1000),
        ]
        got = _generic_binary(fn, ins, self.SPARSE)
        assert got == self._dense_binary_reference(fn, ins, self.SPARSE)
        # No output bit outside the lane context.
        assert all((m & ~self.SPARSE) == 0 for m in got)

    def test_ternary_sparse_context(self):
        fn = make_gate("NAND", 2)
        ins = [
            ((1 << 0) | (1 << 1000), (1 << 63) | (1 << 1000)),
            ((1 << 1) | (1 << 64), (1 << 0) | (1 << 1) | (1 << 64)),
        ]
        # Fill unset rail positions so every lane in SPARSE decodes: a
        # lane must never be (0, 0) inside the context.
        ins = [
            (a | (self.SPARSE & ~(a | b)), b) for a, b in ins
        ]
        got = _generic_ternary(fn, ins, self.SPARSE)
        for pin in range(fn.n_outputs):
            a, b = got[pin]
            assert (a | b) & self.SPARSE == self.SPARSE  # every lane decodes
            assert (a & ~self.SPARSE) == 0 and (b & ~self.SPARSE) == 0

    def test_word_fallbacks_match_mask_fallbacks(self):
        fn = HALF_ADDER
        batch = 130
        rng = np.random.default_rng(3)
        cols = [rng.random(batch) < 0.5 for _ in range(2)]
        mask_ctx = MASK.context(batch)
        word_ctx = WORDS.context(batch)
        mask_out = _generic_binary(fn, [column_to_mask(c) for c in cols], mask_ctx)
        word_out = _generic_binary_words(
            fn, [column_to_words(c) for c in cols], word_ctx
        )
        for m, w in zip(mask_out, word_out):
            assert np.array_equal(
                words_to_column(w, batch), mask_to_column(m, batch)
            )
        tern_cols = [
            tuple(TERNARY[i] for i in rng.integers(0, 3, size=batch))
            for _ in range(2)
        ]
        mask_rails = [MASK.pack_ternary_column(c) for c in tern_cols]
        word_rails = [WORDS.pack_ternary_column(c) for c in tern_cols]
        mask_t = _generic_ternary(fn, mask_rails, mask_ctx)
        word_t = _generic_ternary_words(fn, word_rails, word_ctx)
        for m, w in zip(mask_t, word_t):
            assert WORDS.unpack_ternary_column(w, batch) == (
                MASK.unpack_ternary_column(m, batch)
            )


# ---------------------------------------------------------------------------
# Registry, resolution and state enumeration.
# ---------------------------------------------------------------------------


class TestLaneEngineRegistry:
    def test_registry(self):
        assert LANE_ENGINES == ("mask", "words")
        assert isinstance(get_lane_engine("mask"), MaskLaneBackend)
        assert isinstance(get_lane_engine("words"), WordLaneBackend)
        assert get_lane_engine("mask") is MASK  # singletons
        with pytest.raises(ValueError, match="lane engine"):
            get_lane_engine("nope")

    def test_none_tracks_the_default_backend(self):
        previous = get_default_backend()
        try:
            set_default_backend("compiled")
            assert resolve_lane_engine(None) == "mask"
            set_default_backend("words")
            assert resolve_lane_engine(None) == "words"
            set_default_backend("interpreted")
            assert resolve_lane_engine(None) == "mask"
        finally:
            set_default_backend(previous)
        assert resolve_lane_engine("words") == "words"

    @pytest.mark.parametrize("engine", [MASK, WORDS])
    @pytest.mark.parametrize("n", (0, 1, 3, 7))
    def test_exhaustive_states_match_all_states_array(self, engine, n):
        rows = all_states_array(n)
        vals = engine.exhaustive_states(n)
        assert len(vals) == n
        for j in range(n):
            assert np.array_equal(
                engine.unpack_column(vals[j], rows.shape[0]), rows[:, j]
            )

    @pytest.mark.parametrize("engine", [MASK, WORDS])
    def test_state_range_blocks_tile_the_sweep(self, engine):
        n = 7  # 128 states = exactly two words
        rows = all_states_array(n)
        for start, stop in ((0, 128), (0, 70), (70, 128), (5, 6)):
            vals = engine.state_range(start, stop, n)
            batch = stop - start
            for j in range(n):
                assert np.array_equal(
                    engine.unpack_column(vals[j], batch), rows[start:stop, j]
                )


# ---------------------------------------------------------------------------
# Lane-engine-aware consumers: words == mask end to end.
# ---------------------------------------------------------------------------


class TestConsumersAgree:
    def _sequences(self, circuit, length=5, seed=0):
        rng = np.random.default_rng(seed)
        width = len(circuit.inputs)
        return [
            tuple(bool(v) for v in rng.random(width) < 0.5) for _ in range(length)
        ]

    def test_exact_simulator(self):
        circuit = build(11, num_inputs=2, num_gates=10, num_latches=7)
        seq = self._sequences(circuit)
        by_mask = ExactSimulator(circuit, lane_engine="mask")
        by_words = ExactSimulator(circuit, lane_engine="words")
        assert by_words.outputs(seq) == by_mask.outputs(seq)
        assert np.array_equal(
            by_words.final_states(seq), by_mask.final_states(seq)
        )

    def test_exact_simulator_with_faulty_overrides(self):
        circuit = figure1_design_c()
        seq = self._sequences(circuit, length=6, seed=3)
        net = sorted(circuit.nets())[0]
        by_mask = ExactSimulator(circuit, overrides={net: True}, lane_engine="mask")
        by_words = ExactSimulator(circuit, overrides={net: True}, lane_engine="words")
        assert by_words.outputs(seq) == by_mask.outputs(seq)

    def test_batched_binary_simulator(self):
        circuit = build(5, num_inputs=2, num_gates=8, num_latches=3)
        batch = 100
        rng = np.random.default_rng(1)
        states = rng.random((batch, circuit.num_latches)) < 0.5
        seq = [
            tuple(bool(v) for v in rng.random(len(circuit.inputs)) < 0.5)
            for _ in range(4)
        ]
        by_mask = BatchedBinarySimulator(circuit, lane_engine="mask")
        by_words = BatchedBinarySimulator(circuit, lane_engine="words")
        outs_m, final_m = by_mask.run(states, seq)
        outs_w, final_w = by_words.run(states, seq)
        assert np.array_equal(final_w, final_m)
        for m, w in zip(outs_m, outs_w):
            assert np.array_equal(w, m)

    def test_batched_ternary_simulator(self):
        circuit = figure1_design_d()
        rng = np.random.default_rng(2)
        sequences = [
            [
                tuple(
                    TERNARY[i] for i in rng.integers(0, 3, size=len(circuit.inputs))
                )
                for _ in range(4)
            ]
            for _ in range(70)  # crosses the word boundary
        ]
        by_mask = BatchedTernarySimulator(circuit, lane_engine="mask")
        by_words = BatchedTernarySimulator(circuit, lane_engine="words")
        assert by_words.run_sequences(sequences) == by_mask.run_sequences(sequences)
