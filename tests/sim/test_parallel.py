"""Tests for the process-pool execution layer (:mod:`repro.sim.parallel`).

The contract under test: with ``jobs > 1`` every parallel consumer
produces **bit-for-bit** the serial result (verdict maps, orders,
ternary outputs, state arrays, report counters), and when the pool
cannot start the work silently degrades to the serial in-process path.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.bench.generators import lfsr_circuit
from repro.bench.iscas import BENCHMARKS
from repro.bench.paper_circuits import (
    TABLE1_INPUT_SEQUENCE,
    figure1_design_c,
    figure1_design_d,
)
from repro.netlist.io_bench import parse_bench
from repro.netlist.transform import normalize_fanout
from repro.optimize.redundancy import remove_cls_redundancies
from repro.retime.validity import cls_equivalent, first_cls_difference
from repro.sim import parallel
from repro.sim.atpg import generate_tests, grade_test_set
from repro.sim.exact import ExactSimulator
from repro.sim.fault import FaultSimulator
from repro.sim.parallel import (
    ArrayPack,
    ParallelStats,
    SharedArrayPack,
    TRANSPORTS,
    auto_chunk_size,
    get_default_jobs,
    last_stats,
    make_array_pack,
    resolve_jobs,
    run_sharded,
    set_default_jobs,
)


def _s27():
    return normalize_fanout(parse_bench(BENCHMARKS["s27"], name="s27"))


def _doubler(payload, chunk):
    return [payload * item for item in chunk]


def _bad_task(payload, chunk):
    return [0]  # wrong result count, regardless of chunk size


# ---------------------------------------------------------------------------
# The primitive.
# ---------------------------------------------------------------------------


class TestRunSharded:
    def test_serial_path_used_for_jobs_1(self):
        out = run_sharded(_doubler, 3, [1, 2, 3], jobs=1, label="t")
        assert out == [3, 6, 9]
        assert last_stats().chunks == 0 and not last_stats().fallback

    def test_parallel_preserves_item_order(self):
        items = list(range(37))
        out = run_sharded(_doubler, 2, items, jobs=4, label="t")
        assert out == [2 * i for i in items]
        stats = last_stats()
        assert stats.jobs == 4 and stats.chunks > 1 and not stats.fallback

    def test_explicit_chunk_size(self):
        out = run_sharded(_doubler, 1, list(range(10)), jobs=2, chunk_size=3)
        assert out == list(range(10))
        assert last_stats().chunk_size == 3 and last_stats().chunks == 4

    def test_result_count_mismatch_raises(self):
        with pytest.raises(RuntimeError, match="returned"):
            run_sharded(_bad_task, None, [1, 2, 3, 4], jobs=2, chunk_size=2)

    def test_auto_chunk_size(self):
        assert auto_chunk_size(0, 4) == 1
        assert auto_chunk_size(1, 4) == 1
        assert auto_chunk_size(100, 4) == 7  # ceil(100 / 16)
        assert auto_chunk_size(16, 4) == 1

    def test_jobs_registry(self):
        assert get_default_jobs() == 1
        assert resolve_jobs(None) == 1
        assert resolve_jobs(5) == 5
        set_default_jobs(3)
        try:
            assert resolve_jobs(None) == 3
        finally:
            set_default_jobs(1)
        with pytest.raises(ValueError):
            set_default_jobs(0)
        with pytest.raises(ValueError):
            resolve_jobs(0)

    def test_observer_hook(self):
        seen = []
        parallel.add_observer(seen.append)
        try:
            run_sharded(_doubler, 1, [1, 2], jobs=1, label="observed")
        finally:
            parallel.remove_observer(seen.append)
        assert len(seen) == 1
        assert isinstance(seen[0], ParallelStats)
        assert seen[0].label == "observed" and seen[0].items == 2
        # Removing twice is a no-op.
        parallel.remove_observer(seen.append)


class TestFallback:
    @pytest.fixture(autouse=True)
    def _rearm_warning(self):
        # The fall-back diagnostic is once-per-process; re-arm it so each
        # test observes its own first warning.
        parallel.reset_fallback_warning()
        yield
        parallel.reset_fallback_warning()

    def test_pool_failure_falls_back_to_serial(self, monkeypatch):
        def broken(jobs, payload_bytes):
            raise OSError("no processes in this sandbox")

        monkeypatch.setattr(parallel, "_make_executor", broken)
        with pytest.warns(RuntimeWarning, match="running serially"):
            out = run_sharded(_doubler, 2, [1, 2, 3], jobs=4, label="t")
        assert out == [2, 4, 6]
        assert last_stats().fallback

    def test_unpicklable_payload_falls_back(self):
        payload = 2
        with pytest.warns(RuntimeWarning, match="running serially"):
            out = run_sharded(
                _lambda_ref_task, (payload, lambda x: x), [1, 2], jobs=2
            )
        assert out == [2, 4]
        assert last_stats().fallback

    def test_fault_grading_survives_broken_pool(self, monkeypatch):
        def broken(jobs, payload_bytes):
            raise OSError("pool unavailable")

        monkeypatch.setattr(parallel, "_make_executor", broken)
        circuit = _s27()
        tests = generate_tests(circuit, max_attempts=6, max_length=4).tests
        serial = FaultSimulator(circuit).run_test_set(tests)
        with pytest.warns(RuntimeWarning):
            fallback = FaultSimulator(circuit, jobs=4).run_test_set(tests)
        assert fallback == serial

    def test_warning_fires_once_per_process(self, monkeypatch):
        # Regression: on 1-core CI boxes where the pool can never start,
        # every sharded call used to repeat the RuntimeWarning.  Only
        # the first fall-back may warn; later ones stay silent (but
        # ParallelStats still records each fall-back).
        def broken(jobs, payload_bytes):
            raise OSError("no processes in this sandbox")

        monkeypatch.setattr(parallel, "_make_executor", broken)
        with pytest.warns(RuntimeWarning, match="further fall-backs"):
            run_sharded(_doubler, 2, [1, 2, 3], jobs=4, label="first")
        import warnings as warnings_mod

        with warnings_mod.catch_warnings():
            warnings_mod.simplefilter("error")
            out = run_sharded(_doubler, 2, [4, 5], jobs=4, label="second")
        assert out == [8, 10]
        assert last_stats().fallback

    def test_reset_rearms_the_warning(self, monkeypatch):
        def broken(jobs, payload_bytes):
            raise OSError("still no processes")

        monkeypatch.setattr(parallel, "_make_executor", broken)
        with pytest.warns(RuntimeWarning):
            run_sharded(_doubler, 2, [1, 2, 3], jobs=4)
        parallel.reset_fallback_warning()
        with pytest.warns(RuntimeWarning):
            run_sharded(_doubler, 2, [1, 2, 3], jobs=4)


def _lambda_ref_task(payload, chunk):
    value, _fn = payload
    return [value * item for item in chunk]


# ---------------------------------------------------------------------------
# Determinism of the consumers: parallel == serial, bit for bit.
# ---------------------------------------------------------------------------


class TestFaultGradingDeterminism:
    def test_run_test_set_identical_verdicts(self):
        circuit = _s27()
        tests = generate_tests(circuit, max_attempts=12, max_length=5).tests
        assert tests
        serial = FaultSimulator(circuit).run_test_set(tests)
        for jobs in (2, 4):
            sharded = FaultSimulator(circuit, jobs=jobs).run_test_set(tests)
            assert sharded == serial
            assert list(sharded) == list(serial)  # insertion order too

    def test_run_test_set_cls_semantics(self):
        circuit = _s27()
        tests = generate_tests(
            circuit, max_attempts=8, max_length=4, semantics="cls"
        ).tests
        serial = FaultSimulator(circuit, semantics="cls").run_test_set(tests)
        sharded = FaultSimulator(circuit, semantics="cls", jobs=3).run_test_set(tests)
        assert sharded == serial

    def test_grade_test_set_identical_result(self):
        circuit = _s27()
        tests = generate_tests(circuit, max_attempts=12, max_length=5).tests
        serial = grade_test_set(circuit, tests)
        sharded = grade_test_set(circuit, tests, jobs=4)
        assert sharded.detected == serial.detected
        assert list(sharded.detected) == list(serial.detected)
        assert sharded.undetected == serial.undetected
        assert sharded.attempts == serial.attempts
        assert sharded.coverage == serial.coverage

    def test_paper_circuit_coverage_identical(self):
        for circuit in (figure1_design_d(), figure1_design_c()):
            tests = generate_tests(circuit, max_attempts=10, max_length=4).tests
            serial = FaultSimulator(circuit).coverage(tests)
            sharded = FaultSimulator(circuit, jobs=2).coverage(tests)
            assert sharded == serial


class TestExactSweepDeterminism:
    def _sequences(self, circuit, length=6, seed=0):
        rng = random.Random(seed)
        width = len(circuit.inputs)
        return [tuple(rng.random() < 0.5 for _ in range(width)) for _ in range(length)]

    def test_exhaustive_outputs_and_final_states(self):
        circuit = lfsr_circuit([0, 3, 5, 9])  # 10 latches -> 1024 lanes
        seq = self._sequences(circuit)
        serial = ExactSimulator(circuit)
        sharded = ExactSimulator(circuit, jobs=4)
        assert sharded.outputs(seq) == serial.outputs(seq)
        assert np.array_equal(sharded.final_states(seq), serial.final_states(seq))

    def test_sampled_and_explicit_states(self):
        circuit = lfsr_circuit([0, 2, 4, 7])
        seq = self._sequences(circuit, seed=1)
        serial = ExactSimulator(circuit, sample=400, seed=7)
        sharded = ExactSimulator(circuit, sample=400, seed=7, jobs=3)
        assert sharded.outputs(seq) == serial.outputs(seq)
        states = np.array(
            [[bool((i >> j) & 1) for j in range(circuit.num_latches)] for i in range(200)]
        )
        assert ExactSimulator(circuit, jobs=2).outputs(seq, states=states) == (
            ExactSimulator(circuit).outputs(seq, states=states)
        )

    def test_small_sweeps_stay_serial(self):
        # Figure 1's D has one latch; 2 lanes is under the parallel floor.
        d = figure1_design_d()
        sim = ExactSimulator(d, jobs=4)
        seq = [(bool(v[0]),) for v in TABLE1_INPUT_SEQUENCE]
        assert sim._use_parallel(None) == 0
        assert sim.outputs(seq) == ExactSimulator(d).outputs(seq)


class TestValidityAndRedundancyDeterminism:
    def test_cls_equivalent_parallel(self):
        d, c = figure1_design_d(), figure1_design_c()
        assert cls_equivalent(d, c, count=10, length=8, jobs=3, seed=0)
        assert cls_equivalent(d, c, count=10, length=8, seed=0) == cls_equivalent(
            d, c, count=10, length=8, jobs=3, seed=0
        )

    def test_first_cls_difference_locates_same_witness(self):
        # An inverted copy differs on every sequence from cycle 0 or later;
        # the parallel scan must report the same first witness.
        d = figure1_design_d()
        from repro.retime.validity import random_ternary_sequences

        sequences = random_ternary_sequences(len(d.inputs), count=9, length=7, seed=4)
        from repro.netlist.circuit import Cell
        from repro.logic.functions import make_gate

        broken = figure1_design_d().copy()
        # Flip the gate driving the primary output: AND -> NAND.
        for cell in broken.cells:
            if broken.outputs[0] in cell.outputs:
                broken.replace_cell(
                    cell.name,
                    Cell(
                        cell.name,
                        make_gate("NAND", cell.function.n_inputs),
                        cell.inputs,
                        cell.outputs,
                    ),
                )
                break
        serial = first_cls_difference(d, broken, sequences)
        sharded = first_cls_difference(d, broken, sequences, jobs=3)
        assert serial is not None
        assert sharded == serial

    def test_redundancy_removal_identical_report(self):
        serial = remove_cls_redundancies(figure1_design_c())
        sharded = remove_cls_redundancies(figure1_design_c(), jobs=3)
        assert sharded.substitutions == serial.substitutions
        assert sharded.tested == serial.tested
        assert sharded.before == serial.before
        assert sharded.after == serial.after


# ---------------------------------------------------------------------------
# Array transports: inline pickling vs shared memory.
# ---------------------------------------------------------------------------


def _sample_arrays():
    rng = np.random.default_rng(0)
    return {
        "tests": rng.random((5, 3, 2)) < 0.5,  # bool, odd byte count
        "goods": rng.integers(0, 3, size=(5, 3, 4)).astype(np.uint8),
        "lengths": np.arange(5, dtype=np.int64),
        "words": rng.integers(0, 2**63, size=7).astype(np.uint64),
    }


def _read_from_pack(payload, chunk):
    pack, scale = payload
    lengths = pack["lengths"]
    return [int(lengths[i]) * scale for i in chunk]


class TestArrayPacks:
    def test_inline_pack_interface(self):
        arrays = _sample_arrays()
        pack = ArrayPack(arrays)
        assert pack.transport == "pickle"
        assert set(pack.keys()) == set(arrays)
        assert "tests" in pack and "absent" not in pack
        for name, source in arrays.items():
            assert np.array_equal(pack[name], source)
        assert pack.nbytes == sum(a.nbytes for a in arrays.values())
        assert pack.shm_bytes == 0
        pack.release()  # no-op, callable twice
        pack.release()

    def test_shared_pack_views_match_sources(self):
        arrays = _sample_arrays()
        pack = make_array_pack(arrays, transport="shm")
        try:
            assert isinstance(pack, SharedArrayPack)
            assert pack.transport == "shm"
            assert set(pack.keys()) == set(arrays)
            for name, source in arrays.items():
                view = pack[name]
                assert np.array_equal(view, source)
                assert view.dtype == source.dtype
                assert not view.flags.writeable  # read-only on purpose
            # The segment is 8-byte aligned per array, so it may carry
            # padding beyond the raw array bytes -- never less.
            assert pack.shm_bytes >= pack.nbytes
        finally:
            pack.release()

    def test_shared_pack_pickles_by_name_not_by_payload(self):
        import pickle as pickle_mod

        arrays = {"big": np.ones(100_000, dtype=np.uint64)}
        pack = make_array_pack(arrays, transport="shm")
        try:
            blob = pickle_mod.dumps(pack)
            # The 800 kB array must not cross the pickle boundary.
            assert len(blob) < 1000
            clone = pickle_mod.loads(blob)
            try:
                assert np.array_equal(clone["big"], arrays["big"])
                assert clone.shm_bytes == pack.shm_bytes
            finally:
                clone.release()  # attachment close; creator still owns
            assert np.array_equal(pack["big"], arrays["big"])
        finally:
            pack.release()

    def test_transport_selection_and_fallback(self, monkeypatch):
        arrays = {"a": np.arange(4)}
        assert isinstance(make_array_pack(arrays, transport="pickle"), ArrayPack)
        auto = make_array_pack(arrays)
        assert auto.transport in ("shm", "pickle")  # shm where supported
        auto.release()
        with pytest.raises(ValueError, match="transport"):
            make_array_pack(arrays, transport="smoke-signals")
        assert "auto" in TRANSPORTS

        def broken(arrays_):
            raise OSError("no shared memory here")

        monkeypatch.setattr(parallel, "SharedArrayPack", broken)
        degraded = make_array_pack(arrays)  # auto degrades silently
        assert isinstance(degraded, ArrayPack)
        with pytest.raises(OSError):
            make_array_pack(arrays, transport="shm")  # forced shm does not

    def test_workers_read_through_the_pack(self):
        pack = make_array_pack(_sample_arrays())
        try:
            out = run_sharded(
                _read_from_pack, (pack, 10), [0, 1, 2, 3, 4], jobs=2, label="pack"
            )
        finally:
            pack.release()
        assert out == [0, 10, 20, 30, 40]
        stats = last_stats()
        if pack.transport == "shm":
            assert stats.shm_bytes == pack.shm_bytes
        if not stats.fallback and stats.chunks:
            assert stats.payload_bytes > 0


class TestParallelStatsBytes:
    def test_defaults_and_summary(self):
        stats = ParallelStats(
            label="x", jobs=2, items=3, chunks=1, chunk_size=3,
            elapsed=0.0, fallback=False,
        )
        assert stats.payload_bytes == 0 and stats.shm_bytes == 0
        assert "payload" not in stats.summary()
        loud = ParallelStats(
            label="x",
            jobs=2,
            items=3,
            chunks=1,
            chunk_size=3,
            elapsed=0.0,
            fallback=False,
            payload_bytes=120,
            shm_bytes=4096,
        )
        assert "120 payload B" in loud.summary()
        assert "4096 shm B" in loud.summary()

    def test_serial_path_records_shm_bytes(self):
        pack = make_array_pack({"lengths": np.arange(3, dtype=np.int64)})
        try:
            run_sharded(_read_from_pack, (pack, 1), [0, 1, 2], jobs=1, label="serial")
            stats = last_stats()
            assert stats.payload_bytes == 0  # nothing pickled
            assert stats.shm_bytes == pack.shm_bytes
        finally:
            pack.release()


# ---------------------------------------------------------------------------
# The words lane engine under sharding: still bit-for-bit.
# ---------------------------------------------------------------------------


class TestWordsBackendDeterminism:
    def _sequences(self, circuit, length=6, seed=0):
        rng = random.Random(seed)
        width = len(circuit.inputs)
        return [tuple(rng.random() < 0.5 for _ in range(width)) for _ in range(length)]

    def test_exact_sweep_words_parallel_matches_mask_serial(self):
        circuit = lfsr_circuit([0, 3, 5, 9])
        seq = self._sequences(circuit)
        reference = ExactSimulator(circuit, lane_engine="mask")
        sharded = ExactSimulator(circuit, lane_engine="words", jobs=4)
        assert sharded.outputs(seq) == reference.outputs(seq)
        assert np.array_equal(
            sharded.final_states(seq), reference.final_states(seq)
        )

    def test_fault_grading_words_backend_matches(self):
        from repro.sim.compiled import get_default_backend, set_default_backend

        circuit = _s27()
        tests = generate_tests(circuit, max_attempts=8, max_length=4).tests
        reference = FaultSimulator(circuit).run_test_set(tests)
        previous = get_default_backend()
        set_default_backend("words")
        try:
            serial = FaultSimulator(circuit).run_test_set(tests)
            sharded = FaultSimulator(circuit, jobs=2).run_test_set(tests)
        finally:
            set_default_backend(previous)
        assert serial == reference
        assert sharded == reference


# ---------------------------------------------------------------------------
# Pickling support underneath the layer.
# ---------------------------------------------------------------------------


class TestPickling:
    def test_circuit_round_trip(self):
        import pickle

        circuit = _s27()
        clone = pickle.loads(pickle.dumps(circuit))
        assert clone.nets() == circuit.nets()
        assert [c.name for c in clone.cells] == [c.name for c in circuit.cells]

    def test_compiled_program_round_trip_drops_codegen(self):
        import pickle

        from repro.sim.compiled import compile_circuit

        circuit = figure1_design_d()
        compiled = compile_circuit(circuit)
        compiled.step_binary((False,), (True,))  # force codegen
        clone = pickle.loads(pickle.dumps(compiled))
        assert clone._fn_binary is None  # dropped, regenerated lazily
        assert clone.signature == compiled.signature
        assert clone.step_binary((False,), (True,)) == compiled.step_binary(
            (False,), (True,)
        )

    def test_library_cell_functions_pickle_to_singletons(self):
        import pickle

        from repro.logic.functions import get_function, junction, make_gate

        for fn in (make_gate("AND", 3), junction(4), make_gate("CONST0", 0)):
            clone = pickle.loads(pickle.dumps(fn))
            assert clone is get_function(fn.name)


# ---------------------------------------------------------------------------
# The reusable pool.
# ---------------------------------------------------------------------------


class TestWorkerPool:
    def test_reuse_produces_identical_results(self):
        serial = run_sharded(_doubler, 3, list(range(20)), jobs=1)
        with parallel.WorkerPool(jobs=2) as pool:
            first = run_sharded(_doubler, 3, list(range(20)), pool=pool)
            second = run_sharded(_doubler, 3, list(range(20)), pool=pool)
            assert pool.launches == 1  # one executor serves both calls
        assert first == serial
        assert second == serial

    def test_distinct_payloads_are_not_stale(self):
        # The worker-side payload cache is keyed by token: a new payload
        # must never be answered with a cached older one.
        with parallel.WorkerPool(jobs=2) as pool:
            assert run_sharded(_doubler, 2, [1, 2, 3], pool=pool) == [2, 4, 6]
            assert run_sharded(_doubler, 5, [1, 2, 3], pool=pool) == [5, 10, 15]
            assert run_sharded(_doubler, 2, [1, 2, 3], pool=pool) == [2, 4, 6]

    def test_pool_jobs_resolve_when_unspecified(self):
        with parallel.WorkerPool(jobs=2) as pool:
            out = run_sharded(_doubler, 1, [7, 8], pool=pool)  # no jobs= given
            assert out == [7, 8]
            stats = last_stats()
            assert stats.jobs == 2
            assert stats.pooled

    def test_single_item_stays_serial_even_with_a_pool(self):
        with parallel.WorkerPool(jobs=2) as pool:
            assert run_sharded(_doubler, 1, [7], pool=pool) == [7]
            assert not last_stats().pooled
            assert pool.launches == 0  # shortcut never spawned workers

    def test_close_is_idempotent_and_lazy(self):
        pool = parallel.WorkerPool(jobs=2)
        assert not pool.started  # nothing spawned until first use
        pool.close()
        pool.close()
        assert pool.launches == 0

    def test_shared_pool_install_and_restore(self):
        pool = parallel.WorkerPool(jobs=2)
        try:
            assert parallel.get_shared_pool() is None
            previous = parallel.set_shared_pool(pool)
            assert previous is None
            assert parallel.get_shared_pool() is pool
            # No pool=/jobs= anywhere: the shared pool carries the call.
            assert run_sharded(_doubler, 4, [1, 2], label="shared") == [4, 8]
            assert last_stats().pooled
        finally:
            restored = parallel.set_shared_pool(None)
            assert restored is pool
            pool.close()
        run_sharded(_doubler, 4, [1, 2], jobs=1)
        assert not last_stats().pooled

    def test_broken_pool_falls_back_to_serial(self, monkeypatch):
        def broken(jobs):
            raise OSError("no processes in this sandbox")

        monkeypatch.setattr(parallel, "_make_pool_executor", broken)
        parallel.reset_fallback_warning()
        try:
            with parallel.WorkerPool(jobs=2) as pool:
                with pytest.warns(RuntimeWarning, match="running serially"):
                    out = run_sharded(_doubler, 2, [1, 2, 3], pool=pool)
            assert out == [2, 4, 6]
        finally:
            parallel.reset_fallback_warning()

    def test_fault_grading_on_a_shared_pool_matches_serial(self):
        circuit = _s27()
        tests = generate_tests(circuit, max_attempts=8, seed=3).tests
        serial = FaultSimulator(circuit).run_test_set(tests)
        pool = parallel.WorkerPool(jobs=2)
        parallel.set_shared_pool(pool)
        old_jobs = get_default_jobs()
        set_default_jobs(2)
        try:
            pooled = FaultSimulator(circuit).run_test_set(tests)
        finally:
            set_default_jobs(old_jobs)
            parallel.set_shared_pool(None)
            pool.close()
        assert pooled == serial
