"""Unit and property tests for the ternary algebra."""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.logic.ternary import (
    ONE,
    T,
    X,
    ZERO,
    all_ternary_vectors,
    definite_completions,
    format_ternary,
    format_ternary_sequence,
    from_bool,
    is_definite,
    meet,
    parse_ternary_string,
    refines,
    t_and,
    t_and_all,
    t_buf,
    t_mux,
    t_nand,
    t_nor,
    t_not,
    t_or,
    t_or_all,
    t_xnor,
    t_xor,
    t_xor_all,
    to_bool,
    to_ternary,
    vector_refines,
)

ALL = (ZERO, ONE, X)
ternary = st.sampled_from(ALL)


# ---------------------------------------------------------------------------
# Conversions.
# ---------------------------------------------------------------------------


def test_to_ternary_accepts_bools_ints_chars_none():
    assert to_ternary(True) is ONE
    assert to_ternary(False) is ZERO
    assert to_ternary(0) is ZERO
    assert to_ternary(1) is ONE
    assert to_ternary(2) is X
    assert to_ternary("x") is X
    assert to_ternary("X") is X
    assert to_ternary("?") is X
    assert to_ternary(None) is X
    assert to_ternary(ONE) is ONE


def test_to_ternary_rejects_garbage():
    with pytest.raises(ValueError):
        to_ternary(3)
    with pytest.raises(ValueError):
        to_ternary("z")
    with pytest.raises(TypeError):
        to_ternary(1.5)


def test_to_bool_roundtrip_and_x_rejection():
    assert to_bool(from_bool(True)) is True
    assert to_bool(from_bool(False)) is False
    with pytest.raises(ValueError):
        to_bool(X)


def test_is_definite():
    assert is_definite(ZERO) and is_definite(ONE) and not is_definite(X)


# ---------------------------------------------------------------------------
# Kleene tables: spot values from the paper, exhaustive laws.
# ---------------------------------------------------------------------------


def test_paper_local_propagation_rule():
    # "0 · X = 0 but 1 · X = X" -- the defining CLS property.
    assert t_and(ZERO, X) is ZERO
    assert t_and(X, ZERO) is ZERO
    assert t_and(ONE, X) is X
    assert t_and(X, ONE) is X


def test_or_duals():
    assert t_or(ONE, X) is ONE
    assert t_or(X, ONE) is ONE
    assert t_or(ZERO, X) is X


def test_not_table():
    assert t_not(ZERO) is ONE
    assert t_not(ONE) is ZERO
    assert t_not(X) is X


def test_xor_any_x_is_x():
    for v in ALL:
        assert t_xor(v, X) is (X if True else X)
        assert t_xor(X, v) is X
    assert t_xor(ONE, ONE) is ZERO
    assert t_xor(ONE, ZERO) is ONE


def test_derived_gates_match_compositions():
    for a, b in itertools.product(ALL, repeat=2):
        assert t_nand(a, b) is t_not(t_and(a, b))
        assert t_nor(a, b) is t_not(t_or(a, b))
        assert t_xnor(a, b) is t_not(t_xor(a, b))
    assert t_buf(X) is X


def test_mux_definite_select():
    assert t_mux(ZERO, ONE, ZERO) is ONE
    assert t_mux(ONE, ONE, ZERO) is ZERO
    assert t_mux(ONE, X, ONE) is ONE


def test_mux_unknown_select_meets_branches():
    assert t_mux(X, ONE, ONE) is ONE  # both branches agree -> definite
    assert t_mux(X, ZERO, ZERO) is ZERO
    assert t_mux(X, ZERO, ONE) is X
    assert t_mux(X, X, ONE) is X


def _definite(v):
    return (False, True) if v is X else ((v is ONE),)


def _exact_binary(op, a, b):
    outs = {op(x, y) for x in _definite(a) for y in _definite(b)}
    if outs == {True}:
        return ONE
    if outs == {False}:
        return ZERO
    return X


@pytest.mark.parametrize(
    "tern_op,bool_op",
    [
        (t_and, lambda a, b: a and b),
        (t_or, lambda a, b: a or b),
        (t_xor, lambda a, b: a != b),
        (t_nand, lambda a, b: not (a and b)),
        (t_nor, lambda a, b: not (a or b)),
        (t_xnor, lambda a, b: a == b),
    ],
)
def test_binary_ops_are_exact_ternary_images(tern_op, bool_op):
    """Each Kleene connective is the exact ternary image of its Boolean
    counterpart -- per-gate exactness, the basis of 'local propagation'."""
    for a, b in itertools.product(ALL, repeat=2):
        assert tern_op(a, b) is _exact_binary(bool_op, a, b)


@given(a=ternary, b=ternary, ap=ternary, bp=ternary)
def test_connectives_monotone_in_information_order(a, b, ap, bp):
    """If inputs get more defined, outputs never get less defined."""
    if refines(ap, a) and refines(bp, b):
        for op in (t_and, t_or, t_xor, t_nand, t_nor, t_xnor):
            assert refines(op(ap, bp), op(a, b))


@given(st.lists(ternary, max_size=6))
def test_nary_ops_fold_their_binary_versions(values):
    import functools

    assert t_and_all(values) is functools.reduce(t_and, values, ONE)
    assert t_or_all(values) is functools.reduce(t_or, values, ZERO)
    assert t_xor_all(values) is functools.reduce(t_xor, values, ZERO)


# ---------------------------------------------------------------------------
# Information order, meet.
# ---------------------------------------------------------------------------


def test_refines_is_a_partial_order_with_bottom_x():
    for v in ALL:
        assert refines(v, X)  # X is bottom
        assert refines(v, v)  # reflexive
    assert not refines(X, ZERO)
    assert not refines(ZERO, ONE)


@given(a=ternary, b=ternary)
def test_meet_is_glb(a, b):
    m = meet(a, b)
    assert refines(a, m) and refines(b, m)
    # Greatest: any common lower bound is refined-by m... in a flat
    # domain the only candidates are m itself and X.
    if a is b:
        assert m is a
    else:
        assert m is X


# ---------------------------------------------------------------------------
# Sequences and vectors.
# ---------------------------------------------------------------------------


def test_parse_ternary_string_paper_notation():
    assert parse_ternary_string("0·1·1·1") == (ZERO, ONE, ONE, ONE)
    assert parse_ternary_string("0 X 1") == (ZERO, X, ONE)
    assert parse_ternary_string("0.0.1") == (ZERO, ZERO, ONE)


def test_format_roundtrip():
    seq = (ZERO, X, ONE, ONE)
    assert parse_ternary_string(format_ternary_sequence(seq)) == seq
    assert format_ternary(X) == "X"


@given(st.lists(ternary, min_size=1, max_size=8))
def test_format_parse_roundtrip_property(seq):
    assert parse_ternary_string(format_ternary_sequence(seq)) == tuple(seq)


def test_all_ternary_vectors_counts():
    assert len(list(all_ternary_vectors(0))) == 1
    assert len(list(all_ternary_vectors(3))) == 27
    with pytest.raises(ValueError):
        list(all_ternary_vectors(-1))


def test_definite_completions_expand_x_positions():
    comps = set(definite_completions((X, ONE)))
    assert comps == {(ZERO, ONE), (ONE, ONE)}
    assert list(definite_completions(())) == [()]


@given(st.lists(ternary, max_size=6))
def test_definite_completions_all_refine_original(vec):
    comps = list(definite_completions(vec))
    assert len(comps) == 2 ** sum(1 for v in vec if v is X)
    for comp in comps:
        assert vector_refines(comp, vec)
        assert all(is_definite(v) for v in comp)


def test_vector_refines_length_mismatch():
    with pytest.raises(ValueError):
        vector_refines((ZERO,), (ZERO, ONE))
