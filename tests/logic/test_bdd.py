"""Tests for the ROBDD engine: canonicity, operators, quantifiers."""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.bdd import BDDManager


@pytest.fixture
def m():
    return BDDManager()


# ---------------------------------------------------------------------------
# Basics and canonicity.
# ---------------------------------------------------------------------------


def test_constants(m):
    assert m.true.is_true and not m.true.is_false
    assert m.false.is_false
    assert m.constant(True) == m.true
    assert (~m.true) == m.false


def test_variable_identity(m):
    a1 = m.variable("a")
    a2 = m.variable("a")
    assert a1 == a2
    assert m.variable_names == ("a",)


def test_canonicity_of_equivalent_formulas(m):
    a, b, c = m.declare("a", "b", "c")
    # Distribution: a & (b | c) == (a & b) | (a & c)
    assert (a & (b | c)) == ((a & b) | (a & c))
    # De Morgan.
    assert ~(a & b) == (~a | ~b)
    # XOR via ands/ors.
    assert (a ^ b) == ((a & ~b) | (~a & b))
    # Idempotence / complements.
    assert (a & a) == a
    assert (a & ~a) == m.false
    assert (a | ~a) == m.true


def test_iff_and_implies(m):
    a, b = m.declare("a", "b")
    assert a.iff(b) == ~(a ^ b)
    assert a.implies(b) == (~a | b)
    assert m.false.implies(a).is_true


def test_cross_manager_operations_rejected():
    m1, m2 = BDDManager(), BDDManager()
    with pytest.raises(ValueError):
        m1.variable("a") & m2.variable("a")


# ---------------------------------------------------------------------------
# Semantics against brute force.
# ---------------------------------------------------------------------------


def _random_formula(m, variables, draw):
    """Build a random formula and a matching Python evaluator."""
    choice = draw(st.integers(0, 6))
    if choice == 0 or not variables:
        value = draw(st.booleans())
        return m.constant(value), (lambda env, _v=value: _v)
    if choice in (1, 2):
        name = draw(st.sampled_from(variables))
        return m.variable(name), (lambda env, _n=name: env[_n])
    left, left_fn = _random_formula(m, variables, draw)
    right, right_fn = _random_formula(m, variables, draw)
    if choice == 3:
        return left & right, (lambda env: left_fn(env) and right_fn(env))
    if choice == 4:
        return left | right, (lambda env: left_fn(env) or right_fn(env))
    if choice == 5:
        return left ^ right, (lambda env: left_fn(env) != right_fn(env))
    return ~left, (lambda env: not left_fn(env))


@settings(deadline=None, max_examples=25)
@given(data=st.data())
def test_bdd_matches_brute_force_truth_table(data):
    m = BDDManager()
    variables = ["a", "b", "c", "d"]
    for name in variables:
        m.variable(name)
    f, fn = _random_formula(m, variables, data.draw)
    for bits in itertools.product((False, True), repeat=len(variables)):
        env = dict(zip(variables, bits))
        assert m.evaluate(f, env) == fn(env)


@settings(deadline=None, max_examples=15)
@given(data=st.data())
def test_semantically_equal_formulas_share_a_node(data):
    """Canonicity, property-tested: equal truth tables <=> equal index."""
    m = BDDManager()
    variables = ["a", "b", "c"]
    for name in variables:
        m.variable(name)
    f, f_fn = _random_formula(m, variables, data.draw)
    g, g_fn = _random_formula(m, variables, data.draw)
    tables_equal = all(
        f_fn(dict(zip(variables, bits))) == g_fn(dict(zip(variables, bits)))
        for bits in itertools.product((False, True), repeat=3)
    )
    assert (f == g) == tables_equal


# ---------------------------------------------------------------------------
# Restriction, quantification, renaming.
# ---------------------------------------------------------------------------


def test_restrict_cofactors(m):
    a, b = m.declare("a", "b")
    f = (a & b) | (~a & ~b)  # XNOR
    assert f.restrict({"a": True}) == b
    assert f.restrict({"a": False}) == ~b
    assert f.restrict({"a": True, "b": True}).is_true


def test_exists_forall(m):
    a, b, c = m.declare("a", "b", "c")
    f = (a & b) | c
    assert f.exists(["a"]) == (b | c)
    assert f.forall(["a"]) == c
    # Quantifying out everything yields a constant.
    assert f.exists(["a", "b", "c"]).is_true
    assert (a & ~a).exists(["a"]).is_false


def test_rename_adjacent_pairs(m):
    # Interleaved declaration as the symbolic machines use.
    s0, s0n, s1, s1n = m.declare("s0", "s0'", "s1", "s1'")
    f = s0n & ~s1n
    g = f.rename({"s0'": "s0", "s1'": "s1"})
    assert g == (s0 & ~s1)


def test_rename_order_incompatible_falls_back_to_substitution(m):
    # {a->b, b->a} would swap levels, so the linear relabelling walk is
    # unsound; the general simultaneous-substitution path must kick in.
    a, b = m.declare("a", "b")
    f = a & ~b
    assert f.rename({"a": "b", "b": "a"}) == (b & ~a)
    g = (a | b).rename({"a": "b", "b": "a"})
    assert g == (a | b)  # symmetric function is a fixpoint


def test_rename_rejects_unregistered_variable(m):
    a, b = m.declare("a", "b")
    with pytest.raises(KeyError, match="unregistered"):
        (a & b).rename({"a": "zz"})


def test_rename_empty_mapping_is_identity(m):
    a = m.variable("a")
    assert a.rename({}) == a


# ---------------------------------------------------------------------------
# Support, satisfy, count.
# ---------------------------------------------------------------------------


def test_support(m):
    a, b, c = m.declare("a", "b", "c")
    f = (a & b) | (a & ~b)  # == a
    assert f == a
    assert f.support() == ("a",)
    assert ((a ^ c)).support() == ("a", "c")
    assert m.true.support() == ()


def test_satisfy_one(m):
    a, b = m.declare("a", "b")
    assert m.false.satisfy_one() is None
    model = (a & ~b).satisfy_one()
    assert model == {"a": True, "b": False}
    assert m.true.satisfy_one() == {}


def test_count(m):
    a, b, c = m.declare("a", "b", "c")
    assert (a & b).count(["a", "b"]) == 1
    assert (a | b).count(["a", "b"]) == 3
    assert (a | b).count(["a", "b", "c"]) == 6
    assert m.true.count(["a", "b", "c"]) == 8
    assert m.false.count(["a"]) == 0
    with pytest.raises(ValueError, match="missing"):
        (a & b).count(["a"])


def test_cube_and_bulk_ops(m):
    cube = m.cube({"x": True, "y": False})
    assert cube.satisfy_one() == {"x": True, "y": False}
    assert cube.count(["x", "y"]) == 1
    a, b, c = m.declare("a", "b", "c")
    assert m.conjunction([a, b, c]) == (a & b & c)
    assert m.disjunction([]) == m.false
    assert m.conjunction([]) == m.true


def test_evaluate_requires_full_assignment(m):
    a, b = m.declare("a", "b")
    with pytest.raises(ValueError, match="missing"):
        m.evaluate(a & b, {"a": True})


def test_size_and_num_nodes(m):
    a, b, c = m.declare("a", "b", "c")
    f = (a & b) | c
    assert m.size_of(f) >= 3
    assert m.num_nodes >= m.size_of(f)


# ---------------------------------------------------------------------------
# relprod: the fused and-exists.
# ---------------------------------------------------------------------------


EIGHT_VARS = ["a", "b", "c", "d", "e", "f", "g", "h"]


@settings(deadline=None, max_examples=12)
@given(data=st.data())
def test_relprod_equals_exists_of_conjunction(data):
    """``relprod(f, g, V) == exists(V, f & g)`` against brute force,
    up to 8 variables."""
    m = BDDManager()
    width = data.draw(st.integers(2, 8))
    variables = EIGHT_VARS[:width]
    for name in variables:
        m.variable(name)
    f, f_fn = _random_formula(m, variables, data.draw)
    g, g_fn = _random_formula(m, variables, data.draw)
    quantified = data.draw(
        st.lists(st.sampled_from(variables), min_size=1, unique=True)
    )
    fused = m.relprod(f, g, quantified)
    reference = (f & g).exists(quantified)
    assert fused == reference  # canonicity: same function, same node
    # And against the truth table of ∃V. f∧g directly.
    free = [name for name in variables if name not in quantified]
    for bits in itertools.product((False, True), repeat=len(free)):
        env = dict(zip(free, bits))
        expected = any(
            f_fn({**env, **dict(zip(quantified, qbits))})
            and g_fn({**env, **dict(zip(quantified, qbits))})
            for qbits in itertools.product((False, True), repeat=len(quantified))
        )
        assert m.evaluate(fused, {**env, **{q: False for q in quantified}}) == expected


def test_relprod_trivial_cases(m):
    a, b = m.declare("a", "b")
    assert m.relprod(m.false, a, ["a"]).is_false
    assert m.relprod(a, m.true, ["a"]).is_true
    assert m.relprod(a, ~a, ["a"]).is_false
    # No quantified variables: plain conjunction.
    assert m.relprod(a, b, []) == (a & b)


def test_relprod_rejects_foreign_operands(m):
    other = BDDManager()
    with pytest.raises(ValueError):
        m.relprod(m.variable("a"), other.variable("a"), ["a"])


def test_relprod_counters_advance(m):
    a, b, c = m.declare("a", "b", "c")
    before = m.stats["relprod_calls"]
    m.relprod(a & b, b & c, ["b"])
    assert m.stats["relprod_calls"] > before


# ---------------------------------------------------------------------------
# Garbage collection.
# ---------------------------------------------------------------------------


class TestGarbageCollection:
    def test_collect_preserves_root_semantics(self):
        """Brute-force truth tables of protected roots are unchanged by
        a collection that frees everything else."""
        m = BDDManager()
        variables = ["a", "b", "c", "d"]
        for name in variables:
            m.variable(name)
        a, b, c, d = (m.variable(n) for n in variables)
        keep = (a & b) | (c ^ d)
        truth = {
            bits: m.evaluate(keep, dict(zip(variables, bits)))
            for bits in itertools.product((False, True), repeat=4)
        }
        # Garbage: lots of unrelated intermediates.
        for i in range(6):
            _ = (a ^ c) & (b | d) & m.cube({"a": bool(i % 2)})
        freed = m.collect([keep])
        assert freed > 0
        for bits, expected in truth.items():
            assert m.evaluate(keep, dict(zip(variables, bits))) == expected

    @settings(deadline=None, max_examples=15)
    @given(data=st.data())
    def test_collect_preserves_semantics_property(self, data):
        m = BDDManager()
        variables = EIGHT_VARS[: data.draw(st.integers(2, 6))]
        for name in variables:
            m.variable(name)
        f, f_fn = _random_formula(m, variables, data.draw)
        garbage, _ = _random_formula(m, variables, data.draw)
        del garbage
        m.collect([f])
        for bits in itertools.product((False, True), repeat=len(variables)):
            env = dict(zip(variables, bits))
            assert m.evaluate(f, env) == f_fn(env)

    def test_protect_survives_collect_without_roots(self):
        m = BDDManager()
        a, b = m.declare("a", "b")
        f = m.protect(a & b)
        m.collect()
        assert f.satisfy_one() == {"a": True, "b": True}

    def test_unprotect_is_refcounted(self):
        m = BDDManager()
        a, b = m.declare("a", "b")
        f = a ^ b
        m.protect(f)
        m.protect(f)
        m.unprotect(f)
        m.collect()  # still protected once
        assert f.count(["a", "b"]) == 2

    def test_freed_slots_are_reused(self):
        """After a sweep, new allocations fill the free list before
        growing the node arrays."""
        m = BDDManager()
        a, b, c = m.declare("a", "b", "c")
        garbage = (a ^ b) & (b ^ c) | (a & ~c)
        before = m.num_nodes
        freed = m.collect([a, b, c])  # keep the variables, drop the rest
        assert freed > 0
        del garbage  # handle invalidated by the sweep
        rebuilt = (a ^ b) & (b ^ c) | (a & ~c)
        assert m.num_nodes == before  # reused slots, no array growth
        assert rebuilt.count(["a", "b", "c"]) == 4

    def test_canonicity_restored_after_collect(self):
        """Hash-consing stays canonical across a GC: rebuilding an
        equivalent formula lands on one node index again."""
        m = BDDManager()
        a, b = m.declare("a", "b")
        f = a & b
        m.collect([f, a, b])
        g = ~(~a | ~b)  # De Morgan: same function, built differently
        assert g == f

    def test_collect_stats(self):
        m = BDDManager()
        a, b = m.declare("a", "b")
        _ = a & b
        m.collect()
        assert m.stats["gc_runs"] == 1
        assert m.stats["gc_freed_nodes"] > 0
        assert m.live_node_count == 2  # only terminals survive

    def test_collect_rejects_foreign_roots(self):
        m, other = BDDManager(), BDDManager()
        with pytest.raises(ValueError):
            m.collect([other.variable("a")])


# ---------------------------------------------------------------------------
# Bounded computed tables.
# ---------------------------------------------------------------------------


class TestCacheEviction:
    def test_eviction_keeps_hash_consing_canonical(self):
        """Node-count regression: with a tiny cache limit the op caches
        flush constantly, but equivalent formulas must still share one
        node and the unique table must not grow duplicates."""
        tiny = BDDManager(cache_limit=4)
        big = BDDManager()
        variables = ["a", "b", "c", "d", "e"]
        for m in (tiny, big):
            for name in variables:
                m.variable(name)

        def build(m):
            a, b, c, d, e = (m.variable(n) for n in variables)
            return ((a & b) | (c & d)) ^ (e & (a | ~d))

        f_tiny, f_big = build(tiny), build(big)
        assert tiny.stats["cache_evictions"] > 0
        assert big.stats["cache_evictions"] == 0
        # Same canonical diagram regardless of eviction...
        assert tiny.size_of(f_tiny) == big.size_of(f_big)
        # ...and rebuilding in the evicting manager is a no-op on the
        # unique table (canonicity -> every node already exists).
        before = tiny.live_node_count
        g_tiny = build(tiny)
        assert g_tiny == f_tiny
        assert tiny.live_node_count == before

    def test_eviction_preserves_semantics(self):
        tiny = BDDManager(cache_limit=2)
        a, b, c = tiny.declare("a", "b", "c")
        f = (a & b) | (~a & c)
        for bits in itertools.product((False, True), repeat=3):
            env = dict(zip(["a", "b", "c"], bits))
            expected = (bits[0] and bits[1]) or (not bits[0] and bits[2])
            assert tiny.evaluate(f, env) == expected

    def test_cache_limit_validated(self):
        with pytest.raises(ValueError):
            BDDManager(cache_limit=0)


def test_stats_counters_present_and_monotone(m):
    a, b = m.declare("a", "b")
    _ = a & b
    _ = (a & b).exists(["a"])
    for key in (
        "nodes_created",
        "ite_calls",
        "exists_calls",
        "relprod_calls",
        "ite_cache_hits",
        "cache_evictions",
        "gc_runs",
        "peak_live_nodes",
    ):
        assert key in m.stats
    assert m.stats["nodes_created"] > 0
    assert m.stats["peak_live_nodes"] >= m.live_node_count
