"""Tests for the ROBDD engine: canonicity, operators, quantifiers."""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.bdd import BDDManager


@pytest.fixture
def m():
    return BDDManager()


# ---------------------------------------------------------------------------
# Basics and canonicity.
# ---------------------------------------------------------------------------


def test_constants(m):
    assert m.true.is_true and not m.true.is_false
    assert m.false.is_false
    assert m.constant(True) == m.true
    assert (~m.true) == m.false


def test_variable_identity(m):
    a1 = m.variable("a")
    a2 = m.variable("a")
    assert a1 == a2
    assert m.variable_names == ("a",)


def test_canonicity_of_equivalent_formulas(m):
    a, b, c = m.declare("a", "b", "c")
    # Distribution: a & (b | c) == (a & b) | (a & c)
    assert (a & (b | c)) == ((a & b) | (a & c))
    # De Morgan.
    assert ~(a & b) == (~a | ~b)
    # XOR via ands/ors.
    assert (a ^ b) == ((a & ~b) | (~a & b))
    # Idempotence / complements.
    assert (a & a) == a
    assert (a & ~a) == m.false
    assert (a | ~a) == m.true


def test_iff_and_implies(m):
    a, b = m.declare("a", "b")
    assert a.iff(b) == ~(a ^ b)
    assert a.implies(b) == (~a | b)
    assert m.false.implies(a).is_true


def test_cross_manager_operations_rejected():
    m1, m2 = BDDManager(), BDDManager()
    with pytest.raises(ValueError):
        m1.variable("a") & m2.variable("a")


# ---------------------------------------------------------------------------
# Semantics against brute force.
# ---------------------------------------------------------------------------


def _random_formula(m, variables, draw):
    """Build a random formula and a matching Python evaluator."""
    choice = draw(st.integers(0, 6))
    if choice == 0 or not variables:
        value = draw(st.booleans())
        return m.constant(value), (lambda env, _v=value: _v)
    if choice in (1, 2):
        name = draw(st.sampled_from(variables))
        return m.variable(name), (lambda env, _n=name: env[_n])
    left, left_fn = _random_formula(m, variables, draw)
    right, right_fn = _random_formula(m, variables, draw)
    if choice == 3:
        return left & right, (lambda env: left_fn(env) and right_fn(env))
    if choice == 4:
        return left | right, (lambda env: left_fn(env) or right_fn(env))
    if choice == 5:
        return left ^ right, (lambda env: left_fn(env) != right_fn(env))
    return ~left, (lambda env: not left_fn(env))


@settings(deadline=None, max_examples=25)
@given(data=st.data())
def test_bdd_matches_brute_force_truth_table(data):
    m = BDDManager()
    variables = ["a", "b", "c", "d"]
    for name in variables:
        m.variable(name)
    f, fn = _random_formula(m, variables, data.draw)
    for bits in itertools.product((False, True), repeat=len(variables)):
        env = dict(zip(variables, bits))
        assert m.evaluate(f, env) == fn(env)


@settings(deadline=None, max_examples=15)
@given(data=st.data())
def test_semantically_equal_formulas_share_a_node(data):
    """Canonicity, property-tested: equal truth tables <=> equal index."""
    m = BDDManager()
    variables = ["a", "b", "c"]
    for name in variables:
        m.variable(name)
    f, f_fn = _random_formula(m, variables, data.draw)
    g, g_fn = _random_formula(m, variables, data.draw)
    tables_equal = all(
        f_fn(dict(zip(variables, bits))) == g_fn(dict(zip(variables, bits)))
        for bits in itertools.product((False, True), repeat=3)
    )
    assert (f == g) == tables_equal


# ---------------------------------------------------------------------------
# Restriction, quantification, renaming.
# ---------------------------------------------------------------------------


def test_restrict_cofactors(m):
    a, b = m.declare("a", "b")
    f = (a & b) | (~a & ~b)  # XNOR
    assert f.restrict({"a": True}) == b
    assert f.restrict({"a": False}) == ~b
    assert f.restrict({"a": True, "b": True}).is_true


def test_exists_forall(m):
    a, b, c = m.declare("a", "b", "c")
    f = (a & b) | c
    assert f.exists(["a"]) == (b | c)
    assert f.forall(["a"]) == c
    # Quantifying out everything yields a constant.
    assert f.exists(["a", "b", "c"]).is_true
    assert (a & ~a).exists(["a"]).is_false


def test_rename_adjacent_pairs(m):
    # Interleaved declaration as the symbolic machines use.
    s0, s0n, s1, s1n = m.declare("s0", "s0'", "s1", "s1'")
    f = s0n & ~s1n
    g = f.rename({"s0'": "s0", "s1'": "s1"})
    assert g == (s0 & ~s1)


def test_rename_rejects_order_incompatible(m):
    a, b = m.declare("a", "b")
    f = a & ~b
    with pytest.raises(ValueError, match="order-compatible"):
        f.rename({"a": "b", "b": "a"})  # would swap levels


def test_rename_empty_mapping_is_identity(m):
    a = m.variable("a")
    assert a.rename({}) == a


# ---------------------------------------------------------------------------
# Support, satisfy, count.
# ---------------------------------------------------------------------------


def test_support(m):
    a, b, c = m.declare("a", "b", "c")
    f = (a & b) | (a & ~b)  # == a
    assert f == a
    assert f.support() == ("a",)
    assert ((a ^ c)).support() == ("a", "c")
    assert m.true.support() == ()


def test_satisfy_one(m):
    a, b = m.declare("a", "b")
    assert m.false.satisfy_one() is None
    model = (a & ~b).satisfy_one()
    assert model == {"a": True, "b": False}
    assert m.true.satisfy_one() == {}


def test_count(m):
    a, b, c = m.declare("a", "b", "c")
    assert (a & b).count(["a", "b"]) == 1
    assert (a | b).count(["a", "b"]) == 3
    assert (a | b).count(["a", "b", "c"]) == 6
    assert m.true.count(["a", "b", "c"]) == 8
    assert m.false.count(["a"]) == 0
    with pytest.raises(ValueError, match="missing"):
        (a & b).count(["a"])


def test_cube_and_bulk_ops(m):
    cube = m.cube({"x": True, "y": False})
    assert cube.satisfy_one() == {"x": True, "y": False}
    assert cube.count(["x", "y"]) == 1
    a, b, c = m.declare("a", "b", "c")
    assert m.conjunction([a, b, c]) == (a & b & c)
    assert m.disjunction([]) == m.false
    assert m.conjunction([]) == m.true


def test_evaluate_requires_full_assignment(m):
    a, b = m.declare("a", "b")
    with pytest.raises(ValueError, match="missing"):
        m.evaluate(a & b, {"a": True})


def test_size_and_num_nodes(m):
    a, b, c = m.declare("a", "b", "c")
    f = (a & b) | c
    assert m.size_of(f) >= 3
    assert m.num_nodes >= m.size_of(f)
