"""Tests for the cell-function library."""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.logic.functions import (
    AND,
    BUF,
    CONST0,
    CONST1,
    CellFunction,
    MUX,
    NAND,
    NOR,
    NOT,
    OR,
    XNOR,
    XOR,
    get_function,
    junction,
    make_gate,
)
from repro.logic.ternary import ONE, T, X, ZERO, all_ternary_vectors


ALL_GATE_KINDS = ("AND", "OR", "NAND", "NOR", "XOR", "XNOR")


# ---------------------------------------------------------------------------
# Boolean semantics.
# ---------------------------------------------------------------------------


def test_basic_gate_truth_tables():
    assert AND.eval_binary((True, True)) == (True,)
    assert AND.eval_binary((True, False)) == (False,)
    assert OR.eval_binary((False, False)) == (False,)
    assert NAND.eval_binary((True, True)) == (False,)
    assert NOR.eval_binary((False, False)) == (True,)
    assert XOR.eval_binary((True, False)) == (True,)
    assert XNOR.eval_binary((True, True)) == (True,)
    assert NOT.eval_binary((True,)) == (False,)
    assert BUF.eval_binary((False,)) == (False,)
    assert MUX.eval_binary((False, True, False)) == (True,)  # select=0 -> data0
    assert MUX.eval_binary((True, True, False)) == (False,)  # select=1 -> data1
    assert CONST0.eval_binary(()) == (False,)
    assert CONST1.eval_binary(()) == (True,)


def test_variadic_gates():
    and3 = make_gate("AND", 3)
    assert and3.name == "AND3"
    assert and3.eval_binary((True, True, True)) == (True,)
    assert and3.eval_binary((True, False, True)) == (False,)
    xor4 = make_gate("XOR", 4)
    assert xor4.eval_binary((True, True, True, False)) == (True,)


def test_gate_arity_validation():
    with pytest.raises(ValueError):
        make_gate("NOT", 2)
    with pytest.raises(ValueError):
        make_gate("MUX", 2)
    with pytest.raises(ValueError):
        make_gate("AND", 0)
    with pytest.raises(ValueError):
        make_gate("FROB", 2)
    with pytest.raises(ValueError):
        AND.eval_binary((True,))


def test_junction_replication():
    j3 = junction(3)
    assert j3.n_inputs == 1 and j3.n_outputs == 3
    assert j3.eval_binary((True,)) == (True, True, True)
    assert j3.eval_ternary((X,)) == (X, X, X)
    with pytest.raises(ValueError):
        junction(0)


def test_registry_interns_gates():
    assert make_gate("AND", 2) is AND
    assert junction(2) is junction(2)


def test_get_function_by_name():
    assert get_function("AND") is AND
    assert get_function("and3").n_inputs == 3
    assert get_function("JUNC4").n_outputs == 4
    assert get_function("NOT") is NOT
    assert get_function("CONST1") is CONST1
    with pytest.raises(ValueError):
        get_function("BOGUS")


# ---------------------------------------------------------------------------
# Ternary semantics: the fast evaluators must equal the exact image.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("kind", ALL_GATE_KINDS)
@pytest.mark.parametrize("arity", (1, 2, 3))
def test_fast_ternary_equals_exact_image(kind, arity):
    fn = make_gate(kind, arity)
    for vec in all_ternary_vectors(arity):
        assert fn.eval_ternary(vec) == fn.exact_ternary_image(vec), (kind, vec)


@pytest.mark.parametrize("fn", (NOT, BUF, MUX, CONST0, CONST1, junction(2), junction(3)))
def test_fast_ternary_equals_exact_image_special(fn):
    for vec in all_ternary_vectors(fn.n_inputs):
        assert fn.eval_ternary(vec) == fn.exact_ternary_image(vec), (fn.name, vec)


def test_ternary_agrees_with_binary_on_definite_inputs():
    for fn in (AND, OR, NAND, NOR, XOR, XNOR, NOT, MUX, junction(2)):
        for bits in itertools.product((False, True), repeat=fn.n_inputs):
            expected = tuple(ONE if b else ZERO for b in fn.eval_binary(bits))
            got = fn.eval_ternary(tuple(ONE if b else ZERO for b in bits))
            assert got == expected, fn.name


def test_exact_image_used_when_no_fast_evaluator():
    # A custom cell without a ternary evaluator: 2-input half adder.
    ha = CellFunction(
        "HA",
        2,
        2,
        lambda v: (v[0] != v[1], v[0] and v[1]),
    )
    # sum/carry with one X: carry of (0, X) is 0 (AND-like), sum is X.
    assert ha.eval_ternary((ZERO, X)) == (X, ZERO)
    assert ha.eval_ternary((ONE, ONE)) == (ZERO, ONE)


# ---------------------------------------------------------------------------
# Structural predicates.
# ---------------------------------------------------------------------------


def test_all_x_to_all_x_property():
    assert AND.all_x_to_all_x
    assert XOR.all_x_to_all_x
    assert junction(3).all_x_to_all_x
    # Constants violate the Section 5 assumption.
    assert not CONST0.all_x_to_all_x
    assert not CONST1.all_x_to_all_x


def test_output_image_and_justifiability():
    assert AND.is_justifiable
    assert junction(1).is_justifiable  # a buffer
    assert not junction(2).is_justifiable
    assert junction(2).output_image() == frozenset(
        {(False, False), (True, True)}
    )
    assert not CONST0.is_justifiable  # image is {0} only


def test_is_multi_output():
    assert junction(2).is_multi_output
    assert not AND.is_multi_output


def test_cell_output_count_enforced():
    broken = CellFunction("BAD", 1, 2, lambda v: (v[0],))
    with pytest.raises(AssertionError):
        broken.eval_binary((True,))


def test_cell_requires_at_least_one_output():
    with pytest.raises(ValueError):
        CellFunction("NONE", 1, 0, lambda v: ())
