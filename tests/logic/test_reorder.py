"""Reorder-invariance harness for the BDD manager.

Dynamic variable reordering must be *invisible* except for node counts:
after any sequence of adjacent swaps and sifting passes, every
previously built BDD handle still denotes the same Boolean function,
the diagram stays canonical (equal functions <=> equal handles), and
every inspection operation (``satisfy_one``, ``count``, ``support``)
returns exactly what a fixed-order oracle manager returns.  This suite
property-tests that contract, plus the interactions with the other
machinery that mutates the node store (mark-and-sweep GC under
pressure, the PR-4 unrooted-cache bug class) and the auto-trigger
bookkeeping.
"""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.bdd import (
    BDD,
    BDDManager,
    NodeLimitExceeded,
    REORDER_MODES,
)

VARIABLES = ["a", "b", "c", "d", "e"]


@pytest.fixture
def m():
    return BDDManager()


def _random_formula(m, variables, draw, depth=0):
    """Random formula plus a matching Python evaluator (as in
    test_bdd.py, shared shape)."""
    choice = draw(st.integers(0, 6)) if depth < 6 else draw(st.integers(0, 2))
    if choice == 0 or not variables:
        value = draw(st.booleans())
        return m.constant(value), (lambda env, _v=value: _v)
    if choice in (1, 2):
        name = draw(st.sampled_from(variables))
        return m.variable(name), (lambda env, _n=name: env[_n])
    left, left_fn = _random_formula(m, variables, draw, depth + 1)
    right, right_fn = _random_formula(m, variables, draw, depth + 1)
    if choice == 3:
        return left & right, (lambda env: left_fn(env) and right_fn(env))
    if choice == 4:
        return left | right, (lambda env: left_fn(env) or right_fn(env))
    if choice == 5:
        return left ^ right, (lambda env: left_fn(env) != right_fn(env))
    return ~left, (lambda env: not left_fn(env))


def _scramble(m, draw, *, rounds=8):
    """A random interleaving of adjacent swaps and sifting passes."""
    nlevels = len(m.current_order())
    for _ in range(draw(st.integers(1, rounds))):
        if draw(st.booleans()) and nlevels >= 2:
            m.swap_adjacent(draw(st.integers(0, nlevels - 2)))
        else:
            m.reorder()


# ---------------------------------------------------------------------------
# The core invariance property, against a fixed-order oracle.
# ---------------------------------------------------------------------------


@settings(deadline=None, max_examples=40)
@given(data=st.data())
def test_reorder_preserves_semantics_and_canonicity(data):
    m = BDDManager()
    oracle = BDDManager()  # never reordered: the fixed-order reference
    for name in VARIABLES:
        m.variable(name)
        oracle.variable(name)
    built = []
    for _ in range(data.draw(st.integers(1, 4))):
        f, fn = _random_formula(m, VARIABLES, data.draw)
        built.append((f, fn))
    _scramble(m, data.draw)
    for f, fn in built:
        # Same function on every assignment...
        for bits in itertools.product((False, True), repeat=len(VARIABLES)):
            env = dict(zip(VARIABLES, bits))
            assert m.evaluate(f, env) == fn(env)
        # ...and the inspection operations agree with the oracle.
        g = _rebuild(oracle, m, f)
        assert f.support() == g.support()
        assert f.satisfy_one() == g.satisfy_one()
        assert f.count(VARIABLES) == g.count(VARIABLES)


def _rebuild(oracle: BDDManager, m: BDDManager, f: BDD) -> BDD:
    """Port *f* into the oracle manager by Shannon expansion over the
    (registration-ordered) variable names."""
    if f.is_false:
        return oracle.false
    if f.is_true:
        return oracle.true
    name = f.support()[0]
    low = _rebuild(oracle, m, m.restrict(f, {name: False}))
    high = _rebuild(oracle, m, m.restrict(f, {name: True}))
    var = oracle.variable(name)
    return (var & high) | (~var & low)


@settings(deadline=None, max_examples=25)
@given(data=st.data())
def test_reorder_keeps_equal_functions_on_equal_handles(data):
    """Canonicity after scrambling: semantically equal formulas built
    AFTER the reorder still land on the same node as ones built before."""
    m = BDDManager()
    for name in VARIABLES:
        m.variable(name)
    f, f_fn = _random_formula(m, VARIABLES, data.draw)
    _scramble(m, data.draw)
    g, g_fn = _random_formula(m, VARIABLES, data.draw)
    tables_equal = all(
        f_fn(dict(zip(VARIABLES, bits))) == g_fn(dict(zip(VARIABLES, bits)))
        for bits in itertools.product((False, True), repeat=len(VARIABLES))
    )
    assert (f == g) == tables_equal


@settings(deadline=None, max_examples=25)
@given(data=st.data())
def test_operations_after_reorder_match_oracle(data):
    """Quantification/relprod/rename computed after a scramble equal
    the oracle's fixed-order results as functions."""
    m = BDDManager()
    oracle = BDDManager()
    for name in VARIABLES:
        m.variable(name)
        oracle.variable(name)
    f, _ = _random_formula(m, VARIABLES, data.draw)
    g, _ = _random_formula(m, VARIABLES, data.draw)
    _scramble(m, data.draw)
    quantified = data.draw(st.sets(st.sampled_from(VARIABLES), max_size=3))
    results = {
        "exists": f.exists(quantified),
        "forall": f.forall(quantified),
        "relprod": m.relprod(f, g, quantified),
        "and": f & g,
    }
    of, og = _rebuild(oracle, m, f), _rebuild(oracle, m, g)
    expected = {
        "exists": of.exists(quantified),
        "forall": of.forall(quantified),
        "relprod": oracle.relprod(of, og, quantified),
        "and": of & og,
    }
    for key in results:
        assert _rebuild(oracle, m, results[key]) == expected[key], key


# ---------------------------------------------------------------------------
# Deterministic swap/sift behaviour.
# ---------------------------------------------------------------------------


def test_swap_adjacent_swaps_exactly_two_levels(m):
    m.declare("a", "b", "c")
    assert m.current_order() == ("a", "b", "c")
    m.swap_adjacent(0)
    assert m.current_order() == ("b", "a", "c")
    assert m.level_of("a") == 1 and m.level_of("b") == 0
    m.swap_adjacent(1)
    assert m.current_order() == ("b", "c", "a")
    m.swap_adjacent(0)
    m.swap_adjacent(1)
    assert m.current_order() == ("c", "a", "b")


def test_swap_keeps_handle_indices_valid(m):
    a, b, c = m.declare("a", "b", "c")
    f = (a & b) | c
    index_before = f.index
    m.swap_adjacent(0)
    m.swap_adjacent(1)
    assert f.index == index_before  # in-place: same slot, same function
    assert f == ((a & b) | c)  # rebuilding finds the same node
    assert f.satisfy_one() == {"a": False, "b": False, "c": True}


def test_swap_rejects_out_of_range_level(m):
    m.declare("a", "b")
    with pytest.raises(ValueError):
        m.swap_adjacent(1)
    with pytest.raises(ValueError):
        m.swap_adjacent(-1)


def test_sifting_finds_interleaved_order_for_blocked_equality():
    """The classic: EQ(x, y) over blocked order is exponential,
    interleaved is linear.  Sifting must find (close to) the linear
    order and actually reclaim the nodes."""
    m = BDDManager()
    n = 6
    xs = [m.variable("x%d" % i) for i in range(n)]
    ys = [m.variable("y%d" % i) for i in range(n)]
    eq = m.true
    for x, y in zip(xs, ys):
        eq = eq & x.iff(y)
    blocked = m.size_of(eq)
    assert blocked >= (1 << n)  # exponential under the blocked order
    summary = m.reorder()
    assert summary["after"] < summary["before"]
    assert m.size_of(eq) == 3 * n + 2  # the optimal interleaved size
    assert m.stats["reorder.runs"] == 1
    assert m.stats["reorder.swaps"] == summary["swaps"] > 0
    assert m.stats["reorder.nodes_reclaimed"] > 0
    # Function untouched.
    assert eq.count(["x%d" % i for i in range(n)] + ["y%d" % i for i in range(n)]) == 1 << n


def test_reorder_flushes_operation_caches(m):
    a, b = m.declare("a", "b")
    f = a & b
    hits_before = m.stats["ite_cache_hits"]
    _ = a & b  # cache hit
    assert m.stats["ite_cache_hits"] == hits_before + 1
    m.reorder()
    # Same op after the flush must recompute (no stale-cache reuse).
    calls_before = m.stats["ite_calls"]
    g = a & b
    assert g == f
    assert m.stats["ite_calls"] > calls_before


def test_reorder_with_fewer_than_two_variables_is_a_noop(m):
    m.variable("a")
    summary = m.reorder()
    assert summary["swaps"] == 0
    assert m.stats["reorder.runs"] == 0


# ---------------------------------------------------------------------------
# Auto-trigger and manual modes.
# ---------------------------------------------------------------------------


def test_constructor_validates_reorder_mode():
    for mode in REORDER_MODES:
        BDDManager(reorder=mode)
    with pytest.raises(ValueError):
        BDDManager(reorder="sometimes")
    with pytest.raises(ValueError):
        BDDManager(max_growth=0.5)
    with pytest.raises(ValueError):
        BDDManager(reorder_threshold=1)


def test_auto_mode_triggers_at_threshold():
    m = BDDManager(reorder="auto", reorder_threshold=64)
    xs = [m.variable("x%d" % i) for i in range(5)]
    ys = [m.variable("y%d" % i) for i in range(5)]
    eq = m.true
    for x, y in zip(xs, ys):
        eq = eq & x.iff(y)
    assert m.stats["reorder.auto_triggers"] >= 1
    assert m.stats["reorder.runs"] >= 1
    # The function survived whatever reordering happened mid-build.
    assert eq.count(m.variable_names) == 1 << 5


def test_off_and_manual_modes_never_auto_trigger():
    for mode in ("off", "manual"):
        m = BDDManager(reorder=mode, reorder_threshold=8)
        xs = [m.variable("x%d" % i) for i in range(4)]
        ys = [m.variable("y%d" % i) for i in range(4)]
        eq = m.true
        for x, y in zip(xs, ys):
            eq = eq & x.iff(y)
        assert m.stats["reorder.auto_triggers"] == 0
        assert m.stats["reorder.runs"] == 0
        assert m.current_order() == m.variable_names


def test_node_limit_raises_memoryerror_subclass():
    m = BDDManager(node_limit=16)
    with pytest.raises(NodeLimitExceeded):
        xs = [m.variable("x%d" % i) for i in range(6)]
        acc = m.false
        for i, x in enumerate(xs):
            acc = acc ^ x
    assert issubclass(NodeLimitExceeded, MemoryError)


# ---------------------------------------------------------------------------
# GC x reorder interleavings (the PR-4 unrooted-cache bug class).
# ---------------------------------------------------------------------------


@settings(deadline=None, max_examples=20)
@given(data=st.data())
def test_gc_and_reorder_interleave_safely(data):
    """Random interleavings of building, collecting (with protected
    roots) and reordering never corrupt the survivors."""
    m = BDDManager()
    for name in VARIABLES:
        m.variable(name)
    kept = []
    for _ in range(data.draw(st.integers(2, 5))):
        f, fn = _random_formula(m, VARIABLES, data.draw)
        m.protect(f)
        kept.append((f, fn))
        action = data.draw(st.integers(0, 2))
        if action == 0:
            m.collect()
        elif action == 1:
            _scramble(m, data.draw, rounds=3)
        # action == 2: keep building
    m.collect()
    _scramble(m, data.draw, rounds=3)
    for f, fn in kept:
        for bits in itertools.product((False, True), repeat=len(VARIABLES)):
            env = dict(zip(VARIABLES, bits))
            assert m.evaluate(f, env) == fn(env)


def test_reorder_respects_unprotected_live_handles(m):
    """Live handles that are NOT protected GC roots must still survive
    a reorder (weakref tracking), unlike collect() which frees them."""
    a, b, c = m.declare("a", "b", "c")
    f = (a & b) | (b & c) | (a & c)  # majority
    m.reorder()
    for bits in itertools.product((False, True), repeat=3):
        env = dict(zip("abc", bits))
        expect = sum(bits) >= 2
        assert m.evaluate(f, env) == expect


def test_collect_then_reorder_reuses_freed_slots_consistently(m):
    a, b = m.declare("a", "b")
    keep = m.protect(a & b)
    garbage = a ^ b
    # collect() frees everything unreachable from protected roots --
    # including the unprotected variable handles -- so drop them too
    # and re-derive after the reorder has recycled the freed slots.
    del garbage, a, b
    m.collect()
    m.reorder()
    a, b = m.declare("a", "b")
    assert keep == (a & b)
    assert keep.satisfy_one() == {"a": True, "b": True}


def test_qset_interning_survives_reorder(m):
    """Quantified-variable sets are keyed by stable variable ids, so an
    exists computed after a reorder reuses the same interned set and
    still quantifies the right variables."""
    a, b, c = m.declare("a", "b", "c")
    f = (a & b) | c
    before = f.exists(["a"])
    m.reorder()
    m.swap_adjacent(0)
    after = f.exists(["a"])
    assert before == after == (b | c)
