"""Tests for the Section 3.2 justifiability analysis."""

from __future__ import annotations

import itertools

import pytest

from repro.logic.functions import AND, CONST0, CONST1, CellFunction, OR, XOR, junction, make_gate
from repro.logic.justifiability import (
    analyze,
    is_justifiable,
    justify,
    unjustifiable_vectors,
)


def test_junctions_are_the_canonical_non_justifiable_cells():
    """Section 3.2: only the all-0 and all-1 output vectors of a k-way
    junction are producible."""
    for k in (2, 3, 4):
        report = analyze(junction(k))
        assert not report.justifiable
        assert report.image == frozenset({(False,) * k, (True,) * k})
        assert len(report.missing) == 2 ** k - 2
        assert report.coverage == pytest.approx(2 / 2 ** k)


def test_single_output_gates_are_justifiable():
    for fn in (AND, OR, XOR, make_gate("NAND", 3), make_gate("NOT", 1)):
        assert is_justifiable(fn), fn.name
        assert unjustifiable_vectors(fn) == ()


def test_constants_are_non_justifiable():
    # The paper's Section 5 remark: a constant-output element behaves
    # like a non-justifiable cell for forward retiming.
    assert not is_justifiable(CONST0)
    assert unjustifiable_vectors(CONST0) == ((True,),)
    assert not is_justifiable(CONST1)
    assert unjustifiable_vectors(CONST1) == ((False,),)


def test_justify_returns_a_preimage():
    witness = justify(AND, (True,))
    assert witness == (True, True)
    assert justify(AND, (False,)) is not None
    assert AND.eval_binary(justify(AND, (False,))) == (False,)


def test_justify_returns_none_for_missing_vectors():
    assert justify(junction(2), (True, False)) is None
    assert justify(junction(2), (True, True)) == (True,)


def test_justifiable_multi_output_cell():
    """A multi-output cell CAN be justifiable: a 2-in/2-out swap cell."""
    swap = CellFunction("SWAP", 2, 2, lambda v: (v[1], v[0]))
    report = analyze(swap)
    assert report.justifiable
    # Every output vector has its (unique) preimage.
    for out in itertools.product((False, True), repeat=2):
        pre = justify(swap, out)
        assert swap.eval_binary(pre) == out


def test_non_justifiable_multi_output_gate_from_paper_model():
    """Section 3.2: multi-output gates whose image misses vectors are as
    dangerous as junctions -- e.g. a cell computing (a, not a)."""
    comp = CellFunction("PAIR", 1, 2, lambda v: (v[0], not v[0]))
    report = analyze(comp)
    assert not report.justifiable
    assert (True, True) in report.missing
    assert (False, False) in report.missing


def test_describe_mentions_verdict():
    text = analyze(junction(2)).describe()
    assert "NON-justifiable" in text
    assert "JUNC2" in text
    assert "unjustifiable output vectors" in text
    assert "justifiable" in analyze(AND).describe()


def test_analysis_is_cached():
    assert analyze(AND) is analyze(AND)
