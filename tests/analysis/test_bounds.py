"""Tests for the Section 4 structural delay bound."""

from __future__ import annotations

import random

import networkx as nx
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.analysis.bounds import max_registers_on_simple_cycle, retiming_delay_bound
from repro.bench.generators import (
    correlator,
    random_sequential_circuit,
    shift_register,
)
from repro.bench.paper_circuits import figure1_design_c, figure1_design_d
from repro.retime.engine import RetimingSession
from repro.retime.graph import HOST, HOST_OUT, RetimingEdge, RetimingGraph, build_retiming_graph
from repro.retime.moves import enabled_moves


def test_figure1_bound_is_one():
    """D has one latch on its single feedback loop (and one-latch host
    cycles), so at most one forward crossing per junction -- matching
    the observed k = 1 for the hazardous move."""
    assert retiming_delay_bound(figure1_design_d()) == 1
    # C's feedback cycles each carry exactly one of its two latches.
    assert retiming_delay_bound(figure1_design_c()) == 1


def test_shift_register_bound_counts_host_cycle():
    """The paper's footnote: cycles pass through the host, so a pure
    4-deep pipeline has a 4-register host cycle."""
    assert retiming_delay_bound(shift_register(4)) == 4


def test_correlator_bound():
    c = correlator(6)
    bound = retiming_delay_bound(c)
    assert bound >= 6  # the whole delay line closes through the host


def test_acyclic_graph_bound_zero():
    g = RetimingGraph(
        vertices=("a",),
        edges=(RetimingEdge("a", "a", 2),),
    )
    # Self loop with weight 2.
    assert max_registers_on_simple_cycle(g) == 2
    g2 = RetimingGraph(vertices=("a", "b"), edges=(RetimingEdge("a", "b", 3),))
    assert max_registers_on_simple_cycle(g2) == 0


def test_parallel_edges_take_the_heaviest():
    g = RetimingGraph(
        vertices=("a", "b"),
        edges=(
            RetimingEdge("a", "b", 1, sink_pin=0),
            RetimingEdge("a", "b", 3, sink_pin=1),
            RetimingEdge("b", "a", 0),
        ),
    )
    assert max_registers_on_simple_cycle(g) == 3


def test_cycle_budget_guard():
    # A dense graph with many cycles trips the guard.
    vertices = tuple("v%d" % i for i in range(8))
    edges = tuple(
        RetimingEdge(u, v, 1, sink_pin=i)
        for i, u in enumerate(vertices)
        for v in vertices
        if u != v
    )
    g = RetimingGraph(vertices=vertices, edges=edges)
    with pytest.raises(MemoryError):
        max_registers_on_simple_cycle(g, max_cycles=10)


def _every_vertex_host_fed(circuit):
    """True iff every retiming-graph vertex is reachable from the host.

    The paper's structural bound presumes gates are (transitively) fed
    by the primary inputs.  A feedback loop with no host ancestry has no
    lower bound on its lags: a move walk can rotate the loop's registers
    forever, crossing each loop element forward once per revolution, so
    no simple-cycle weight bounds its k.
    """
    graph = build_retiming_graph(circuit)
    g = nx.DiGraph()
    g.add_nodes_from(
        HOST if v == HOST_OUT else v for v in graph.vertices
    )
    g.add_edges_from(
        (HOST if e.u == HOST_OUT else e.u, HOST if e.v == HOST_OUT else e.v)
        for e in graph.edges
    )
    return len(nx.descendants(g, HOST)) == g.number_of_nodes() - 1


@settings(deadline=None, max_examples=10)
@given(seed=st.integers(0, 2000), steps=st.integers(1, 10))
def test_theorem45_k_never_exceeds_structural_bound(seed, steps):
    """The observed k of any random move session on a host-fed circuit
    is bounded by the paper's structural bound on the original circuit
    (host-disconnected loops admit unbounded register rotation, hence
    the assume)."""
    rng = random.Random(seed)
    circuit = random_sequential_circuit(seed % 71, num_gates=7, num_latches=3)
    assume(_every_vertex_host_fed(circuit))
    bound = retiming_delay_bound(circuit)
    session = RetimingSession(circuit)
    for _ in range(steps):
        moves = enabled_moves(session.current)
        if not moves:
            break
        session.apply(rng.choice(moves))
    assert session.theorem45_k <= bound, session.summary()
