"""Tests for Theorem 4.6 test-set preservation analysis."""

from __future__ import annotations

import pytest

from repro.analysis.testability import (
    PreservationReport,
    delayed_tests,
    preservation_report,
    is_test_preserved_delayed,
    is_test_preserved_directly,
)
from repro.bench.paper_circuits import (
    FIGURE3_TEST_SEQUENCE,
    figure3_design_c,
    figure3_design_d,
    figure3_fault,
)


def test_delayed_tests_enumerate_prefixes():
    variants = delayed_tests(FIGURE3_TEST_SEQUENCE, 1, 1)
    assert len(variants) == 2
    assert ((False,), (False,), (True,)) in variants
    assert ((True,), (False,), (True,)) in variants


def test_delayed_tests_k0_is_identity():
    variants = delayed_tests(FIGURE3_TEST_SEQUENCE, 0, 1)
    assert variants == (FIGURE3_TEST_SEQUENCE,)


def test_delayed_tests_multi_input():
    variants = delayed_tests(((False, False),), 1, 2)
    assert len(variants) == 4
    assert all(len(v) == 2 for v in variants)


def test_delayed_tests_guards():
    with pytest.raises(ValueError):
        delayed_tests(FIGURE3_TEST_SEQUENCE, -1, 1)
    with pytest.raises(ValueError):
        delayed_tests(FIGURE3_TEST_SEQUENCE, 20, 1)


def test_figure3_preservation_story():
    """The full Section 2.2 / Theorem 4.6 story in one report: the test
    works on D, fails on C directly, works on C^1."""
    report = preservation_report(
        figure3_design_d(),
        figure3_design_c(),
        figure3_fault(),
        FIGURE3_TEST_SEQUENCE,
        k=1,
    )
    assert isinstance(report, PreservationReport)
    assert report.detected_in_original
    assert not report.detected_in_retimed
    assert report.detected_in_delayed
    assert report.k == 1


def test_identity_retiming_preserves_tests():
    from repro.retime.engine import RetimingSession

    d = figure3_design_d()
    session = RetimingSession(d)
    session.forward("fanQ")
    session.backward("fanQ")
    retimed = session.current
    assert is_test_preserved_directly(retimed, figure3_fault(), FIGURE3_TEST_SEQUENCE)
    assert is_test_preserved_delayed(
        retimed, figure3_fault(), FIGURE3_TEST_SEQUENCE, session.theorem45_k
    )


def test_delayed_check_requires_all_prefixes():
    """is_test_preserved_delayed is a universal quantifier: it fails if any
    warm-up prefix misses the fault.  With k=0 on retimed C it reduces
    to the direct check, which fails."""
    c = figure3_design_c()
    assert not is_test_preserved_delayed(c, figure3_fault(), FIGURE3_TEST_SEQUENCE, 0)
    assert is_test_preserved_delayed(c, figure3_fault(), FIGURE3_TEST_SEQUENCE, 1)
