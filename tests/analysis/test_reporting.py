"""Tests for report formatting."""

from __future__ import annotations

from repro.analysis.reporting import ascii_table, banner


def test_ascii_table_alignment():
    text = ascii_table(("name", "n"), [("a", 1), ("long-name", 22)])
    lines = text.splitlines()
    assert lines[0].startswith("name")
    assert "-+-" in lines[1]
    assert lines[3].startswith("long-name | 22")
    # All separator-aligned rows have pipes in the same column.
    pipe_cols = {line.index("|") for line in lines if "|" in line}
    assert len(pipe_cols) == 1


def test_ascii_table_stringifies_cells():
    text = ascii_table(("x",), [(None,), (3.5,)])
    assert "None" in text and "3.5" in text


def test_ascii_table_indent():
    text = ascii_table(("a",), [("b",)], indent="  ")
    assert all(line.startswith("  ") for line in text.splitlines())


def test_banner():
    text = banner("Table 1")
    lines = text.splitlines()
    assert lines[0] == "=" * 72
    assert lines[1] == "Table 1"
    assert lines[2] == lines[0]
