"""The documentation is executable — and stays that way.

Every markdown file with ``>>>`` prompts doubles as a doctest (CI also
runs ``pytest --doctest-glob='*.md' README.md docs``); this module pins
the same contract inside the tier-1 suite, plus the cross-links the
docs promise each other.
"""

from __future__ import annotations

import doctest
import pathlib

import pytest

ROOT = pathlib.Path(__file__).resolve().parents[1]

DOCTESTED = [
    "README.md",
    "docs/ARCHITECTURE.md",
    "docs/CLI.md",
    "docs/OBSERVABILITY.md",
    "docs/SERVICE.md",
    "docs/TESTING.md",
]


@pytest.mark.parametrize("relpath", DOCTESTED)
def test_markdown_doctests_pass(relpath):
    failures, tested = doctest.testfile(
        str(ROOT / relpath), module_relative=False, verbose=False
    )
    assert tested > 0, "%s lost its executable snippets" % relpath
    assert failures == 0


def test_theory_md_has_no_broken_doctests():
    # THEORY.md is prose; if snippets are ever added they must pass.
    failures, _ = doctest.testfile(
        str(ROOT / "docs" / "THEORY.md"), module_relative=False, verbose=False
    )
    assert failures == 0


def test_readme_links_the_docs():
    readme = (ROOT / "README.md").read_text()
    assert "docs/ARCHITECTURE.md" in readme
    assert "docs/CLI.md" in readme
    assert "docs/SERVICE.md" in readme


def test_service_manual_cross_links():
    service = (ROOT / "docs" / "SERVICE.md").read_text()
    assert "ARCHITECTURE.md" in service and "CLI.md" in service
    cli = (ROOT / "docs" / "CLI.md").read_text()
    assert "SERVICE.md" in cli, "CLI.md lost its pointer to the service manual"


def test_design_links_architecture():
    assert "docs/ARCHITECTURE.md" in (ROOT / "DESIGN.md").read_text()


def test_theory_maps_experiments_to_artefacts():
    theory = (ROOT / "docs" / "THEORY.md").read_text()
    assert "Performance model" in theory
    for artefact in (
        "results/table1.txt",
        "results/exact_simulator.txt",
        "parallel_speedup.txt",
        "compiled_core_speedup.txt",
    ):
        assert artefact in theory, "THEORY.md no longer maps %s" % artefact


def test_cli_docstring_mentions_reference():
    import repro.cli

    assert "docs/CLI.md" in repro.cli.__doc__
    assert "--jobs" in repro.cli.__doc__ and "--backend" in repro.cli.__doc__
