"""Tests for the workload generators."""

from __future__ import annotations

import pytest

from repro.bench.generators import (
    correlator,
    counter_circuit,
    lfsr_circuit,
    pipeline_circuit,
    random_sequential_circuit,
    shift_register,
)
from repro.netlist.validate import validate
from repro.sim.binary import BinarySimulator
from repro.stg.equivalence import machines_equivalent
from repro.stg.explicit import extract_stg


def test_random_circuit_deterministic_per_seed():
    a = random_sequential_circuit(42)
    b = random_sequential_circuit(42)
    assert a.structurally_equal(b)
    c = random_sequential_circuit(43)
    assert not a.structurally_equal(c)


def test_random_circuit_interface_is_stable_across_seeds():
    for seed in range(10):
        circuit = random_sequential_circuit(seed, num_inputs=2, num_outputs=1)
        assert len(circuit.inputs) == 2
        assert len(circuit.outputs) == 1
        validate(circuit, require_normal_form=True)


def test_random_circuit_respects_sizes():
    circuit = random_sequential_circuit(
        5, num_inputs=3, num_gates=12, num_latches=5, num_outputs=2
    )
    assert len(circuit.inputs) == 3
    assert circuit.num_latches == 5
    assert len(circuit.outputs) == 2


def test_random_circuit_argument_validation():
    with pytest.raises(ValueError):
        random_sequential_circuit(0, num_gates=0)
    with pytest.raises(ValueError):
        random_sequential_circuit(0, num_inputs=0)


def test_pipeline_structure():
    p = pipeline_circuit(4, 3, seed=2)
    validate(p, require_normal_form=True)
    assert p.num_latches >= 4 * 3
    assert len(p.inputs) == 3


def test_pipeline_argument_validation():
    with pytest.raises(ValueError):
        pipeline_circuit(0, 3)


def test_shift_register_behaviour():
    sr = shift_register(3)
    sim = BinarySimulator(sr)
    trace = sim.run((False, False, False), [(True,), (False,), (True,), (False,), (False,)])
    # Serial-in appears at the output 3 cycles later.
    assert trace.output_column(0) == (False, False, False, True, False)


def test_lfsr_cycles_states():
    lf = lfsr_circuit([0, 2])
    validate(lf, require_normal_form=True)
    stg = extract_stg(lf)
    # With enable=0 the LFSR advances autonomously and never deadlocks
    # into a single absorbing state from every start.
    succ0 = {stg.next_state[s][0] for s in range(stg.num_states)}
    assert len(succ0) > 1


def test_lfsr_argument_validation():
    with pytest.raises(ValueError):
        lfsr_circuit([])


def test_counter_carries():
    ctr = counter_circuit(3)
    validate(ctr, require_normal_form=True)
    sim = BinarySimulator(ctr)
    # From 111, incrementing produces a carry-out.
    outputs, nxt = sim.step((True, True, True), (True,))
    assert outputs == (True,)
    # From 000, no carry.
    outputs, _ = sim.step((False, False, False), (True,))
    assert outputs == (False,)


def test_counter_counts():
    ctr = counter_circuit(2)
    sim = BinarySimulator(ctr)
    state = (False, False)
    seen = [state]
    for _ in range(3):
        _, state = sim.step(state, (True,))
        seen.append(state)
    assert len(set(seen)) == 4  # all four states visited


def test_correlator_structure_and_guard():
    c = correlator(5)
    validate(c, require_normal_form=True)
    assert c.num_latches == 5
    with pytest.raises(ValueError):
        correlator(2)


def test_generators_behaviourally_deterministic():
    a = extract_stg(pipeline_circuit(2, 2, seed=9))
    b = extract_stg(pipeline_circuit(2, 2, seed=9))
    assert machines_equivalent(a, b)


def test_datapath_controller_structure():
    from repro.bench.generators import datapath_controller

    c = datapath_controller(4, seed=2)
    validate(c, require_normal_form=True)
    assert c.inputs[0] == "rst"
    assert len(c.inputs) == 5
    # Only the controller latch is behind the reset; the datapath bank
    # has none: 1 controller + 4 datapath latches.
    assert c.num_latches == 5


def test_datapath_controller_cls_initialises_through_inputs():
    """The Section 1 story: no global reset on the datapath, yet the
    CLS sees a fully definite design after reset + data."""
    from repro.bench.generators import datapath_controller
    from repro.logic.ternary import ONE, X, ZERO
    from repro.sim.ternary_sim import TernarySimulator

    c = datapath_controller(3, seed=1)
    width = len(c.inputs) - 1
    protocol = [
        (ONE,) + (ZERO,) * width,
        (ZERO,) + (ONE,) * width,
        (ZERO,) + (ONE,) * width,
        (ZERO,) + (ONE,) * width,
    ]
    trace = TernarySimulator(c).run_from_unknown(protocol)
    assert all(v is not X for v in trace.final_state)


def test_datapath_controller_deterministic():
    from repro.bench.generators import datapath_controller

    assert datapath_controller(3, seed=5).structurally_equal(
        datapath_controller(3, seed=5)
    )
