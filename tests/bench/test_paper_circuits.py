"""Every numeric claim the paper makes about Figures 1-3 and Table 1."""

from __future__ import annotations

import pytest

from repro.bench.paper_circuits import (
    FIGURE3_TEST_SEQUENCE,
    TABLE1_INPUT_SEQUENCE,
    figure1_design_c,
    figure1_design_d,
    figure3_design_c,
    figure3_design_d,
    figure3_fault,
)
from repro.logic.ternary import ONE, X, ZERO
from repro.netlist.validate import validate
from repro.retime.engine import RetimingSession
from repro.sim.binary import BinarySimulator, all_power_up_states, format_state
from repro.sim.exact import exact_outputs, is_initializing_sequence
from repro.sim.fault import detects_exact
from repro.sim.ternary_sim import cls_outputs
from repro.stg.delayed import delay_needed_for_implication
from repro.stg.equivalence import implies, machines_equivalent
from repro.stg.explicit import extract_stg
from repro.stg.replaceability import find_violation, is_safe_replacement


def test_structures_are_normal_form():
    for circuit in (figure1_design_d(), figure1_design_c()):
        validate(circuit, require_normal_form=True)


def test_latch_counts():
    assert figure1_design_d().num_latches == 1
    assert figure1_design_c().num_latches == 2


def test_c_is_d_after_one_forward_junction_move():
    """C is literally one hazardous move away from D."""
    session = RetimingSession(figure1_design_d())
    session.forward("fanQ")
    assert machines_equivalent(
        extract_stg(session.current), extract_stg(figure1_design_c())
    )
    assert session.theorem45_k == 1


TABLE1_EXPECTED_D = {
    "0": "0010",
    "1": "0010",
}
TABLE1_EXPECTED_C = {
    "00": "0010",
    "01": "0010",
    "10": "0101",
    "11": "0010",
}


@pytest.mark.parametrize("state_label,expected", sorted(TABLE1_EXPECTED_D.items()))
def test_table1_rows_d(state_label, expected):
    d = figure1_design_d()
    sim = BinarySimulator(d)
    state = tuple(ch == "1" for ch in state_label)
    outs = sim.output_sequence(state, TABLE1_INPUT_SEQUENCE)
    assert "".join("1" if o[0] else "0" for o in outs) == expected


@pytest.mark.parametrize("state_label,expected", sorted(TABLE1_EXPECTED_C.items()))
def test_table1_rows_c(state_label, expected):
    c = figure1_design_c()
    sim = BinarySimulator(c)
    state = tuple(ch == "1" for ch in state_label)
    outs = sim.output_sequence(state, TABLE1_INPUT_SEQUENCE)
    assert "".join("1" if o[0] else "0" for o in outs) == expected


def test_rogue_behaviour_absent_from_d():
    """'an input/output behavior which was not present in the original
    design': no power-up state of D emits 0·1·0·1 on 0·1·1·1."""
    d = figure1_design_d()
    sim = BinarySimulator(d)
    for state in all_power_up_states(d):
        outs = sim.output_sequence(state, TABLE1_INPUT_SEQUENCE)
        assert [o[0] for o in outs] != [False, True, False, True]


def test_initialization_claims():
    """Figure 2: D initialised by the length-1 sequence 0; C is not."""
    assert is_initializing_sequence(figure1_design_d(), [(False,)])
    assert not is_initializing_sequence(figure1_design_c(), [(False,)])


def test_safe_replacement_violation_is_the_paper_one():
    c = extract_stg(figure1_design_c())
    d = extract_stg(figure1_design_d())
    assert not is_safe_replacement(c, d)
    violation = find_violation(c, d)
    assert violation.c_state == 2  # "10"
    assert not implies(c, d)
    assert delay_needed_for_implication(c, d) == 1  # C^1 ⊑ D


def test_powerful_simulator_section21():
    assert [v[0] for v in exact_outputs(figure1_design_d(), TABLE1_INPUT_SEQUENCE)] == [
        ZERO,
        ZERO,
        ONE,
        ZERO,
    ]
    assert [v[0] for v in exact_outputs(figure1_design_c(), TABLE1_INPUT_SEQUENCE)] == [
        ZERO,
        X,
        X,
        X,
    ]


def test_cls_cannot_distinguish_d_from_c_section5():
    for seq in (
        TABLE1_INPUT_SEQUENCE,
        [(ZERO,)] * 6,
        [(ONE,), (X,), (ZERO,), (ONE,)],
    ):
        assert cls_outputs(figure1_design_d(), seq) == cls_outputs(
            figure1_design_c(), seq
        )


def test_figure3_is_the_figure1_pair_with_a_fault():
    d3, c3 = figure3_design_d(), figure3_design_c()
    assert machines_equivalent(extract_stg(d3), extract_stg(figure1_design_d()))
    assert machines_equivalent(extract_stg(c3), extract_stg(figure1_design_c()))
    fault = figure3_fault()
    assert fault.net == "q2b" and fault.value is True
    assert d3.has_net(fault.net) and c3.has_net(fault.net)


def test_figure3_fault_free_and_faulty_behaviours():
    """Section 2.2's exact words: fault-free D gives 0·0 from all
    power-up states on 0·1; faulty D gives 0·1; fault-free C gives 0·0
    or 0·1 depending on power-up; faulty C gives 0·1 always."""
    d, c, fault = figure3_design_d(), figure3_design_c(), figure3_fault()

    good_d = BinarySimulator(d)
    bad_d = BinarySimulator(d, overrides={fault.net: fault.value})
    for state in all_power_up_states(d):
        assert [o[0] for o in good_d.output_sequence(state, FIGURE3_TEST_SEQUENCE)] == [
            False,
            False,
        ]
        assert [o[0] for o in bad_d.output_sequence(state, FIGURE3_TEST_SEQUENCE)] == [
            False,
            True,
        ]

    good_c = BinarySimulator(c)
    bad_c = BinarySimulator(c, overrides={fault.net: fault.value})
    seen = set()
    for state in all_power_up_states(c):
        outs = tuple(o[0] for o in good_c.output_sequence(state, FIGURE3_TEST_SEQUENCE))
        seen.add(outs)
        assert [o[0] for o in bad_c.output_sequence(state, FIGURE3_TEST_SEQUENCE)] == [
            False,
            True,
        ]
    assert seen == {(False, False), (False, True)}


def test_figure3_detection_summary():
    d, c, fault = figure3_design_d(), figure3_design_c(), figure3_fault()
    assert detects_exact(d, fault, FIGURE3_TEST_SEQUENCE).detected
    assert not detects_exact(c, fault, FIGURE3_TEST_SEQUENCE).detected
    for warmup in (False, True):
        verdict = detects_exact(c, fault, ((warmup,),) + FIGURE3_TEST_SEQUENCE)
        assert verdict.detected and verdict.time_step == 2
