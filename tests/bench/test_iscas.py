"""Tests for the embedded benchmark zoo."""

from __future__ import annotations

import pytest

from repro.bench.iscas import BENCHMARKS, load, names
from repro.netlist.validate import validate
from repro.sim.binary import BinarySimulator
from repro.stg.equivalence import machines_equivalent
from repro.stg.explicit import extract_stg


def test_names_listed():
    assert "s27" in names()
    assert len(names()) >= 5
    assert set(names()) == set(BENCHMARKS)


def test_unknown_name_raises():
    with pytest.raises(KeyError, match="available"):
        load("s9999")


def test_all_benchmarks_valid_and_normalised(iscas_circuit):
    validate(iscas_circuit, require_normal_form=True)
    assert iscas_circuit.num_latches >= 2


def test_unnormalised_load_matches_behaviour():
    raw = load("s27", normalize=False)
    nf = load("s27")
    assert not raw.junction_cells()
    assert nf.junction_cells()
    assert machines_equivalent(extract_stg(raw), extract_stg(nf))


def test_s27_interface():
    s27 = load("s27")
    assert s27.inputs == ("G0", "G1", "G2", "G3")
    assert s27.outputs == ("G17",)
    assert s27.num_latches == 3


def test_s27_known_response():
    """Fix a concrete behaviour of s27 as a regression anchor: from
    state 000, output G17 = NOT(G11) where G11 = NOR(G5, G9)."""
    s27 = load("s27")
    sim = BinarySimulator(s27)
    outputs, nxt = sim.step((False, False, False), (False, False, False, False))
    # G12 = NOR(0, 0) = 1; G8 = AND(NOT G0=1, G6=0) = 0; G15 = OR(1,0)=1;
    # G16 = OR(0,0)=0; G9 = NAND(0,1)=1; G11 = NOR(0,1)=0; G17 = NOT(0)=1.
    assert outputs == (True,)
    # G10 = NOR(1, 0) = 0; G11 = 0; G13 = NOR(0, 1) = 0.
    assert nxt == (False, False, False)


def test_mini_circuits_are_input_sensitive(iscas_circuit):
    """Each benchmark must actually react to its inputs somewhere in its
    state space (no degenerate constant machines)."""
    stg = extract_stg(iscas_circuit)
    reacts = any(
        stg.output[s][0] != stg.output[s][a] or stg.next_state[s][0] != stg.next_state[s][a]
        for s in range(stg.num_states)
        for a in range(1, stg.num_symbols)
    )
    assert reacts
