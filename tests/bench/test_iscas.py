"""Tests for the embedded benchmark zoo."""

from __future__ import annotations

import pytest

from repro.bench.iscas import BENCHMARKS, iscas89_names, load, names
from repro.netlist.validate import validate
from repro.sim.binary import BinarySimulator
from repro.stg.equivalence import machines_equivalent
from repro.stg.explicit import extract_stg


def test_names_listed():
    assert "s27" in names()
    assert len(names()) >= 5
    assert set(names()) == set(BENCHMARKS)


def test_unknown_name_raises():
    with pytest.raises(KeyError, match="available"):
        load("s9999")


def test_all_benchmarks_valid_and_normalised(iscas_circuit):
    validate(iscas_circuit, require_normal_form=True)
    assert iscas_circuit.num_latches >= 2


def test_unnormalised_load_matches_behaviour():
    raw = load("s27", normalize=False)
    nf = load("s27")
    assert not raw.junction_cells()
    assert nf.junction_cells()
    assert machines_equivalent(extract_stg(raw), extract_stg(nf))


def test_s27_interface():
    s27 = load("s27")
    assert s27.inputs == ("G0", "G1", "G2", "G3")
    assert s27.outputs == ("G17",)
    assert s27.num_latches == 3


def test_s27_known_response():
    """Fix a concrete behaviour of s27 as a regression anchor: from
    state 000, output G17 = NOT(G11) where G11 = NOR(G5, G9)."""
    s27 = load("s27")
    sim = BinarySimulator(s27)
    outputs, nxt = sim.step((False, False, False), (False, False, False, False))
    # G12 = NOR(0, 0) = 1; G8 = AND(NOT G0=1, G6=0) = 0; G15 = OR(1,0)=1;
    # G16 = OR(0,0)=0; G9 = NAND(0,1)=1; G11 = NOR(0,1)=0; G17 = NOT(0)=1.
    assert outputs == (True,)
    # G10 = NOR(1, 0) = 0; G11 = 0; G13 = NOR(0, 1) = 0.
    assert nxt == (False, False, False)


def test_mini_circuits_are_input_sensitive(iscas_circuit):
    """Each benchmark must actually react to its inputs somewhere in its
    state space (no degenerate constant machines)."""
    stg = extract_stg(iscas_circuit)
    reacts = any(
        stg.output[s][0] != stg.output[s][a] or stg.next_state[s][0] != stg.next_state[s][a]
        for s in range(stg.num_states)
        for a in range(1, stg.num_symbols)
    )
    assert reacts


# ---------------------------------------------------------------------------
# The file-backed ISCAS-89 corpus (s208..s526).
# ---------------------------------------------------------------------------

#: Published ISCAS-89 statistics: (inputs, outputs, flip-flops).  The
#: reconstructions shipped under bench/iscas89/ must match exactly.
ISCAS89_PUBLISHED = {
    "s27": (4, 1, 3),
    "s208": (10, 1, 8),
    "s298": (3, 6, 14),
    "s344": (9, 11, 15),
    "s349": (9, 11, 15),
    "s382": (3, 6, 21),
    "s386": (7, 7, 6),
    "s420": (18, 1, 16),
    "s444": (3, 6, 21),
    "s526": (3, 6, 21),
}

#: The ISCAS-89 cell alphabet (plus DFF, which is a latch, not a cell).
ISCAS89_ALPHABET = {"AND", "OR", "NAND", "NOR", "NOT", "BUF"}


def test_iscas89_names_cover_the_roadmap_corpus():
    listed = iscas89_names()
    assert listed[0] == "s27"
    assert len(listed) >= 10
    assert set(ISCAS89_PUBLISHED) == set(listed)


@pytest.mark.parametrize("name", sorted(ISCAS89_PUBLISHED))
def test_iscas89_published_statistics(name):
    circuit = load(name, normalize=False)
    pi, po, dff = ISCAS89_PUBLISHED[name]
    assert len(circuit.inputs) == pi
    assert len(circuit.outputs) == po
    assert circuit.num_latches == dff
    kinds = {cell.function.name for cell in circuit.cells}
    assert kinds <= ISCAS89_ALPHABET


@pytest.mark.parametrize("name", sorted(ISCAS89_PUBLISHED))
def test_iscas89_normalises(name):
    validate(load(name), require_normal_form=True)


def test_s208_counts_to_its_compare_pattern():
    """The documented s208 function: an enabled resettable counter with
    a parallel magnitude compare.  Counting to P=5 raises EQ exactly
    when the register holds 5."""
    c = load("s208", normalize=False)
    order = list(c.inputs)

    def vec(ena, rst, p):
        values = {"ENA": ena, "RST": rst}
        for i in range(8):
            values["P%d" % i] = bool((p >> i) & 1)
        return tuple(bool(values[n]) for n in order)

    sim = BinarySimulator(c)
    seq = [vec(0, 1, 5)] * 2 + [vec(1, 0, 5)] * 8
    eq = [o[0] for o in sim.output_sequence((False,) * 8, seq)]
    assert eq == [False] * 7 + [True] + [False] * 2


def test_s344_multiplies():
    """The documented s344 function: a 4x4 add-shift multiplier."""
    m = load("s344", normalize=False)
    order = list(m.inputs)
    out_at = {name: i for i, name in enumerate(m.outputs)}

    def vec(start, a, b):
        values = {"START": bool(start)}
        for i in range(4):
            values["A%d" % i] = bool((a >> i) & 1)
            values["B%d" % i] = bool((b >> i) & 1)
        return tuple(values[n] for n in order)

    sim = BinarySimulator(m)
    for a, b in [(5, 3), (15, 15), (7, 0), (9, 11)]:
        seq = [vec(1, a, b)] + [vec(0, a, b)] * 6
        outs = sim.output_sequence((False,) * m.num_latches, seq)
        settled = outs[-1]
        product = sum(1 << i for i in range(8) if settled[out_at["PROD%d" % i]])
        assert product == a * b
        assert not settled[out_at["BUSY"]]


def test_s349_is_s344_plus_one_gate():
    s344 = load("s344", normalize=False)
    s349 = load("s349", normalize=False)
    assert s349.num_cells == s344.num_cells + 1
    assert s349.num_latches == s344.num_latches
