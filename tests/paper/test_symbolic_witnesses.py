"""The paper's golden containment facts, re-proved by the symbolic engine.

Mirror of the containment claims in ``test_paper_witnesses.py`` /
``tests/stg/test_replaceability.py``, decided by BDD fixpoints instead
of enumerated STGs, so both engines pin Table 1 and the Section 3/4
propositions independently.  If a BDD-manager change (cache eviction,
GC, relprod rewrites) ever perturbs a verdict or a witness, these tests
catch it against the paper's published numbers, not against the other
engine.
"""

from __future__ import annotations

import random

import pytest

from repro.bench.generators import random_sequential_circuit
from repro.bench.paper_circuits import (
    TABLE1_INPUT_SEQUENCE,
    figure1_design_c,
    figure1_design_d,
)
from repro.retime.engine import RetimingSession
from repro.retime.moves import enabled_moves
from repro.retime.validity import ValidityReport, check_retiming_validity
from repro.stg.explicit import extract_stg
from repro.stg.replaceability import SafeReplacementViolation
from repro.stg.symbolic_replaceability import (
    SymbolicContainmentChecker,
    symbolic_delay_needed_for_implication,
    symbolic_delayed_implies,
    symbolic_find_violation,
    symbolic_implies,
    symbolic_is_safe_replacement,
)


@pytest.fixture
def figure1():
    return figure1_design_c(), figure1_design_d()


class TestFigure1SafeReplacement:
    """Figure 1: ``C ⋠ D``, with the paper's own counterexample."""

    def test_c_is_not_a_safe_replacement_for_d(self, figure1):
        c, d = figure1
        assert not symbolic_is_safe_replacement(c, d)

    def test_d_is_a_safe_replacement_for_c(self, figure1):
        c, d = figure1
        assert symbolic_is_safe_replacement(d, c)

    def test_witness_matches_the_paper(self, figure1):
        """The minimal counterexample is exactly the explicit engine's
        (and the paper's): power-up state 10 of C, inputs 0·1, outputs
        0·1 -- an output string no state of D can produce."""
        c, d = figure1
        violation = symbolic_find_violation(c, d)
        assert isinstance(violation, SafeReplacementViolation)
        assert violation.c_state == 2  # binary "10" -- Table 1's row
        assert violation.input_symbols == (0, 1)
        assert violation.c_outputs == (0, 1)

    def test_witness_is_a_prefix_of_table1(self, figure1):
        """Table 1 distinguishes the pair on ``0·1·1·1``; the minimal
        witness is its two-cycle prefix, and replaying the full Table 1
        sequence from the witness state shows the paper's 0·1·0·1 row."""
        c, d = figure1
        violation = symbolic_find_violation(c, d)
        table1 = tuple(int(v[0]) for v in TABLE1_INPUT_SEQUENCE)
        assert violation.input_symbols == table1[: len(violation.input_symbols)]
        c_stg = extract_stg(c)
        outputs, _ = c_stg.run(violation.c_state, table1)
        assert tuple(outputs) == (0, 1, 0, 1)  # Table 1's (Q1,Q2)=(1,0) row

    def test_subset_fixpoint_agrees_without_the_shortcut(self, figure1):
        c, d = figure1
        assert symbolic_find_violation(
            d, c, use_implication_shortcut=False
        ) is None


class TestProposition42Symbolic:
    """Prop. 4.2 / Cor. 4.3: ``C¹ ⊑ D`` but not ``C ⊑ D``."""

    def test_implication_fails_undelayed(self, figure1):
        c, d = figure1
        assert not symbolic_implies(c, d)

    def test_one_cycle_delay_restores_implication(self, figure1):
        c, d = figure1
        assert not symbolic_delayed_implies(c, d, 0)
        assert symbolic_delayed_implies(c, d, 1)
        assert symbolic_delay_needed_for_implication(c, d) == 1

    def test_d_trivially_contains_itself(self, figure1):
        _, d = figure1
        assert symbolic_implies(d, d)
        assert symbolic_delayed_implies(d, d, 0)


class TestCorollary44Symbolic:
    """Cor. 4.4: hazard-free retimings are safe -- symbolically."""

    def test_hazard_free_retiming_implies_and_is_safe(self):
        rng = random.Random(44)
        circuit = random_sequential_circuit(
            44, num_inputs=1, num_gates=7, num_latches=3
        )
        session = RetimingSession(circuit)
        for _ in range(6):
            moves = enabled_moves(session.current, include_hazardous=False)
            if not moves:
                break
            session.apply(rng.choice(moves))
        assert session.is_safe_per_corollary44
        checker = SymbolicContainmentChecker(session.current, circuit)
        assert checker.implies()
        assert checker.is_safe_replacement()

    def test_full_validity_battery_symbolic_matches_figure1(self):
        """The hazardous Figure 1 move, checked end to end with
        ``engine="symbolic"``: same report the explicit engine gives."""
        session = RetimingSession(figure1_design_d())
        session.forward("fanQ")
        report = check_retiming_validity(session, engine="symbolic")
        assert isinstance(report, ValidityReport)
        assert report.hazardous_moves == 1
        assert report.theorem45_k == 1
        assert report.implication_holds is False
        assert report.safe_replacement_holds is False
        assert report.delayed_implication_holds is True
        assert report.min_delay == 1
        assert report.consistent_with_paper()
