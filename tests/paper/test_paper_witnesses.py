"""Golden tests pinning the paper's central artefacts.

Every claim here is a number printed in the paper (Table 1, the
Section 2.1 simulation results, the Section 2.2 testing example, and
Proposition 4.2's delayed containment).  They are asserted against both
the compiled flat-program backend and the interpreted reference
backend, so no future performance work can silently change what the
reproduction reproduces.
"""

from __future__ import annotations

import pytest

from repro.bench.paper_circuits import (
    FIGURE3_TEST_SEQUENCE,
    TABLE1_INPUT_SEQUENCE,
    figure1_design_c,
    figure1_design_d,
    figure3_design_c,
    figure3_design_d,
    figure3_fault,
)
from repro.logic.ternary import ONE, X, ZERO, format_ternary_sequence
from repro.sim.binary import BinarySimulator, all_power_up_states
from repro.sim.compiled import get_default_backend, set_default_backend
from repro.sim.exact import exact_outputs
from repro.sim.fault import detects_cls, detects_exact, faulty_overrides
from repro.sim.ternary_sim import cls_outputs
from repro.stg.delayed import delay_needed_for_implication, delayed_implies
from repro.stg.equivalence import implies
from repro.stg.explicit import extract_stg


@pytest.fixture(params=["compiled", "interpreted"])
def backend(request):
    """Run the test under each simulator backend as the process default."""
    saved = get_default_backend()
    set_default_backend(request.param)
    try:
        yield request.param
    finally:
        set_default_backend(saved)


def _exact_output_column(circuit, sequence, backend_name, overrides=None):
    """Exact unknown-power-up outputs via an explicit per-state sweep.

    Re-derives the Section 2.1 "sufficiently powerful simulator" verdict
    from first principles with the scalar :class:`BinarySimulator`, so
    the golden values are checked through whichever backend the fixture
    selected (the production :class:`ExactSimulator` is lane-mask only).
    """
    per_state = [
        BinarySimulator(circuit, overrides, backend=backend_name)
        .run(state, sequence)
        .output_column(0)
        for state in all_power_up_states(circuit)
    ]
    verdicts = []
    for cycle in range(len(sequence)):
        seen = {outputs[cycle] for outputs in per_state}
        verdicts.append((ONE if True in seen else ZERO) if len(seen) == 1 else X)
    return tuple(verdicts)


class TestTable1Witness:
    """Figure 1's D/C pair diverges on Table 1's input ``0·1·1·1``."""

    def test_design_d_outputs_0010_from_every_power_up(self, backend):
        column = _exact_output_column(figure1_design_d(), TABLE1_INPUT_SEQUENCE, backend)
        assert format_ternary_sequence(column) == "0·0·1·0"

    def test_design_c_outputs_0xxx(self, backend):
        column = _exact_output_column(figure1_design_c(), TABLE1_INPUT_SEQUENCE, backend)
        assert format_ternary_sequence(column) == "0·X·X·X"

    def test_table1_row_for_state_10(self, backend):
        # Table 1 singles out C's power-up state (Q1, Q2) = (1, 0): it
        # outputs 0·1·0·1 while every other state outputs 0·0·1·0.
        c = figure1_design_c()
        rows = {}
        for state in all_power_up_states(c):
            trace = BinarySimulator(c, backend=backend).run(state, TABLE1_INPUT_SEQUENCE)
            rows[state] = "".join("1" if b else "0" for b in trace.output_column(0))
        assert rows[(True, False)] == "0101"
        for state, row in rows.items():
            if state != (True, False):
                assert row == "0010"

    def test_production_exact_simulator_agrees(self):
        d_out = exact_outputs(figure1_design_d(), TABLE1_INPUT_SEQUENCE)
        c_out = exact_outputs(figure1_design_c(), TABLE1_INPUT_SEQUENCE)
        assert format_ternary_sequence(v[0] for v in d_out) == "0·0·1·0"
        assert format_ternary_sequence(v[0] for v in c_out) == "0·X·X·X"

    def test_cls_cannot_distinguish_the_pair(self, backend):
        # Corollary 5.3 on the same witness input: the conservative
        # simulator reports identical (all-X-diluted) outputs for both.
        sequence = [(ZERO,), (ONE,), (ONE,), (ONE,)]
        assert cls_outputs(figure1_design_d(), sequence) == cls_outputs(
            figure1_design_c(), sequence
        )


class TestFigure3Witness:
    """Section 2.2: retiming loses the stuck-at test ``0·1``."""

    def test_d_detects_the_marked_fault(self, backend):
        verdict = detects_exact(figure3_design_d(), figure3_fault(), FIGURE3_TEST_SEQUENCE)
        assert verdict.detected
        assert verdict.time_step == 1
        assert verdict.good_value is False  # fault-free 0, faulty 1

    def test_retimed_c_misses_the_same_fault(self, backend):
        verdict = detects_exact(figure3_design_c(), figure3_fault(), FIGURE3_TEST_SEQUENCE)
        assert not verdict.detected

    def test_detection_from_first_principles(self, backend):
        # The paper's exact words: fault-free D produces 0·0 from all
        # power-up states, faulty D produces 0·1; fault-free C is 0·X.
        fault = figure3_fault()
        d = figure3_design_d()
        good_d = _exact_output_column(d, FIGURE3_TEST_SEQUENCE, backend)
        bad_d = _exact_output_column(
            d, FIGURE3_TEST_SEQUENCE, backend, overrides=faulty_overrides(fault)
        )
        assert format_ternary_sequence(good_d) == "0·0"
        assert format_ternary_sequence(bad_d) == "0·1"
        good_c = _exact_output_column(figure3_design_c(), FIGURE3_TEST_SEQUENCE, backend)
        assert format_ternary_sequence(good_c) == "0·X"

    def test_theorem46_prefixed_sequences_restore_the_test(self, backend):
        # One arbitrary prefix cycle re-arms the test on C (Thm 4.6).
        c = figure3_design_c()
        fault = figure3_fault()
        for prefix in (False, True):
            sequence = ((prefix,),) + FIGURE3_TEST_SEQUENCE
            assert detects_exact(c, fault, sequence).detected

    def test_cls_semantics_is_strictly_weaker(self, backend):
        # The conservative methodology pays a price (Section 2.2's
        # closing remark): from all-X the fault-free D already shows X
        # at the second cycle, so the CLS cannot certify the ``0·1``
        # test on either design -- exact detection on D has no CLS
        # counterpart here.
        fault = figure3_fault()
        assert not detects_cls(figure3_design_d(), fault, FIGURE3_TEST_SEQUENCE).detected
        assert not detects_cls(figure3_design_c(), fault, FIGURE3_TEST_SEQUENCE).detected
        # Even prefixing the (exactly-initialising) input 0 does not
        # help: the CLS sees AND(X, X) = X at AND gate-1 (Section 5),
        # so the latch never leaves X and no definite fault-free 0 ever
        # appears at the output AND.
        prefixed = ((False,),) + FIGURE3_TEST_SEQUENCE
        assert not detects_cls(figure3_design_d(), fault, prefixed).detected


class TestProposition42:
    """Prop. 4.2 / Cor. 4.3 on the Figure 1 pair: ``C¹ ⊑ D`` but not ``C ⊑ D``."""

    def test_one_cycle_delayed_containment(self):
        d_stg = extract_stg(figure1_design_d())
        c_stg = extract_stg(figure1_design_c())
        assert not implies(c_stg, d_stg)
        assert delayed_implies(c_stg, d_stg, 1)
        assert delay_needed_for_implication(c_stg, d_stg) == 1

    def test_d_trivially_contains_itself(self):
        d_stg = extract_stg(figure1_design_d())
        assert implies(d_stg, d_stg)
        assert delayed_implies(d_stg, d_stg, 0)
