"""Golden certificates: the Figure 1 verdict, frozen as files.

The exports in :mod:`repro.sat.certificates` are the engine's public
face -- a DIMACS instance any solver can re-run, an SMV model a model
checker can re-run, and a witness JSON the replay checker can re-run.
These tests pin all three for the paper's Figure 1 pair bit-for-bit
against checked-in golden files, then close the loop: the golden DIMACS
is parsed back and re-solved to the same verdict, and the golden
witness is replayed through the stock simulators (both in-process and
via the ``python -m repro.sat.replay`` CLI).
"""

from __future__ import annotations

import os

import pytest

from repro.bench.paper_circuits import figure1_design_c, figure1_design_d
from repro.sat import check_safe_replacement
from repro.sat.certificates import export_dimacs, export_smv, write_bundle
from repro.sat.cnf import check_model, parse_dimacs
from repro.sat.replay import main as replay_main
from repro.sat.replay import replay_witness
from repro.sat.solver import Solver
from repro.sat.witness import witness_from_json, witness_to_json

GOLDEN = os.path.join(os.path.dirname(__file__), "golden", "fig1")


def _golden(name):
    with open(os.path.join(GOLDEN, name), "r", encoding="utf-8") as handle:
        return handle.read()


@pytest.fixture(scope="module")
def fig1_result():
    c, d = figure1_design_c(), figure1_design_d()
    return c, d, check_safe_replacement(c, d)


class TestGoldenFiles:
    """Regenerate each certificate and compare bit-for-bit."""

    def test_dimacs_matches_golden(self, fig1_result):
        _, _, result = fig1_result
        assert export_dimacs(result.miter) == _golden("miter.dimacs")

    def test_smv_matches_golden(self, fig1_result):
        c, d, _ = fig1_result
        assert export_smv(c, d) == _golden("miter.smv")

    def test_witness_matches_golden(self, fig1_result):
        _, _, result = fig1_result
        assert witness_to_json(result.witness) == _golden("witness.json")


class TestGoldenRoundTrip:
    """The golden files alone re-prove the verdict -- no engine state."""

    def test_golden_dimacs_resolves_to_sat(self):
        """The deciding miter is satisfiable (a violation exists), and
        the model survives the clause re-check."""
        parsed = parse_dimacs(_golden("miter.dimacs"))
        model = Solver(parsed.num_vars, parsed.clauses).solve()
        assert model is not None
        assert check_model(parsed.clauses, model)

    def test_golden_dimacs_header_names_the_pair(self):
        header = _golden("miter.dimacs")
        assert "safe-replacement miter" in header
        assert "figure1_C (C) vs figure1_D (D)" in header
        assert "C power-up state (MSB first)" in header

    def test_golden_smv_has_one_copy_per_power_up_state(self):
        smv = _golden("miter.smv")
        # figure1_D has one latch: exactly D0 and D1, pinned by INIT.
        assert "D0 : circ_d(in0);" in smv
        assert "D1 : circ_d(in0);" in smv
        assert "D2" not in smv
        assert "INIT !D0.l0" in smv
        assert "INIT D1.l0" in smv
        assert "LTLSPEC G !(cur_mm0 & cur_mm1)" in smv

    def test_golden_witness_replays_bit_for_bit(self, fig1_result):
        c, d, _ = fig1_result
        witness = witness_from_json(_golden("witness.json"))
        assert witness.c_state == 2
        assert witness.frames == 2
        replay = replay_witness(c, d, witness)
        assert replay.ok, replay.errors

    def test_golden_witness_rejects_the_wrong_circuit_pair(self):
        """Swap C and D: the replay must fail, not shrug."""
        witness = witness_from_json(_golden("witness.json"))
        c, d = figure1_design_c(), figure1_design_d()
        replay = replay_witness(d, c, witness)
        assert not replay.ok
        assert replay.errors


class TestBundle:
    def test_bundle_replays_via_the_cli(self, fig1_result, tmp_path):
        """write_bundle + ``python -m repro.sat.replay`` from files
        alone -- the MANIFEST's own re-check command, executed."""
        c, d, result = fig1_result
        written = write_bundle(str(tmp_path), result, c, d)
        assert set(written) >= {
            "c.bench",
            "d.bench",
            "miter.dimacs",
            "miter.smv",
            "witness.json",
            "MANIFEST.txt",
        }
        rc = replay_main(
            [
                str(tmp_path / "witness.json"),
                "--c",
                str(tmp_path / "c.bench"),
                "--d",
                str(tmp_path / "d.bench"),
            ]
        )
        assert rc == 0

    def test_tampered_witness_is_rejected_by_the_cli(self, fig1_result, tmp_path, capsys):
        c, d, result = fig1_result
        write_bundle(str(tmp_path), result, c, d)
        text = (tmp_path / "witness.json").read_text(encoding="utf-8")
        (tmp_path / "witness.json").write_text(
            text.replace('"c_state": 2', '"c_state": 0'), encoding="utf-8"
        )
        rc = replay_main(
            [
                str(tmp_path / "witness.json"),
                "--c",
                str(tmp_path / "c.bench"),
                "--d",
                str(tmp_path / "d.bench"),
            ]
        )
        assert rc == 1
        assert "REJECTED" in capsys.readouterr().err

    def test_manifest_records_the_verdict(self, fig1_result, tmp_path):
        c, d, result = fig1_result
        write_bundle(str(tmp_path), result, c, d)
        manifest = (tmp_path / "MANIFEST.txt").read_text(encoding="utf-8")
        assert "kind: safe-replacement" in manifest
        assert "C ⋠ D" in manifest
        assert "re-check: python -m repro.sat.replay" in manifest
