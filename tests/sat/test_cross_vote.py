"""Slow tier: four engines, one ballot per pair, unanimity required.

The repo now carries four decision procedures for the paper's orders --
explicit subset construction over enumerated STGs, symbolic BDD
fixpoints under a fixed variable order, the same fixpoints under
dynamic reordering (auto sifting) with a partitioned transition
relation, and bounded CNF unrolling under CDCL.  This suite has each of
them vote on the same containment questions over a few hundred random
pairs plus the structured circuit families, and fails on any split
ballot.  SAT violations additionally have their witnesses replayed
through the stock simulators, so a unanimous wrong answer would still
need several independent bugs *and* a broken simulator to slip
through.
"""

from __future__ import annotations

import pytest

from repro.bench.generators import (
    counter_circuit,
    pipeline_circuit,
    shift_register,
)
from repro.bench.paper_circuits import (
    figure1_design_c,
    figure1_design_d,
    figure3_design_c,
    figure3_design_d,
)
from repro.logic.bdd import BDDManager
from repro.sat import check_safe_replacement, sat_implies
from repro.sat.replay import replay_witness
from repro.stg.equivalence import implies
from repro.stg.explicit import extract_stg
from repro.stg.replaceability import SearchBudgetExceeded, find_violation
from repro.stg.symbolic_replaceability import (
    SymbolicContainmentChecker,
    symbolic_find_violation,
)

def _random_pair(seed, *, max_latches=3):
    import random

    from repro.bench.generators import random_sequential_circuit

    rng = random.Random(seed)
    num_inputs = rng.randint(1, 2)
    num_outputs = rng.randint(1, 2)
    c = random_sequential_circuit(
        seed,
        num_inputs=num_inputs,
        num_outputs=num_outputs,
        num_gates=rng.randint(4, 10),
        num_latches=rng.randint(1, max_latches),
    )
    d = random_sequential_circuit(
        seed + 59999,
        num_inputs=num_inputs,
        num_outputs=num_outputs,
        num_gates=rng.randint(4, 10),
        num_latches=rng.randint(1, max_latches),
    )
    return c, d


def _reordering_checker(c, d):
    """The fourth voter: auto sifting at a deliberately low threshold
    (so it really fires) over the partitioned transition relation."""
    manager = BDDManager(reorder="auto", reorder_threshold=256)
    return SymbolicContainmentChecker(
        c, d, manager=manager, reorder="auto", partitioned=True
    )


def _cross_vote(c, d, seed=None):
    """All four engines vote on ⊑ and ≼; any split fails the test."""
    tag = "" if seed is None else " (seed %s)" % seed
    c_stg, d_stg = extract_stg(c), extract_stg(d)
    checker = SymbolicContainmentChecker(c, d, reorder="off")
    reordering = _reordering_checker(c, d)

    votes = {
        "explicit": implies(c_stg, d_stg),
        "symbolic": checker.implies(),
        "symbolic+reorder": reordering.implies(),
        "sat": sat_implies(c, d),
    }
    assert len(set(votes.values())) == 1, "implication ballot split%s: %r" % (
        tag,
        votes,
    )

    explicit_v = find_violation(c_stg, d_stg)
    symbolic_v = symbolic_find_violation(c, d)
    reorder_v = reordering.find_violation()
    assert (explicit_v is None) == (symbolic_v is None), (
        "safe-replacement ballot split (explicit vs symbolic)%s" % tag
    )
    assert (explicit_v is None) == (reorder_v is None), (
        "safe-replacement ballot split (explicit vs symbolic+reorder)%s" % tag
    )
    if symbolic_v is not None:
        # The reordering engine is the same algorithm under a different
        # variable order, so its witness must be bit-identical.
        assert (
            reorder_v.c_state,
            reorder_v.input_symbols,
            reorder_v.c_outputs,
        ) == (
            symbolic_v.c_state,
            symbolic_v.input_symbols,
            symbolic_v.c_outputs,
        ), "reordering engine reconstructed a different witness%s" % tag
    try:
        sat_result = check_safe_replacement(c, d)
    except SearchBudgetExceeded:
        # The SAT engine may abstain (raise) only on pairs that really
        # are safe: a violation would surface well inside the frame cap.
        assert explicit_v is None, (
            "SAT abstained on a pair with a violation%s" % tag
        )
        return
    assert sat_result.holds == (explicit_v is None), (
        "safe-replacement ballot split (sat vs explicit)%s" % tag
    )
    if explicit_v is not None:
        assert len(sat_result.violation.input_symbols) == len(
            explicit_v.input_symbols
        ), "minimal violation lengths differ%s" % tag
        replay = replay_witness(c, d, sat_result.witness)
        assert replay.ok, replay.errors


@pytest.mark.slow
class TestThreeEngineCrossVote:
    @pytest.mark.parametrize("block", range(10))
    def test_random_pairs(self, block):
        for offset in range(15):
            seed = 30_000 + block * 15 + offset
            c, d = _random_pair(seed, max_latches=3)
            _cross_vote(c, d, seed=seed)

    def test_paper_pairs_all_directions(self):
        fig1_c, fig1_d = figure1_design_c(), figure1_design_d()
        fig3_c, fig3_d = figure3_design_c(), figure3_design_d()
        for c, d in [
            (fig1_c, fig1_d),
            (fig1_d, fig1_c),
            (fig3_c, fig3_d),
            (fig3_d, fig3_c),
        ]:
            _cross_vote(c, d)

    def test_structured_families(self):
        """Reflexive safety plus cross-family comparisons: the shapes
        retiming actually produces."""
        circuits = [
            shift_register(3),
            counter_circuit(3),
            pipeline_circuit(2, width=1),
        ]
        for circuit in circuits:
            _cross_vote(circuit, circuit)
        a, b = shift_register(3), shift_register(3, name="sr_b")
        _cross_vote(a, b)
