"""The CNF encoder vs the simulators: one source of truth, two readers.

Both the encoder and the simulators consume the same compiled op
program, so a disagreement means the dual-rail CNF forms are wrong.
Each test pins a frame's state and inputs to constants, solves the
(fully determined) CNF, and compares the decoded outputs and next
state against :class:`BinarySimulator` / :class:`TernarySimulator` --
over every circuit family the generators produce, binary and ternary,
including X-propagation from the all-X state.
"""

from __future__ import annotations

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.generators import (
    counter_circuit,
    pipeline_circuit,
    random_sequential_circuit,
    shift_register,
)
from repro.bench.paper_circuits import (
    figure1_design_c,
    figure1_design_d,
    figure3_design_c,
    figure3_design_d,
)
from repro.logic.ternary import ONE, T, X, ZERO
from repro.sat.cnf import CNF
from repro.sat.encode import CircuitEncoder, decode_rails
from repro.sat.solver import Solver
from repro.sim.binary import BinarySimulator
from repro.sim.ternary_sim import TernarySimulator


def _encode_and_solve(circuit, state, inputs):
    """Encode one frame with pinned ternary state/inputs; returns the
    decoded (outputs, next_state) as T tuples."""
    cnf = CNF()
    enc = CircuitEncoder(cnf, circuit)
    t = enc.true_lit

    def pin(values):
        rails = []
        for v in values:
            if v is X:
                rails.append((t, t))
            elif v is ONE or v == 1:
                rails.append((-t, t))
            else:
                rails.append((t, -t))
        return rails

    out_rails, next_rails = enc.encode_frame(pin(state), pin(inputs))
    model = Solver(cnf.num_vars, cnf.clauses).solve()
    assert model is not None, "a fully pinned frame must be satisfiable"
    outputs = tuple(decode_rails(model, pair, t) for pair in out_rails)
    next_state = tuple(decode_rails(model, pair, t) for pair in next_rails)
    return outputs, next_state


def _circuits():
    return [
        figure1_design_c(),
        figure1_design_d(),
        figure3_design_c(),
        figure3_design_d(),
        shift_register(3),
        counter_circuit(3),
        pipeline_circuit(2, width=2),
        random_sequential_circuit(5, num_inputs=2, num_outputs=2, num_gates=10),
    ]


class TestBinaryFrames:
    @pytest.mark.parametrize("index", range(8))
    def test_exhaustive_small_frames(self, index):
        """Every (state, input) combination of each fixture circuit."""
        circuit = _circuits()[index]
        sim = BinarySimulator(circuit)
        n, m = circuit.num_latches, len(circuit.inputs)
        if n + m > 8:
            pytest.skip("state x input space too large for exhaustion")
        for state_bits in itertools.product((False, True), repeat=n):
            for input_bits in itertools.product((False, True), repeat=m):
                want_out, want_next = sim.step(state_bits, input_bits)
                got_out, got_next = _encode_and_solve(
                    circuit,
                    [ONE if b else ZERO for b in state_bits],
                    [ONE if b else ZERO for b in input_bits],
                )
                assert tuple(v == 1 for v in got_out) == tuple(want_out)
                assert tuple(v == 1 for v in got_next) == tuple(want_next)

    @settings(deadline=None, max_examples=30)
    @given(seed=st.integers(0, 10_000))
    def test_random_circuits_random_frames(self, seed):
        rng = random.Random(seed)
        circuit = random_sequential_circuit(
            seed,
            num_inputs=rng.randint(1, 3),
            num_outputs=rng.randint(1, 3),
            num_gates=rng.randint(4, 16),
            num_latches=rng.randint(1, 5),
        )
        sim = BinarySimulator(circuit)
        state = [rng.random() < 0.5 for _ in range(circuit.num_latches)]
        inputs = [rng.random() < 0.5 for _ in range(len(circuit.inputs))]
        want_out, want_next = sim.step(state, inputs)
        got_out, got_next = _encode_and_solve(
            circuit,
            [ONE if b else ZERO for b in state],
            [ONE if b else ZERO for b in inputs],
        )
        assert tuple(v == 1 for v in got_out) == tuple(want_out)
        assert tuple(v == 1 for v in got_next) == tuple(want_next)


class TestTernaryFrames:
    @settings(deadline=None, max_examples=30)
    @given(seed=st.integers(0, 10_000))
    def test_x_propagation_matches_ternary_simulator(self, seed):
        rng = random.Random(seed)
        circuit = random_sequential_circuit(
            seed,
            num_inputs=rng.randint(1, 3),
            num_outputs=rng.randint(1, 3),
            num_gates=rng.randint(4, 16),
            num_latches=rng.randint(1, 5),
        )
        sim = TernarySimulator(circuit)
        choices = (ZERO, ONE, X)
        state = [rng.choice(choices) for _ in range(circuit.num_latches)]
        inputs = [rng.choice(choices) for _ in range(len(circuit.inputs))]
        want_out, want_next = sim.step(state, inputs)
        got_out, got_next = _encode_and_solve(circuit, state, inputs)
        assert got_out == tuple(want_out)
        assert got_next == tuple(want_next)

    def test_all_x_frame(self):
        """The CLS power-up convention: everything X in, conservative
        values out, for every fixture."""
        for circuit in _circuits():
            sim = TernarySimulator(circuit)
            state = [X] * circuit.num_latches
            inputs = [X] * len(circuit.inputs)
            want_out, want_next = sim.step(state, inputs)
            got_out, got_next = _encode_and_solve(circuit, state, inputs)
            assert got_out == tuple(want_out), circuit.name
            assert got_next == tuple(want_next), circuit.name


class TestFreeVariableCounts:
    def test_binary_nets_use_one_variable(self):
        """The (-x, x) aliasing: a purely binary unrolling allocates one
        variable per free net, not two."""
        cnf = CNF()
        enc = CircuitEncoder(cnf, figure1_design_d())
        before = cnf.num_vars
        vars_, rails = enc.new_binary_rails(4)
        assert cnf.num_vars == before + 4
        assert rails == [(-v, v) for v in vars_]

    def test_ternary_nets_are_constrained_valid(self):
        cnf = CNF()
        enc = CircuitEncoder(cnf, figure1_design_d())
        rails = enc.new_ternary_rails(1)
        (a, b) = rails[0]
        # (0,0) must be excluded: forcing both rails low is UNSAT.
        clauses = list(cnf.clauses) + [(-a,), (-b,)]
        assert Solver(cnf.num_vars, clauses).solve() is None
