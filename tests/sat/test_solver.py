"""Unit tests for the CDCL core: cross-checked against brute force.

The solver's only contract is SAT/UNSAT correctness plus budget
discipline; these tests enumerate assignments for small random CNFs and
insist the verdicts match exactly, across enough instances to exercise
learning, restarts and the lazy VSIDS heap.
"""

from __future__ import annotations

import itertools
import random

import pytest

from repro.sat.cnf import CNF, check_model, parse_dimacs
from repro.sat.solver import Solver, luby
from repro.stg.replaceability import SearchBudgetExceeded


def brute_force_sat(num_vars, clauses):
    for bits in itertools.product((False, True), repeat=num_vars):
        model = {v: bits[v - 1] for v in range(1, num_vars + 1)}
        if check_model(clauses, model):
            return model
    return None


def random_cnf(rng, num_vars, num_clauses, width=3):
    clauses = []
    for _ in range(num_clauses):
        size = rng.randint(1, width)
        vars_ = rng.sample(range(1, num_vars + 1), min(size, num_vars))
        clauses.append(tuple(v if rng.random() < 0.5 else -v for v in vars_))
    return clauses


class TestLuby:
    def test_prefix(self):
        got = [luby(i) for i in range(15)]
        assert got == [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]


class TestAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(60))
    def test_random_instances(self, seed):
        rng = random.Random(seed)
        num_vars = rng.randint(1, 8)
        clauses = random_cnf(rng, num_vars, rng.randint(1, 30))
        expected = brute_force_sat(num_vars, clauses)
        model = Solver(num_vars, clauses).solve()
        assert (model is None) == (expected is None), "seed %d" % seed
        if model is not None:
            # Any model must satisfy every clause (already re-checked
            # internally, but assert the contract here too).
            assert check_model(clauses, model)

    @pytest.mark.parametrize("seed", range(20))
    def test_unsat_heavy_instances(self, seed):
        """Over-constrained formulas: mostly UNSAT, stressing learning."""
        rng = random.Random(1000 + seed)
        num_vars = rng.randint(2, 6)
        clauses = random_cnf(rng, num_vars, 8 * num_vars, width=2)
        expected = brute_force_sat(num_vars, clauses)
        model = Solver(num_vars, clauses).solve()
        assert (model is None) == (expected is None)


class TestEdgeCases:
    def test_empty_formula_is_sat(self):
        assert Solver(0, []).solve() == {}

    def test_empty_clause_is_unsat(self):
        assert Solver(1, [()]).solve() is None

    def test_contradicting_units(self):
        assert Solver(1, [(1,), (-1,)]).solve() is None

    def test_tautology_is_dropped(self):
        model = Solver(1, [(1, -1)]).solve()
        assert model is not None

    def test_unit_chain(self):
        # 1, 1->2, 2->3: all forced true.
        model = Solver(3, [(1,), (-1, 2), (-2, 3)]).solve()
        assert model == {1: True, 2: True, 3: True}

    def test_clause_whose_watches_are_both_false_at_level_zero(self):
        """Regression: a clause added after units have falsified its
        first two literals must still propagate / conflict correctly."""
        clauses = [(1,), (2,), (-1, -2, 3), (-3,)]
        # -1 -2 3 with 1,2 forced: 3 forced, contradicting -3.
        assert Solver(3, clauses).solve() is None
        clauses = [(1,), (2,), (-1, -2, 3)]
        model = Solver(3, clauses).solve()
        assert model == {1: True, 2: True, 3: True}


class TestBudgets:
    def _hard_instance(self):
        """Pigeonhole PHP(5,4): UNSAT and exponentially hard for
        resolution, so any small conflict budget trips."""
        holes, pigeons = 4, 5
        var = lambda p, h: p * holes + h + 1
        clauses = [tuple(var(p, h) for h in range(holes)) for p in range(pigeons)]
        for h in range(holes):
            for p1 in range(pigeons):
                for p2 in range(p1 + 1, pigeons):
                    clauses.append((-var(p1, h), -var(p2, h)))
        return pigeons * holes, clauses

    def test_conflict_budget_raises(self):
        num_vars, clauses = self._hard_instance()
        with pytest.raises(SearchBudgetExceeded):
            Solver(num_vars, clauses, max_conflicts=3).solve()

    def test_decision_budget_raises(self):
        num_vars, clauses = self._hard_instance()
        with pytest.raises(SearchBudgetExceeded):
            Solver(num_vars, clauses, max_decisions=2).solve()

    def test_budget_exception_is_a_memory_error(self):
        """The serve layer's envelope mapping relies on this."""
        assert issubclass(SearchBudgetExceeded, MemoryError)

    def test_generous_budget_still_decides(self):
        num_vars, clauses = self._hard_instance()
        assert Solver(num_vars, clauses, max_conflicts=200_000).solve() is None


class TestDimacsRoundTrip:
    def test_round_trip(self):
        cnf = CNF()
        a, b, c = cnf.new_vars(3)
        cnf.add(a, -b)
        cnf.add(b, c)
        cnf.add(-a, -c)
        cnf.comment("three clauses")
        parsed = parse_dimacs(cnf.to_dimacs())
        assert parsed.num_vars == 3
        assert parsed.clauses == [(a, -b), (b, c), (-a, -c)]

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_dimacs("not dimacs at all\n")
        with pytest.raises(ValueError):
            parse_dimacs("p cnf 1 1\n2 0\n")  # var out of range
        with pytest.raises(ValueError):
            parse_dimacs("p cnf 1 2\n1 0\n")  # clause count mismatch
        with pytest.raises(ValueError):
            parse_dimacs("p cnf 1 1\n1\n")  # unterminated clause

    def test_solver_verdict_survives_round_trip(self):
        rng = random.Random(7)
        clauses = random_cnf(rng, 6, 20)
        cnf = CNF()
        cnf.new_vars(6)
        for clause in clauses:
            cnf.add_clause(clause)
        parsed = parse_dimacs(cnf.to_dimacs())
        direct = Solver(6, clauses).solve()
        reparsed = Solver(parsed.num_vars, parsed.clauses).solve()
        assert (direct is None) == (reparsed is None)
