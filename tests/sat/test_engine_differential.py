"""Differential tests: SAT engine vs explicit STG vs symbolic BDDs.

Three decision procedures for the same orders (``⊑``, ``≼``,
``Cⁿ ⊑ D``), with no shared algorithmic machinery: enumerated STGs
plus subset construction, BDD fixpoints, and bounded CNF unrolling
under CDCL.  Every produced verdict must agree, every SAT violation
must carry a witness the stock simulators confirm, and minimal-length
guarantees must line up (the SAT deepening loop and the explicit BFS
both find shortest violations).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.generators import random_sequential_circuit
from repro.bench.paper_circuits import (
    figure1_design_c,
    figure1_design_d,
    figure3_design_c,
    figure3_design_d,
)
from repro.sat import (
    check_cls_equivalence,
    check_implication,
    check_safe_replacement,
    sat_delay_needed,
    sat_delayed_implies,
    sat_find_violation,
    sat_first_cls_difference,
    sat_implies,
    sat_is_safe_replacement,
    sat_machines_equivalent,
)
from repro.sat.replay import replay_witness
from repro.sat.witness import witness_from_json, witness_to_json
from repro.stg.delayed import delay_needed_for_implication, delayed_implies
from repro.stg.equivalence import (
    decide_implication,
    decide_machines_equivalent,
    implies,
    machines_equivalent,
)
from repro.stg.explicit import extract_stg
from repro.stg.replaceability import (
    SearchBudgetExceeded,
    find_safe_replacement_violation,
    find_violation,
)
from repro.stg.symbolic_replaceability import resolve_engine
from repro.stg.ternary_equiv import decide_cls_equivalence


def _paper_pairs():
    fig1_c, fig1_d = figure1_design_c(), figure1_design_d()
    fig3_c, fig3_d = figure3_design_c(), figure3_design_d()
    return [
        (fig1_c, fig1_d),
        (fig1_d, fig1_c),
        (fig1_c, fig1_c),
        (fig1_d, fig1_d),
        (fig3_c, fig3_d),
        (fig3_d, fig3_c),
        (fig3_c, fig3_c),
        (fig3_d, fig3_d),
    ]


def _random_pair(seed, *, max_latches=3):
    import random

    rng = random.Random(seed)
    num_inputs = rng.randint(1, 2)
    num_outputs = rng.randint(1, 2)
    c = random_sequential_circuit(
        seed,
        num_inputs=num_inputs,
        num_outputs=num_outputs,
        num_gates=rng.randint(4, 10),
        num_latches=rng.randint(1, max_latches),
    )
    d = random_sequential_circuit(
        seed + 59999,
        num_inputs=num_inputs,
        num_outputs=num_outputs,
        num_gates=rng.randint(4, 10),
        num_latches=rng.randint(1, max_latches),
    )
    return c, d


def _assert_sat_agrees(c, d):
    """Full cross-check of every containment question on one pair."""
    c_stg, d_stg = extract_stg(c), extract_stg(d)

    assert sat_implies(c, d) == implies(c_stg, d_stg)
    assert sat_machines_equivalent(c, d) == machines_equivalent(c_stg, d_stg)

    explicit_violation = find_violation(c_stg, d_stg)
    try:
        result = check_safe_replacement(c, d)
    except SearchBudgetExceeded:
        # Safe-but-not-contained pairs have no cheap completeness
        # route (the subset bound is doubly exponential); the engine
        # must raise rather than guess -- but only on pairs that
        # really are safe: a violation would have been found well
        # within the frame cap.
        assert explicit_violation is None
        result = None
    if result is not None:
        assert result.holds == (explicit_violation is None)
    if result is not None and explicit_violation is not None:
        sat_violation = result.violation
        # Both searches deepen breadth-first, so both are minimal.
        assert len(sat_violation.input_symbols) == len(
            explicit_violation.input_symbols
        )
        # Replay the SAT witness on the explicit STG.
        outputs, _ = c_stg.run(sat_violation.c_state, sat_violation.input_symbols)
        assert tuple(outputs) == sat_violation.c_outputs
        for s in range(d_stg.num_states):
            d_outputs, _ = d_stg.run(s, sat_violation.input_symbols)
            assert tuple(d_outputs) != sat_violation.c_outputs
        # And independently with the stock simulators, end to end.
        replay = replay_witness(c, d, result.witness)
        assert replay.ok, replay.errors

    assert sat_delay_needed(c, d) == delay_needed_for_implication(c_stg, d_stg)
    for cycles in range(3):
        assert sat_delayed_implies(c, d, cycles) == delayed_implies(
            c_stg, d_stg, cycles
        )


class TestPaperPairs:
    @pytest.mark.parametrize("index", range(8))
    def test_engines_agree(self, index):
        c, d = _paper_pairs()[index]
        _assert_sat_agrees(c, d)

    def test_figure1_exact_facts(self):
        """The paper's running example, fact for fact."""
        c, d = figure1_design_c(), figure1_design_d()
        assert sat_implies(c, d) is False
        assert sat_implies(d, c) is True
        assert sat_machines_equivalent(c, d) is False
        assert sat_delayed_implies(c, d, 1) is True
        assert sat_delay_needed(c, d) == 1
        assert sat_is_safe_replacement(d, c) is True
        violation = sat_find_violation(c, d)
        assert violation.c_state == 2
        assert violation.input_symbols == (0, 1)
        assert violation.c_outputs == (0, 1)

    def test_figure1_witness_replays_and_round_trips(self):
        c, d = figure1_design_c(), figure1_design_d()
        result = check_safe_replacement(c, d)
        assert replay_witness(c, d, result.witness).ok
        restored = witness_from_json(witness_to_json(result.witness))
        assert restored == result.witness
        assert replay_witness(c, d, restored).ok

    def test_implication_witness_replays(self):
        c, d = figure1_design_c(), figure1_design_d()
        result = check_implication(c, d)
        assert not result.holds
        replay = replay_witness(c, d, result.witness)
        assert replay.ok, replay.errors
        # One distinguishing experiment per D power-up state.
        assert {p.d_state for p in result.witness.pairs} == set(
            range(1 << d.num_latches)
        )


class TestRandomPairs:
    @settings(deadline=None, max_examples=25)
    @given(seed=st.integers(0, 10_000))
    def test_engines_agree(self, seed):
        c, d = _random_pair(seed)
        _assert_sat_agrees(c, d)

    @settings(deadline=None, max_examples=10)
    @given(seed=st.integers(0, 10_000))
    def test_subset_path_agrees_without_shortcut(self, seed):
        """Force the full safe-replacement unrolling (no Prop 3.1
        shortcut) -- it must still agree with the explicit engine."""
        c, d = _random_pair(seed, max_latches=2)
        explicit = find_violation(extract_stg(c), extract_stg(d))
        result = check_safe_replacement(c, d, use_implication_shortcut=False)
        assert result.holds == (explicit is None)

    @settings(deadline=None, max_examples=15)
    @given(seed=st.integers(0, 10_000))
    def test_every_violation_witness_replays(self, seed):
        c, d = _random_pair(seed)
        try:
            result = check_safe_replacement(c, d)
        except SearchBudgetExceeded:
            return
        if result.witness is not None:
            replay = replay_witness(c, d, result.witness)
            assert replay.ok, replay.errors


class TestCLS:
    def test_figure1_pair_is_cls_equivalent(self):
        c, d = figure1_design_c(), figure1_design_d()
        result = check_cls_equivalence(c, d)
        assert result.holds and result.method == "complete-bound"

    @settings(deadline=None, max_examples=15)
    @given(seed=st.integers(0, 10_000))
    def test_agrees_with_explicit_cls_walk(self, seed):
        c, d = _random_pair(seed, max_latches=2)
        explicit = decide_cls_equivalence(c, d)
        try:
            trace = sat_first_cls_difference(c, d, max_frames=80)
        except SearchBudgetExceeded:
            return
        assert (trace is None) == (explicit is None)
        if trace is not None:
            replay = replay_witness(c, d, trace)
            assert replay.ok, replay.errors


class TestBudgets:
    def test_tiny_conflict_budget_raises_not_guesses(self):
        c, d = _random_pair(123, max_latches=3)
        with pytest.raises(SearchBudgetExceeded):
            check_safe_replacement(c, d, max_conflicts=0)

    def test_frame_cap_short_of_bound_raises(self):
        c, d = figure1_design_c(), figure1_design_d()
        # d ⊑ c holds, provable only at the full bound; capping the
        # frames below it must raise rather than report a guess.
        with pytest.raises(SearchBudgetExceeded):
            check_implication(d, c, max_frames=1)

    def test_interface_mismatch_rejected(self):
        a = random_sequential_circuit(0, num_inputs=1)
        b = random_sequential_circuit(0, num_inputs=2)
        with pytest.raises(ValueError):
            sat_implies(a, b)


class TestDispatchers:
    def test_engine_name_is_registered(self):
        from repro.stg.symbolic_replaceability import ENGINES

        assert "sat" in ENGINES

    def test_auto_never_resolves_to_sat(self):
        c, d = figure1_design_c(), figure1_design_d()
        assert resolve_engine("auto", c, d) in ("explicit", "symbolic")
        assert resolve_engine("sat", c, d) == "sat"

    def test_decide_implication_all_three_engines(self):
        c, d = figure1_design_c(), figure1_design_d()
        for engine in ("explicit", "symbolic", "sat"):
            assert decide_implication(c, d, engine=engine) is False
            assert decide_implication(d, c, engine=engine) is True

    def test_decide_machines_equivalent_all_three_engines(self):
        c, d = figure1_design_c(), figure1_design_d()
        for engine in ("explicit", "symbolic", "sat"):
            assert decide_machines_equivalent(c, d, engine=engine) is False
            assert decide_machines_equivalent(c, c, engine=engine) is True

    def test_find_safe_replacement_violation_sat_engine(self):
        c, d = figure1_design_c(), figure1_design_d()
        violation = find_safe_replacement_violation(c, d, engine="sat")
        explicit = find_safe_replacement_violation(c, d, engine="explicit")
        assert violation == explicit

    def test_check_retiming_validity_sat_engine(self):
        """The end-to-end validity battery through the SAT engine."""
        from repro.retime.apply import lag_to_moves
        from repro.retime.graph import build_retiming_graph
        from repro.retime.leiserson_saxe import min_period_retiming
        from repro.retime.validity import check_retiming_validity

        circuit = random_sequential_circuit(
            11, num_inputs=2, num_gates=8, num_latches=2
        )
        session = lag_to_moves(
            circuit, min_period_retiming(build_retiming_graph(circuit)).lag
        )
        sat_report = check_retiming_validity(session, engine="sat")
        explicit_report = check_retiming_validity(session, engine="explicit")
        assert sat_report == explicit_report
        assert sat_report.consistent_with_paper()


class TestObsCounters:
    def test_sat_counters_land_in_the_tracer(self):
        from repro.obs.trace import TRACER

        state = TRACER.snapshot()
        try:
            TRACER.enabled = True
            TRACER.counters.clear()
            c, d = figure1_design_c(), figure1_design_d()
            check_safe_replacement(c, d)
            assert TRACER.counters.get("sat.checks", 0) >= 1
            assert TRACER.counters.get("sat.solves", 0) >= 1
            assert TRACER.counters.get("sat.violations", 0) >= 1
            assert any(key.startswith("stg.sat.") for key in TRACER.spans)
        finally:
            TRACER.restore(state)
