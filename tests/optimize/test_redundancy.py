"""Tests for CLS-invariant redundancy removal (Section 6 program)."""

from __future__ import annotations

import pytest

from repro.bench.paper_circuits import figure1_design_d
from repro.netlist.builder import CircuitBuilder
from repro.netlist.transform import normalize_fanout, rewire_readers, sweep_dangling
from repro.netlist.validate import validate
from repro.optimize.redundancy import (
    is_cls_redundant,
    remove_cls_redundancies,
    substitute_constant,
)
from repro.stg.equivalence import machines_equivalent
from repro.stg.explicit import extract_stg
from repro.stg.ternary_equiv import cls_equivalent_exhaustive


def absorbing_circuit():
    """out = OR(x, AND(x, y)): the AND is classically redundant
    (absorption), and also CLS-redundant (replacing its output with 0
    leaves OR(x, 0) = x, and Kleene absorption holds)."""
    b = CircuitBuilder("absorb")
    x, y = b.input("x"), b.input("y")
    x1, x2 = b.fanout(x, 2, name="fx")
    inner = b.gate("AND", x2, y, name="inner")
    out = b.gate("OR", x1, inner, name="outer")
    q = b.latch(out, name="ff")
    b.output(b.gate("BUF", q, name="ob"))
    return b.build()


def complementary_x_circuit_clean():
    """The Section 5 shape: glitch = AND(q, NOT q) is 0 in reality but
    X under the CLS, so constant-0 substitution is NOT CLS-invariant."""
    b = CircuitBuilder("complx")
    i = b.input("i")
    i1, i2 = b.fanout(i, 2, name="fi")
    q = b.net("q")
    q1, q2, q3 = b.fanout(q, 3, name="fq")
    n = b.gate("NOT", q2, name="inv")
    glitch = b.gate("AND", q1, n, name="gl")
    b.latch(b.gate("AND", i1, q3, name="gate"), q, name="ff")
    b.output(b.gate("OR", glitch, i2, name="o"))
    return b.build()


# ---------------------------------------------------------------------------
# Building blocks.
# ---------------------------------------------------------------------------


def test_rewire_readers():
    c = absorbing_circuit()
    inner_net = c.cell("inner").outputs[0]
    x1_net = c.cell("outer").inputs[0]
    rewired = rewire_readers(c, inner_net, x1_net)
    # "outer" now reads x1 twice; inner dangles.
    assert rewired.cell("outer").inputs.count(x1_net) == 2
    assert rewired.fanout_count(inner_net) == 0


def test_rewire_readers_validates_nets():
    c = absorbing_circuit()
    with pytest.raises(Exception):
        rewire_readers(c, "ghost", c.inputs[0])
    with pytest.raises(Exception):
        rewire_readers(c, c.inputs[0], "ghost")


def test_sweep_dangling_removes_cones():
    c = absorbing_circuit()
    inner_net = c.cell("inner").outputs[0]
    x1_net = c.cell("outer").inputs[0]
    swept = sweep_dangling(rewire_readers(c, inner_net, x1_net))
    assert not swept.has_cell("inner")
    # y's junction... y itself is a PI and stays, even unread.
    assert "y" in swept.inputs
    validate(swept)


def test_sweep_dangling_removes_latch_chains():
    b = CircuitBuilder()
    i = b.input("i")
    q1 = b.latch(i, name="l1")
    q2 = b.latch(q1, name="l2")  # dead chain
    o = b.gate("NOT", i, name="g")
    b.output(o)
    c = b.circuit
    swept = sweep_dangling(c)
    assert swept.num_latches == 0
    assert swept.has_cell("g")


def test_substitute_constant_shrinks_absorbing_circuit():
    c = absorbing_circuit()
    inner_net = c.cell("inner").outputs[0]
    candidate = substitute_constant(c, inner_net, False)
    validate(candidate)
    from repro.optimize.redundancy import logic_size

    assert logic_size(candidate) < logic_size(c)
    assert not candidate.has_cell("inner")
    # Binary behaviour unchanged (absorption).
    assert machines_equivalent(extract_stg(c), extract_stg(candidate))


# ---------------------------------------------------------------------------
# The redundancy criterion.
# ---------------------------------------------------------------------------


def test_absorbing_and_is_cls_redundant():
    c = absorbing_circuit()
    inner_net = c.cell("inner").outputs[0]
    assert is_cls_redundant(c, inner_net, False)
    assert not is_cls_redundant(c, inner_net, True)  # OR(x, 1) = 1 != x


def test_complementary_x_net_is_not_cls_redundant():
    """The paper's Section 5 information-loss example, as an optimizer
    guard: AND(q, NOT q) is constant 0 in reality, yet replacing it by
    0 changes CLS behaviour, so it must be REJECTED."""
    c = complementary_x_circuit_clean()
    glitch_net = c.cell("gl").outputs[0]
    assert not is_cls_redundant(c, glitch_net, False)
    # ... even though the substitution is sound for binary semantics:
    candidate = substitute_constant(c, glitch_net, False)
    assert machines_equivalent(extract_stg(c), extract_stg(candidate))


def test_remove_cls_redundancies_on_absorbing_circuit():
    c = absorbing_circuit()
    report = remove_cls_redundancies(c)
    assert report.substitutions  # something was removed
    assert report.cells_removed > 0
    assert report.latches_removed >= 0
    validate(report.circuit)
    assert cls_equivalent_exhaustive(c, report.circuit)
    assert "applied" in report.summary()


def test_remove_cls_redundancies_keeps_the_glitch():
    c = complementary_x_circuit_clean()
    report = remove_cls_redundancies(c)
    # The glitch AND must survive (its removal would change the CLS).
    assert report.circuit.has_cell("gl")
    assert cls_equivalent_exhaustive(c, report.circuit)


def test_remove_cls_redundancies_idempotent_on_paper_d():
    d = figure1_design_d()
    report = remove_cls_redundancies(d)
    assert cls_equivalent_exhaustive(d, report.circuit)
    again = remove_cls_redundancies(report.circuit)
    assert not again.substitutions
