"""Tests for minimum-area retiming."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.generators import correlator, random_sequential_circuit, shift_register
from repro.retime.graph import HOST, HOST_OUT, RetimingEdge, RetimingGraph, build_retiming_graph
from repro.retime.leiserson_saxe import min_period_retiming
from repro.retime.min_area import min_area_retiming


def test_min_area_never_increases_registers():
    g = build_retiming_graph(correlator(8))
    result = min_area_retiming(g)
    assert result.registers <= result.original_registers
    assert g.is_legal_lag(result.lag)
    assert g.registers_after(result.lag) == result.registers


def test_min_area_respects_period_constraint():
    g = build_retiming_graph(correlator(8))
    minp = min_period_retiming(g)
    result = min_area_retiming(g, period=minp.period)
    assert result.period <= minp.period
    assert g.is_legal_lag(result.lag)


def test_min_area_trade_off_visible_on_correlator():
    """Tighter periods need more registers (the classic area/speed
    trade-off curve)."""
    g = build_retiming_graph(correlator(8))
    unconstrained = min_area_retiming(g)
    at_min_period = min_area_retiming(g, period=min_period_retiming(g).period)
    assert unconstrained.registers <= at_min_period.registers
    assert at_min_period.registers > unconstrained.registers  # real trade-off


def test_min_area_collapses_sharable_registers():
    """Two parallel branches each carrying a latch can share one latch
    before their junction... here modelled directly in graph form: a
    diamond where both branch edges carry a register that can retire to
    the single upstream edge."""
    g = RetimingGraph(
        vertices=("src", "l", "r", "snk"),
        edges=(
            RetimingEdge(HOST, "src", 0),
            RetimingEdge("src", "l", 1),
            RetimingEdge("src", "r", 1),
            RetimingEdge("l", "snk", 0),
            RetimingEdge("r", "snk", 0),
            RetimingEdge("snk", HOST_OUT, 1),
        ),
        delays={"src": 1, "l": 1, "r": 1, "snk": 1, HOST: 0, HOST_OUT: 0},
    )
    result = min_area_retiming(g)
    # Moving both branch registers upstream of src saves one register
    # (multiple optimal lag assignments exist; only the count is unique).
    assert result.registers == 3 - 1
    assert result.lag["src"] >= 1
    assert g.is_legal_lag(result.lag)


def test_min_area_infeasible_period_raises():
    g = build_retiming_graph(correlator(6))
    with pytest.raises(ValueError):
        min_area_retiming(g, period=1)  # below a single gate delay chain


def test_shift_register_cannot_shrink():
    g = build_retiming_graph(shift_register(5))
    result = min_area_retiming(g)
    assert result.registers == 5  # host-to-host weight is invariant


@settings(deadline=None, max_examples=10)
@given(seed=st.integers(0, 300))
def test_min_area_legal_and_no_worse(seed):
    circuit = random_sequential_circuit(seed, num_gates=10, num_latches=4)
    g = build_retiming_graph(circuit)
    result = min_area_retiming(g)
    assert g.is_legal_lag(result.lag)
    assert result.registers <= result.original_registers
    assert result.saved == result.original_registers - result.registers
