"""Tests for Touati-Brayton initial-state propagation across retiming."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.generators import random_sequential_circuit
from repro.bench.paper_circuits import figure1_design_d, figure1_design_c
from repro.retime.engine import RetimingSession
from repro.retime.initial_state import InitialStateError, propagate_initial_state
from repro.retime.moves import enabled_moves
from repro.sim.binary import BinarySimulator


def outputs_match(original, retimed, s0, s1, seq):
    a = BinarySimulator(original).output_sequence(s0, seq)
    b = BinarySimulator(retimed).output_sequence(s1, seq)
    return a == b


def test_forward_move_pushes_state_through_function():
    """Figure 1's hazardous move: D initialised to 0 maps to C
    initialised to (0, 0) -- the junction copies the value."""
    session = RetimingSession(figure1_design_d())
    session.forward("fanQ")
    new_state = propagate_initial_state(session, (False,))
    assert new_state == (False, False)
    new_state = propagate_initial_state(session, (True,))
    assert new_state == (True, True)


def test_propagated_state_is_behaviourally_equivalent():
    session = RetimingSession(figure1_design_d())
    session.forward("fanQ")
    seq = [(True,), (False,), (True,), (True,)]
    for init in ((False,), (True,)):
        new_state = propagate_initial_state(session, init)
        assert outputs_match(session.original, session.current, init, new_state, seq)


def test_backward_junction_move_requires_equal_latches():
    """Backward across a junction: the branch latches must agree.
    Starting C at (0, 1) -- the paper's rogue-family states -- the
    justification fails with the unjustifiable vector in hand."""
    session = RetimingSession(figure1_design_c())
    session.backward("fanQ")
    assert propagate_initial_state(session, (True, True)) == (True,)
    with pytest.raises(InitialStateError) as exc:
        propagate_initial_state(session, (False, True))
    assert exc.value.element == "fanQ"
    assert exc.value.vector == (False, True)


def test_width_validation():
    session = RetimingSession(figure1_design_d())
    with pytest.raises(ValueError, match="width"):
        propagate_initial_state(session, (False, True))


def test_empty_session_is_identity():
    d = figure1_design_d()
    session = RetimingSession(d)
    assert propagate_initial_state(session, (True,)) == (True,)


@settings(deadline=None, max_examples=12)
@given(seed=st.integers(0, 3000), steps=st.integers(1, 6), data=st.data())
def test_propagation_preserves_behaviour_or_fails_honestly(seed, steps, data):
    rng = random.Random(seed)
    circuit = random_sequential_circuit(seed % 59, num_gates=7, num_latches=3)
    session = RetimingSession(circuit)
    for _ in range(steps):
        moves = enabled_moves(session.current)
        if not moves:
            break
        session.apply(rng.choice(moves))
    init = tuple(data.draw(st.booleans()) for _ in range(circuit.num_latches))
    try:
        new_state = propagate_initial_state(session, init)
    except InitialStateError as exc:
        # Honest failure: the vector really is outside the element's
        # image (checked via the justifiability analysis).
        from repro.logic.justifiability import justify
        from repro.retime.initial_state import _replay_circuits

        before = _replay_circuits(session)[exc.move_index]
        fn = before.cell(exc.element).function
        assert justify(fn, exc.vector) is None
        return
    seq = [
        tuple(data.draw(st.booleans()) for _ in circuit.inputs) for _ in range(5)
    ]
    assert outputs_match(session.original, session.current, init, new_state, seq)
