"""Property tests for Section 4's move theorems on random circuits.

Hypothesis drives random small circuits through random move walks and
checks the paper's claims via the explicit STG machinery:

* **Proposition 4.1 / Corollary 4.4**: a walk using only backward moves
  and forward moves across justifiable elements preserves ``C ⊑ D``;
* **Theorem 4.5**: an unrestricted walk (hazardous moves allowed)
  yields ``C^k ⊑ D`` for the session's computed net-crossing bound k;
* **Corollary 5.3**: every walk, hazardous or not, leaves the CLS
  outputs invariant.

Circuits are kept tiny so every implication check is an exact product
exploration of the full state spaces, never a sampled one.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.generators import random_sequential_circuit
from repro.retime.engine import RetimingSession
from repro.retime.moves import enabled_moves
from repro.retime.validity import cls_equivalent
from repro.stg.delayed import delayed_implies
from repro.stg.equivalence import implies
from repro.stg.explicit import extract_stg

MAX_STG_BITS = 12


def _small_circuit(seed: int):
    return random_sequential_circuit(
        seed, num_inputs=1, num_gates=5, num_latches=2, name="prop%d" % seed
    )


def _random_walk(session: RetimingSession, rng: random.Random, steps: int,
                 *, include_hazardous: bool) -> int:
    """Apply up to *steps* random enabled moves; returns how many ran."""
    applied = 0
    for _ in range(steps):
        moves = enabled_moves(session.current, include_hazardous=include_hazardous)
        if not moves:
            break
        session.apply(rng.choice(moves))
        applied += 1
    return applied


def _stg_pair(session: RetimingSession):
    """STGs of (retimed, original), or ``None`` when the walk grew the
    state space past what exact product exploration should chew on."""
    original, current = session.original, session.current
    bits = max(
        original.num_latches + len(original.inputs),
        current.num_latches + len(current.inputs),
    )
    if bits > MAX_STG_BITS:
        return None
    return extract_stg(current), extract_stg(original)


@settings(deadline=None, max_examples=20)
@given(seed=st.integers(0, 500), walk=st.integers(1, 4))
def test_safe_moves_preserve_implication(seed, walk):
    """Prop. 4.1/Cor. 4.4: no hazardous move  ==>  C ⊑ D outright."""
    circuit = _small_circuit(seed)
    session = RetimingSession(circuit)
    rng = random.Random(seed * 31 + walk)
    if not _random_walk(session, rng, walk, include_hazardous=False):
        return  # nothing enabled on this draw
    assert session.is_safe_per_corollary44
    assert session.theorem45_k == 0
    pair = _stg_pair(session)
    if pair is None:
        return
    c_stg, d_stg = pair
    assert implies(c_stg, d_stg)


@settings(deadline=None, max_examples=20)
@given(seed=st.integers(0, 500), walk=st.integers(1, 5))
def test_theorem45_bound_holds_for_any_walk(seed, walk):
    """Thm. 4.5: k net forward JUNC crossings  ==>  C^k ⊑ D."""
    circuit = _small_circuit(seed)
    session = RetimingSession(circuit)
    rng = random.Random(seed * 17 + walk)
    if not _random_walk(session, rng, walk, include_hazardous=True):
        return
    pair = _stg_pair(session)
    if pair is None:
        return
    c_stg, d_stg = pair
    k = session.theorem45_k
    assert delayed_implies(c_stg, d_stg, k)
    if k == 0:
        # Degenerate Thm 4.5 is exactly Cor 4.4.
        assert implies(c_stg, d_stg)


@settings(deadline=None, max_examples=15)
@given(seed=st.integers(0, 500), walk=st.integers(1, 4))
def test_cls_outputs_invariant_under_any_walk(seed, walk):
    """Cor. 5.3: the CLS cannot distinguish C from D, hazard or not."""
    circuit = _small_circuit(seed)
    session = RetimingSession(circuit)
    rng = random.Random(seed * 7 + walk)
    if not _random_walk(session, rng, walk, include_hazardous=True):
        return
    assert cls_equivalent(
        session.original, session.current, count=6, length=8, seed=seed
    )
