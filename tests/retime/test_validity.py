"""The paper's theorems, executed: Section 4 + Section 5 on real moves.

These are the library's central integration tests: random circuits,
random move sequences, and the full validity battery of
:mod:`repro.retime.validity`.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.generators import random_sequential_circuit
from repro.bench.iscas import load
from repro.bench.paper_circuits import figure1_design_d
from repro.logic.ternary import ONE, X, ZERO
from repro.retime.engine import RetimingSession
from repro.retime.moves import enabled_moves
from repro.retime.validity import (
    ValidityReport,
    check_retiming_validity,
    cls_equivalent,
    first_cls_difference,
    random_ternary_sequences,
)
from repro.stg.delayed import delayed_implies
from repro.stg.equivalence import implies
from repro.stg.explicit import extract_stg


def random_retiming(circuit, rng, steps, *, include_hazardous=True):
    """Apply up to *steps* random enabled moves; returns the session."""
    session = RetimingSession(circuit)
    for _ in range(steps):
        moves = enabled_moves(session.current, include_hazardous=include_hazardous)
        if not moves:
            break
        session.apply(rng.choice(moves))
    return session


# ---------------------------------------------------------------------------
# Corollary 5.3 -- the paper's headline, as a property.
# ---------------------------------------------------------------------------


@settings(deadline=None, max_examples=12)
@given(seed=st.integers(0, 10_000), steps=st.integers(1, 8))
def test_corollary_53_cls_invariance_under_any_retiming(seed, steps):
    """ANY sequence of atomic moves (hazardous ones included) leaves the
    all-X CLS output sequences unchanged."""
    rng = random.Random(seed)
    circuit = random_sequential_circuit(
        seed % 97, num_inputs=2, num_gates=8, num_latches=3
    )
    session = random_retiming(circuit, rng, steps)
    diff = first_cls_difference(
        circuit, session.current, count=6, length=10, seed=seed
    )
    assert diff is None, "CLS distinguished a retiming: %s\n%s" % (
        diff,
        session.summary(),
    )


def test_corollary_53_on_benchmarks(iscas_circuit):
    rng = random.Random(7)
    session = random_retiming(iscas_circuit, rng, 6)
    assert cls_equivalent(iscas_circuit, session.current, count=5, length=8, seed=7)


# ---------------------------------------------------------------------------
# Corollary 4.4 -- hazard-free retiming preserves implication.
# ---------------------------------------------------------------------------


@settings(deadline=None, max_examples=10)
@given(seed=st.integers(0, 10_000), steps=st.integers(1, 8))
def test_corollary_44_safe_moves_preserve_implication(seed, steps):
    rng = random.Random(seed)
    circuit = random_sequential_circuit(
        seed % 89, num_inputs=1, num_gates=7, num_latches=3
    )
    session = random_retiming(circuit, rng, steps, include_hazardous=False)
    assert session.is_safe_per_corollary44
    c = extract_stg(session.current)
    d = extract_stg(circuit)
    assert implies(c, d), session.summary()


# ---------------------------------------------------------------------------
# Theorem 4.5 -- k hazardous crossings need at most k delay cycles.
# ---------------------------------------------------------------------------


@settings(deadline=None, max_examples=10)
@given(seed=st.integers(0, 10_000), steps=st.integers(1, 10))
def test_theorem_45_delayed_implication(seed, steps):
    rng = random.Random(seed)
    circuit = random_sequential_circuit(
        seed % 83, num_inputs=1, num_gates=7, num_latches=3
    )
    session = random_retiming(circuit, rng, steps)
    c = extract_stg(session.current)
    d = extract_stg(circuit)
    k = session.theorem45_k
    assert delayed_implies(c, d, k), (
        "C^%d does not imply D after:\n%s" % (k, session.summary())
    )


# ---------------------------------------------------------------------------
# The full battery.
# ---------------------------------------------------------------------------


def test_check_retiming_validity_on_figure1():
    session = RetimingSession(figure1_design_d())
    session.forward("fanQ")
    report = check_retiming_validity(session)
    assert isinstance(report, ValidityReport)
    assert report.hazardous_moves == 1
    assert report.theorem45_k == 1
    assert report.implication_holds is False
    assert report.safe_replacement_holds is False
    assert report.delayed_implication_holds is True
    assert report.min_delay == 1
    assert report.cls_invariant
    assert report.consistent_with_paper()


def test_check_retiming_validity_skips_large_stgs():
    session = RetimingSession(load("s27"))
    report = check_retiming_validity(session, max_stg_bits=3)
    assert report.implication_holds is None
    assert report.cls_invariant


@settings(deadline=None, max_examples=8)
@given(seed=st.integers(0, 10_000), steps=st.integers(0, 8))
def test_full_battery_always_consistent_with_paper(seed, steps):
    rng = random.Random(seed)
    circuit = random_sequential_circuit(
        seed % 79, num_inputs=1, num_gates=7, num_latches=3
    )
    session = random_retiming(circuit, rng, steps)
    report = check_retiming_validity(session, seed=seed)
    assert report.consistent_with_paper(), session.summary()


# ---------------------------------------------------------------------------
# Helpers.
# ---------------------------------------------------------------------------


def test_random_ternary_sequences_shape_and_determinism():
    seqs = random_ternary_sequences(2, count=4, length=5, seed=3)
    assert len(seqs) == 4
    assert all(len(s) == 5 for s in seqs)
    assert all(len(vec) == 2 for s in seqs for vec in s)
    assert seqs == random_ternary_sequences(2, count=4, length=5, seed=3)
    assert seqs != random_ternary_sequences(2, count=4, length=5, seed=4)


def test_random_ternary_sequences_x_bias():
    none = random_ternary_sequences(1, count=3, length=20, seed=0, x_bias=0.0)
    assert all(v[0] is not X for s in none for v in s)
    all_x = random_ternary_sequences(1, count=3, length=20, seed=0, x_bias=1.0)
    assert all(v[0] is X for s in all_x for v in s)


def test_first_cls_difference_locates_divergence():
    """Sanity: two genuinely different circuits are told apart."""
    from repro.netlist.builder import CircuitBuilder

    def make(invert):
        b = CircuitBuilder()
        i = b.input("i")
        out = b.gate("NOT", i) if invert else b.gate("BUF", i)
        b.output(out)
        return b.build()

    diff = first_cls_difference(make(False), make(True), count=3, length=4, seed=0)
    assert diff is not None
    seq_index, cycle = diff
    assert cycle >= 0


def test_strict_latch_reset_transfer_fails_but_outputs_agree():
    """The strict all-latches-definite reading of Cor 5.3's reset
    sentence is NOT invariant: a backward move can leave an X parked in
    a latch whose downstream effect the logic masks (AND(X, 0) = 0).
    The observable outputs -- what Theorem 5.1 actually governs -- stay
    identical.  This test pins the counterexample."""
    from repro.netlist.builder import CircuitBuilder
    from repro.sim.ternary_sim import TernarySimulator

    b = CircuitBuilder("mask")
    a_in, b_in = b.input("a"), b.input("b")
    g = b.gate("AND", a_in, b_in, name="g")
    q = b.latch(g, name="l")
    b.output(b.gate("BUF", q, name="buf"))
    original = b.build()

    session = RetimingSession(original)
    session.backward("g")
    retimed = session.current
    assert retimed.num_latches == 2

    seq = [(ZERO, X), (ONE, ONE)]
    orig_trace = TernarySimulator(original).run_from_unknown(seq)
    ret_trace = TernarySimulator(retimed).run_from_unknown(seq)

    # Outputs identical (Cor 5.3)...
    assert orig_trace.outputs == ret_trace.outputs
    # ...but after the first vector the original is fully definite while
    # the retimed design still holds an X in the b-side latch.
    assert all(v is not X for v in orig_trace.states[1])
    assert any(v is X for v in ret_trace.states[1])
