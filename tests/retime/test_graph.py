"""Tests for the Leiserson-Saxe retiming graph model."""

from __future__ import annotations

import pytest

from repro.bench.generators import correlator, shift_register
from repro.bench.paper_circuits import figure1_design_c, figure1_design_d
from repro.retime.graph import (
    HOST,
    HOST_OUT,
    RetimingEdge,
    RetimingGraph,
    build_retiming_graph,
    default_delay,
)


def test_figure4_d_and_c_share_one_retiming_graph():
    """Section 3.1 / Figure 4: 'Both the circuits in Figure 1 are
    represented by the same retiming graph' -- the classical model
    cannot distinguish them (junctions dissolved)."""
    gd = build_retiming_graph(figure1_design_d(), merge_junctions=True)
    gc = build_retiming_graph(figure1_design_c(), merge_junctions=True)
    assert gd.canonical_form() == gc.canonical_form()


def test_explicit_junctions_distinguish_d_and_c():
    """With JUNC vertices kept, the two designs differ (the latch sits
    on different sides of the junction vertex)."""
    gd = build_retiming_graph(figure1_design_d())
    gc = build_retiming_graph(figure1_design_c())
    assert gd.canonical_form() != gc.canonical_form()
    assert gd.num_registers == 1
    assert gc.num_registers == 2


def test_edge_weights_count_latch_chains():
    sr = shift_register(4)
    g = build_retiming_graph(sr)
    # one edge host -> host' carrying 4 latches
    (edge,) = g.edges
    assert edge.u == HOST and edge.v == HOST_OUT
    assert edge.weight == 4
    assert g.num_registers == 4


def test_host_edges_for_io():
    d = figure1_design_d()
    g = build_retiming_graph(d)
    assert any(e.u == HOST for e in g.edges)  # PI feed
    assert any(e.v == HOST_OUT for e in g.edges)  # PO feed
    # Host lag must be 0 in any legal assignment.
    assert not g.is_legal_lag({HOST: 1})
    assert not g.is_legal_lag({HOST_OUT: -1})


def test_default_delay_model():
    d = figure1_design_d()
    delays = default_delay(d)
    assert delays["and1"] == 1
    assert delays["fanQ"] == 0  # junctions are free
    assert delays[HOST] == 0


def test_clock_period_of_figure1_d():
    g = build_retiming_graph(figure1_design_d())
    # Longest zero-weight path: I junction -> or1 -> and1 = 2 gates.
    assert g.clock_period() == 2


def test_retimed_weights_and_registers_after():
    g = build_retiming_graph(figure1_design_d())
    lag = {v: 0 for v in g.vertices}
    assert g.registers_after(lag) == g.num_registers
    # The hazardous forward move as a lag: fanQ lag -1.
    lag["fanQ"] = -1
    assert g.is_legal_lag(lag)
    assert g.registers_after(lag) == 2  # one latch becomes two


def test_illegal_lag_rejected():
    g = build_retiming_graph(figure1_design_d())
    lag = {v: 0 for v in g.vertices}
    lag["and2"] = 1  # would need a latch on its zero-weight PO edge
    assert not g.is_legal_lag(lag)
    with pytest.raises(ValueError, match="illegal"):
        g.retimed_weights(lag)


def test_zero_weight_cycle_detected():
    g = RetimingGraph(
        vertices=("a", "b"),
        edges=(RetimingEdge("a", "b", 0), RetimingEdge("b", "a", 0)),
        delays={"a": 1, "b": 1},
    )
    with pytest.raises(ValueError, match="cycle"):
        g.clock_period()


def test_negative_edge_weight_rejected():
    with pytest.raises(ValueError, match="negative"):
        RetimingGraph(vertices=("a",), edges=(RetimingEdge("a", "a", -1),))


def test_unknown_vertex_rejected():
    with pytest.raises(ValueError, match="unknown vertex"):
        RetimingGraph(vertices=("a",), edges=(RetimingEdge("a", "zz", 0),))


def test_parallel_edges_preserved():
    """A 2-input gate fed twice by the same source keeps two edges."""
    from repro.netlist.builder import CircuitBuilder

    b = CircuitBuilder()
    i = b.input("i")
    x, y = b.fanout(i, 2, name="j")
    b.output(b.gate("AND", x, y, name="g"))
    g = build_retiming_graph(b.build())
    parallel = [e for e in g.edges if e.u == "j" and e.v == "g"]
    assert len(parallel) == 2
    assert {e.sink_pin for e in parallel} == {0, 1}


def test_correlator_period_structure():
    c = correlator(8)
    g = build_retiming_graph(c)
    assert g.clock_period() == 7  # XNOR + 6 ANDs on the zero-weight chain
    assert g.num_registers == 8


def test_pretty_output():
    g = build_retiming_graph(figure1_design_d())
    text = g.pretty()
    assert "RetimingGraph" in text and "-1->" in text
