"""Tests for gate delay models."""

from __future__ import annotations

import pytest

from repro.bench.generators import correlator
from repro.bench.paper_circuits import figure1_design_d
from repro.retime.delay_models import DELAY_MODELS, delay_model, family_of
from repro.retime.graph import HOST, HOST_OUT, build_retiming_graph
from repro.retime.leiserson_saxe import min_period_retiming


def test_family_of():
    assert family_of("AND3") == "AND"
    assert family_of("JUNC2") == "JUNC"
    assert family_of("MUX") == "MUX"
    assert family_of("CONST0") == "CONST"


def test_unit_model_matches_default():
    from repro.retime.graph import default_delay

    d = figure1_design_d()
    unit = delay_model(d, "unit")
    default = default_delay(d)
    for cell in d.cells:
        assert unit[cell.name] == default[cell.name]
    assert unit[HOST] == 0 and unit[HOST_OUT] == 0


def test_loaded_model_weights_gate_families():
    d = figure1_design_d()
    loaded = delay_model(d, "loaded")
    assert loaded["inv1"] == 1  # NOT
    assert loaded["and1"] == 3
    assert loaded["or1"] == 3
    assert loaded["fanQ"] == 0  # junction


def test_instance_overrides():
    d = figure1_design_d()
    delays = delay_model(d, "unit", overrides={"and1": 7})
    assert delays["and1"] == 7
    assert delays["and2"] == 1
    with pytest.raises(ValueError, match="unknown cell"):
        delay_model(d, "unit", overrides={"nope": 1})


def test_unknown_model_rejected():
    with pytest.raises(ValueError, match="available"):
        delay_model(figure1_design_d(), "quantum")


def test_min_period_respects_the_model():
    """The achievable period scales with the delay model, and the
    optimiser keeps working under either."""
    circuit = correlator(8)
    unit_graph = build_retiming_graph(circuit, delays=delay_model(circuit, "unit"))
    loaded_graph = build_retiming_graph(circuit, delays=delay_model(circuit, "loaded"))
    unit = min_period_retiming(unit_graph)
    loaded = min_period_retiming(loaded_graph)
    assert unit.period < loaded.period  # heavier gates, longer clock
    assert loaded.period <= loaded.original_period
    assert loaded_graph.is_legal_lag(loaded.lag)


def test_all_models_cover_wildcards():
    for name, table in DELAY_MODELS.items():
        assert "*" in table, name
