"""Tests for the retiming session (move accounting)."""

from __future__ import annotations

import pytest

from repro.bench.paper_circuits import figure1_design_d
from repro.netlist.builder import CircuitBuilder
from repro.retime.engine import RetimingSession, replay_moves
from repro.retime.moves import Direction, MoveError, MoveKind, RetimingMove


def test_single_hazardous_move_accounting():
    session = RetimingSession(figure1_design_d())
    session.forward("fanQ")
    assert session.hazardous_move_count == 1
    assert session.theorem45_k == 1
    assert not session.is_safe_per_corollary44
    counts = session.kind_counts()
    assert counts[MoveKind.FORWARD_NON_JUSTIFIABLE] == 1
    assert sum(counts.values()) == 1


def test_original_is_never_mutated():
    d = figure1_design_d()
    snapshot = d.copy()
    session = RetimingSession(d)
    session.forward("fanQ")
    assert d.structurally_equal(snapshot)
    assert session.original is d
    assert not session.current.structurally_equal(d)


def test_backward_move_cancels_k():
    """Forward then backward across the same junction: the peak net
    crossing count is 1, so Theorem 4.5's k stays 1 (the hazard really
    happened), but the total is back to net zero."""
    session = RetimingSession(figure1_design_d())
    session.forward("fanQ")
    session.backward("fanQ")
    assert session.theorem45_k == 1  # peak was 1
    assert session.hazardous_move_count == 1


def test_backward_first_keeps_k_zero():
    """Backward then forward across a junction never exceeds net 0, so
    k = 0: Corollary 4.4 does not apply (a hazardous move occurred) but
    the Theorem 4.5 bound is still 0 delays."""
    chain = CircuitBuilder("jchain")
    i = chain.input("i")
    q = chain.latch(i, name="l0")
    a, b2 = chain.fanout(q, 2, name="j")
    la = chain.latch(a, name="la")
    lb = chain.latch(b2, name="lb")
    chain.output(chain.gate("AND", la, lb, name="g"))
    c = chain.build()

    session = RetimingSession(c)
    session.backward("j")  # merge the two latches into one
    session.forward("j")  # put them back
    assert session.theorem45_k == 0
    assert session.hazardous_move_count == 1


def test_justifiable_moves_do_not_contribute_to_k():
    b = CircuitBuilder()
    i = b.input("i")
    q1 = b.latch(i, name="l1")
    n = b.gate("NOT", q1, name="inv")
    q2 = b.latch(n, name="l2")
    b.output(q2)
    session = RetimingSession(b.build())
    session.forward("inv")
    session.backward("inv")
    assert session.theorem45_k == 0
    assert session.hazardous_move_count == 0
    assert session.is_safe_per_corollary44
    counts = session.kind_counts()
    assert counts[MoveKind.FORWARD_JUSTIFIABLE] == 1
    assert counts[MoveKind.BACKWARD_JUSTIFIABLE] == 1


def test_second_forward_without_latch_raises():
    b = CircuitBuilder()
    i = b.input("i")
    q1 = b.latch(i, name="l1")
    n = b.gate("NOT", q1, name="inv")
    q2 = b.latch(n, name="l2")
    b.output(q2)
    session = RetimingSession(b.build())
    session.forward("inv")
    with pytest.raises(MoveError):
        session.forward("inv")  # input now comes straight from the PI


def test_summary_text():
    session = RetimingSession(figure1_design_d())
    session.forward("fanQ")
    text = session.summary()
    assert "forward across a non-justifiable element" in text
    assert "k = 1" in text
    assert "does NOT apply" in text


def test_replay_moves():
    moves = [RetimingMove("fanQ", Direction.FORWARD)]
    session = replay_moves(figure1_design_d(), moves)
    assert session.moves == tuple(moves)
    assert session.current.num_latches == 2


def test_replay_propagates_move_errors():
    with pytest.raises(MoveError):
        replay_moves(
            figure1_design_d(), [RetimingMove("and2", Direction.FORWARD)]
        )
