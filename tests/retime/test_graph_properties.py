"""Property tests for retiming-graph invariants.

The algebra underpinning Sections 3-4: retiming preserves cycle weights
and host-to-host path weights, atomic moves correspond to unit lag
changes, and the LS graph of a retimed netlist equals the retimed LS
graph of the original.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.generators import correlator, random_sequential_circuit
from repro.retime.apply import realize
from repro.retime.engine import RetimingSession
from repro.retime.graph import HOST, HOST_OUT, build_retiming_graph
from repro.retime.leiserson_saxe import min_period_retiming
from repro.retime.min_area import min_area_retiming
from repro.retime.moves import Direction, enabled_moves


def _random_legal_lag(graph, rng, amplitude=2):
    """Draw random lags and repair them to legality by clamping via a
    Bellman-Ford-style relaxation (decrease lag(v) until all in-edges
    are non-negative)."""
    lag = {v: 0 if v in (HOST, HOST_OUT) else rng.randint(-amplitude, amplitude)
           for v in graph.vertices}
    for _ in range(len(graph.vertices) + 1):
        changed = False
        for edge in graph.edges:
            w = edge.retimed_weight(lag)
            if w < 0 and edge.v not in (HOST, HOST_OUT):
                lag[edge.v] -= w  # raise lag(v) to make the edge 0
                changed = True
            elif w < 0:
                lag[edge.u] += w  # lower lag(u) instead (host fixed)
                changed = True
        if not changed:
            break
    return lag


@settings(deadline=None, max_examples=15)
@given(seed=st.integers(0, 1000))
def test_cycle_weight_invariance(seed):
    """Sum of retimed weights around any cycle equals the original sum
    (the lag terms telescope)."""
    rng = random.Random(seed)
    circuit = random_sequential_circuit(seed % 53, num_gates=8, num_latches=3)
    graph = build_retiming_graph(circuit)
    lag = _random_legal_lag(graph, rng)
    if not graph.is_legal_lag(lag):
        return  # repair failed (rare on adversarial graphs); skip
    weights = graph.retimed_weights(lag)
    # Telescoping check on every edge-pair path u->v->w sharing v is
    # subsumed by the direct identity per edge:
    for edge in graph.edges:
        assert weights[edge] == edge.weight + lag[edge.v] - lag[edge.u]
    # Host-to-host path weights are invariant: spot-check via total
    # register flow into HOST_OUT on zero-lag boundary vertices.
    for edge in graph.edges:
        if edge.u == HOST and edge.v == HOST_OUT:
            assert weights[edge] == edge.weight


@settings(deadline=None, max_examples=10)
@given(seed=st.integers(0, 500))
def test_realized_graph_equals_retimed_graph(seed):
    """build_retiming_graph(realize(C, lag)) has exactly the retimed
    weights of build_retiming_graph(C) under lag."""
    rng = random.Random(seed)
    circuit = random_sequential_circuit(seed % 47, num_gates=8, num_latches=3)
    graph = build_retiming_graph(circuit)
    lag = _random_legal_lag(graph, rng, amplitude=1)
    if not graph.is_legal_lag(lag):
        return
    realized = realize(circuit, lag)
    after = build_retiming_graph(realized)
    expected = graph.retimed_weights(lag)
    # Compare per (u, v, sink_pin) signature.
    got = {(e.u, e.v, e.sink_pin): e.weight for e in after.edges}
    for edge, weight in expected.items():
        assert got[(edge.u, edge.v, edge.sink_pin)] == weight


@settings(deadline=None, max_examples=12)
@given(seed=st.integers(0, 500), steps=st.integers(1, 6))
def test_atomic_moves_are_unit_lags(seed, steps):
    """A session of atomic moves realises the lag assignment
    lag(v) = (#backward - #forward) moves across v."""
    rng = random.Random(seed)
    circuit = random_sequential_circuit(seed % 43, num_gates=7, num_latches=3)
    session = RetimingSession(circuit)
    lag = {}
    for _ in range(steps):
        moves = enabled_moves(session.current)
        if not moves:
            break
        move = rng.choice(moves)
        session.apply(move)
        delta = -1 if move.direction is Direction.FORWARD else 1
        lag[move.element] = lag.get(move.element, 0) + delta
    graph = build_retiming_graph(circuit)
    after = build_retiming_graph(session.current)
    full_lag = {v: lag.get(v, 0) for v in graph.vertices}
    expected = graph.retimed_weights(full_lag)
    got = {(e.u, e.v, e.sink_pin): e.weight for e in after.edges}
    for edge, weight in expected.items():
        assert got[(edge.u, edge.v, edge.sink_pin)] == weight


def test_register_count_identity_on_optimisers():
    """registers_after == sum of retimed weights for both optimisers."""
    circuit = correlator(8)
    graph = build_retiming_graph(circuit)
    for lag in (
        min_period_retiming(graph).lag,
        min_area_retiming(graph).lag,
        min_area_retiming(graph, period=5).lag,
    ):
        assert graph.registers_after(lag) == sum(graph.retimed_weights(lag).values())


def test_min_area_lower_bounds_any_legal_lag():
    """Optimality spot-check: 200 random legal lags never beat the LP."""
    rng = random.Random(1)
    circuit = correlator(6)
    graph = build_retiming_graph(circuit)
    best = min_area_retiming(graph).registers
    for _ in range(200):
        lag = _random_legal_lag(graph, rng)
        if graph.is_legal_lag(lag):
            assert graph.registers_after(lag) >= best
