"""Tests for lag realisation: direct reconstruction and move decomposition."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.generators import correlator, random_sequential_circuit
from repro.bench.paper_circuits import figure1_design_c, figure1_design_d
from repro.netlist.validate import validate
from repro.retime.apply import lag_to_moves, realize
from repro.retime.graph import build_retiming_graph
from repro.retime.leiserson_saxe import min_period_retiming
from repro.retime.min_area import min_area_retiming
from repro.retime.moves import MoveError
from repro.retime.validity import cls_equivalent
from repro.stg.equivalence import machines_equivalent
from repro.stg.explicit import extract_stg


def test_realize_identity_lag_preserves_structure_weights():
    d = figure1_design_d()
    g = build_retiming_graph(d)
    same = realize(d, {v: 0 for v in g.vertices})
    validate(same)
    g2 = build_retiming_graph(same)
    assert g2.num_registers == g.num_registers
    assert machines_equivalent(extract_stg(d), extract_stg(same))


def test_realize_hazardous_junction_move_gives_design_c():
    d = figure1_design_d()
    g = build_retiming_graph(d)
    lag = {v: 0 for v in g.vertices}
    lag["fanQ"] = -1
    c = realize(d, lag)
    validate(c)
    assert c.num_latches == 2
    assert machines_equivalent(extract_stg(c), extract_stg(figure1_design_c()))


def test_realize_rejects_illegal_lag():
    d = figure1_design_d()
    g = build_retiming_graph(d)
    lag = {v: 0 for v in g.vertices}
    lag["and2"] = 1
    with pytest.raises(ValueError):
        realize(d, lag)


def test_lag_to_moves_matches_realize_behaviour():
    c = correlator(6)
    g = build_retiming_graph(c)
    result = min_period_retiming(g)
    direct = realize(c, result.lag)
    session = lag_to_moves(c, result.lag)
    validate(direct)
    validate(session.current, require_normal_form=True)
    # Same register count and same CLS behaviour.
    assert (
        build_retiming_graph(direct).num_registers
        == build_retiming_graph(session.current).num_registers
    )
    assert cls_equivalent(direct, session.current, count=6, length=10, seed=0)


def test_lag_to_moves_achieves_target_weights():
    c = correlator(6)
    g = build_retiming_graph(c)
    result = min_period_retiming(g)
    session = lag_to_moves(c, result.lag)
    g_after = build_retiming_graph(session.current)
    assert g_after.clock_period() == result.period


def test_lag_to_moves_rejects_illegal_lag():
    d = figure1_design_d()
    with pytest.raises(MoveError, match="illegal"):
        lag_to_moves(d, {"and2": 1})


def test_lag_to_moves_counts_hazards_of_min_period_retiming():
    """The correlator's min-period retiming really does cross fanout
    junctions forward -- the paper's hazard occurs in the wild."""
    c = correlator(8)
    result = min_period_retiming(build_retiming_graph(c))
    session = lag_to_moves(c, result.lag)
    assert session.hazardous_move_count > 0
    assert session.theorem45_k >= 1


@settings(deadline=None, max_examples=10)
@given(seed=st.integers(0, 200))
def test_realize_and_moves_agree_on_random_circuits(seed):
    circuit = random_sequential_circuit(seed, num_gates=8, num_latches=3)
    g = build_retiming_graph(circuit)
    result = min_area_retiming(g)
    direct = realize(circuit, result.lag)
    session = lag_to_moves(circuit, result.lag)
    validate(direct)
    validate(session.current, require_normal_form=True)
    assert machines_equivalent(extract_stg(direct), extract_stg(session.current))


def test_realize_pure_backward_lag():
    """Positive lags (backward moves) realise too."""
    from repro.netlist.builder import CircuitBuilder

    b = CircuitBuilder("bwd")
    i = b.input("i")
    n = b.gate("NOT", i, name="inv")
    q = b.latch(n, name="l")
    b.output(q)
    circuit = b.build()
    lag = {"inv": 1}
    moved = realize(circuit, lag)
    validate(moved)
    # Latch moved before the inverter.
    session = lag_to_moves(circuit, lag)
    assert [str(m) for m in session.moves] == ["backward(inv)"]
    assert machines_equivalent(extract_stg(moved), extract_stg(session.current))
