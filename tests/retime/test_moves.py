"""Tests for atomic retiming moves."""

from __future__ import annotations

import pytest

from repro.bench.iscas import load
from repro.bench.paper_circuits import figure1_design_c, figure1_design_d
from repro.netlist.builder import CircuitBuilder
from repro.netlist.validate import validate
from repro.retime.moves import (
    Direction,
    MoveError,
    MoveKind,
    RetimingMove,
    apply_move,
    backward_move,
    can_move_backward,
    can_move_forward,
    classify_move,
    enabled_moves,
    forward_move,
)
from repro.stg.equivalence import machines_equivalent
from repro.stg.explicit import extract_stg


def chain_circuit():
    """in -> L -> NOT -> L -> out, with room for both move directions."""
    b = CircuitBuilder("chain")
    i = b.input("i")
    q1 = b.latch(i, name="l1")
    n = b.gate("NOT", q1, name="inv")
    q2 = b.latch(n, name="l2")
    b.output(q2)
    return b.build()


# ---------------------------------------------------------------------------
# Enabling conditions.
# ---------------------------------------------------------------------------


def test_enabling_conditions_on_chain():
    c = chain_circuit()
    assert can_move_forward(c, "inv")  # latch on its only input
    assert can_move_backward(c, "inv")  # latch on its only output


def test_forward_requires_all_inputs_latched():
    b = CircuitBuilder()
    x, y = b.input("x"), b.input("y")
    qx = b.latch(x, name="lx")
    out = b.gate("AND", qx, y, name="g")  # y is not latched
    b.output(out)
    c = b.build()
    assert not can_move_forward(c, "g")
    with pytest.raises(MoveError, match="forward"):
        forward_move(c, "g")


def test_backward_requires_all_outputs_into_latches():
    c = chain_circuit()
    # The NOT's output goes to a latch, but a PO-read cell can't move.
    b = CircuitBuilder()
    i = b.input("i")
    q = b.latch(i, name="l")
    o = b.gate("NOT", q, name="inv")
    b.output(o)
    c2 = b.build()
    assert not can_move_backward(c2, "inv")
    with pytest.raises(MoveError, match="backward"):
        backward_move(c2, "inv")


# ---------------------------------------------------------------------------
# Move mechanics.
# ---------------------------------------------------------------------------


def test_forward_move_mechanics():
    c = chain_circuit()
    moved = forward_move(c, "inv")
    validate(moved, require_normal_form=True)
    assert moved.num_latches == c.num_latches  # 1 in, 1 out
    # The NOT now reads the PI directly.
    assert moved.cell("inv").inputs == ("i",)
    # Behaviour preserved as machines.
    assert machines_equivalent(extract_stg(c), extract_stg(moved))


def test_backward_move_mechanics():
    c = chain_circuit()
    moved = backward_move(c, "inv")
    validate(moved, require_normal_form=True)
    assert moved.num_latches == c.num_latches
    # The NOT now drives the PO net directly... via no latch.
    drv = moved.driver_of(moved.outputs[0])
    assert drv[0] == "cell" and drv[1] == "inv"
    assert machines_equivalent(extract_stg(c), extract_stg(moved))


def test_moves_do_not_mutate_input_circuit():
    c = chain_circuit()
    snapshot = c.copy()
    forward_move(c, "inv")
    backward_move(c, "inv")
    assert c.structurally_equal(snapshot)


def test_forward_then_backward_roundtrips_behaviour():
    c = chain_circuit()
    there = forward_move(c, "inv")
    back = backward_move(there, "inv")
    assert machines_equivalent(extract_stg(c), extract_stg(back))
    assert back.num_latches == c.num_latches


def test_forward_across_junction_changes_latch_count():
    """The Figure 1 move: 1 latch in, 2 latches out across JUNC2."""
    d = figure1_design_d()
    moved = forward_move(d, "fanQ")
    validate(moved, require_normal_form=True)
    assert d.num_latches == 1
    assert moved.num_latches == 2
    assert machines_equivalent(extract_stg(moved), extract_stg(figure1_design_c()))


def test_backward_across_junction_merges_latches():
    """The inverse move on C: 2 latches collapse back into 1."""
    c = figure1_design_c()
    moved = backward_move(c, "fanQ")
    validate(moved, require_normal_form=True)
    assert moved.num_latches == 1
    assert machines_equivalent(extract_stg(moved), extract_stg(figure1_design_d()))


def test_multi_input_forward_move():
    b = CircuitBuilder()
    x, y = b.input("x"), b.input("y")
    qx, qy = b.latch(x, name="lx"), b.latch(y, name="ly")
    out = b.gate("AND", qx, qy, name="g")
    q = b.latch(out, name="lo")
    b.output(q)
    c = b.build()
    moved = forward_move(c, "g")
    validate(moved, require_normal_form=True)
    assert moved.num_latches == 2  # 2 removed, 1 added, 1 untouched
    assert machines_equivalent(extract_stg(c), extract_stg(moved))


# ---------------------------------------------------------------------------
# Classification (Section 4's four kinds).
# ---------------------------------------------------------------------------


def test_classification_of_all_four_kinds():
    d = figure1_design_d()
    fwd_junc = RetimingMove("fanQ", Direction.FORWARD)
    assert classify_move(d, fwd_junc) is MoveKind.FORWARD_NON_JUSTIFIABLE
    assert classify_move(d, fwd_junc).hazardous

    c = figure1_design_c()
    bwd_junc = RetimingMove("fanQ", Direction.BACKWARD)
    assert classify_move(c, bwd_junc) is MoveKind.BACKWARD_NON_JUSTIFIABLE
    assert not classify_move(c, bwd_junc).hazardous

    chain = chain_circuit()
    fwd = RetimingMove("inv", Direction.FORWARD)
    bwd = RetimingMove("inv", Direction.BACKWARD)
    assert classify_move(chain, fwd) is MoveKind.FORWARD_JUSTIFIABLE
    assert classify_move(chain, bwd) is MoveKind.BACKWARD_JUSTIFIABLE
    assert not classify_move(chain, fwd).hazardous


def test_apply_move_dispatch():
    chain = chain_circuit()
    f = apply_move(chain, RetimingMove("inv", Direction.FORWARD))
    assert f.cell("inv").inputs == ("i",)
    bwd = apply_move(chain, RetimingMove("inv", Direction.BACKWARD))
    assert bwd.driver_of(bwd.outputs[0])[1] == "inv"


# ---------------------------------------------------------------------------
# Enumeration.
# ---------------------------------------------------------------------------


def test_enabled_moves_on_figure1_d():
    d = figure1_design_d()
    moves = enabled_moves(d)
    assert RetimingMove("fanQ", Direction.FORWARD) in moves
    safe_only = enabled_moves(d, include_hazardous=False)
    assert RetimingMove("fanQ", Direction.FORWARD) not in safe_only
    assert all(not classify_move(d, m).hazardous for m in safe_only)


def test_enabled_moves_stay_applicable(iscas_circuit):
    for move in enabled_moves(iscas_circuit):
        moved = apply_move(iscas_circuit, move)
        validate(moved, require_normal_form=True)


def test_move_str():
    assert str(RetimingMove("g", Direction.FORWARD)) == "forward(g)"
