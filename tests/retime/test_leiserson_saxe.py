"""Tests for W/D matrices, FEAS and min-period retiming."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.generators import correlator, pipeline_circuit, random_sequential_circuit
from repro.bench.iscas import load, names
from repro.retime.graph import HOST, HOST_OUT, RetimingEdge, RetimingGraph, build_retiming_graph
from repro.retime.leiserson_saxe import compute_wd, feas, min_period_retiming


def simple_graph():
    """host -> a -> b -> host' with one register between a and b."""
    return RetimingGraph(
        vertices=("a", "b"),
        edges=(
            RetimingEdge(HOST, "a", 0),
            RetimingEdge("a", "b", 1),
            RetimingEdge("b", HOST_OUT, 0),
        ),
        delays={"a": 3, "b": 2, HOST: 0, HOST_OUT: 0},
    )


# ---------------------------------------------------------------------------
# W / D matrices.
# ---------------------------------------------------------------------------


def test_wd_on_simple_graph():
    g = simple_graph()
    wd = compute_wd(g)
    assert wd.w[("a", "b")] == 1
    assert wd.d[("a", "b")] == 5  # d(a) + d(b) along the min-weight path
    assert wd.w[(HOST, "a")] == 0
    assert wd.d[(HOST, "a")] == 3


def test_wd_prefers_min_weight_then_max_delay():
    # Two a->b paths: direct with 1 register, or through c with 0
    # registers; W must pick 0 and D the delay through c.
    g = RetimingGraph(
        vertices=("a", "b", "c"),
        edges=(
            RetimingEdge(HOST, "a", 1),
            RetimingEdge("a", "b", 1),
            RetimingEdge("a", "c", 0),
            RetimingEdge("c", "b", 0),
            RetimingEdge("b", HOST_OUT, 1),
        ),
        delays={"a": 1, "b": 1, "c": 5, HOST: 0, HOST_OUT: 0},
    )
    wd = compute_wd(g)
    assert wd.w[("a", "b")] == 0
    assert wd.d[("a", "b")] == 7  # 1 + 5 + 1


def test_candidate_periods_sorted_unique():
    wd = compute_wd(simple_graph())
    candidates = wd.candidate_periods()
    assert list(candidates) == sorted(set(candidates))


# ---------------------------------------------------------------------------
# FEAS.
# ---------------------------------------------------------------------------


def test_feas_achieves_feasible_period():
    g = simple_graph()
    assert g.clock_period() == 3
    lag = feas(g, 3)
    assert lag is not None
    assert g.is_legal_lag(lag)
    assert g.clock_period(g.retimed_weights(lag)) <= 3


def test_feas_rejects_impossible_period():
    g = simple_graph()
    # No retiming can beat max vertex delay.
    assert feas(g, 2) is None


def test_feas_detects_unbreakable_host_path():
    """A combinational PI->PO path bounds the period from below."""
    g = RetimingGraph(
        vertices=("a",),
        edges=(RetimingEdge(HOST, "a", 0), RetimingEdge("a", HOST_OUT, 0)),
        delays={"a": 4, HOST: 0, HOST_OUT: 0},
    )
    assert feas(g, 3) is None
    assert feas(g, 4) is not None


def test_feas_normalises_host_lag_to_zero():
    g = build_retiming_graph(correlator(8))
    lag = feas(g, 4)
    assert lag is not None
    assert lag[HOST] == 0 and lag[HOST_OUT] == 0
    assert g.is_legal_lag(lag)


# ---------------------------------------------------------------------------
# Min-period retiming.
# ---------------------------------------------------------------------------


def test_min_period_on_correlator_matches_ls_story():
    """The flagship: retiming halves the correlator's clock period."""
    g = build_retiming_graph(correlator(8))
    result = min_period_retiming(g)
    assert result.original_period == 7
    assert result.period == 4
    assert result.improved
    assert g.is_legal_lag(result.lag)
    assert g.clock_period(g.retimed_weights(result.lag)) == result.period


def test_min_period_never_worse_than_original(iscas_circuit):
    g = build_retiming_graph(iscas_circuit)
    result = min_period_retiming(g)
    assert result.period <= result.original_period
    assert g.is_legal_lag(result.lag)


@settings(deadline=None, max_examples=15)
@given(seed=st.integers(0, 500))
def test_min_period_result_is_achieved_and_legal(seed):
    circuit = random_sequential_circuit(
        seed, num_inputs=2, num_gates=10, num_latches=4
    )
    g = build_retiming_graph(circuit)
    result = min_period_retiming(g)
    weights = g.retimed_weights(result.lag)
    assert g.clock_period(weights) <= result.period
    assert result.period <= result.original_period


def test_min_period_optimality_by_exhaustion():
    """On a small graph, no feasible candidate below the reported
    optimum exists (cross-check the binary search)."""
    g = build_retiming_graph(correlator(5))
    result = min_period_retiming(g)
    for candidate in range(result.period):
        assert feas(g, candidate) is None


def test_pipeline_already_optimal():
    """A fully pipelined datapath has period ~1 gate level already."""
    g = build_retiming_graph(pipeline_circuit(3, 3, seed=1))
    result = min_period_retiming(g)
    assert result.period <= result.original_period <= 2
