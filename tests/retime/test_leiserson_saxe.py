"""Tests for W/D matrices, FEAS and min-period retiming."""

from __future__ import annotations

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.generators import correlator, pipeline_circuit, random_sequential_circuit
from repro.bench.iscas import load, names
from repro.retime.graph import HOST, HOST_OUT, RetimingEdge, RetimingGraph, build_retiming_graph
from repro.retime.leiserson_saxe import (
    compute_wd,
    compute_wd_reference,
    feas,
    min_period_retiming,
)


def simple_graph():
    """host -> a -> b -> host' with one register between a and b."""
    return RetimingGraph(
        vertices=("a", "b"),
        edges=(
            RetimingEdge(HOST, "a", 0),
            RetimingEdge("a", "b", 1),
            RetimingEdge("b", HOST_OUT, 0),
        ),
        delays={"a": 3, "b": 2, HOST: 0, HOST_OUT: 0},
    )


# ---------------------------------------------------------------------------
# W / D matrices.
# ---------------------------------------------------------------------------


def test_wd_on_simple_graph():
    g = simple_graph()
    wd = compute_wd(g)
    assert wd.w[("a", "b")] == 1
    assert wd.d[("a", "b")] == 5  # d(a) + d(b) along the min-weight path
    assert wd.w[(HOST, "a")] == 0
    assert wd.d[(HOST, "a")] == 3


def test_wd_prefers_min_weight_then_max_delay():
    # Two a->b paths: direct with 1 register, or through c with 0
    # registers; W must pick 0 and D the delay through c.
    g = RetimingGraph(
        vertices=("a", "b", "c"),
        edges=(
            RetimingEdge(HOST, "a", 1),
            RetimingEdge("a", "b", 1),
            RetimingEdge("a", "c", 0),
            RetimingEdge("c", "b", 0),
            RetimingEdge("b", HOST_OUT, 1),
        ),
        delays={"a": 1, "b": 1, "c": 5, HOST: 0, HOST_OUT: 0},
    )
    wd = compute_wd(g)
    assert wd.w[("a", "b")] == 0
    assert wd.d[("a", "b")] == 7  # 1 + 5 + 1


def test_candidate_periods_sorted_unique():
    wd = compute_wd(simple_graph())
    candidates = wd.candidate_periods()
    assert list(candidates) == sorted(set(candidates))


# ---------------------------------------------------------------------------
# FEAS.
# ---------------------------------------------------------------------------


def test_feas_achieves_feasible_period():
    g = simple_graph()
    assert g.clock_period() == 3
    lag = feas(g, 3)
    assert lag is not None
    assert g.is_legal_lag(lag)
    assert g.clock_period(g.retimed_weights(lag)) <= 3


def test_feas_rejects_impossible_period():
    g = simple_graph()
    # No retiming can beat max vertex delay.
    assert feas(g, 2) is None


def test_feas_detects_unbreakable_host_path():
    """A combinational PI->PO path bounds the period from below."""
    g = RetimingGraph(
        vertices=("a",),
        edges=(RetimingEdge(HOST, "a", 0), RetimingEdge("a", HOST_OUT, 0)),
        delays={"a": 4, HOST: 0, HOST_OUT: 0},
    )
    assert feas(g, 3) is None
    assert feas(g, 4) is not None


def test_feas_normalises_host_lag_to_zero():
    g = build_retiming_graph(correlator(8))
    lag = feas(g, 4)
    assert lag is not None
    assert lag[HOST] == 0 and lag[HOST_OUT] == 0
    assert g.is_legal_lag(lag)


# ---------------------------------------------------------------------------
# Min-period retiming.
# ---------------------------------------------------------------------------


def test_min_period_on_correlator_matches_ls_story():
    """The flagship: retiming halves the correlator's clock period."""
    g = build_retiming_graph(correlator(8))
    result = min_period_retiming(g)
    assert result.original_period == 7
    assert result.period == 4
    assert result.improved
    assert g.is_legal_lag(result.lag)
    assert g.clock_period(g.retimed_weights(result.lag)) == result.period


def test_min_period_never_worse_than_original(iscas_circuit):
    g = build_retiming_graph(iscas_circuit)
    result = min_period_retiming(g)
    assert result.period <= result.original_period
    assert g.is_legal_lag(result.lag)


@settings(deadline=None, max_examples=15)
@given(seed=st.integers(0, 500))
def test_min_period_result_is_achieved_and_legal(seed):
    circuit = random_sequential_circuit(
        seed, num_inputs=2, num_gates=10, num_latches=4
    )
    g = build_retiming_graph(circuit)
    result = min_period_retiming(g)
    weights = g.retimed_weights(result.lag)
    assert g.clock_period(weights) <= result.period
    assert result.period <= result.original_period


def test_min_period_optimality_by_exhaustion():
    """On a small graph, no feasible candidate below the reported
    optimum exists (cross-check the binary search)."""
    g = build_retiming_graph(correlator(5))
    result = min_period_retiming(g)
    for candidate in range(result.period):
        assert feas(g, candidate) is None


def test_pipeline_already_optimal():
    """A fully pipelined datapath has period ~1 gate level already."""
    g = build_retiming_graph(pipeline_circuit(3, 3, seed=1))
    result = min_period_retiming(g)
    assert result.period <= result.original_period <= 2


# ---------------------------------------------------------------------------
# Vectorised W/D vs the pure-Python reference.
# ---------------------------------------------------------------------------


def _random_graph(seed: int) -> RetimingGraph:
    """A small random retiming graph (possibly cyclic, never a
    combinational loop)."""
    rng = random.Random(seed)
    n = rng.randint(2, 4)
    vertices = tuple("v%d" % i for i in range(n))
    edges = [RetimingEdge(HOST, vertices[0], rng.randint(0, 1))]
    for i in range(1, n):
        # A spine keeps everything reachable from the host.
        edges.append(RetimingEdge(vertices[i - 1], vertices[i], rng.randint(0, 2)))
    for _ in range(rng.randint(0, 4)):
        u = rng.choice(vertices)
        v = rng.choice(vertices)
        # Back/self edges must carry a register to avoid a
        # combinational loop.
        weight = rng.randint(1, 2) if vertices.index(v) <= vertices.index(u) else rng.randint(0, 2)
        edges.append(RetimingEdge(u, v, weight))
    edges.append(RetimingEdge(vertices[-1], HOST_OUT, rng.randint(0, 1)))
    delays = {v: rng.randint(1, 5) for v in vertices}
    return RetimingGraph(vertices, tuple(edges), delays, name="rand%d" % seed)


@pytest.mark.parametrize("seed", range(30))
def test_compute_wd_matches_reference_on_random_graphs(seed):
    g = _random_graph(seed)
    fast = compute_wd(g)
    ref = compute_wd_reference(g)
    assert fast.w == ref.w
    assert fast.d == ref.d


@pytest.mark.parametrize("name", names())
def test_compute_wd_matches_reference_on_benchmarks(name):
    g = build_retiming_graph(load(name))
    fast = compute_wd(g)
    ref = compute_wd_reference(g)
    assert fast.w == ref.w
    assert fast.d == ref.d


# ---------------------------------------------------------------------------
# Min-period optimality against brute-force enumeration.
# ---------------------------------------------------------------------------


def _brute_force_best_period(graph: RetimingGraph, window: int = 3):
    """The best clock period over every lag assignment with entries in
    ``[-window, window]`` (hosts pinned to 0), by exhaustive search."""
    free = [v for v in graph.vertices if v not in (HOST, HOST_OUT)]
    best = graph.clock_period()
    for combo in itertools.product(range(-window, window + 1), repeat=len(free)):
        lag = dict(zip(free, combo))
        lag[HOST] = lag[HOST_OUT] = 0
        if not graph.is_legal_lag(lag):
            continue
        try:
            period = graph.clock_period(graph.retimed_weights(lag))
        except ValueError:  # zero-weight cycle after retiming
            continue
        best = min(best, period)
    return best


@pytest.mark.parametrize("seed", range(25))
def test_min_period_is_optimal_on_small_graphs(seed):
    """`min_period_retiming` must (a) return a legal lag that really
    achieves the claimed period and (b) never be beaten by any legal
    retiming in a +-3 lag window -- exhaustive over <= 6-vertex graphs,
    where the window provably contains an optimal assignment (no |lag|
    beyond the total register count ever helps on these sizes)."""
    g = _random_graph(seed)
    if len(g.vertices) > 6:
        pytest.skip("brute-force window sized for <= 6 vertices")
    result = min_period_retiming(g)
    assert g.is_legal_lag(result.lag)
    assert g.clock_period(g.retimed_weights(result.lag)) <= result.period
    assert result.period <= result.original_period
    assert result.period == _brute_force_best_period(g)


def test_min_period_optimal_on_simple_graph():
    g = simple_graph()
    result = min_period_retiming(g)
    assert result.period == _brute_force_best_period(g)
