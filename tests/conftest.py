"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.bench.iscas import load, names
from repro.bench.paper_circuits import (
    figure1_design_c,
    figure1_design_d,
    figure3_design_c,
    figure3_design_d,
    figure3_fault,
)


@pytest.fixture
def design_d():
    """Figure 1's original design D (one latch)."""
    return figure1_design_d()


@pytest.fixture
def design_c():
    """Figure 1's retimed design C (two latches)."""
    return figure1_design_c()


@pytest.fixture
def fig3_pair():
    """Figure 3's (original, retimed, fault) triple."""
    return figure3_design_d(), figure3_design_c(), figure3_fault()


@pytest.fixture(params=names())
def iscas_circuit(request):
    """Each embedded benchmark circuit, fanout-normalised."""
    return load(request.param)
