"""Smoke tests: every example script runs to completion and tells the
story it claims to tell."""

from __future__ import annotations

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    path = EXAMPLES_DIR / name
    spec = importlib.util.spec_from_file_location(name.removesuffix(".py"), path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    module.main()
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = run_example("quickstart.py", capsys)
    assert "0·0·1·0" in out  # Table 1 rows
    assert "0·1·0·1" in out  # the rogue row
    assert "0·X·X·X" in out  # exact C / CLS


def test_retiming_safety_demo(capsys):
    out = run_example("retiming_safety_demo.py", capsys)
    assert "NON-justifiable" in out
    assert "HAZARDOUS" in out
    assert "k = " in out or "bound k" in out or "Theorem 4.5" in out


def test_testability_demo(capsys):
    out = run_example("testability_demo.py", capsys)
    assert "detected in D: True" in out
    assert "detected in C: False" in out
    assert "coverage" in out


#: Pinned per-circuit results for the ISCAS-89 corpus: (period
#: before -> after, registers before -> after, moves, hazardous, k).
#: The whole flow is deterministic, so any drift here is a behaviour
#: change in WD/FEAS, min-area, or move realisation -- not noise.
OPTIMIZE_ISCAS_TABLE = {
    "s27": ("6 -> 6", "3 -> 3", 0, 0, 0),
    "s208": ("11 -> 10", "8 -> 9", 1, 0, 0),
    "s298": ("11 -> 10", "14 -> 16", 2, 0, 0),
    "s344": ("14 -> 11", "15 -> 21", 6, 0, 0),
    "s349": ("14 -> 11", "15 -> 21", 6, 0, 0),
    "s382": ("16 -> 12", "21 -> 32", 23, 0, 0),
    "s386": ("8 -> 7", "6 -> 10", 4, 0, 0),
    "s420": ("19 -> 18", "16 -> 17", 1, 0, 0),
    "s444": ("16 -> 12", "21 -> 32", 23, 0, 0),
    "s526": ("16 -> 12", "21 -> 29", 41, 0, 0),
}


def test_optimize_iscas(capsys):
    out = run_example("optimize_iscas.py", capsys)
    assert "correlator" in out
    assert "CLS-invariant" in out
    rows = {}
    for line in out.splitlines():
        if line.startswith(("correlator", "s", "mini_")) and "|" in line:
            cells = [c.strip() for c in line.split("|")]
            rows[cells[0]] = cells[1:]
            # Every workload row must say "yes" for CLS invariance.
            assert cells[6] == "yes", line
    # The real ISCAS-89 corpus is fully represented with pinned results.
    for name, (period, regs, moves, hazardous, k) in OPTIMIZE_ISCAS_TABLE.items():
        assert name in rows, "missing ISCAS-89 row %s" % name
        got = rows[name]
        assert got[0] == period, (name, got)
        assert got[1] == regs, (name, got)
        assert int(got[2]) == moves, (name, got)
        assert int(got[3]) == hazardous, (name, got)
        assert int(got[4]) == k, (name, got)
    # Retiming genuinely improves the bigger reconstructions.
    assert rows["s344"][0].endswith("11")
    assert rows["s526"][0].endswith("12")


def test_three_valued_flow(capsys):
    out = run_example("three_valued_flow.py", capsys)
    assert "CLS output transcripts identical: True" in out


def test_section6_future_work(capsys):
    out = run_example("section6_future_work.py", capsys)
    assert "figure1 D vs C: EQUIVALENT" in out
    assert "CLS verdict: DIFFER" in out
    assert "absorbed gate removed:   True" in out
    assert "glitch gate kept:        True" in out
