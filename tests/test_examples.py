"""Smoke tests: every example script runs to completion and tells the
story it claims to tell."""

from __future__ import annotations

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    path = EXAMPLES_DIR / name
    spec = importlib.util.spec_from_file_location(name.removesuffix(".py"), path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    module.main()
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = run_example("quickstart.py", capsys)
    assert "0·0·1·0" in out  # Table 1 rows
    assert "0·1·0·1" in out  # the rogue row
    assert "0·X·X·X" in out  # exact C / CLS


def test_retiming_safety_demo(capsys):
    out = run_example("retiming_safety_demo.py", capsys)
    assert "NON-justifiable" in out
    assert "HAZARDOUS" in out
    assert "k = " in out or "bound k" in out or "Theorem 4.5" in out


def test_testability_demo(capsys):
    out = run_example("testability_demo.py", capsys)
    assert "detected in D: True" in out
    assert "detected in C: False" in out
    assert "coverage" in out


def test_optimize_iscas(capsys):
    out = run_example("optimize_iscas.py", capsys)
    assert "correlator" in out
    assert "CLS-invariant" in out
    # Every workload row must say "yes" for CLS invariance.
    for line in out.splitlines():
        if line.startswith(("correlator", "s27", "mini_")):
            assert "| yes" in line, line


def test_three_valued_flow(capsys):
    out = run_example("three_valued_flow.py", capsys)
    assert "CLS output transcripts identical: True" in out


def test_section6_future_work(capsys):
    out = run_example("section6_future_work.py", capsys)
    assert "figure1 D vs C: EQUIVALENT" in out
    assert "CLS verdict: DIFFER" in out
    assert "absorbed gate removed:   True" in out
    assert "glitch gate kept:        True" in out
