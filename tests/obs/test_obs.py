"""Unit tests for the ``repro.obs`` tracer and report machinery."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.obs import RunReport, SpanStats, TRACER
from repro.obs.trace import Tracer, _NULL_SPAN


@pytest.fixture(autouse=True)
def clean_tracer():
    """Every test starts and ends with a pristine, disabled tracer."""
    saved = TRACER.snapshot()
    TRACER.clear()
    TRACER.enabled = False
    yield
    TRACER.restore(saved)


class TestTracerState:
    def test_disabled_by_default(self):
        assert Tracer().enabled is False

    def test_enable_carries_meta(self):
        obs.enable(backend="compiled", jobs=4)
        assert obs.enabled()
        assert TRACER.meta == {"backend": "compiled", "jobs": 4}

    def test_disable_keeps_data_reset_drops_it(self):
        obs.enable()
        obs.incr("events", 2)
        obs.disable()
        assert obs.report().counter("events") == 2
        obs.reset()
        assert obs.report().counter("events") == 0

    def test_snapshot_restore_round_trip(self):
        obs.enable(tag="a")
        obs.incr("n")
        with obs.span("s"):
            pass
        state = TRACER.snapshot()
        TRACER.clear()
        TRACER.restore(state)
        assert TRACER.counters == {"n": 1}
        assert "s" in TRACER.spans
        assert TRACER.meta == {"tag": "a"}


class TestSpans:
    def test_span_is_shared_noop_when_disabled(self):
        assert obs.span("anything") is _NULL_SPAN
        with obs.span("anything"):
            pass
        assert TRACER.spans == {}

    def test_nested_spans_record_slash_paths(self):
        obs.enable()
        with obs.span("a"):
            with obs.span("b"):
                pass
            with obs.span("b"):
                pass
        report = obs.report()
        assert report.span_paths() == ("a", "a/b")
        assert report.span("a/b").count == 2
        assert report.span("a").count == 1

    def test_span_aggregates_are_sane(self):
        obs.enable()
        for _ in range(5):
            with obs.span("tick"):
                pass
        stats = obs.report().span("tick")
        assert stats.count == 5
        assert 0.0 <= stats.min_s <= stats.mean_s <= stats.max_s
        assert stats.total_s >= stats.max_s

    def test_exceptions_still_close_the_span(self):
        obs.enable()
        with pytest.raises(RuntimeError):
            with obs.span("boom"):
                raise RuntimeError("x")
        assert TRACER.stack == []
        assert obs.report().span("boom").count == 1

    def test_record_timing_nests_under_open_spans(self):
        obs.enable()
        with obs.span("parent"):
            obs.record_timing("shard", 0.25)
            obs.record_timing("shard", 0.75)
        stats = obs.report().span("parent/shard")
        assert stats.count == 2
        assert stats.total_s == pytest.approx(1.0)
        assert stats.min_s == pytest.approx(0.25)
        assert stats.max_s == pytest.approx(0.75)

    def test_traced_decorator_preserves_identity(self):
        @obs.traced("fn")
        def add(a, b):
            """adds"""
            return a + b

        assert add.__name__ == "add"
        assert add.__doc__ == "adds"
        assert add(1, 2) == 3  # disabled: no span
        assert TRACER.spans == {}
        obs.enable()
        assert add(2, 3) == 5
        assert obs.report().span("fn").count == 1


class TestCounters:
    def test_incr_noop_when_disabled(self):
        obs.incr("n", 10)
        assert TRACER.counters == {}

    def test_incr_accumulates(self):
        obs.enable()
        obs.incr("n")
        obs.incr("n", 4)
        assert obs.report().counter("n") == 5

    def test_missing_counter_reads_zero(self):
        assert obs.report().counter("never") == 0


class TestTimed:
    def test_timed_isolates_and_restores(self):
        obs.enable(outer=True)
        obs.incr("outer.count", 7)
        with obs.timed("inner") as run:
            obs.incr("inner.count")
        # Inner report sees only its own data...
        assert run.report.counter("inner.count") == 1
        assert run.report.counter("outer.count") == 0
        assert run.report.meta["label"] == "inner"
        assert run.report.meta["elapsed_s"] >= 0.0
        # ...and the outer state survives untouched.
        assert obs.enabled()
        assert obs.report().counter("outer.count") == 7

    def test_timed_records_the_label_span(self):
        with obs.timed("block") as run:
            with obs.span("work"):
                pass
        assert run.report.span("block").count == 1
        assert run.report.span("block/work").count == 1
        assert not obs.enabled()


class TestRunReport:
    def _sample(self):
        obs.enable(label="t")
        obs.incr("a.b", 3)
        with obs.span("top"):
            with obs.span("sub"):
                pass
        obs.disable()
        return obs.report()

    def test_json_round_trip(self):
        report = self._sample()
        back = RunReport.from_json(report.to_json())
        assert back.counters == report.counters
        assert back.meta == report.meta
        assert back.span_paths() == report.span_paths()
        assert back.span("top/sub").count == 1

    def test_document_shape(self):
        doc = json.loads(self._sample().to_json())
        assert doc["schema"] == 1
        assert set(doc) == {"schema", "meta", "counters", "spans"}
        assert all(
            set(s) == {"path", "count", "total_s", "min_s", "max_s"}
            for s in doc["spans"]
        )

    def test_write_and_load(self, tmp_path):
        report = self._sample()
        target = str(tmp_path / "run.json")
        report.write(target)
        assert RunReport.load(target).counters == report.counters

    def test_unknown_schema_rejected(self):
        with pytest.raises(ValueError, match="schema"):
            RunReport.from_json('{"schema": 0}')

    def test_summary_mentions_everything(self):
        text = self._sample().summary()
        assert "top/sub" in text
        assert "a.b" in text
        assert "meta" in text

    def test_span_stats_mean(self):
        stats = SpanStats(path="p", count=4, total_s=2.0, min_s=0.1, max_s=1.0)
        assert stats.mean_s == pytest.approx(0.5)
        assert SpanStats(path="p", count=0, total_s=0, min_s=0, max_s=0).mean_s == 0.0


class TestPipelineIntegration:
    """The instrumented library paths actually hit the tracer."""

    def test_cls_and_exact_runs_are_counted(self):
        from repro.bench.paper_circuits import figure1_design_d
        from repro.sim.exact import exact_outputs
        from repro.sim.ternary_sim import cls_outputs

        sequence = [(0,), (1,), (1,), (1,)]
        with obs.timed("pipeline") as run:
            cls_outputs(figure1_design_d(), sequence)
            exact_outputs(figure1_design_d(), [(False,), (True,)])
        assert run.report.counter("sim.cls.runs") == 1
        assert run.report.counter("sim.exact.sweeps") == 1
        assert run.report.span("pipeline/sim.exact") is not None

    def test_retiming_moves_are_counted(self):
        from repro.bench.paper_circuits import figure1_design_d
        from repro.retime.engine import RetimingSession

        with obs.timed("retime") as run:
            session = RetimingSession(figure1_design_d())
            session.forward("fanQ")
        assert run.report.counter("retime.moves.applied") == 1
        assert run.report.counter("retime.moves.hazardous") == 1
        assert run.report.span("retime/retime.move").count == 1

    def test_stg_extraction_is_counted(self):
        from repro.bench.paper_circuits import figure1_design_d
        from repro.stg.explicit import extract_stg

        with obs.timed("stg") as run:
            extract_stg(figure1_design_d())
        assert run.report.counter("stg.extracted") == 1
        assert run.report.counter("stg.transitions") == 4  # 2 states x 2 symbols
        assert run.report.span("stg/stg.extract").count == 1
