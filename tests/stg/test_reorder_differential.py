"""Differential tests: the symbolic engine must be reorder-invariant.

Dynamic variable reordering and transition-relation partitioning are
pure performance levers -- they change *how* the BDD fixpoints are
computed, never *what* they compute.  This suite pins that down the
strongest way available: every containment question (``C ⊑ D``,
``C ≼ D``, ``Cⁿ ⊑ D``) is decided once per engine configuration
(fixed order / auto sifting / manual up-front sift, each monolithic
and partitioned) and the verdicts -- and, where ``C ≼ D`` fails, the
**complete minimal-length witness, bit for bit** -- must be identical
across all of them.

Witness bit-identity is not luck: ``satisfy_one`` picks the
lexicographically smallest assignment by variable *registration*
order, which is invariant under any level permutation, so the
reconstruction walk makes the same choices no matter how sifting has
rearranged the levels.
"""

from __future__ import annotations

import pytest

from repro.bench.generators import random_sequential_circuit
from repro.bench.paper_circuits import (
    figure1_design_c,
    figure1_design_d,
    figure3_design_c,
    figure3_design_d,
)
from repro.logic.bdd import BDDManager
from repro.stg.symbolic_replaceability import SymbolicContainmentChecker

#: (label, reorder mode, partitioned TR) -- the first entry is the
#: historical engine and serves as the baseline the rest must match.
CONFIGURATIONS = (
    ("fixed/monolithic", "off", False),
    ("fixed/partitioned", "off", True),
    ("auto/monolithic", "auto", False),
    ("auto/partitioned", "auto", True),
    ("manual/partitioned", "manual", True),
)

#: Threshold low enough that auto mode actually fires on these pairs.
SMALL_THRESHOLD = 256


def _checker(c, d, reorder, partitioned):
    manager = BDDManager(reorder=reorder, reorder_threshold=SMALL_THRESHOLD)
    return SymbolicContainmentChecker(
        c, d, manager=manager, reorder=reorder, partitioned=partitioned
    )


def _decide_all(c, d, reorder, partitioned):
    """Every verdict and the full ``C ≼ D`` witness for one config."""
    checker = _checker(c, d, reorder, partitioned)
    violation = checker.find_violation()
    witness = None
    if violation is not None:
        witness = (
            violation.c_state,
            violation.input_symbols,
            violation.c_outputs,
        )
    return {
        "implies": checker.implies(),
        "equivalent": checker.machines_equivalent(),
        "safe": checker.is_safe_replacement(),
        "delay": checker.delay_needed(max_cycles=6),
        "delayed_2": checker.delayed_implies(2),
        "witness": witness,
    }


def _paper_pairs():
    fig1_c, fig1_d = figure1_design_c(), figure1_design_d()
    fig3_c, fig3_d = figure3_design_c(), figure3_design_d()
    return [
        ("fig1 C,D", fig1_c, fig1_d),
        ("fig1 D,C", fig1_d, fig1_c),
        ("fig3 C,D", fig3_c, fig3_d),
        ("fig3 D,C", fig3_d, fig3_c),
    ]


def _random_pair(seed):
    import random

    rng = random.Random(seed)
    num_inputs = rng.randint(1, 2)
    num_outputs = rng.randint(1, 2)
    c = random_sequential_circuit(
        seed,
        num_inputs=num_inputs,
        num_outputs=num_outputs,
        num_gates=rng.randint(4, 10),
        num_latches=rng.randint(1, 3),
    )
    d = random_sequential_circuit(
        seed + 59999,
        num_inputs=num_inputs,
        num_outputs=num_outputs,
        num_gates=rng.randint(4, 10),
        num_latches=rng.randint(1, 3),
    )
    return c, d


def _assert_reorder_invariant(c, d, context):
    baseline_label, reorder, partitioned = CONFIGURATIONS[0]
    baseline = _decide_all(c, d, reorder, partitioned)
    for label, reorder, partitioned in CONFIGURATIONS[1:]:
        got = _decide_all(c, d, reorder, partitioned)
        assert got == baseline, (
            "%s: %s disagrees with %s:\n  baseline %r\n  got      %r"
            % (context, label, baseline_label, baseline, got)
        )
    return baseline


@pytest.mark.parametrize(
    "name,c,d", _paper_pairs(), ids=[n for n, _, _ in _paper_pairs()]
)
def test_paper_pairs_reorder_invariant(name, c, d):
    _assert_reorder_invariant(c, d, name)


def test_paper_figure1_witness_is_bit_identical_everywhere():
    """Figure 1 of the paper: D ⋠ C, and every configuration must
    reconstruct the very same minimal counterexample."""
    c, d = figure1_design_d(), figure1_design_c()
    baseline = _assert_reorder_invariant(c, d, "fig1 D,C")
    if not baseline["safe"]:
        assert baseline["witness"] is not None


@pytest.mark.parametrize("seed", range(20))
def test_random_pairs_reorder_invariant(seed):
    c, d = _random_pair(seed)
    _assert_reorder_invariant(c, d, "seed %d" % seed)


def test_sweep_exercises_both_witness_polarities():
    """The invariance checks above must not be vacuous: the random
    sweep yields real witnesses, and reflexive pairs are really safe
    under every configuration."""
    c, _ = _random_pair(0)
    witnessed = any(
        _checker(*_random_pair(seed), reorder="auto", partitioned=True)
        .is_safe_replacement()
        is False
        for seed in range(3)
    )
    assert witnessed
    for _, reorder, partitioned in CONFIGURATIONS:
        assert _checker(c, c, reorder, partitioned).is_safe_replacement()


def test_auto_reordering_actually_fires_during_invariance_checking():
    """The invariance suite must genuinely exercise sifting: on a
    reorder-stress circuit with a low threshold, deciding safe
    replacement triggers auto reorders (and still agrees with the
    fixed-order verdict, per the suite above)."""
    from repro.bench.iscas import load

    circuit = load("mini_perm12")
    manager = BDDManager(reorder="auto", reorder_threshold=64)
    checker = SymbolicContainmentChecker(
        circuit, circuit, manager=manager, reorder="auto", partitioned=True
    )
    assert checker.is_safe_replacement() is True
    assert manager.stats["reorder.auto_triggers"] > 0
    assert manager.stats["reorder.runs"] > 0
    assert manager.stats["reorder.swaps"] > 0


class TestAutoPartitioning:
    """``partitioned="auto"`` resolves per machine from the early
    quantification schedule's kill balance: chain-friendly shapes stay
    partitioned, entangled machines fall back to the monolith."""

    def test_structured_shapes_stay_partitioned(self):
        from repro.bench.generators import shift_register
        from repro.bench.iscas import load
        from repro.stg.symbolic import SymbolicMachine

        for circuit in (shift_register(4), load("mini_perm12"), load("s27")):
            assert SymbolicMachine(circuit).partitioned is True

    @staticmethod
    def _entangled():
        """A dense random machine: kills lag far behind introductions."""
        return random_sequential_circuit(
            7, num_inputs=2, num_outputs=2, num_gates=36, num_latches=12
        )

    def test_entangled_machines_fall_back_to_the_monolith(self):
        from repro.stg.symbolic import SymbolicMachine

        machine = SymbolicMachine(self._entangled())
        assert machine.partitioned is False

    def test_explicit_setting_overrides_the_heuristic(self):
        from repro.stg.symbolic import SymbolicMachine

        c, _ = _random_pair(3)
        assert SymbolicMachine(c, partitioned=True).partitioned is True
        assert SymbolicMachine(c, partitioned=False).partitioned is False

    def test_invalid_setting_rejected(self):
        from repro.stg.symbolic import SymbolicMachine

        c, _ = _random_pair(3)
        with pytest.raises(ValueError, match="partitioned"):
            SymbolicMachine(c, partitioned="sometimes")

    def test_checker_resolves_from_both_machines(self):
        from repro.bench.iscas import load

        entangled = self._entangled()
        structured = load("mini_perm12")
        assert SymbolicContainmentChecker(
            structured, structured
        ).partitioned is True
        assert SymbolicContainmentChecker(
            entangled, entangled
        ).partitioned is False
