"""Tests for SCC / TSCC analysis (SHE)."""

from __future__ import annotations

import pytest

from repro.bench.paper_circuits import figure1_design_c, figure1_design_d
from repro.stg.explicit import STG, extract_stg
from repro.stg.scc import (
    she_analysis,
    steady_state_equivalent,
    strongly_connected_components,
    terminal_sccs,
)


# ---------------------------------------------------------------------------
# Raw graph algorithms.
# ---------------------------------------------------------------------------


def test_tarjan_on_simple_dag():
    # 0 -> 1 -> 2, no cycles: three singleton SCCs.
    sccs = strongly_connected_components([[1], [2], []])
    assert sorted(map(sorted, sccs)) == [[0], [1], [2]]


def test_tarjan_on_cycle():
    sccs = strongly_connected_components([[1], [2], [0]])
    assert len(sccs) == 1
    assert sccs[0] == frozenset({0, 1, 2})


def test_tarjan_mixed():
    # Two 2-cycles joined by a bridge: {0,1} -> {2,3}
    graph = [[1], [0, 2], [3], [2]]
    sccs = strongly_connected_components(graph)
    assert frozenset({0, 1}) in sccs
    assert frozenset({2, 3}) in sccs
    # Reverse topological order: the sink component comes first.
    assert sccs.index(frozenset({2, 3})) < sccs.index(frozenset({0, 1}))


def test_tarjan_self_loop_and_isolated():
    graph = [[0], []]
    sccs = strongly_connected_components(graph)
    assert frozenset({0}) in sccs and frozenset({1}) in sccs


def test_tarjan_deep_chain_no_recursion_error():
    n = 5000
    graph = [[i + 1] for i in range(n - 1)] + [[]]
    sccs = strongly_connected_components(graph)
    assert len(sccs) == n


def test_terminal_sccs():
    graph = [[1], [0, 2], [3], [2]]
    terminal = terminal_sccs(graph)
    assert terminal == [frozenset({2, 3})]


def test_two_terminal_sccs():
    # 0 -> 1 (loop), 0 -> 2 (loop): two sinks.
    graph = [[1, 2], [1], [2]]
    terminal = terminal_sccs(graph)
    assert sorted(map(sorted, terminal)) == [[1], [2]]


# ---------------------------------------------------------------------------
# SHE analysis on the paper's designs.
# ---------------------------------------------------------------------------


def test_figure1_designs_are_essentially_resettable():
    """Both D and C have a single terminal SCC -- their steady-state
    behaviour is well-defined under random power-up (Pixley's SHE)."""
    for circuit in (figure1_design_d(), figure1_design_c()):
        report = she_analysis(extract_stg(circuit))
        assert report.essentially_resettable
        assert report.num_terminal_sccs == 1


def test_figure1_c_has_transient_block():
    report = she_analysis(extract_stg(figure1_design_c()))
    assert report.num_states == 4
    assert report.num_blocks == 3  # 00 ~ 01 collapse
    assert report.num_sccs == 2  # the rogue block is a transient SCC


def test_steady_state_equivalence_of_d_and_c():
    """The TSCCs of D and C are equivalent -- 'all interesting notions
    of replacement require equivalence of the TSCCs'."""
    d = extract_stg(figure1_design_d())
    c = extract_stg(figure1_design_c())
    assert steady_state_equivalent(c, d)
    assert steady_state_equivalent(d, c)


def test_steady_state_inequivalence():
    constant0 = STG(
        num_latches=0, num_inputs=1, num_outputs=1,
        next_state=[[0, 0]], output=[[0, 0]], name="zero",
    )
    echo = STG(
        num_latches=0, num_inputs=1, num_outputs=1,
        next_state=[[0, 0]], output=[[0, 1]], name="echo",
    )
    assert not steady_state_equivalent(constant0, echo)


def test_multi_tscc_machine_flagged():
    """A machine whose power-up mode is never forgotten (two disjoint
    modes) is NOT essentially resettable."""
    stg = STG(
        num_latches=1,
        num_inputs=1,
        num_outputs=1,
        next_state=[[0, 0], [1, 1]],
        output=[[0, 1], [1, 0]],
        name="two_modes",
    )
    report = she_analysis(stg)
    assert not report.essentially_resettable
    assert report.num_terminal_sccs == 2
