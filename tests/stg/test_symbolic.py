"""Tests for the symbolic (BDD) sequential analyses."""

from __future__ import annotations

import pytest

from repro.bench.generators import random_sequential_circuit, shift_register
from repro.bench.iscas import load
from repro.bench.paper_circuits import figure1_design_c, figure1_design_d
from repro.logic.bdd import BDDManager
from repro.stg.delayed import delayed_states
from repro.stg.explicit import extract_stg
from repro.stg.symbolic import (
    SymbolicMachine,
    compile_circuit,
    product_outputs_equivalent,
    symbolic_delayed_states,
)


def test_compile_figure1_d():
    machine = compile_circuit(figure1_design_d())
    assert len(machine.state_vars) == 1
    assert len(machine.input_vars) == 1
    assert len(machine.output_functions) == 1
    # O = AND(I, Q): check the BDD directly.
    i = machine.input_vars[0]
    q = machine.state_vars[0]
    assert machine.output_functions[0] == (i & q)
    # next = AND(OR(I, Q), NOT Q)
    assert machine.next_functions[0] == ((i | q) & ~q)


def test_transition_relation_is_functional():
    machine = compile_circuit(figure1_design_d())
    # For every (s, i) exactly one s': quantifying s' out of T is true.
    t = machine.transition
    assert t.exists(machine.next_names).is_true


def test_image_and_reachability_on_figure1_c():
    machine = compile_circuit(figure1_design_c())
    everything = machine.all_states()
    one_step = machine.image(everything)
    # C^1 = {00, 11}
    states = set(machine.enumerate_states(one_step))
    assert states == {(False, False), (True, True)}
    # Fixpoint from the all-zero state covers {00, 11} as well.
    reach = machine.reachable(machine.state_cube((False, False)))
    assert set(machine.enumerate_states(reach)) == {(False, False), (True, True)}


def test_symbolic_delayed_matches_explicit():
    for circuit in (
        figure1_design_c(),
        load("mini_traffic"),
        random_sequential_circuit(3, num_gates=6, num_latches=3),
    ):
        stg = extract_stg(circuit)
        for n in (0, 1, 2, 3):
            assert symbolic_delayed_states(circuit, n) == delayed_states(stg, n), (
                circuit.name,
                n,
            )


def test_preimage_inverts_image_on_singletons():
    machine = compile_circuit(figure1_design_d())
    zero = machine.state_cube((False,))
    pre = machine.preimage(zero)
    # Every state can reach 0 in one step (input 0), so preimage is all.
    assert pre.is_true


def test_count_states():
    machine = compile_circuit(figure1_design_c())
    assert machine.count_states(machine.all_states()) == 4
    assert machine.count_states(machine.delayed(1)) == 2
    assert machine.count_states(machine.state_cube((True, False))) == 1


def test_state_cube_width_checked():
    machine = compile_circuit(figure1_design_c())
    with pytest.raises(ValueError):
        machine.state_cube((True,))


def test_product_miter_on_paper_pair():
    """Symbolically: from the product of D's states with C's *delayed*
    states the outputs always agree (C^1 ~ D), but from the full
    product -- which includes C's rogue state 10 -- they differ."""
    manager = BDDManager()
    d = figure1_design_d()
    c = figure1_design_c()
    md = SymbolicMachine(d, manager, prefix="d.")
    mc = SymbolicMachine(c, manager, prefix="c.", input_vars=md.input_vars)

    # Full product: inequivalent (the Section 2.1 phenomenon).
    ok, witness = product_outputs_equivalent(d, c, machines=(md, mc))
    assert not ok
    assert witness is not None

    # D x C^1, paired compatibly: D state s with C state (s, s).
    pairs = manager.false
    for bit in (False, True):
        pairs = pairs | (md.state_cube((bit,)) & mc.state_cube((bit, bit)))
    ok, witness = product_outputs_equivalent(d, c, pairs, machines=(md, mc))
    assert ok and witness is None


def test_product_miter_finds_the_rogue_state():
    manager = BDDManager()
    d = figure1_design_d()
    c = figure1_design_c()
    md = SymbolicMachine(d, manager, prefix="d.")
    mc = SymbolicMachine(c, manager, prefix="c.", input_vars=md.input_vars)
    # Pair both D states against C's state 10: mismatch reachable.
    pairs = (md.state_cube((False,)) | md.state_cube((True,))) & mc.state_cube(
        (True, False)
    )
    ok, witness = product_outputs_equivalent(d, c, pairs, machines=(md, mc))
    assert not ok
    # The witness assigns shared inputs plus both machines' states.
    assert any(name.startswith("c.") for name in witness)


def test_product_miter_reflexive():
    circuit = load("mini_seqdet")
    manager = BDDManager()
    a = SymbolicMachine(circuit, manager, prefix="a.")
    b = SymbolicMachine(circuit, manager, prefix="b.", input_vars=a.input_vars)
    # Identical machines started in identical states: equivalent.
    pairs = manager.false
    import itertools

    for bits in itertools.product((False, True), repeat=circuit.num_latches):
        pairs = pairs | (a.state_cube(bits) & b.state_cube(bits))
    ok, _ = product_outputs_equivalent(circuit, circuit, pairs, machines=(a, b))
    assert ok


def test_shift_register_reachability_is_everything():
    machine = compile_circuit(shift_register(4))
    reach = machine.reachable(machine.state_cube((False,) * 4))
    assert machine.count_states(reach) == 16


def test_symbolic_transitions_agree_with_explicit_stg():
    """Property: the BDD next-state/output functions evaluate exactly
    as the explicit STG tabulates, on every (state, input) pair."""
    circuit = random_sequential_circuit(9, num_inputs=2, num_gates=7, num_latches=3)
    machine = compile_circuit(circuit)
    stg = extract_stg(circuit)
    m = machine.manager
    n, width = circuit.num_latches, len(circuit.inputs)
    for s in range(stg.num_states):
        for a in range(stg.num_symbols):
            env = {}
            for j, name in enumerate(machine.state_names):
                env[name] = bool((s >> (n - 1 - j)) & 1)
            for i, name in enumerate(machine.input_names):
                env[name] = bool((a >> (width - 1 - i)) & 1)
            nxt = 0
            for fn in machine.next_functions:
                nxt = (nxt << 1) | int(m.evaluate(fn, env))
            out = 0
            for fn in machine.output_functions:
                out = (out << 1) | int(m.evaluate(fn, env))
            assert nxt == stg.next_state[s][a]
            assert out == stg.output[s][a]
