"""Tests for safe replacement (≼) and Proposition 3.1."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.generators import random_sequential_circuit
from repro.bench.paper_circuits import figure1_design_c, figure1_design_d
from repro.stg.equivalence import implies
from repro.stg.explicit import STG, extract_stg
from repro.stg.replaceability import (
    SafeReplacementViolation,
    SearchBudgetExceeded,
    decide_safe_replacement,
    find_safe_replacement_violation,
    find_violation,
    is_safe_replacement,
)


def d_stg():
    return extract_stg(figure1_design_d())


def c_stg():
    return extract_stg(figure1_design_c())


def test_paper_example_violates_safe_replacement():
    assert not is_safe_replacement(c_stg(), d_stg())
    assert is_safe_replacement(d_stg(), c_stg())


def test_violation_witness_matches_paper():
    """The minimal counterexample is exactly the paper's: power-up state
    10 of C, input 0·1, output behaviour 0·1 which no D state shows."""
    violation = find_violation(c_stg(), d_stg())
    assert isinstance(violation, SafeReplacementViolation)
    assert violation.c_state == 2  # binary "10"
    assert violation.input_symbols == (0, 1)
    assert violation.c_outputs == (0, 1)


def test_violation_outputs_are_truly_unmatched():
    """Replay the witness: no state of D reproduces C's output string."""
    violation = find_violation(c_stg(), d_stg())
    d = d_stg()
    for s in range(d.num_states):
        outputs, _ = d.run(s, violation.input_symbols)
        assert tuple(outputs) != violation.c_outputs


def test_safe_replacement_reflexive():
    for stg in (d_stg(), c_stg()):
        assert is_safe_replacement(stg, stg)


def test_interface_mismatch_rejected():
    a = extract_stg(random_sequential_circuit(0, num_inputs=1))
    b = extract_stg(random_sequential_circuit(0, num_inputs=2))
    with pytest.raises(ValueError):
        is_safe_replacement(a, b)


def test_subset_guard():
    with pytest.raises(MemoryError):
        find_violation(c_stg(), c_stg(), max_states=1)


class TestSearchBudgetExceeded:
    """Budget exhaustion must be a distinguishable, loud failure."""

    def test_is_safe_replacement_raises_not_answers(self):
        """A tiny budget must raise, never silently return a verdict."""
        with pytest.raises(SearchBudgetExceeded):
            is_safe_replacement(c_stg(), c_stg(), max_states=1)

    def test_subclasses_memory_error_for_compatibility(self):
        assert issubclass(SearchBudgetExceeded, MemoryError)
        with pytest.raises(MemoryError):
            is_safe_replacement(c_stg(), c_stg(), max_states=1)

    def test_message_names_the_budget(self):
        with pytest.raises(SearchBudgetExceeded, match="2 subset states"):
            find_violation(c_stg(), d_stg(), max_states=2)

    def test_circuit_dispatcher_propagates_budget(self):
        c = figure1_design_c()
        with pytest.raises(SearchBudgetExceeded):
            find_safe_replacement_violation(c, c, engine="explicit", max_states=1)


class TestCircuitLevelDispatch:
    def test_explicit_engine_matches_stg_path(self):
        c, d = figure1_design_c(), figure1_design_d()
        violation = find_safe_replacement_violation(c, d, engine="explicit")
        assert violation == find_violation(c_stg(), d_stg())
        assert not decide_safe_replacement(c, d, engine="explicit")
        assert decide_safe_replacement(d, c, engine="explicit")

    def test_symbolic_engine_agrees_on_paper_pair(self):
        c, d = figure1_design_c(), figure1_design_d()
        assert find_safe_replacement_violation(
            c, d, engine="symbolic"
        ) == find_violation(c_stg(), d_stg())
        assert decide_safe_replacement(d, c, engine="symbolic")

    def test_unknown_engine_rejected(self):
        c = figure1_design_c()
        with pytest.raises(ValueError):
            decide_safe_replacement(c, c, engine="bogus")


@settings(deadline=None, max_examples=15)
@given(seed_c=st.integers(0, 300), seed_d=st.integers(0, 300))
def test_proposition_31_implication_implies_safe_replacement(seed_c, seed_d):
    """Prop 3.1: C ⊑ D ⇒ C ≼ D, on random machine pairs."""
    c = extract_stg(
        random_sequential_circuit(seed_c, num_inputs=1, num_gates=5, num_latches=2)
    )
    d = extract_stg(
        random_sequential_circuit(seed_d, num_inputs=1, num_gates=5, num_latches=2)
    )
    if implies(c, d):
        assert is_safe_replacement(c, d)


@settings(deadline=None, max_examples=10)
@given(seed=st.integers(0, 300))
def test_safe_replacement_weaker_than_implication_never_reversed(seed):
    """If C is NOT a safe replacement, implication must fail too
    (contrapositive of Prop 3.1)."""
    c = extract_stg(
        random_sequential_circuit(seed, num_inputs=1, num_gates=6, num_latches=2)
    )
    d = extract_stg(
        random_sequential_circuit(seed + 1000, num_inputs=1, num_gates=6, num_latches=2)
    )
    if not is_safe_replacement(c, d):
        assert not implies(c, d)


def test_hand_built_gap_between_sqsubseteq_and_preceq():
    """A machine where ≼ holds but ⊑ fails (the [PSAB94] separation):
    C has a state equivalent to no single D state, yet every input
    sequence's behaviour is matched by SOME D state."""
    # D: two eternal modes -- state 0 echoes the input, state 1 inverts.
    d = STG(
        num_latches=1,
        num_inputs=1,
        num_outputs=1,
        next_state=[[0, 0], [1, 1]],
        output=[[0, 1], [1, 0]],
        name="D_two_modes",
    )
    # C adds an "adaptive" state 2 that outputs 0 on either input, then
    # commits: after input 0 it echoes forever (like D's state 0, whose
    # run on that 0 also emitted 0), after input 1 it inverts forever
    # (like D's state 1, whose run on that 1 also emitted 0).  Every
    # finite run of state 2 is therefore matched by SOME D state -- but
    # by a different one depending on the input, so state 2 is
    # equivalent to neither.  State 3 pads the state count (a copy of
    # the echo mode).
    c = STG(
        num_latches=2,
        num_inputs=1,
        num_outputs=1,
        next_state=[[0, 0], [1, 1], [0, 1], [0, 0]],
        output=[[0, 1], [1, 0], [0, 0], [0, 1]],
        name="C_adaptive",
    )
    assert is_safe_replacement(c, d)
    assert not implies(c, d)
