"""Tests for explicit STG extraction."""

from __future__ import annotations

import pytest

from repro.bench.generators import random_sequential_circuit, shift_register
from repro.bench.paper_circuits import figure1_design_c, figure1_design_d
from repro.sim.binary import BinarySimulator, state_from_int, state_to_int
from repro.stg.explicit import STG, extract_stg


def test_figure2_stg_of_design_d():
    """Figure 2's STG for D: input 0 goes to state 0 (output 0); input 1
    toggles, outputting the current state."""
    stg = extract_stg(figure1_design_d())
    assert stg.num_states == 2 and stg.num_symbols == 2
    # next_state[s][a], output[s][a]
    assert stg.next_state[0][0] == 0 and stg.output[0][0] == 0
    assert stg.next_state[1][0] == 0 and stg.output[1][0] == 0
    assert stg.next_state[0][1] == 1 and stg.output[0][1] == 0
    assert stg.next_state[1][1] == 0 and stg.output[1][1] == 1


def test_figure2_stg_of_design_c():
    """C's 4-state STG: both latches always load the same next value,
    so every successor is 00 or 11."""
    stg = extract_stg(figure1_design_c())
    assert stg.num_states == 4
    for s in range(4):
        for a in range(2):
            assert stg.next_state[s][a] in (0, 3)
    # The rogue state 10 is the only one input 0 does NOT send to 00 --
    # the root of Table 1's deviation (it reaches 11, which then emits
    # the stray 1).
    s10 = 2  # binary "10"
    assert stg.next_state[s10][0] == 3
    for s in (0, 1, 3):
        assert stg.next_state[s][0] == 0


def test_stg_matches_scalar_simulation():
    circuit = random_sequential_circuit(3, num_inputs=2, num_gates=6, num_latches=3)
    stg = extract_stg(circuit)
    sim = BinarySimulator(circuit)
    for s in range(stg.num_states):
        state = state_from_int(circuit, s)
        for a in range(stg.num_symbols):
            bits = tuple(
                bool((a >> (len(circuit.inputs) - 1 - i)) & 1)
                for i in range(len(circuit.inputs))
            )
            outputs, nxt = sim.step(state, bits)
            assert stg.next_state[s][a] == state_to_int(nxt)
            assert stg.output[s][a] == state_to_int(outputs)


def test_stg_run():
    stg = extract_stg(figure1_design_d())
    outputs, final = stg.run(1, [0, 1, 1, 1])  # state 1, input 0·1·1·1
    assert outputs == [0, 0, 1, 0]
    assert final == 1  # 1 -0-> 0 -1-> 1 -1-> 0 -1-> 1


def test_stg_successors():
    stg = extract_stg(figure1_design_c())
    assert stg.successors(range(4)) == frozenset({0, 3})


def test_stg_labels_and_decoding():
    stg = extract_stg(figure1_design_c())
    assert stg.state_label(2) == "10"
    assert stg.output_vector(1) == (True,)
    assert stg.output_vector(0) == (False,)


def test_stg_size_guard():
    sr = shift_register(30)
    with pytest.raises(ValueError, match="limit"):
        extract_stg(sr)


def test_stg_pretty_contains_transitions():
    text = extract_stg(figure1_design_d()).pretty()
    assert "1 --1/1--> 0" in text


def test_stg_edges_iteration():
    stg = extract_stg(figure1_design_d())
    edges = list(stg.edges())
    assert len(edges) == stg.num_states * stg.num_symbols
    assert (1, 1, 0, 1) in edges  # state 1, input 1 -> state 0, output 1
