"""Tests for delayed designs D^n (Section 3.4)."""

from __future__ import annotations

import pytest

from repro.bench.generators import shift_register
from repro.bench.paper_circuits import figure1_design_c, figure1_design_d
from repro.stg.delayed import (
    delay_needed_for_implication,
    delayed_implies,
    delayed_states,
    stable_states,
)
from repro.stg.explicit import extract_stg


def test_paper_delayed_design_c1():
    """Section 3.4: 'The delayed design C^1 consists of states 11 and 00
    only and thus C^1 is equivalent to the design D.'"""
    c = extract_stg(figure1_design_c())
    assert delayed_states(c, 0) == frozenset({0, 1, 2, 3})
    assert delayed_states(c, 1) == frozenset({0, 3})  # 00 and 11
    assert delayed_states(c, 2) == frozenset({0, 3})


def test_delayed_implication_for_figure1():
    c = extract_stg(figure1_design_c())
    d = extract_stg(figure1_design_d())
    assert not delayed_implies(c, d, 0)  # plain C ⊑ D fails
    assert delayed_implies(c, d, 1)  # C^1 ⊑ D (Prop 4.2)
    assert delayed_implies(c, d, 5)


def test_delay_needed_matches_minimum():
    c = extract_stg(figure1_design_c())
    d = extract_stg(figure1_design_d())
    assert delay_needed_for_implication(c, d) == 1
    assert delay_needed_for_implication(d, c) == 0  # D ⊑ C outright
    assert delay_needed_for_implication(d, d) == 0


def test_delay_never_helps_unrelated_machines():
    """A shift register of different length never implies the other."""
    a = extract_stg(shift_register(2))
    b = extract_stg(shift_register(3))
    assert delay_needed_for_implication(b, a) is None


def test_shift_register_delayed_chain():
    """An n-stage shift register on a single input: after k cycles, the
    k oldest bits are copies of the (shifted) input history but the
    state set stays full until inputs constrain nothing -- here all
    states remain reachable, so the chain stabilises at once."""
    stg = extract_stg(shift_register(3))
    # every state reachable from some state under some input
    assert delayed_states(stg, 1) == frozenset(range(8))
    states, n = stable_states(stg)
    assert states == frozenset(range(8))
    assert n == 0


def test_stable_states_of_figure1_c():
    c = extract_stg(figure1_design_c())
    states, n = stable_states(c)
    assert states == frozenset({0, 3})
    assert n == 1


def test_delayed_states_rejects_negative():
    c = extract_stg(figure1_design_c())
    with pytest.raises(ValueError):
        delayed_states(c, -1)
