"""Tests for the exhaustive CLS-equivalence decision procedure
(the paper's Section 6 future work, implemented)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.generators import random_sequential_circuit
from repro.bench.paper_circuits import figure1_design_c, figure1_design_d
from repro.logic.ternary import ONE, X, ZERO
from repro.netlist.builder import CircuitBuilder
from repro.retime.engine import RetimingSession
from repro.retime.moves import enabled_moves
from repro.sim.ternary_sim import cls_outputs
from repro.stg.ternary_equiv import (
    CLSDistinguisher,
    cls_equivalent_exhaustive,
    cls_reachable_pairs,
    decide_cls_equivalence,
)


def test_figure1_pair_is_cls_equivalent_exhaustively():
    """Corollary 5.3 for the paper's own pair, now with a COMPLETE
    verifier: no ternary input sequence of any length distinguishes D
    from C under the CLS."""
    assert decide_cls_equivalence(figure1_design_d(), figure1_design_c()) is None


def test_reflexivity():
    d = figure1_design_d()
    assert cls_equivalent_exhaustive(d, d.copy())


def test_distinguisher_for_genuinely_different_circuits():
    def make(kind):
        b = CircuitBuilder(kind)
        i = b.input("i")
        b.output(b.gate(kind, i))
        return b.build()

    witness = decide_cls_equivalence(make("BUF"), make("NOT"))
    assert isinstance(witness, CLSDistinguisher)
    assert len(witness.inputs) == 1  # minimal: a single vector suffices
    assert witness.outputs_c != witness.outputs_d
    assert "outputs" in witness.describe()


def test_distinguisher_is_replayable():
    """The returned input sequence really does produce different CLS
    transcripts when replayed through the plain simulator."""

    def make(mask):
        b = CircuitBuilder()
        i = b.input("i")
        q = b.net("q")
        nxt = b.gate("AND", i, q) if mask else b.gate("OR", i, q)
        b.latch(nxt, q, name="ff")
        b.output(b.gate("BUF", q))
        return b.build()

    a, b_ = make(True), make(False)
    witness = decide_cls_equivalence(a, b_)
    assert witness is not None
    outs_a = cls_outputs(a, witness.inputs)
    outs_b = cls_outputs(b_, witness.inputs)
    assert outs_a[-1] == witness.outputs_c
    assert outs_b[-1] == witness.outputs_d
    assert outs_a[-1] != outs_b[-1]


def test_state_dependent_difference_found_deep():
    """Two shift-registers of different lengths differ only after the
    X's flush out -- BFS must go deep enough and report a minimal
    sequence."""
    from repro.bench.generators import shift_register

    witness = decide_cls_equivalence(shift_register(2), shift_register(3))
    assert witness is not None
    # Distinguishing needs at least 3 cycles (definite bit reaching the
    # shorter register's output while the longer still shows X).
    assert len(witness.inputs) == 3


def test_interface_mismatch_rejected():
    with pytest.raises(ValueError):
        decide_cls_equivalence(figure1_design_d(), shift2_two_inputs())


def shift2_two_inputs():
    b = CircuitBuilder()
    i, j = b.input("i"), b.input("j")
    q = b.latch(b.gate("AND", i, j), name="ff")
    b.output(q)
    return b.build()


def test_pair_budget_guard():
    from repro.bench.generators import shift_register

    with pytest.raises(MemoryError):
        decide_cls_equivalence(shift_register(4), shift_register(4), max_pairs=2)
    with pytest.raises(MemoryError):
        cls_reachable_pairs(shift_register(4), shift_register(4), max_pairs=2)


def test_reachable_pairs_diagnostic():
    count = cls_reachable_pairs(figure1_design_d(), figure1_design_c())
    # The all-X pair is absorbing for this input alphabet: X's never
    # resolve in either design, so the product has a single state.
    assert count == 1


@settings(deadline=None, max_examples=8)
@given(seed=st.integers(0, 5000), steps=st.integers(1, 6))
def test_retimings_always_pass_the_complete_verifier(seed, steps):
    """Corollary 5.3, verified COMPLETELY (not sampled) on random
    circuits and random hazardous retimings."""
    rng = random.Random(seed)
    circuit = random_sequential_circuit(
        seed % 61, num_inputs=1, num_gates=6, num_latches=2
    )
    session = RetimingSession(circuit)
    for _ in range(steps):
        moves = enabled_moves(session.current)
        if not moves:
            break
        session.apply(rng.choice(moves))
    assert cls_equivalent_exhaustive(circuit, session.current), session.summary()


def test_non_retiming_optimisation_caught():
    """The verifier is not a rubber stamp: an 'optimisation' that
    changes CLS behaviour (replacing AND(q, NOT q) by constant 0 --
    sound for binary logic, unsound for the CLS!) is rejected with a
    witness.  This is exactly the Section 5 observation that the CLS
    loses complement information, turned into a regression check."""
    def original():
        b = CircuitBuilder("orig")
        i = b.input("i")
        q = b.net("q")
        q1, q2, q3 = b.fanout(q, 3, name="fq")
        n = b.gate("NOT", q2, name="inv")
        glitch = b.gate("AND", q1, n, name="gl")  # always 0 in reality
        b.latch(b.gate("AND", i, q3, name="gate"), q, name="ff")
        b.output(b.gate("OR", glitch, b.gate("BUF", i, name="bi"), name="o"))
        return b.build()

    def optimised():
        b = CircuitBuilder("opt")
        i = b.input("i")
        q = b.net("q")
        zero = b.const(0, name="k0")
        b.latch(b.gate("AND", i, q, name="gate"), q, name="ff")
        b.output(b.gate("OR", zero, b.gate("BUF", i, name="bi"), name="o"))
        return b.build()

    witness = decide_cls_equivalence(original(), optimised())
    assert witness is not None
    # The binary behaviours ARE equivalent -- only the CLS differs.
    from repro.stg.equivalence import machines_equivalent
    from repro.stg.explicit import extract_stg

    assert machines_equivalent(extract_stg(original()), extract_stg(optimised()))
