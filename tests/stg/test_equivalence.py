"""Tests for state equivalence and machine implication."""

from __future__ import annotations

import pytest

from repro.bench.generators import random_sequential_circuit, shift_register
from repro.bench.paper_circuits import figure1_design_c, figure1_design_d
from repro.netlist.builder import CircuitBuilder
from repro.stg.equivalence import (
    equivalence_classes,
    equivalent_state_in,
    implies,
    joint_equivalence_classes,
    machines_equivalent,
    quotient,
)
from repro.stg.explicit import extract_stg


def d_stg():
    return extract_stg(figure1_design_d())


def c_stg():
    return extract_stg(figure1_design_c())


def test_design_d_states_are_inequivalent():
    blocks = equivalence_classes(d_stg())
    assert blocks[0] != blocks[1]  # they output differently on input 1


def test_design_c_equivalent_states():
    """In C the output gate reads Q2 only, so 01 and 11 are equivalent
    (both "look like" D's state 1); 00 matches D's state 0; the rogue
    power-up state 10 is equivalent to nothing."""
    blocks = equivalence_classes(c_stg())
    assert blocks[1] == blocks[3]  # 01 ~ 11
    assert blocks[0] != blocks[1]
    assert blocks[2] not in (blocks[0], blocks[1])  # state 10 is unique
    assert len(set(blocks)) == 3


def test_quotient_machine():
    q = quotient(c_stg())
    assert q.num_blocks == 3
    members = {q.block_of_state[s] for s in range(4)}
    assert len(members) == 3
    # Block members partition the state set.
    all_members = sorted(sum((list(q.members(b)) for b in range(q.num_blocks)), []))
    assert all_members == [0, 1, 2, 3]


def test_implication_between_paper_designs():
    """Section 2/4 on Figure 1: D ⊑ C but C ⋢ D."""
    assert implies(d_stg(), c_stg())
    assert not implies(c_stg(), d_stg())


def test_equivalent_state_witness():
    # Every state of D has an equivalent state in C...
    for s in range(2):
        witness = equivalent_state_in(d_stg(), c_stg(), s)
        assert witness is not None
    # ...but C's state 10 has no equivalent in D.
    assert equivalent_state_in(c_stg(), d_stg(), 2) is None
    assert equivalent_state_in(c_stg(), d_stg(), 0) is not None


def test_machines_equivalent_is_mutual_implication():
    assert not machines_equivalent(c_stg(), d_stg())
    assert machines_equivalent(d_stg(), d_stg())


def test_implication_reflexive_on_random_circuits():
    for seed in range(4):
        stg = extract_stg(random_sequential_circuit(seed))
        assert implies(stg, stg)


def test_mismatched_interfaces_rejected():
    two_in = extract_stg(random_sequential_circuit(0, num_inputs=2))
    one_in = extract_stg(random_sequential_circuit(0, num_inputs=1))
    with pytest.raises(ValueError, match="input arities"):
        joint_equivalence_classes(two_in, one_in)


def test_mismatched_outputs_rejected():
    a = extract_stg(random_sequential_circuit(0, num_inputs=1, num_outputs=1))
    b = extract_stg(random_sequential_circuit(1, num_inputs=1, num_outputs=2))
    if a.num_outputs != b.num_outputs:
        with pytest.raises(ValueError, match="output arities"):
            joint_equivalence_classes(a, b)


def test_shift_register_equivalence_classes():
    """All states of a 2-stage shift register are distinguishable (the
    output reveals the bits in order)."""
    stg = extract_stg(shift_register(2))
    blocks = equivalence_classes(stg)
    assert len(set(blocks)) == 4


def test_structurally_different_but_equivalent_machines():
    """Double negation is invisible to equivalence."""

    def plain():
        b = CircuitBuilder()
        i = b.input("i")
        q = b.net("q")
        b.latch(b.gate("AND", i, q), q, name="ff")
        b.output(b.gate("BUF", q))
        return extract_stg(b.build())

    def doubled():
        b = CircuitBuilder()
        i = b.input("i")
        q = b.net("q")
        b.latch(b.gate("AND", i, q), q, name="ff")
        nn = b.gate("NOT", b.gate("NOT", q))
        b.output(nn)
        return extract_stg(b.build())

    assert machines_equivalent(plain(), doubled())
