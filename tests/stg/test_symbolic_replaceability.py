"""Differential tests: symbolic BDD engine vs explicit STG engine.

The two engines decide the same orders (``⊑``, ``≼``, ``Cⁿ ⊑ D``) by
completely different algorithms -- joint partition refinement and
subset construction over enumerated STGs on one side, BDD fixpoints on
the other.  Any disagreement is a bug in one of them, so every paper
circuit pair and a few hundred random pairs are checked both ways, in
the spirit of the test-vector cross-checking of Bhowmick et al.
(PAPERS.md).
"""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.generators import (
    counter_circuit,
    pipeline_circuit,
    random_sequential_circuit,
    shift_register,
)
from repro.bench.paper_circuits import (
    figure1_design_c,
    figure1_design_d,
    figure3_design_c,
    figure3_design_d,
)
from repro.stg.delayed import delay_needed_for_implication, delayed_implies
from repro.stg.equivalence import (
    decide_implication,
    decide_machines_equivalent,
    implies,
    machines_equivalent,
)
from repro.stg.explicit import extract_stg
from repro.stg.replaceability import find_violation
from repro.stg.symbolic_replaceability import (
    AUTO_SYMBOLIC_LATCH_THRESHOLD,
    SymbolicContainmentChecker,
    get_default_engine,
    resolve_engine,
    set_default_engine,
    symbolic_delay_needed_for_implication,
    symbolic_delayed_implies,
    symbolic_find_violation,
    symbolic_implies,
    symbolic_is_safe_replacement,
    symbolic_machines_equivalent,
)


def _paper_pairs():
    fig1_c, fig1_d = figure1_design_c(), figure1_design_d()
    fig3_c, fig3_d = figure3_design_c(), figure3_design_d()
    return [
        (fig1_c, fig1_d),
        (fig1_d, fig1_c),
        (fig1_c, fig1_c),
        (fig1_d, fig1_d),
        (fig3_c, fig3_d),
        (fig3_d, fig3_c),
        (fig3_c, fig3_c),
        (fig3_d, fig3_d),
    ]


def _random_pair(seed, *, max_latches=4):
    """A random circuit pair with matching interfaces."""
    import random

    rng = random.Random(seed)
    num_inputs = rng.randint(1, 2)
    num_outputs = rng.randint(1, 2)
    c = random_sequential_circuit(
        seed,
        num_inputs=num_inputs,
        num_outputs=num_outputs,
        num_gates=rng.randint(4, 10),
        num_latches=rng.randint(1, max_latches),
    )
    d = random_sequential_circuit(
        seed + 59999,
        num_inputs=num_inputs,
        num_outputs=num_outputs,
        num_gates=rng.randint(4, 10),
        num_latches=rng.randint(1, max_latches),
    )
    return c, d


def _assert_engines_agree(c, d):
    """Full cross-check of every containment question on one pair."""
    c_stg, d_stg = extract_stg(c), extract_stg(d)
    checker = SymbolicContainmentChecker(c, d)

    assert checker.implies() == implies(c_stg, d_stg)
    assert checker.machines_equivalent() == machines_equivalent(c_stg, d_stg)

    explicit_violation = find_violation(c_stg, d_stg)
    symbolic_violation = checker.find_violation()
    assert (explicit_violation is None) == (symbolic_violation is None)
    if explicit_violation is not None:
        # Both searches are breadth-first, so both strings are minimal.
        assert len(symbolic_violation.input_symbols) == len(
            explicit_violation.input_symbols
        )
        # Replay the symbolic witness on the explicit STG: C really
        # produces those outputs and no D state matches them.
        outputs, _ = c_stg.run(
            symbolic_violation.c_state, symbolic_violation.input_symbols
        )
        assert tuple(outputs) == symbolic_violation.c_outputs
        for s in range(d_stg.num_states):
            d_outputs, _ = d_stg.run(s, symbolic_violation.input_symbols)
            assert tuple(d_outputs) != symbolic_violation.c_outputs

    explicit_delay = delay_needed_for_implication(c_stg, d_stg)
    assert checker.delay_needed() == explicit_delay
    for cycles in range(3):
        assert checker.delayed_implies(cycles) == delayed_implies(
            c_stg, d_stg, cycles
        )


class TestPaperPairs:
    @pytest.mark.parametrize("index", range(8))
    def test_engines_agree(self, index):
        c, d = _paper_pairs()[index]
        _assert_engines_agree(c, d)


class TestRandomPairs:
    @settings(deadline=None, max_examples=40)
    @given(seed=st.integers(0, 10_000))
    def test_engines_agree(self, seed):
        c, d = _random_pair(seed)
        _assert_engines_agree(c, d)

    @settings(deadline=None, max_examples=15)
    @given(seed=st.integers(0, 10_000))
    def test_subset_fixpoint_agrees_without_shortcut(self, seed):
        """Force the symbolic subset machinery (no Prop 3.1 shortcut) --
        it must still agree with the explicit subset construction."""
        c, d = _random_pair(seed, max_latches=3)
        explicit = find_violation(extract_stg(c), extract_stg(d))
        symbolic = symbolic_find_violation(c, d, use_implication_shortcut=False)
        assert (explicit is None) == (symbolic is None)


@pytest.mark.slow
class TestRandomPairsAtScale:
    """The acceptance-criteria sweep: ≥200 pairs, up to 6 latches."""

    @pytest.mark.parametrize("block", range(10))
    def test_engines_agree_on_200_pairs(self, block):
        for offset in range(20):
            seed = 20_000 + block * 20 + offset
            c, d = _random_pair(seed, max_latches=6)
            explicit = find_violation(extract_stg(c), extract_stg(d))
            symbolic = symbolic_find_violation(c, d)
            assert (explicit is None) == (symbolic is None), (
                "engines disagree on seed %d" % seed
            )
            if explicit is not None:
                assert len(symbolic.input_symbols) == len(explicit.input_symbols)

    def test_structured_families(self):
        """Shift registers, pipelines and counters: reflexive safety and
        cross-family comparisons, both engines."""
        circuits = [
            shift_register(4),
            pipeline_circuit(3, width=2),
            counter_circuit(4),
        ]
        for circuit in circuits:
            assert symbolic_is_safe_replacement(circuit, circuit)
            assert symbolic_implies(circuit, circuit)
        for a, b in itertools.permutations(circuits, 2):
            if len(a.inputs) != len(b.inputs) or len(a.outputs) != len(b.outputs):
                continue
            stg_a, stg_b = extract_stg(a), extract_stg(b)
            assert symbolic_implies(a, b) == implies(stg_a, stg_b)
            assert symbolic_is_safe_replacement(a, b) == (
                find_violation(stg_a, stg_b) is None
            )


class TestGCUnderPressure:
    """Regression for a GC root-set bug: with a tiny ``gc_node_limit``
    every frontier level collects, and the output-cube caches were once
    left out of the root set -- recycled slots then produced wrong
    verdicts, corrupt witnesses or RecursionErrors."""

    @pytest.mark.parametrize("seed", [1, 7, 19, 23, 42, 77, 101, 123])
    def test_subset_fixpoint_survives_constant_collection(self, seed):
        c, d = _random_pair(seed, max_latches=3)
        c_stg, d_stg = extract_stg(c), extract_stg(d)
        explicit = find_violation(c_stg, d_stg)
        checker = SymbolicContainmentChecker(c, d, gc_node_limit=50)
        symbolic = checker.find_violation(use_implication_shortcut=False)
        assert (explicit is None) == (symbolic is None)
        if symbolic is None:
            # The fixpoint ran every level, so it must have collected.
            assert checker.manager.stats["gc_runs"] > 0
        else:
            assert len(symbolic.input_symbols) == len(explicit.input_symbols)
            outputs, _ = c_stg.run(symbolic.c_state, symbolic.input_symbols)
            assert tuple(outputs) == symbolic.c_outputs


class TestModuleLevelWrappers:
    def test_one_shot_functions_match_checker(self):
        c, d = figure1_design_c(), figure1_design_d()
        assert symbolic_implies(c, d) is False
        assert symbolic_implies(d, c) is True
        assert symbolic_machines_equivalent(c, d) is False
        assert symbolic_delayed_implies(c, d, 1) is True
        assert symbolic_delay_needed_for_implication(c, d) == 1
        assert symbolic_is_safe_replacement(d, c) is True

    def test_delay_needed_respects_max_cycles(self):
        c, d = figure1_design_c(), figure1_design_d()
        assert symbolic_delay_needed_for_implication(c, d, max_cycles=0) is None
        assert symbolic_delay_needed_for_implication(c, d, max_cycles=1) == 1

    def test_interface_mismatch_rejected(self):
        a = random_sequential_circuit(0, num_inputs=1)
        b = random_sequential_circuit(0, num_inputs=2)
        with pytest.raises(ValueError):
            symbolic_implies(a, b)

    def test_negative_delay_rejected(self):
        c = figure1_design_c()
        with pytest.raises(ValueError):
            symbolic_delayed_implies(c, c, -1)


class TestEngineResolution:
    def test_explicit_and_symbolic_are_fixed(self):
        c = figure1_design_c()
        assert resolve_engine("explicit", c, c) == "explicit"
        assert resolve_engine("symbolic", c, c) == "symbolic"

    def test_auto_uses_latch_threshold(self):
        small = shift_register(2)
        large = shift_register(AUTO_SYMBOLIC_LATCH_THRESHOLD + 1)
        assert resolve_engine("auto", small, small) == "explicit"
        assert resolve_engine("auto", large, small) == "symbolic"
        assert resolve_engine("auto", small, large) == "symbolic"

    def test_default_engine_round_trip(self):
        previous = get_default_engine()
        try:
            set_default_engine("symbolic")
            assert get_default_engine() == "symbolic"
            assert resolve_engine(None, figure1_design_c(), None) == "symbolic"
        finally:
            set_default_engine(previous)

    def test_bad_engine_names_rejected(self):
        with pytest.raises(ValueError):
            set_default_engine("bogus")
        with pytest.raises(ValueError):
            resolve_engine("bogus")


class TestCircuitLevelEquivalenceDispatch:
    def test_decide_implication_both_engines(self):
        c, d = figure1_design_c(), figure1_design_d()
        for engine in ("explicit", "symbolic"):
            assert decide_implication(c, d, engine=engine) is False
            assert decide_implication(d, c, engine=engine) is True

    def test_decide_machines_equivalent_both_engines(self):
        c, d = figure1_design_c(), figure1_design_d()
        for engine in ("explicit", "symbolic"):
            assert decide_machines_equivalent(c, d, engine=engine) is False
            assert decide_machines_equivalent(c, c, engine=engine) is True
