"""End-to-end integration tests: full optimisation + verification flows.

Each test is a complete user workflow: build or load a circuit, retime
it with the graph-level optimisers, realise the result on the netlist,
and verify the paper's guarantees on the outcome.
"""

from __future__ import annotations

import pytest

from repro.analysis.testability import preservation_report
from repro.bench.generators import correlator, pipeline_circuit
from repro.bench.iscas import load, names
from repro.bench.paper_circuits import figure1_design_d
from repro.netlist.io_bench import parse_bench, write_bench
from repro.netlist.transform import normalize_fanout
from repro.netlist.validate import validate
from repro.retime.apply import lag_to_moves, realize
from repro.retime.graph import build_retiming_graph
from repro.retime.leiserson_saxe import min_period_retiming
from repro.retime.min_area import min_area_retiming
from repro.retime.validity import check_retiming_validity, cls_equivalent
from repro.sim.fault import StuckAtFault, detects_exact, enumerate_faults
from repro.stg.equivalence import machines_equivalent
from repro.stg.explicit import extract_stg


def test_full_min_period_flow_on_correlator():
    """The flagship flow: min-period retiming of the LS correlator uses
    hazardous moves, halves the period, and is CLS-invisible."""
    circuit = correlator(8)
    graph = build_retiming_graph(circuit)
    result = min_period_retiming(graph)
    assert result.period < result.original_period

    session = lag_to_moves(circuit, result.lag)
    validate(session.current, require_normal_form=True)
    assert build_retiming_graph(session.current).clock_period() == result.period
    assert session.hazardous_move_count > 0  # the paper's hazard is real

    report = check_retiming_validity(session, check_stg=False)
    assert report.cls_invariant


def test_full_min_area_flow_on_benchmarks():
    for name in names():
        circuit = load(name)
        graph = build_retiming_graph(circuit)
        minp = min_period_retiming(graph)
        result = min_area_retiming(graph, period=minp.period)
        retimed = realize(circuit, result.lag)
        validate(retimed)
        after = build_retiming_graph(retimed)
        assert after.clock_period() <= minp.period
        assert after.num_registers == result.registers
        assert cls_equivalent(circuit, retimed, count=5, length=8, seed=0)


def test_retimed_netlist_roundtrips_through_bench_format():
    circuit = correlator(5)
    result = min_period_retiming(build_retiming_graph(circuit))
    retimed = realize(circuit, result.lag)
    text = write_bench(retimed)
    back = normalize_fanout(parse_bench(text, name="back"))
    assert cls_equivalent(retimed, back, count=5, length=8, seed=0)


def test_small_machine_equivalence_after_optimisation():
    """For a small circuit we can afford the strongest check: the
    delayed retimed machine implies the original (Cor 4.3)."""
    circuit = figure1_design_d()
    graph = build_retiming_graph(circuit)
    result = min_area_retiming(graph)
    session = lag_to_moves(circuit, result.lag)
    report = check_retiming_validity(session)
    assert report.consistent_with_paper()


def test_fault_coverage_survives_safe_retiming_on_pipeline():
    """On a pipeline, min-area retiming (no junction hazards needed for
    this structure... verified via the session accounting) must keep
    every originally-detected fault detectable after the paper's k-cycle
    delay."""
    circuit = pipeline_circuit(2, 2, seed=4)
    graph = build_retiming_graph(circuit)
    result = min_area_retiming(graph)
    session = lag_to_moves(circuit, result.lag)
    k = session.theorem45_k

    # Pick a handful of faults on primary-output cones.
    test = [(True, True), (False, True), (True, False)]
    faults = [f for f in enumerate_faults(circuit, nets=circuit.outputs)]
    for fault in faults:
        if not detects_exact(circuit, fault, test).detected:
            continue
        report = preservation_report(circuit, session.current, fault, test, k)
        assert report.detected_in_delayed, (fault, session.summary())


def test_sequential_workflow_mixed_transforms():
    """normalize -> retime -> collapse -> write -> parse -> normalize:
    behaviour is preserved across every representation change."""
    raw = load("mini_traffic", normalize=False)
    nf = normalize_fanout(raw)
    result = min_area_retiming(build_retiming_graph(nf))
    retimed = realize(nf, result.lag)
    text = write_bench(retimed)
    final = normalize_fanout(parse_bench(text, name="final"))
    assert machines_equivalent(extract_stg(raw), extract_stg(final)) or cls_equivalent(
        raw, final, count=8, length=10, seed=0
    )
