"""Process-pool execution layer: shard embarrassingly parallel sweeps.

The paper's headline experiments are embarrassingly parallel: fault
grading evaluates every stuck-at fault against the same test set
(Section 2.2, Table 1), the exact simulator sweeps ``2**n`` independent
power-up states (Section 2.1), and the validity/redundancy checkers
judge many independent candidates.  This module is the one place that
knows how to split such work across CPU cores:

* :func:`run_sharded` -- the single primitive everything else uses.  It
  chunks an item list, ships one pickled *payload* (circuit, compiled
  program, reference outputs, ...) to each worker process exactly once
  via the pool initializer, applies a module-level *task* function to
  each chunk, and reassembles the per-item results **in input order**,
  so results are bit-for-bit identical to a serial run.
* a process-wide default worker count (:func:`set_default_jobs`),
  mirroring the backend registry of :mod:`repro.sim.compiled` and set
  from the CLI's top-level ``--jobs`` flag.
* a reusable pool handle (:class:`WorkerPool`): by default every
  :func:`run_sharded` call spins a fresh ``ProcessPoolExecutor`` up and
  tears it down again -- correct, but each call pays worker spawn cost.
  Long-lived callers (the ``repro serve`` service, repeated bench runs)
  create one :class:`WorkerPool` and either pass it per call
  (``run_sharded(..., pool=pool)``) or install it process-wide with
  :func:`set_shared_pool`; the workers then survive across calls and
  per-call payloads are delivered through a small per-worker cache
  keyed by payload token.  Results stay bit-for-bit identical to the
  one-shot path, which remains the default.
* chunk-size auto-tuning (:func:`auto_chunk_size`): about four chunks
  per worker, balancing scheduling slack against IPC overhead.
* a zero-copy array transport (:func:`make_array_pack`): bulk numpy
  arrays -- packed input vectors, reference-output tables, power-up
  state blocks -- go into one ``multiprocessing.shared_memory`` segment
  created once by the parent; workers attach by name, so only the
  segment name and the array layout cross the pickle boundary instead
  of the arrays themselves.  :class:`ArrayPack` is the portability
  fallback carrying the same arrays inline in the pickled payload; the
  merge contract is identical either way (bit-for-bit deterministic).
* graceful degradation: if the pool cannot start (restricted
  environments, missing ``fork``/``spawn``, unpicklable payloads) the
  work runs serially in-process and a :class:`ParallelStats` record
  marks the fall-back -- callers never have to care.
* lightweight instrumentation: every invocation publishes a
  :class:`ParallelStats` to registered observers and keeps the most
  recent record in :func:`last_stats`; the benchmark suite uses this to
  report worker counts and chunk shapes next to its timings.

Consumers: :class:`repro.sim.fault.FaultSimulator`,
:func:`repro.sim.atpg.grade_test_set`,
:class:`repro.sim.exact.ExactSimulator`,
:func:`repro.retime.validity.cls_equivalent` and
:func:`repro.optimize.redundancy.remove_cls_redundancies`.

With ``jobs == 1`` (the default) no pool, no pickling and no extra
process is involved: callers take their original serial code path, so
the single-core behaviour of the library is exactly what it was before
this layer existed.
"""

from __future__ import annotations

import atexit
import itertools
import os
import pickle
import threading
import warnings
from concurrent.futures import Executor, ProcessPoolExecutor
from dataclasses import dataclass
from time import perf_counter
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple, TypeVar

import numpy as np

from ..obs.trace import TRACER as _TRACE
from ..obs.trace import span as _span

__all__ = [
    "ArrayPack",
    "ParallelStats",
    "SharedArrayPack",
    "TRANSPORTS",
    "WorkerPool",
    "add_observer",
    "auto_chunk_size",
    "default_job_count",
    "get_default_jobs",
    "get_shared_pool",
    "last_stats",
    "make_array_pack",
    "remove_observer",
    "reset_fallback_warning",
    "resolve_jobs",
    "run_sharded",
    "set_default_jobs",
    "set_shared_pool",
]

Item = TypeVar("Item")
Result = TypeVar("Result")

#: A task takes the shared payload and a chunk of items and returns one
#: result per item, in order.  It must be a module-level callable so the
#: pool can pickle it by reference.
Task = Callable[[Any, List[Item]], Sequence[Result]]


# ---------------------------------------------------------------------------
# Worker-count registry (the CLI's --jobs escape hatch).
# ---------------------------------------------------------------------------

_default_jobs = 1


def default_job_count() -> int:
    """A sensible ``--jobs`` value for this machine (its CPU count)."""
    return os.cpu_count() or 1


def set_default_jobs(jobs: int) -> None:
    """Set the process-wide default worker count (``1`` = serial)."""
    if jobs < 1:
        raise ValueError("jobs must be >= 1, got %d" % jobs)
    global _default_jobs
    _default_jobs = int(jobs)


def get_default_jobs() -> int:
    """The process-wide default worker count."""
    return _default_jobs


def resolve_jobs(jobs: Optional[int]) -> int:
    """Resolve an explicit worker count (``None`` -> the default)."""
    if jobs is None:
        return _default_jobs
    if jobs < 1:
        raise ValueError("jobs must be >= 1, got %d" % jobs)
    return int(jobs)


# ---------------------------------------------------------------------------
# Instrumentation.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ParallelStats:
    """What one :func:`run_sharded` call did.

    Attributes
    ----------
    label:
        Caller-supplied name of the workload (e.g. ``"fault-grading"``).
    jobs:
        Worker count requested (after resolution).
    items:
        Number of work items.
    chunks:
        Number of chunks actually dispatched (0 for the serial path).
    chunk_size:
        Items per chunk (0 for the serial path).
    elapsed:
        Wall-clock seconds for the whole call, merging included.
    fallback:
        True when a pool was requested but could not be used and the
        work ran serially in-process instead.
    """

    label: str
    jobs: int
    items: int
    chunks: int
    chunk_size: int
    elapsed: float
    fallback: bool
    #: Bytes of the pickled payload shipped to each worker (0 when the
    #: call stayed serial and nothing was pickled).
    payload_bytes: int = 0
    #: Bytes parked in shared-memory segments referenced by the payload
    #: (0 when no :class:`SharedArrayPack` was involved).
    shm_bytes: int = 0
    #: True when the chunks ran on a reusable :class:`WorkerPool`
    #: (workers survived from an earlier call) instead of a one-shot
    #: executor.
    pooled: bool = False

    def summary(self) -> str:
        mode = (
            "serial"
            if self.jobs <= 1
            else ("serial-fallback" if self.fallback else "%d workers" % self.jobs)
        )
        if self.pooled:
            mode += ", pooled"
        text = "%s: %d items, %d chunks (%s), %.3fs" % (
            self.label,
            self.items,
            self.chunks,
            mode,
            self.elapsed,
        )
        if self.payload_bytes or self.shm_bytes:
            text += ", %d payload B + %d shm B" % (self.payload_bytes, self.shm_bytes)
        return text


_observers: List[Callable[[ParallelStats], None]] = []
_last_stats: Optional[ParallelStats] = None


def add_observer(callback: Callable[[ParallelStats], None]) -> None:
    """Register a callback receiving a :class:`ParallelStats` per call."""
    _observers.append(callback)


def remove_observer(callback: Callable[[ParallelStats], None]) -> None:
    """Unregister a previously added observer (no-op if absent)."""
    try:
        _observers.remove(callback)
    except ValueError:
        pass


def last_stats() -> Optional[ParallelStats]:
    """The :class:`ParallelStats` of the most recent call, if any."""
    return _last_stats


def _publish(stats: ParallelStats) -> None:
    global _last_stats
    _last_stats = stats
    for callback in list(_observers):
        callback(stats)


# On boxes where pools genuinely cannot start (1-core CI runners,
# sandboxes without fork/spawn) *every* sharded call would otherwise
# repeat the same RuntimeWarning; the condition is per-process, so the
# diagnostic is too.  ParallelStats.fallback still marks every call.
_fallback_warned = False


def reset_fallback_warning() -> None:
    """Re-arm the once-per-process serial-fallback warning (for tests)."""
    global _fallback_warned
    _fallback_warned = False


def _warn_fallback_once(label: str, jobs: int, exc: Exception) -> None:
    global _fallback_warned
    if _fallback_warned:
        return
    _fallback_warned = True
    warnings.warn(
        "parallel %s with %d jobs unavailable (%s: %s); running serially"
        " (further fall-backs in this process will be silent)"
        % (label, jobs, type(exc).__name__, exc),
        RuntimeWarning,
        stacklevel=3,
    )


# ---------------------------------------------------------------------------
# Chunking.
# ---------------------------------------------------------------------------

#: Target chunks per worker: enough slack that an unlucky chunk does not
#: serialise the tail, few enough that per-chunk IPC stays negligible.
CHUNKS_PER_WORKER = 4


def auto_chunk_size(num_items: int, jobs: int) -> int:
    """Chunk size putting ~:data:`CHUNKS_PER_WORKER` chunks on each worker."""
    if num_items <= 0:
        return 1
    return max(1, -(-num_items // (max(1, jobs) * CHUNKS_PER_WORKER)))


# ---------------------------------------------------------------------------
# Array transports: how bulk numpy arrays reach the workers.
# ---------------------------------------------------------------------------

#: Transport choices for :func:`make_array_pack`.  ``auto`` tries shared
#: memory and silently falls back to inline pickling where segments
#: cannot be created (restricted sandboxes, exotic platforms).
TRANSPORTS = ("auto", "shm", "pickle")


class ArrayPack:
    """A read-only bundle of named numpy arrays, pickled inline.

    This is the portability baseline: the arrays travel inside the
    payload bytes like any other attribute.  The mapping interface
    (``pack["tests"]``) is shared with :class:`SharedArrayPack`, so
    worker tasks never know which transport carried their data.
    """

    transport = "pickle"

    def __init__(self, arrays: Dict[str, np.ndarray]) -> None:
        self._arrays = {
            name: np.ascontiguousarray(a) for name, a in arrays.items()
        }

    def __getitem__(self, name: str) -> np.ndarray:
        return self._arrays[name]

    def __contains__(self, name: str) -> bool:
        return name in self._arrays

    def keys(self):
        return self._arrays.keys()

    @property
    def nbytes(self) -> int:
        """Total array bytes carried by this pack."""
        return sum(int(a.nbytes) for a in self._arrays.values())

    @property
    def shm_bytes(self) -> int:
        """Bytes parked in shared memory (0 for the inline transport)."""
        return 0

    def release(self) -> None:
        """Free transport resources (no-op for the inline transport)."""


#: Shared-memory segments this *worker* process attached to, closed at
#: interpreter exit so the parent's unlink is the only lifetime owner.
_ATTACHED_SEGMENTS: List[Any] = []
_ATEXIT_REGISTERED = False


def _close_attached_segments() -> None:
    for shm in _ATTACHED_SEGMENTS:
        try:
            shm.close()
        except (BufferError, OSError):  # views may outlive us; best effort
            pass
    del _ATTACHED_SEGMENTS[:]


class SharedArrayPack:
    """Named numpy arrays in one ``multiprocessing.shared_memory`` segment.

    The parent copies every array into a single segment at construction;
    pickling ships only ``(segment name, per-array layout)``, and worker
    processes attach to the segment by name in ``__setstate__`` -- the
    array payload itself never crosses the pickle boundary.  Views are
    zero-copy on both sides.

    Lifetime contract: the **creator** owns the segment and must call
    :meth:`release` (unlinks) once the sharded call returns; workers
    only ever close their attachment, which :func:`_close_attached_segments`
    guarantees at exit even when tasks raise.
    """

    transport = "shm"

    def __init__(self, arrays: Dict[str, np.ndarray]) -> None:
        from multiprocessing import shared_memory

        layout: Dict[str, Tuple[int, Tuple[int, ...], str]] = {}
        offset = 0
        staged = {}
        for name, array in arrays.items():
            a = np.ascontiguousarray(array)
            # 8-byte alignment keeps uint64 views valid at any offset.
            offset = (offset + 7) & ~7
            layout[name] = (offset, a.shape, a.dtype.str)
            staged[name] = a
            offset += int(a.nbytes)
        self._layout = layout
        self._owner = True
        self._views: Dict[str, np.ndarray] = {}
        self._shm = shared_memory.SharedMemory(create=True, size=max(1, offset))
        for name, a in staged.items():
            off, shape, dtype = layout[name]
            view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=self._shm.buf, offset=off)
            view[...] = a
        if _TRACE.enabled:
            counters = _TRACE.counters
            counters["parallel.shm.segments"] = (
                counters.get("parallel.shm.segments", 0) + 1
            )
            counters["parallel.shm.bytes"] = (
                counters.get("parallel.shm.bytes", 0) + self._shm.size
            )

    # -- mapping interface (shared with ArrayPack) -------------------------

    def __getitem__(self, name: str) -> np.ndarray:
        view = self._views.get(name)
        if view is None:
            off, shape, dtype = self._layout[name]
            view = np.ndarray(
                shape, dtype=np.dtype(dtype), buffer=self._shm.buf, offset=off
            )
            view.flags.writeable = False
            self._views[name] = view
        return view

    def __contains__(self, name: str) -> bool:
        return name in self._layout

    def keys(self):
        return self._layout.keys()

    @property
    def nbytes(self) -> int:
        """Total array bytes carried by this pack."""
        return sum(
            int(np.dtype(dtype).itemsize) * int(np.prod(shape, dtype=np.int64))
            for _, shape, dtype in self._layout.values()
        )

    @property
    def shm_bytes(self) -> int:
        """Size of the backing shared-memory segment."""
        return int(self._shm.size)

    # -- pickling: name + layout only --------------------------------------

    def __getstate__(self) -> Dict[str, Any]:
        return {"shm_name": self._shm.name, "layout": self._layout}

    def __setstate__(self, state: Dict[str, Any]) -> None:
        from multiprocessing import shared_memory

        self._layout = state["layout"]
        self._owner = False
        self._views = {}
        self._shm = shared_memory.SharedMemory(name=state["shm_name"])
        global _ATEXIT_REGISTERED
        _ATTACHED_SEGMENTS.append(self._shm)
        if not _ATEXIT_REGISTERED:
            _ATEXIT_REGISTERED = True
            atexit.register(_close_attached_segments)

    # -- lifetime ----------------------------------------------------------

    def release(self) -> None:
        """Drop views and close; the creator additionally unlinks."""
        self._views.clear()
        try:
            self._shm.close()
        except (BufferError, OSError):
            pass
        if self._owner:
            try:
                self._shm.unlink()
            except (FileNotFoundError, OSError):
                pass


def make_array_pack(
    arrays: Dict[str, np.ndarray], transport: str = "auto"
) -> "ArrayPack":
    """Bundle *arrays* for worker delivery using *transport*.

    ``auto`` prefers shared memory and degrades to the inline pickled
    pack when a segment cannot be created; ``shm``/``pickle`` force one
    transport (``shm`` then raises where unsupported).
    """
    if transport not in TRANSPORTS:
        raise ValueError(
            "unknown transport %r (choose from %s)" % (transport, TRANSPORTS)
        )
    if transport == "pickle":
        return ArrayPack(arrays)
    try:
        return SharedArrayPack(arrays)
    except Exception:
        if transport == "shm":
            raise
        _TRACE.incr("parallel.shm.fallbacks")
        return ArrayPack(arrays)


def _payload_shm_bytes(payload: Any) -> int:
    """Shared-memory bytes referenced by a (possibly tuple) payload."""
    parts = payload if isinstance(payload, (tuple, list)) else (payload,)
    return sum(
        int(obj.shm_bytes) for obj in parts if isinstance(obj, (ArrayPack, SharedArrayPack))
    )


# ---------------------------------------------------------------------------
# The pool plumbing.
# ---------------------------------------------------------------------------

#: The shared payload, unpickled once per worker process (not per chunk).
_WORKER_PAYLOAD: Any = None


def _init_worker(payload_bytes: bytes) -> None:
    global _WORKER_PAYLOAD
    # Workers never nest pools: whatever --jobs the parent was launched
    # with, work arriving inside a worker runs serially.
    set_default_jobs(1)
    _WORKER_PAYLOAD = pickle.loads(payload_bytes)


def _run_chunk(task_and_chunk):
    task, chunk = task_and_chunk
    started = perf_counter()
    part = task(_WORKER_PAYLOAD, chunk)
    # The worker's own tracer is always disabled; its wall time travels
    # back with the results so the parent can fold it into the report.
    return list(part), perf_counter() - started


def _make_executor(jobs: int, payload_bytes: bytes) -> Executor:
    """Build the worker pool.  Split out so tests can force failure."""
    return ProcessPoolExecutor(
        max_workers=jobs, initializer=_init_worker, initargs=(payload_bytes,)
    )


# ---------------------------------------------------------------------------
# The reusable pool: workers survive across run_sharded calls.
# ---------------------------------------------------------------------------

#: Payloads a *pool worker* has already unpickled, keyed by token.  The
#: one-shot path delivers its payload via the pool initializer (once per
#: worker, ever); a reusable pool serves many payloads over its
#: lifetime, so each call stamps its payload bytes with a fresh token
#: and workers unpickle them at most once each.
_POOL_PAYLOADS: Dict[int, Any] = {}

#: Distinct payloads a worker keeps unpickled before evicting the
#: oldest.  Service workloads alternate between a handful of resident
#: circuits; eight covers that while bounding worker memory.
POOL_PAYLOAD_CACHE_SIZE = 8

#: Parent-side token source; tokens only need to be unique within the
#: process that feeds the pool.
_PAYLOAD_TOKENS = itertools.count(1)


def _init_pool_worker() -> None:
    # Same rule as the one-shot initializer: work dispatched inside a
    # worker never nests another pool.
    set_default_jobs(1)


def _run_pool_chunk(args):
    task, token, payload_bytes, chunk = args
    if token in _POOL_PAYLOADS:
        payload = _POOL_PAYLOADS[token]
    else:
        payload = pickle.loads(payload_bytes)
        while len(_POOL_PAYLOADS) >= POOL_PAYLOAD_CACHE_SIZE:
            _POOL_PAYLOADS.pop(next(iter(_POOL_PAYLOADS)))
        _POOL_PAYLOADS[token] = payload
    started = perf_counter()
    part = task(payload, chunk)
    return list(part), perf_counter() - started


def _make_pool_executor(jobs: int) -> Executor:
    """Build a reusable pool's executor.  Split out so tests can force
    failure."""
    return ProcessPoolExecutor(max_workers=jobs, initializer=_init_pool_worker)


class WorkerPool:
    """A reusable worker pool for repeated :func:`run_sharded` calls.

    The one-shot path inside :func:`run_sharded` spawns and joins a
    fresh ``ProcessPoolExecutor`` per call -- fine for a single sweep,
    wasteful for a service answering requests all day.  A
    :class:`WorkerPool` keeps the worker processes alive across calls::

        with WorkerPool(jobs=4) as pool:
            first = run_sharded(task, payload_a, items_a, pool=pool)
            again = run_sharded(task, payload_b, items_b, pool=pool)

    Payload delivery changes shape: instead of the pool initializer
    (which runs once per worker process, ever), each call's pickled
    payload travels with its chunks under a unique token and every
    worker unpickles it at most once, caching the last
    :data:`POOL_PAYLOAD_CACHE_SIZE` payloads.  Results remain
    bit-for-bit identical to the one-shot and serial paths.

    The executor is created lazily on first use and recreated after a
    failure (a broken pool degrades that one call to the serial path,
    exactly like the one-shot executor).  Instances are thread-safe:
    concurrent :func:`run_sharded` calls may share one pool.
    """

    def __init__(self, jobs: Optional[int] = None) -> None:
        self.jobs = resolve_jobs(jobs if jobs is not None else get_default_jobs())
        self._executor: Optional[Executor] = None
        self._lock = threading.Lock()
        #: How many times an executor was (re)started -- spawn cost paid.
        self.launches = 0

    # -- lifecycle ---------------------------------------------------------

    def _ensure_executor(self) -> Executor:
        with self._lock:
            if self._executor is None:
                self._executor = _make_pool_executor(self.jobs)
                self.launches += 1
            return self._executor

    def _discard_executor(self) -> None:
        """Drop a (presumed broken) executor; next use starts fresh."""
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            try:
                executor.shutdown(wait=False)
            except Exception:
                pass

    @property
    def started(self) -> bool:
        """Is a live executor currently attached?"""
        return self._executor is not None

    def close(self) -> None:
        """Shut the workers down (idempotent)."""
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- dispatch ----------------------------------------------------------

    def _map_chunks(self, task, payload_bytes: bytes, chunks):
        executor = self._ensure_executor()
        token = next(_PAYLOAD_TOKENS)
        return list(
            executor.map(
                _run_pool_chunk,
                [(task, token, payload_bytes, chunk) for chunk in chunks],
            )
        )


#: The process-wide shared pool (``None`` = every call is one-shot).
_shared_pool: Optional[WorkerPool] = None


def set_shared_pool(pool: Optional[WorkerPool]) -> Optional[WorkerPool]:
    """Install *pool* as the process-wide default for every
    :func:`run_sharded` call that resolves to ``jobs > 1`` and does not
    pass an explicit ``pool=``.  Returns the previously installed pool
    (not closed -- the caller owns both lifetimes).  ``None``
    uninstalls."""
    global _shared_pool
    previous, _shared_pool = _shared_pool, pool
    return previous


def get_shared_pool() -> Optional[WorkerPool]:
    """The currently installed process-wide :class:`WorkerPool`."""
    return _shared_pool


def run_sharded(
    task: Task,
    payload: Any,
    items: Iterable[Item],
    *,
    jobs: Optional[int] = None,
    chunk_size: Optional[int] = None,
    label: str = "parallel",
    pool: Optional[WorkerPool] = None,
) -> List[Result]:
    """Apply *task* to chunks of *items*, preserving per-item order.

    Parameters
    ----------
    task:
        Module-level callable ``task(payload, chunk) -> results`` with
        exactly one result per chunk item, in chunk order.
    payload:
        Read-only shared context (circuit, reference outputs, ...).
        Pickled once and delivered to each worker by the pool
        initializer, never per chunk.
    items:
        The work items; sharding and merging keep their order, so the
        returned list is identical to ``list(task(payload, items))``.
    jobs:
        Worker count (``None`` -> the process default).  ``1`` runs the
        task in-process with no pool at all.
    chunk_size:
        Items per chunk (``None`` -> :func:`auto_chunk_size`).
    label:
        Workload name for :class:`ParallelStats`.
    pool:
        A reusable :class:`WorkerPool` to run the chunks on (``None`` ->
        the process-wide shared pool if one is installed, else a
        one-shot executor).  With a pool and no explicit *jobs*, the
        pool's worker count is used.
    """
    if pool is None:
        pool = _shared_pool
    if jobs is None and pool is not None:
        jobs = pool.jobs
    jobs = resolve_jobs(jobs)
    work = list(items)
    started = perf_counter()
    if _TRACE.enabled:
        counters = _TRACE.counters
        counters["parallel.calls"] = counters.get("parallel.calls", 0) + 1
        counters["parallel.items"] = counters.get("parallel.items", 0) + len(work)

    def _serial(fallback: bool) -> List[Result]:
        if fallback:
            _TRACE.incr("parallel.fallbacks")
        results = list(task(payload, work))
        _publish(
            ParallelStats(
                label=label,
                jobs=jobs,
                items=len(work),
                chunks=0,
                chunk_size=0,
                elapsed=perf_counter() - started,
                fallback=fallback,
                payload_bytes=0,
                shm_bytes=_payload_shm_bytes(payload),
            )
        )
        return results

    if jobs <= 1 or len(work) <= 1:
        with _span("parallel.%s" % label):
            return _serial(fallback=False)

    size = chunk_size if chunk_size is not None else auto_chunk_size(len(work), jobs)
    chunks = [work[i : i + size] for i in range(0, len(work), size)]
    pooled = pool is not None
    with _span("parallel.%s" % label):
        try:
            payload_bytes = pickle.dumps(payload)
            if pool is not None:
                parts = pool._map_chunks(task, payload_bytes, chunks)
            else:
                with _make_executor(min(jobs, len(chunks)), payload_bytes) as executor:
                    parts = list(
                        executor.map(_run_chunk, [(task, chunk) for chunk in chunks])
                    )
        except Exception as exc:  # pool could not start or run -- degrade
            if pool is not None:
                pool._discard_executor()
            _warn_fallback_once(label, jobs, exc)
            return _serial(fallback=True)

        if pooled and _TRACE.enabled:
            _TRACE.incr("parallel.pool.runs")

        shm_bytes = _payload_shm_bytes(payload)
        if _TRACE.enabled:
            counters = _TRACE.counters
            counters["parallel.payload.bytes"] = (
                counters.get("parallel.payload.bytes", 0) + len(payload_bytes)
            )

        if _TRACE.enabled:
            counters = _TRACE.counters
            counters["parallel.chunks"] = counters.get("parallel.chunks", 0) + len(chunks)
            for _, shard_elapsed in parts:
                _TRACE.record_timing("shard", shard_elapsed)

        results: List[Result] = []
        with _span("merge"):
            for chunk, (part, _) in zip(chunks, parts):
                if len(part) != len(chunk):
                    raise RuntimeError(
                        "parallel task %r returned %d results for a chunk of %d items"
                        % (getattr(task, "__name__", task), len(part), len(chunk))
                    )
                results.extend(part)
    _publish(
        ParallelStats(
            label=label,
            jobs=jobs,
            items=len(work),
            chunks=len(chunks),
            chunk_size=size,
            elapsed=perf_counter() - started,
            fallback=False,
            payload_bytes=len(payload_bytes),
            shm_bytes=shm_bytes,
            pooled=pooled,
        )
    )
    return results
