"""Batched conservative three-valued simulation (numpy, dual-rail).

The CLS-invariance checks sweep many ternary input sequences; this
module vectorises them.  A ternary value is encoded *dual-rail* as a
pair of booleans ``(can0, can1)``:

=========  =====  =====
value      can0   can1
=========  =====  =====
``0``      1      0
``1``      0      1
``X``      1      1
=========  =====  =====

(``(0, 0)`` is unused.)  The per-cell exact ternary functions of the
standard library have closed dual-rail forms -- e.g. for AND,
``can1 = a.can1 & b.can1`` and ``can0 = a.can0 | b.can0`` -- which are
plain vectorised boolean algebra.  Each numpy lane carries one
independent simulation, so a whole batch of CLS runs costs one pass.

Exactness per cell (agreement with
:meth:`~repro.logic.functions.CellFunction.eval_ternary`) is verified
lane-by-lane in the test-suite; exotic cells fall back to scalar
evaluation per lane.

Since the compile-once refactor the simulator itself delegates to the
lane-parallel core in :mod:`repro.sim.compiled` through its pluggable
:class:`~repro.sim.compiled.LaneBackend` (same dual-rail algebra over
integer masks or ``uint64`` word arrays, one lane value per rail); the
per-cell helpers below remain as the executable specification of the
encoding and keep the ndarray rail interface for callers.  Packing and
unpacking happen column-wise per net, never lane by lane.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..logic.ternary import ONE, T, X, ZERO
from ..netlist.circuit import Circuit
from .compiled import compile_circuit, get_lane_engine

__all__ = ["BatchedTernarySimulator", "encode_ternary", "decode_ternary"]

Rail = Tuple[np.ndarray, np.ndarray]  # (can0, can1), each shape (batch,)


def encode_ternary(values: Sequence[T]) -> Rail:
    """Encode a lane-vector of ternary values as dual-rail arrays."""
    can0 = np.array([v is not ONE for v in values], dtype=bool)
    can1 = np.array([v is not ZERO for v in values], dtype=bool)
    return can0, can1


def decode_ternary(rail: Rail) -> Tuple[T, ...]:
    """Decode dual-rail arrays back into ternary values."""
    can0, can1 = rail
    out: List[T] = []
    for c0, c1 in zip(can0, can1):
        if c0 and c1:
            out.append(X)
        elif c1:
            out.append(ONE)
        elif c0:
            out.append(ZERO)
        else:
            raise ValueError("invalid dual-rail encoding (0, 0)")
    return tuple(out)


def _and_all(rails: List[Rail]) -> Rail:
    can0 = rails[0][0].copy()
    can1 = rails[0][1].copy()
    for c0, c1 in rails[1:]:
        can0 |= c0
        can1 &= c1
    return can0, can1


def _or_all(rails: List[Rail]) -> Rail:
    can0 = rails[0][0].copy()
    can1 = rails[0][1].copy()
    for c0, c1 in rails[1:]:
        can0 &= c0
        can1 |= c1
    return can0, can1


def _not(rail: Rail) -> Rail:
    return rail[1], rail[0]


def _xor_all(rails: List[Rail]) -> Rail:
    can0, can1 = rails[0]
    can0, can1 = can0.copy(), can1.copy()
    for b0, b1 in rails[1:]:
        new_can1 = (can1 & b0) | (can0 & b1)
        new_can0 = (can0 & b0) | (can1 & b1)
        can0, can1 = new_can0, new_can1
    return can0, can1


def _mux(select: Rail, when0: Rail, when1: Rail) -> Rail:
    s0, s1 = select
    can1 = (s1 & when1[1]) | (s0 & when0[1])
    can0 = (s1 & when1[0]) | (s0 & when0[0])
    return can0, can1


def _eval_cell(function, inputs: List[Rail], batch: int) -> List[Rail]:
    family = function.name.rstrip("0123456789")
    if family == "AND":
        return [_and_all(inputs)]
    if family == "OR":
        return [_or_all(inputs)]
    if family == "NAND":
        return [_not(_and_all(inputs))]
    if family == "NOR":
        return [_not(_or_all(inputs))]
    if family == "XOR":
        return [_xor_all(inputs)]
    if family == "XNOR":
        return [_not(_xor_all(inputs))]
    if family == "NOT":
        return [_not(inputs[0])]
    if family == "BUF":
        return [(inputs[0][0].copy(), inputs[0][1].copy())]
    if family == "JUNC":
        return [
            (inputs[0][0].copy(), inputs[0][1].copy())
            for _ in range(function.n_outputs)
        ]
    if family == "CONST":
        one = function.name.endswith("1")
        return [
            (
                np.full(batch, not one, dtype=bool),
                np.full(batch, one, dtype=bool),
            )
        ]
    if family == "MUX":
        return [_mux(inputs[0], inputs[1], inputs[2])]
    # Scalar fallback.
    outputs: List[Rail] = [
        (np.empty(batch, dtype=bool), np.empty(batch, dtype=bool))
        for _ in range(function.n_outputs)
    ]
    for lane in range(batch):
        scalar_in = decode_ternary(
            ([rail[0][lane] for rail in inputs], [rail[1][lane] for rail in inputs])
        )
        scalar_out = function.eval_ternary(scalar_in)
        for pin, value in enumerate(scalar_out):
            outputs[pin][0][lane] = value is not ONE
            outputs[pin][1][lane] = value is not ZERO
    return outputs


class BatchedTernarySimulator:
    """Run many independent CLS lanes in lock-step.

    States and inputs are dual-rail array pairs of shape ``(batch,)``
    per latch / per input pin; :meth:`run_sequences` offers the
    high-level "N sequences at once" interface used by the invariance
    checkers.
    """

    def __init__(
        self,
        circuit: Circuit,
        overrides: Optional[Mapping[str, T]] = None,
        *,
        lane_engine: Optional[str] = None,
    ) -> None:
        self.circuit = circuit
        self.overrides = dict(overrides) if overrides else {}
        self.lane_engine = lane_engine

    def step(
        self, state: List[Rail], inputs: List[Rail]
    ) -> Tuple[List[Rail], List[Rail]]:
        """One cycle for every lane: ``(outputs, next_state)``."""
        circuit = self.circuit
        if len(inputs) != len(circuit.inputs):
            raise ValueError("input rail count mismatch")
        if len(state) != circuit.num_latches:
            raise ValueError("state rail count mismatch")
        batch = inputs[0][0].shape[0] if inputs else (
            state[0][0].shape[0] if state else 1
        )
        engine = get_lane_engine(self.lane_engine)
        compiled = compile_circuit(circuit)
        ctx = engine.context(batch)
        state_vals = [
            (engine.pack_column(c0), engine.pack_column(c1)) for c0, c1 in state
        ]
        input_vals = [
            (engine.pack_column(c0), engine.pack_column(c1)) for c0, c1 in inputs
        ]
        out_vals, next_vals = engine.step_ternary(
            compiled, state_vals, input_vals, ctx, compiled.forced_ternary(self.overrides)
        )

        def unpack(rails):
            return [
                (engine.unpack_column(a, batch), engine.unpack_column(b, batch))
                for a, b in rails
            ]

        return unpack(out_vals), unpack(next_vals)

    def run_sequences(
        self, sequences: Sequence[Sequence[Sequence[T]]]
    ) -> List[List[Tuple[T, ...]]]:
        """CLS outputs for N equal-length sequences, all from all-X.

        Returns ``results[seq_index][cycle] = output vector``.  Lane
        packing is column-wise per input pin (one pass over the batch),
        and decoding unpacks each output rail once per cycle -- no
        per-lane bit twiddling on either side.
        """
        batch = len(sequences)
        if batch == 0:
            return []
        length = len(sequences[0])
        if any(len(seq) != length for seq in sequences):
            raise ValueError("sequences must share one length")

        engine = get_lane_engine(self.lane_engine)
        compiled = compile_circuit(self.circuit)
        ctx = engine.context(batch)
        forced = compiled.forced_ternary(self.overrides)
        all_x = engine.constant_ternary(X, ctx)
        state = [all_x] * compiled.num_latches  # all-X power-up
        per_cycle = []
        for cycle in range(length):
            inputs = [
                engine.pack_ternary_column(
                    [sequences[lane][cycle][pin] for lane in range(batch)]
                )
                for pin in range(compiled.num_inputs)
            ]
            outputs, state = engine.step_ternary(compiled, state, inputs, ctx, forced)
            per_cycle.append(outputs)

        results: List[List[Tuple[T, ...]]] = [[] for _ in range(batch)]
        for cycle in range(length):
            columns = [
                engine.unpack_ternary_column(rail, batch) for rail in per_cycle[cycle]
            ]
            for lane in range(batch):
                results[lane].append(tuple(column[lane] for column in columns))
        return results
