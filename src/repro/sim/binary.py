"""Two-valued (Boolean) cycle simulation.

This is an ordinary logic simulator: given a concrete power-up state it
computes exact Boolean outputs cycle by cycle.  The paper uses it
implicitly everywhere a specific power-up state is discussed -- e.g. the
rows of Table 1 are one binary simulation per power-up state.

The state vector convention is shared with the whole library: element
``i`` of a state tuple is the content of ``circuit.latch_names[i]``.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator, Mapping, Optional, Sequence, Tuple

from ..netlist.circuit import Circuit
from .compiled import compile_circuit, resolve_backend
from .core import SimulationTrace, propagate

__all__ = [
    "BinarySimulator",
    "all_power_up_states",
    "state_from_int",
    "state_to_int",
    "parse_state",
    "format_state",
]

BoolVec = Tuple[bool, ...]


class BinarySimulator:
    """Simulate a circuit with Boolean values from a given state.

    Parameters
    ----------
    circuit:
        The circuit to simulate (validated by construction elsewhere).
    overrides:
        Optional stuck-at fault forcing: net -> bool.  See
        :mod:`repro.sim.fault` for the high-level fault API.
    backend:
        ``"compiled"`` (the default) evaluates through the flat program
        of :mod:`repro.sim.compiled`; ``"interpreted"`` walks the
        netlist with the reference :func:`~repro.sim.core.propagate`;
        ``"words"`` behaves like ``compiled`` here (the word lane
        engine only changes batched sweeps).  ``None`` picks the
        process default (see
        :func:`repro.sim.compiled.set_default_backend`).
    """

    def __init__(
        self,
        circuit: Circuit,
        overrides: Optional[Mapping[str, bool]] = None,
        *,
        backend: Optional[str] = None,
    ) -> None:
        self.circuit = circuit
        self.overrides = dict(overrides) if overrides else {}
        self.backend = resolve_backend(backend)

    def step(self, state: Sequence[bool], inputs: Sequence[bool]) -> Tuple[BoolVec, BoolVec]:
        """One clock cycle: returns ``(outputs, next_state)``."""
        if self.backend != "interpreted":  # compiled and words share the scalar core
            return compile_circuit(self.circuit).step_binary(
                tuple(state), tuple(inputs), overrides=self.overrides or None
            )
        values = propagate(
            self.circuit, tuple(inputs), tuple(state), ternary=False, overrides=self.overrides
        )
        outputs = tuple(values[n] for n in self.circuit.outputs)
        next_state = tuple(values[latch.data_in] for latch in self.circuit.latches)
        return outputs, next_state

    def run(
        self, state: Sequence[bool], input_sequence: Iterable[Sequence[bool]]
    ) -> SimulationTrace:
        """Simulate the whole *input_sequence* from *state*."""
        trace: SimulationTrace = SimulationTrace()
        current = tuple(bool(v) for v in state)
        trace.states.append(current)
        for raw in input_sequence:
            vector = tuple(bool(v) for v in raw)
            outputs, current = self.step(current, vector)
            trace.inputs.append(vector)
            trace.outputs.append(outputs)
            trace.states.append(current)
        return trace

    def output_sequence(
        self, state: Sequence[bool], input_sequence: Iterable[Sequence[bool]]
    ) -> Tuple[BoolVec, ...]:
        """Just the output vectors of :meth:`run`."""
        return tuple(self.run(state, input_sequence).outputs)


def all_power_up_states(circuit: Circuit) -> Iterator[BoolVec]:
    """All ``2**n`` power-up states in canonical (binary counting) order.

    The order matches :func:`state_from_int`: latch 0 is the most
    significant bit, so states read naturally as binary strings over
    ``circuit.latch_names``.
    """
    for bits in itertools.product((False, True), repeat=circuit.num_latches):
        yield bits


def state_from_int(circuit: Circuit, value: int) -> BoolVec:
    """Decode an integer into a state tuple (latch 0 = MSB)."""
    n = circuit.num_latches
    if not 0 <= value < 2 ** n:
        raise ValueError("state %d out of range for %d latches" % (value, n))
    return tuple(bool((value >> (n - 1 - i)) & 1) for i in range(n))


def state_to_int(state: Sequence[bool]) -> int:
    """Inverse of :func:`state_from_int`."""
    value = 0
    for bit in state:
        value = (value << 1) | int(bool(bit))
    return value


def parse_state(text: str) -> BoolVec:
    """Parse a state string like ``"10"`` into ``(True, False)``."""
    out = []
    for ch in text:
        if ch in " _":
            continue
        if ch == "0":
            out.append(False)
        elif ch == "1":
            out.append(True)
        else:
            raise ValueError("invalid state character %r" % ch)
    return tuple(out)


def format_state(state: Sequence[bool]) -> str:
    """Render a state tuple as a binary string (``(True, False)`` -> ``"10"``)."""
    return "".join("1" if bit else "0" for bit in state)
