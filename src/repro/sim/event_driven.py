"""Event-driven cycle simulation with activity statistics.

The production simulators of the paper's era (the three-valued
simulators of [JMV69]-lineage, Verilog-XL, ...) were *event driven*:
a cell is re-evaluated only when one of its inputs changes.  This
module provides that engine as an alternative to the levelised
oblivious simulator in :mod:`repro.sim.core` -- bit-identical results
(a property the test-suite checks against both the binary and the
ternary reference simulators), but with per-cycle *event counts* that
expose switching activity, and large savings on quiet circuits.

Scheduling: cells carry a static topological level; pending cells sit
in a min-heap keyed by level, so every cell is evaluated at most once
per cycle, after all of its drivers have settled -- the textbook
levelised-event-driven compromise that needs no delta cycles on an
acyclic combinational core.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from ..logic.ternary import T, to_ternary
from ..netlist.circuit import Circuit
from ..obs.trace import TRACER as _TRACE
from .core import SimulationTrace

__all__ = ["EventDrivenSimulator", "ActivityStats"]

Value = Union[bool, T]


@dataclass
class ActivityStats:
    """Per-run switching-activity accounting.

    ``evaluations[t]`` is the number of cell evaluations in cycle t;
    an oblivious simulator would always evaluate ``num_cells``.
    """

    num_cells: int
    evaluations: List[int] = field(default_factory=list)

    @property
    def total_evaluations(self) -> int:
        return sum(self.evaluations)

    @property
    def activity_factor(self) -> float:
        """Mean fraction of cells evaluated per cycle (1.0 = oblivious)."""
        if not self.evaluations or self.num_cells == 0:
            return 0.0
        return self.total_evaluations / (self.num_cells * len(self.evaluations))


class EventDrivenSimulator:
    """Event-driven binary or conservative-ternary simulation.

    Parameters
    ----------
    circuit:
        The circuit (acyclic combinational core required).
    ternary:
        Selects the value domain and per-cell semantics: ``False`` =
        Boolean, ``True`` = the conservative ternary functions (making
        this an event-driven CLS).
    overrides:
        Stuck-at forcing (net -> value), as in the other simulators.
    """

    def __init__(
        self,
        circuit: Circuit,
        *,
        ternary: bool = False,
        overrides: Optional[Mapping[str, Value]] = None,
    ) -> None:
        self.circuit = circuit
        self.ternary = ternary
        self.overrides = dict(overrides) if overrides else {}

        # Static structure: level per cell, reader cells per net.
        order = circuit.topological_cells()
        self._level: Dict[str, int] = {}
        for cell_name in order:
            cell = circuit.cell(cell_name)
            level = 0
            for net in cell.inputs:
                driver = circuit.driver_of(net)
                if driver[0] == "cell":
                    level = max(level, self._level[driver[1]] + 1)
            self._level[cell_name] = level
        self._readers: Dict[str, List[str]] = {}
        for cell in circuit.cells:
            for net in cell.inputs:
                self._readers.setdefault(net, []).append(cell.name)

        self._values: Dict[str, Value] = {}
        self._initialised = False
        self.stats = ActivityStats(num_cells=circuit.num_cells)

    # -- internals ------------------------------------------------------------

    def _coerce(self, value: Value) -> Value:
        return to_ternary(value) if self.ternary else bool(value)

    def _write(self, net: str, value: Value, heap, pending) -> None:
        if net in self.overrides:
            value = self._coerce(self.overrides[net])
        if self._values.get(net) == value and self._initialised:
            return
        self._values[net] = value
        for reader in self._readers.get(net, ()):
            if reader not in pending:
                pending.add(reader)
                heapq.heappush(heap, (self._level[reader], reader))

    def step(
        self, state: Sequence[Value], inputs: Sequence[Value]
    ) -> Tuple[Tuple[Value, ...], Tuple[Value, ...]]:
        """One clock cycle; returns ``(outputs, next_state)``.

        The first step evaluates everything; later steps only the fanout
        cones of changed sources.
        """
        circuit = self.circuit
        if len(inputs) != len(circuit.inputs):
            raise ValueError(
                "circuit has %d inputs, got %d" % (len(circuit.inputs), len(inputs))
            )
        if len(state) != circuit.num_latches:
            raise ValueError(
                "circuit has %d latches, got state of %d"
                % (circuit.num_latches, len(state))
            )
        heap: List[Tuple[int, str]] = []
        pending = set()

        if not self._initialised:
            for cell in circuit.cells:
                pending.add(cell.name)
                heapq.heappush(heap, (self._level[cell.name], cell.name))

        for net, value in zip(circuit.inputs, inputs):
            self._write(net, self._coerce(value), heap, pending)
        for latch, value in zip(circuit.latches, state):
            self._write(latch.data_out, self._coerce(value), heap, pending)
        self._initialised = True

        evaluations = 0
        while heap:
            _, cell_name = heapq.heappop(heap)
            pending.discard(cell_name)
            cell = circuit.cell(cell_name)
            in_vals = tuple(self._values[n] for n in cell.inputs)
            out_vals = (
                cell.function.eval_ternary(in_vals)
                if self.ternary
                else cell.function.eval_binary(in_vals)
            )
            evaluations += 1
            for net, value in zip(cell.outputs, out_vals):
                self._write(net, value, heap, pending)
        self.stats.evaluations.append(evaluations)
        if _TRACE.enabled:
            counters = _TRACE.counters
            counters["sim.event.cycles"] = counters.get("sim.event.cycles", 0) + 1
            counters["sim.event.cell_evals"] = (
                counters.get("sim.event.cell_evals", 0) + evaluations
            )

        outputs = tuple(self._values[n] for n in circuit.outputs)
        next_state = tuple(self._values[latch.data_in] for latch in circuit.latches)
        return outputs, next_state

    def run(
        self, state: Sequence[Value], input_sequence: Iterable[Sequence[Value]]
    ) -> SimulationTrace:
        """Simulate a whole sequence; ``self.stats`` accumulates the
        per-cycle evaluation counts."""
        trace: SimulationTrace = SimulationTrace()
        current = tuple(self._coerce(v) for v in state)
        trace.states.append(current)
        for raw in input_sequence:
            vector = tuple(self._coerce(v) for v in raw)
            outputs, current = self.step(current, vector)
            trace.inputs.append(vector)
            trace.outputs.append(outputs)
            trace.states.append(current)
        return trace
