"""The compile-once evaluation core shared by every simulator.

Every experiment in this repository ultimately evaluates the same
combinational core thousands of times -- Table 1 sweeps, the exact
power-up-state sweep, CLS-invariance checks, fault grading, STG
extraction.  Instead of re-walking the name-keyed netlist cell by cell
each cycle (:func:`repro.sim.core.propagate`, kept as the reference
interpreter), :class:`CompiledCircuit` lowers a
:class:`~repro.netlist.circuit.Circuit` **once** into a flat program:

* dense integer net ids (``net_index`` / ``net_names``),
* a topologically ordered opcode/operand array (``ops``), with opcodes
  classified from the cell library via
  :attr:`repro.logic.functions.CellFunction.family`,
* precomputed index vectors for the primary inputs, latch outputs
  (cycle sources), latch data inputs (next state) and primary outputs.

The compiled program is cached on the circuit (``_compiled_cache``)
next to ``_topo_cache`` and invalidated by exactly the same mutation
hooks, so the retiming engine can keep rewriting circuits freely.

Value representation -- lanes as integer bitmasks
-------------------------------------------------

All backends are *lane parallel*: a net's value is one arbitrary-
precision Python integer whose bit ``i`` is lane ``i``'s value (LSB =
lane 0).  Bitwise ops on Python ints run at C speed per 30-bit limb, so
one pass evaluates any number of independent simulations at once --
and with a single lane the same code is a fast scalar simulator,
without numpy overhead on small batches.

* **binary**: one mask per net; ``AND`` is ``&``, ``NOT`` is ``M ^ x``
  where ``M`` is the all-lanes mask.
* **conservative ternary (CLS)**: two masks per net, the *dual-rail*
  encoding ``(can0, can1)`` -- ``0 = (1, 0)``, ``1 = (0, 1)``,
  ``X = (1, 1)``.  Each opcode has a closed dual-rail form of its
  Kleene (per-cell exact) ternary table, e.g. for AND
  ``can0 = a.can0 | b.can0`` and ``can1 = a.can1 & b.can1``.

Three public backends wrap this core:

* :meth:`CompiledCircuit.step_binary` -- scalar Boolean cycles,
* :meth:`CompiledCircuit.step_ternary` -- scalar conservative-ternary
  (CLS) cycles over :class:`~repro.logic.ternary.T`,
* :meth:`CompiledCircuit.step_binary_masks` /
  :meth:`CompiledCircuit.step_ternary_masks` -- the batched
  (lanes x nets) forms used by :mod:`repro.sim.multi`,
  :mod:`repro.sim.ternary_multi`, :mod:`repro.sim.exact` and
  :mod:`repro.stg.explicit`.

Each backend takes the stuck-at ``overrides`` contract of the
reference interpreter: an overridden net holds the forced value no
matter what its driver computes, sources included, so fault injection
(:mod:`repro.sim.fault`) works unchanged.

Execution strategy: when no override is active the program is *code-
generated* -- one Python statement per op, compiled with :func:`compile`
once and memoised globally by source text, so structurally identical
circuits (e.g. a benchmark rebuilding Figure 1 every round) share one
code object.  With overrides the flat program is interpreted op by op;
both paths are exact mirrors and the property suite cross-checks them
against :func:`~repro.sim.core.propagate`.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..logic.functions import CellFunction
from ..logic.ternary import ONE, T, X, ZERO
from ..netlist.circuit import Circuit, CircuitError
from ..obs.trace import TRACER as _TRACE
from ..obs.trace import span as _span

__all__ = [
    "CompiledCircuit",
    "compile_circuit",
    "BACKENDS",
    "get_default_backend",
    "set_default_backend",
    "resolve_backend",
    "column_to_mask",
    "mask_to_column",
]

# ---------------------------------------------------------------------------
# Backend selection registry (the CLI's --backend escape hatch).
# ---------------------------------------------------------------------------

BACKENDS = ("compiled", "interpreted")

_default_backend = "compiled"


def set_default_backend(name: str) -> None:
    """Set the process-wide default simulator backend."""
    if name not in BACKENDS:
        raise ValueError("unknown backend %r (choose from %s)" % (name, BACKENDS))
    global _default_backend
    _default_backend = name


def get_default_backend() -> str:
    """The process-wide default simulator backend."""
    return _default_backend


def resolve_backend(name: Optional[str]) -> str:
    """Resolve an explicit backend choice (``None`` -> the default)."""
    if name is None:
        return _default_backend
    if name not in BACKENDS:
        raise ValueError("unknown backend %r (choose from %s)" % (name, BACKENDS))
    return name


# ---------------------------------------------------------------------------
# Opcodes.
# ---------------------------------------------------------------------------

OP_AND = 0
OP_OR = 1
OP_NAND = 2
OP_NOR = 3
OP_XOR = 4
OP_XNOR = 5
OP_NOT = 6
OP_BUF = 7
OP_MUX = 8
OP_CONST0 = 9
OP_CONST1 = 10
OP_JUNC = 11
OP_GENERIC = 12

_FAMILY_TO_OP = {
    "AND": OP_AND,
    "OR": OP_OR,
    "NAND": OP_NAND,
    "NOR": OP_NOR,
    "XOR": OP_XOR,
    "XNOR": OP_XNOR,
    "NOT": OP_NOT,
    "BUF": OP_BUF,
    "MUX": OP_MUX,
    "CONST0": OP_CONST0,
    "CONST1": OP_CONST1,
    "JUNC": OP_JUNC,
    "GENERIC": OP_GENERIC,
}

#: One program step: (opcode, input net ids, output net ids, cell function).
#: The function reference is only consulted for ``OP_GENERIC``.
Op = Tuple[int, Tuple[int, ...], Tuple[int, ...], CellFunction]


# ---------------------------------------------------------------------------
# numpy boundary helpers (the batched wrappers speak ndarray, the core ints).
# ---------------------------------------------------------------------------


def column_to_mask(column: np.ndarray) -> int:
    """Pack a boolean lane column into an integer mask (bit i = lane i)."""
    packed = np.packbits(np.asarray(column, dtype=bool), bitorder="little")
    return int.from_bytes(packed.tobytes(), "little")


def mask_to_column(mask: int, batch: int) -> np.ndarray:
    """Unpack an integer lane mask into a boolean column of length *batch*."""
    if batch == 0:
        return np.zeros(0, dtype=bool)
    nbytes = (batch + 7) // 8
    buf = np.frombuffer(mask.to_bytes(nbytes, "little"), dtype=np.uint8)
    return np.unpackbits(buf, bitorder="little", count=batch).astype(bool)


# ---------------------------------------------------------------------------
# Generic-cell (non-library) lane-by-lane fallbacks.
# ---------------------------------------------------------------------------


def _generic_binary(fn: CellFunction, ins: Sequence[int], all_lanes: int) -> List[int]:
    outs = [0] * fn.n_outputs
    lane_bit = 1
    while lane_bit <= all_lanes:
        if all_lanes & lane_bit:
            vals = fn.eval_binary(tuple(bool(m & lane_bit) for m in ins))
            for pin, v in enumerate(vals):
                if v:
                    outs[pin] |= lane_bit
        lane_bit <<= 1
    return outs


_RAIL_OF_T = {ZERO: (1, 0), ONE: (0, 1), X: (1, 1)}
_T_OF_RAIL = {(1, 0): ZERO, (0, 1): ONE, (1, 1): X}


def _generic_ternary(
    fn: CellFunction, ins: Sequence[Tuple[int, int]], all_lanes: int
) -> List[Tuple[int, int]]:
    outs = [(0, 0)] * fn.n_outputs
    out_a = [0] * fn.n_outputs
    out_b = [0] * fn.n_outputs
    lane_bit = 1
    while lane_bit <= all_lanes:
        if all_lanes & lane_bit:
            vector = tuple(
                _T_OF_RAIL[(1 if a & lane_bit else 0, 1 if b & lane_bit else 0)]
                for a, b in ins
            )
            vals = fn.eval_ternary(vector)
            for pin, v in enumerate(vals):
                ra, rb = _RAIL_OF_T[v]
                if ra:
                    out_a[pin] |= lane_bit
                if rb:
                    out_b[pin] |= lane_bit
        lane_bit <<= 1
    outs = list(zip(out_a, out_b))
    return outs


# ---------------------------------------------------------------------------
# Code generation (the no-override fast path).
# ---------------------------------------------------------------------------

_CODE_CACHE: Dict[str, Any] = {}

#: Global memo of finished step functions keyed by (domain, program
#: signature).  Benchmarks and optimisation loops rebuild structurally
#: identical circuits constantly; sharing the compiled function across
#: instances turns recompilation into a dict lookup.
_FN_CACHE: Dict[Any, Callable] = {}


def _compile_source(source: str, env: Dict[str, Any]) -> Callable:
    code = _CODE_CACHE.get(source)
    if code is None:
        code = compile(source, "<repro.sim.compiled>", "exec")
        _CODE_CACHE[source] = code
    exec(code, env)  # noqa: S102 - self-generated source, memoised
    return env["_f"]


def _memoised_fn(cc: "CompiledCircuit", domain: str) -> Callable:
    key = (domain, cc.signature)
    fn = _FN_CACHE.get(key)
    if fn is None:
        with _span("compile.codegen"):
            source, env = (_emit_binary if domain == "b" else _emit_ternary)(cc)
            fn = _compile_source(source, env)
        _FN_CACHE[key] = fn
        _TRACE.incr("compile.codegen")
    else:
        _TRACE.incr("compile.codegen_cache_hits")
    return fn


def _emit_binary(cc: "CompiledCircuit") -> Tuple[str, Dict[str, Any]]:
    """Generate the binary lane-mask step function.

    Signature of the generated function:
    ``_f(S, I, M) -> (output_masks, next_state_masks)`` where ``S``/``I``
    are sequences of latch/input masks and ``M`` the all-lanes mask.
    """
    lines = ["def _f(S, I, M):"]
    env: Dict[str, Any] = {"_gb": _generic_binary}
    for pin, net in enumerate(cc.input_ids):
        lines.append("    v%d = I[%d]" % (net, pin))
    for pos, net in enumerate(cc.latch_out_ids):
        lines.append("    v%d = S[%d]" % (net, pos))
    for index, (opcode, in_ids, out_ids, fn) in enumerate(cc.ops):
        xs = ["v%d" % i for i in in_ids]
        o = "v%d" % out_ids[0]
        if opcode == OP_AND:
            lines.append("    %s = %s" % (o, " & ".join(xs)))
        elif opcode == OP_OR:
            lines.append("    %s = %s" % (o, " | ".join(xs)))
        elif opcode == OP_NAND:
            lines.append("    %s = M ^ (%s)" % (o, " & ".join(xs)))
        elif opcode == OP_NOR:
            lines.append("    %s = M ^ (%s)" % (o, " | ".join(xs)))
        elif opcode == OP_XOR:
            lines.append("    %s = %s" % (o, " ^ ".join(xs)))
        elif opcode == OP_XNOR:
            lines.append("    %s = M ^ (%s)" % (o, " ^ ".join(xs)))
        elif opcode == OP_NOT:
            lines.append("    %s = M ^ %s" % (o, xs[0]))
        elif opcode == OP_BUF:
            lines.append("    %s = %s" % (o, xs[0]))
        elif opcode == OP_MUX:
            s, w0, w1 = xs
            lines.append("    %s = (%s & %s) | ((M ^ %s) & %s)" % (o, s, w1, s, w0))
        elif opcode == OP_CONST0:
            lines.append("    %s = 0" % o)
        elif opcode == OP_CONST1:
            lines.append("    %s = M" % o)
        elif opcode == OP_JUNC:
            for out in out_ids:
                lines.append("    v%d = %s" % (out, xs[0]))
        else:  # OP_GENERIC
            helper = "_fn%d" % index
            env[helper] = fn
            lines.append(
                "    %s = _gb(%s, (%s), M)"
                % (
                    "".join("v%d, " % out for out in out_ids),
                    helper,
                    "".join("%s, " % x for x in xs),
                )
            )
    outs = "".join("v%d, " % i for i in cc.output_ids)
    nxt = "".join("v%d, " % i for i in cc.latch_in_ids)
    lines.append("    return (%s), (%s)" % (outs, nxt))
    return "\n".join(lines) + "\n", env


def _emit_ternary(cc: "CompiledCircuit") -> Tuple[str, Dict[str, Any]]:
    """Generate the dual-rail ternary lane-mask step function.

    ``_f(S, I, M)`` takes sequences of ``(can0, can1)`` rail pairs and
    returns ``(output_rails, next_state_rails)``.
    """
    lines = ["def _f(S, I, M):"]
    env: Dict[str, Any] = {"_gt": _generic_ternary}
    for pin, net in enumerate(cc.input_ids):
        lines.append("    a%d, b%d = I[%d]" % (net, net, pin))
    for pos, net in enumerate(cc.latch_out_ids):
        lines.append("    a%d, b%d = S[%d]" % (net, net, pos))

    def rails(ids):
        return ["a%d" % i for i in ids], ["b%d" % i for i in ids]

    for index, (opcode, in_ids, out_ids, fn) in enumerate(cc.ops):
        az, bz = rails(in_ids)
        oa, ob = "a%d" % out_ids[0], "b%d" % out_ids[0]
        if opcode in (OP_AND, OP_NAND):
            can0, can1 = " | ".join(az), " & ".join(bz)
            if opcode == OP_AND:
                lines.append("    %s = %s; %s = %s" % (oa, can0, ob, can1))
            else:
                lines.append("    %s = %s; %s = %s" % (oa, can1, ob, can0))
        elif opcode in (OP_OR, OP_NOR):
            can0, can1 = " & ".join(az), " | ".join(bz)
            if opcode == OP_OR:
                lines.append("    %s = %s; %s = %s" % (oa, can0, ob, can1))
            else:
                lines.append("    %s = %s; %s = %s" % (oa, can1, ob, can0))
        elif opcode in (OP_XOR, OP_XNOR):
            lines.append("    %s = %s; %s = %s" % (oa, az[0], ob, bz[0]))
            for a, b in zip(az[1:], bz[1:]):
                lines.append(
                    "    %s, %s = (%s & %s) | (%s & %s), (%s & %s) | (%s & %s)"
                    % (oa, ob, oa, a, ob, b, oa, b, ob, a)
                )
            if opcode == OP_XNOR:
                lines.append("    %s, %s = %s, %s" % (oa, ob, ob, oa))
        elif opcode == OP_NOT:
            lines.append("    %s = %s; %s = %s" % (oa, bz[0], ob, az[0]))
        elif opcode == OP_BUF:
            lines.append("    %s = %s; %s = %s" % (oa, az[0], ob, bz[0]))
        elif opcode == OP_MUX:
            (sa, w0a, w1a), (sb, w0b, w1b) = az, bz
            lines.append(
                "    %s = (%s & %s) | (%s & %s); %s = (%s & %s) | (%s & %s)"
                % (oa, sb, w1a, sa, w0a, ob, sb, w1b, sa, w0b)
            )
        elif opcode == OP_CONST0:
            lines.append("    %s = M; %s = 0" % (oa, ob))
        elif opcode == OP_CONST1:
            lines.append("    %s = 0; %s = M" % (oa, ob))
        elif opcode == OP_JUNC:
            for out in out_ids:
                lines.append("    a%d = %s; b%d = %s" % (out, az[0], out, bz[0]))
        else:  # OP_GENERIC
            helper = "_fn%d" % index
            env[helper] = fn
            lines.append(
                "    %s = _gt(%s, (%s), M)"
                % (
                    "".join("r%d_%d, " % (index, k) for k in range(len(out_ids))),
                    helper,
                    "".join("(a%d, b%d), " % (i, i) for i in in_ids),
                )
            )
            for k, out in enumerate(out_ids):
                lines.append("    a%d, b%d = r%d_%d" % (out, out, index, k))
    outs = "".join("(a%d, b%d), " % (i, i) for i in cc.output_ids)
    nxt = "".join("(a%d, b%d), " % (i, i) for i in cc.latch_in_ids)
    lines.append("    return (%s), (%s)" % (outs, nxt))
    return "\n".join(lines) + "\n", env


# ---------------------------------------------------------------------------
# The compiled circuit.
# ---------------------------------------------------------------------------


class CompiledCircuit:
    """A circuit lowered to a flat, dense-id evaluation program.

    Do not construct directly in normal use -- go through
    :func:`compile_circuit`, which caches the result on the circuit and
    participates in its mutation-invalidation contract.
    """

    def __init__(self, circuit: Circuit) -> None:
        self.name = circuit.name
        nets = circuit.nets()
        self.net_names: Tuple[str, ...] = nets
        self.net_index: Dict[str, int] = {net: i for i, net in enumerate(nets)}
        self.num_nets = len(nets)

        index = self.net_index
        try:
            self.input_ids: Tuple[int, ...] = tuple(index[n] for n in circuit.inputs)
            self.latch_out_ids: Tuple[int, ...] = tuple(
                index[latch.data_out] for latch in circuit.latches
            )
            self.latch_in_ids: Tuple[int, ...] = tuple(
                index[latch.data_in] for latch in circuit.latches
            )
            self.output_ids: Tuple[int, ...] = tuple(index[n] for n in circuit.outputs)

            cells = circuit._cells  # noqa: SLF001 - lowering is a sim.core peer
            ops: List[Op] = []
            for cell_name in circuit.topological_cells():
                cell = cells[cell_name]
                fn = cell.function
                ops.append(
                    (
                        _FAMILY_TO_OP[fn.family],
                        tuple(index[n] for n in cell.inputs),
                        tuple(index[n] for n in cell.outputs),
                        fn,
                    )
                )
        except KeyError as exc:
            raise CircuitError(
                "cannot compile %s: net %s has no driver" % (circuit.name, exc)
            )
        self.ops: Tuple[Op, ...] = tuple(ops)
        self.num_inputs = len(self.input_ids)
        self.num_latches = len(self.latch_out_ids)
        self.num_outputs = len(self.output_ids)

        #: Structural identity of the program.  Two circuits with the
        #: same signature evaluate identically, so their generated step
        #: functions are interchangeable (the cell function itself only
        #: matters for GENERIC ops, whose callable is baked in).
        self.signature = (
            self.num_nets,
            self.input_ids,
            self.latch_out_ids,
            self.latch_in_ids,
            self.output_ids,
            tuple(
                (opcode, in_ids, out_ids, fn if opcode == OP_GENERIC else None)
                for opcode, in_ids, out_ids, fn in self.ops
            ),
        )
        self._fn_binary: Optional[Callable] = None
        self._fn_ternary: Optional[Callable] = None

    # -- pickling ----------------------------------------------------------
    #
    # The parallel execution layer (:mod:`repro.sim.parallel`) ships
    # compiled programs to worker processes.  The memoised step
    # functions are ``exec``-generated code objects and cannot cross a
    # process boundary; they are dropped on pickling and lazily
    # regenerated in the worker on first use (a dict hit in the global
    # ``_FN_CACHE`` for every program with the same signature).

    def __getstate__(self) -> Dict[str, Any]:
        state = dict(self.__dict__)
        state["_fn_binary"] = None
        state["_fn_ternary"] = None
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__dict__.update(state)

    # -- override plumbing -------------------------------------------------

    def forced_binary(
        self, overrides: Optional[Mapping[str, bool]]
    ) -> Optional[Dict[int, bool]]:
        """Translate a name-keyed stuck-at map to net ids (None if empty)."""
        if not overrides:
            return None
        return {self.net_index[net]: bool(v) for net, v in overrides.items()}

    def forced_ternary(
        self, overrides: Optional[Mapping[str, T]]
    ) -> Optional[Dict[int, T]]:
        """Translate a name-keyed ternary stuck-at map to net ids."""
        if not overrides:
            return None
        return {self.net_index[net]: v for net, v in overrides.items()}

    # -- mask-level backends ----------------------------------------------

    def step_binary_masks(
        self,
        state_masks: Sequence[int],
        input_masks: Sequence[int],
        all_lanes: int,
        forced: Optional[Mapping[int, bool]] = None,
    ) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        """One binary cycle over lane masks: ``(outputs, next_state)``."""
        if _TRACE.enabled:
            counters = _TRACE.counters
            counters["sim.compiled.binary.cycles"] = (
                counters.get("sim.compiled.binary.cycles", 0) + 1
            )
            counters["sim.compiled.binary.ops"] = (
                counters.get("sim.compiled.binary.ops", 0) + len(self.ops)
            )
            counters["sim.compiled.binary.lanes"] = (
                counters.get("sim.compiled.binary.lanes", 0) + all_lanes.bit_length()
            )
            if forced:
                counters["sim.compiled.forced.cycles"] = (
                    counters.get("sim.compiled.forced.cycles", 0) + 1
                )
        if forced:
            values = self._interpret_binary(state_masks, input_masks, all_lanes, forced)
            return (
                tuple(values[i] for i in self.output_ids),
                tuple(values[i] for i in self.latch_in_ids),
            )
        fn = self._fn_binary
        if fn is None:
            fn = self._fn_binary = _memoised_fn(self, "b")
        return fn(state_masks, input_masks, all_lanes)

    def step_ternary_masks(
        self,
        state_rails: Sequence[Tuple[int, int]],
        input_rails: Sequence[Tuple[int, int]],
        all_lanes: int,
        forced: Optional[Mapping[int, T]] = None,
    ) -> Tuple[Tuple[Tuple[int, int], ...], Tuple[Tuple[int, int], ...]]:
        """One dual-rail ternary cycle over lane masks."""
        if _TRACE.enabled:
            counters = _TRACE.counters
            counters["sim.compiled.ternary.cycles"] = (
                counters.get("sim.compiled.ternary.cycles", 0) + 1
            )
            counters["sim.compiled.ternary.ops"] = (
                counters.get("sim.compiled.ternary.ops", 0) + len(self.ops)
            )
            counters["sim.compiled.ternary.lanes"] = (
                counters.get("sim.compiled.ternary.lanes", 0) + all_lanes.bit_length()
            )
            if forced:
                counters["sim.compiled.forced.cycles"] = (
                    counters.get("sim.compiled.forced.cycles", 0) + 1
                )
        if forced:
            rails = self._interpret_ternary(state_rails, input_rails, all_lanes, forced)
            return (
                tuple(rails[i] for i in self.output_ids),
                tuple(rails[i] for i in self.latch_in_ids),
            )
        fn = self._fn_ternary
        if fn is None:
            fn = self._fn_ternary = _memoised_fn(self, "t")
        return fn(state_rails, input_rails, all_lanes)

    # -- scalar backends ---------------------------------------------------

    def _check_arity(self, n_inputs: int, n_state: int) -> None:
        if n_inputs != self.num_inputs:
            raise ValueError(
                "circuit %s has %d inputs, got %d values"
                % (self.name, self.num_inputs, n_inputs)
            )
        if n_state != self.num_latches:
            raise ValueError(
                "circuit %s has %d latches, got state of length %d"
                % (self.name, self.num_latches, n_state)
            )

    def step_binary(
        self,
        state: Sequence[bool],
        inputs: Sequence[bool],
        overrides: Optional[Mapping[str, bool]] = None,
    ) -> Tuple[Tuple[bool, ...], Tuple[bool, ...]]:
        """One scalar Boolean cycle: ``(outputs, next_state)``."""
        self._check_arity(len(inputs), len(state))
        S = [1 if v else 0 for v in state]
        I = [1 if v else 0 for v in inputs]
        outs, nxt = self.step_binary_masks(S, I, 1, self.forced_binary(overrides))
        return tuple(bool(v) for v in outs), tuple(bool(v) for v in nxt)

    def step_ternary(
        self,
        state: Sequence[T],
        inputs: Sequence[T],
        overrides: Optional[Mapping[str, T]] = None,
    ) -> Tuple[Tuple[T, ...], Tuple[T, ...]]:
        """One scalar conservative-ternary (CLS) cycle."""
        self._check_arity(len(inputs), len(state))
        S = [_RAIL_OF_T[v] for v in state]
        I = [_RAIL_OF_T[v] for v in inputs]
        outs, nxt = self.step_ternary_masks(S, I, 1, self.forced_ternary(overrides))
        return (
            tuple(_T_OF_RAIL[r] for r in outs),
            tuple(_T_OF_RAIL[r] for r in nxt),
        )

    # -- flat-program interpreters (override-aware mirror of the codegen) --

    def _interpret_binary(
        self,
        state_masks: Sequence[int],
        input_masks: Sequence[int],
        M: int,
        forced: Mapping[int, bool],
    ) -> List[int]:
        values = [0] * self.num_nets
        for pin, net in enumerate(self.input_ids):
            values[net] = input_masks[pin]
        for pos, net in enumerate(self.latch_out_ids):
            values[net] = state_masks[pos]
        for net, v in forced.items():
            values[net] = M if v else 0
        for opcode, in_ids, out_ids, fn in self.ops:
            if opcode == OP_AND or opcode == OP_NAND:
                r = M
                for i in in_ids:
                    r &= values[i]
                outs = (M ^ r if opcode == OP_NAND else r,)
            elif opcode == OP_OR or opcode == OP_NOR:
                r = 0
                for i in in_ids:
                    r |= values[i]
                outs = (M ^ r if opcode == OP_NOR else r,)
            elif opcode == OP_XOR or opcode == OP_XNOR:
                r = 0
                for i in in_ids:
                    r ^= values[i]
                outs = (M ^ r if opcode == OP_XNOR else r,)
            elif opcode == OP_NOT:
                outs = (M ^ values[in_ids[0]],)
            elif opcode == OP_BUF:
                outs = (values[in_ids[0]],)
            elif opcode == OP_MUX:
                s, w0, w1 = (values[i] for i in in_ids)
                outs = ((s & w1) | ((M ^ s) & w0),)
            elif opcode == OP_CONST0:
                outs = (0,)
            elif opcode == OP_CONST1:
                outs = (M,)
            elif opcode == OP_JUNC:
                outs = (values[in_ids[0]],) * len(out_ids)
            else:
                outs = _generic_binary(fn, [values[i] for i in in_ids], M)
            for net, r in zip(out_ids, outs):
                if net not in forced:
                    values[net] = r
        return values

    def _interpret_ternary(
        self,
        state_rails: Sequence[Tuple[int, int]],
        input_rails: Sequence[Tuple[int, int]],
        M: int,
        forced: Mapping[int, T],
    ) -> List[Tuple[int, int]]:
        rails: List[Tuple[int, int]] = [(0, 0)] * self.num_nets
        for pin, net in enumerate(self.input_ids):
            rails[net] = input_rails[pin]
        for pos, net in enumerate(self.latch_out_ids):
            rails[net] = state_rails[pos]
        forced_rails = {
            net: tuple(M if bit else 0 for bit in _RAIL_OF_T[v])
            for net, v in forced.items()
        }
        for net, rail in forced_rails.items():
            rails[net] = rail
        for opcode, in_ids, out_ids, fn in self.ops:
            if opcode == OP_AND or opcode == OP_NAND:
                a, b = 0, M
                for i in in_ids:
                    ra, rb = rails[i]
                    a |= ra
                    b &= rb
                outs = ((b, a) if opcode == OP_NAND else (a, b),)
            elif opcode == OP_OR or opcode == OP_NOR:
                a, b = M, 0
                for i in in_ids:
                    ra, rb = rails[i]
                    a &= ra
                    b |= rb
                outs = ((b, a) if opcode == OP_NOR else (a, b),)
            elif opcode == OP_XOR or opcode == OP_XNOR:
                a, b = rails[in_ids[0]]
                for i in in_ids[1:]:
                    ra, rb = rails[i]
                    a, b = (a & ra) | (b & rb), (a & rb) | (b & ra)
                outs = ((b, a) if opcode == OP_XNOR else (a, b),)
            elif opcode == OP_NOT:
                a, b = rails[in_ids[0]]
                outs = ((b, a),)
            elif opcode == OP_BUF:
                outs = (rails[in_ids[0]],)
            elif opcode == OP_MUX:
                (sa, sb), (w0a, w0b), (w1a, w1b) = (rails[i] for i in in_ids)
                outs = (((sb & w1a) | (sa & w0a), (sb & w1b) | (sa & w0b)),)
            elif opcode == OP_CONST0:
                outs = ((M, 0),)
            elif opcode == OP_CONST1:
                outs = ((0, M),)
            elif opcode == OP_JUNC:
                outs = (rails[in_ids[0]],) * len(out_ids)
            else:
                outs = _generic_ternary(fn, [rails[i] for i in in_ids], M)
            for net, rail in zip(out_ids, outs):
                if net not in forced_rails:
                    rails[net] = rail
        return rails


def compile_circuit(circuit: Circuit) -> CompiledCircuit:
    """The compiled program of *circuit*, cached on the circuit.

    The cache lives in ``circuit._compiled_cache``, right next to the
    topological-order cache, and is cleared by the same mutation hooks
    (:meth:`Circuit._invalidate_caches`) -- so a compiled program can
    never outlive the structure it was lowered from.
    """
    cached = circuit._compiled_cache  # noqa: SLF001 - by-design cache slot
    if isinstance(cached, CompiledCircuit):
        if _TRACE.enabled:
            _TRACE.incr("compile.cache_hits")
        return cached
    with _span("compile"):
        compiled = CompiledCircuit(circuit)
    _TRACE.incr("compile.circuits")
    _TRACE.incr("compile.ops", len(compiled.ops))
    circuit._compiled_cache = compiled  # noqa: SLF001
    return compiled
