"""The compile-once evaluation core shared by every simulator.

Every experiment in this repository ultimately evaluates the same
combinational core thousands of times -- Table 1 sweeps, the exact
power-up-state sweep, CLS-invariance checks, fault grading, STG
extraction.  Instead of re-walking the name-keyed netlist cell by cell
each cycle (:func:`repro.sim.core.propagate`, kept as the reference
interpreter), :class:`CompiledCircuit` lowers a
:class:`~repro.netlist.circuit.Circuit` **once** into a flat program:

* dense integer net ids (``net_index`` / ``net_names``),
* a topologically ordered opcode/operand array (``ops``), with opcodes
  classified from the cell library via
  :attr:`repro.logic.functions.CellFunction.family`,
* precomputed index vectors for the primary inputs, latch outputs
  (cycle sources), latch data inputs (next state) and primary outputs.

The compiled program is cached on the circuit (``_compiled_cache``)
next to ``_topo_cache`` and invalidated by exactly the same mutation
hooks, so the retiming engine can keep rewriting circuits freely.

Value representation -- lane backends
-------------------------------------

All backends are *lane parallel*: a net's value carries one bit per
independent simulation lane.  Two interchangeable **lane backends**
(:class:`LaneBackend`) realise that idea:

* ``mask`` (:class:`MaskLaneBackend`) -- a net's value is one
  arbitrary-precision Python integer whose bit ``i`` is lane ``i``'s
  value (LSB = lane 0).  Bitwise ops on Python ints run at C speed per
  30-bit limb, and with a single lane the same code is a fast scalar
  simulator, without numpy overhead on small batches.
* ``words`` (:class:`WordLaneBackend`) -- a net's value is a numpy
  ``uint64`` array of shape ``(num_words,)``; lane ``i`` lives in bit
  ``i % 64`` of word ``i // 64``.  One vectorized pass evaluates
  ``64 * num_words`` lanes per op, which is what lets exhaustive
  power-up sweeps and fault grading scale to tens of thousands of
  lanes (see ``benchmarks/results/lane_engine_speedup.txt`` for the
  measured crossover against the mask backend).

Both backends share one algebra:

* **binary**: one value per net; ``AND`` is ``&``, ``NOT`` is ``M ^ x``
  where ``M`` is the all-lanes mask.
* **conservative ternary (CLS)**: two values per net, the *dual-rail*
  encoding ``(can0, can1)`` -- ``0 = (1, 0)``, ``1 = (0, 1)``,
  ``X = (1, 1)``.  Each opcode has a closed dual-rail form of its
  Kleene (per-cell exact) ternary table, e.g. for AND
  ``can0 = a.can0 | b.can0`` and ``can1 = a.can1 & b.can1``.

The mask backend is the differential oracle for the words backend: the
property suite asserts bit-for-bit identical verdicts across the two on
random circuits and on the paper circuits.

Three public scalar/mask entry points wrap this core:

* :meth:`CompiledCircuit.step_binary` -- scalar Boolean cycles,
* :meth:`CompiledCircuit.step_ternary` -- scalar conservative-ternary
  (CLS) cycles over :class:`~repro.logic.ternary.T`,
* :meth:`CompiledCircuit.step_binary_masks` /
  :meth:`CompiledCircuit.step_ternary_masks` -- the batched
  (lanes x nets) forms used by :mod:`repro.sim.multi`,
  :mod:`repro.sim.ternary_multi`, :mod:`repro.sim.exact` and
  :mod:`repro.stg.explicit`.

Each backend takes the stuck-at ``overrides`` contract of the
reference interpreter: an overridden net holds the forced value no
matter what its driver computes, sources included, so fault injection
(:mod:`repro.sim.fault`) works unchanged.

Execution strategy: when no override is active the program is *code-
generated* -- one Python statement per op, compiled with :func:`compile`
once and memoised globally by source text, so structurally identical
circuits (e.g. a benchmark rebuilding Figure 1 every round) share one
code object.  With overrides the flat program is interpreted op by op;
both paths are exact mirrors and the property suite cross-checks them
against :func:`~repro.sim.core.propagate`.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..logic.functions import CellFunction
from ..logic.ternary import ONE, T, X, ZERO
from ..netlist.circuit import Circuit, CircuitError
from ..obs.trace import TRACER as _TRACE
from ..obs.trace import span as _span

__all__ = [
    "CompiledCircuit",
    "compile_circuit",
    "BACKENDS",
    "LANE_ENGINES",
    "LaneBackend",
    "MaskLaneBackend",
    "WordLaneBackend",
    "get_default_backend",
    "set_default_backend",
    "resolve_backend",
    "get_lane_engine",
    "resolve_lane_engine",
    "column_to_mask",
    "mask_to_column",
    "column_to_words",
    "words_to_column",
    "num_words_for",
]

# ---------------------------------------------------------------------------
# Backend selection registry (the CLI's --backend escape hatch).
# ---------------------------------------------------------------------------

#: ``compiled``/``interpreted`` pick the evaluation strategy of the
#: scalar simulators; ``words`` additionally routes every batched lane
#: sweep through the numpy word engine (scalar paths then behave like
#: ``compiled``, which is what they already are).
BACKENDS = ("compiled", "interpreted", "words")

_default_backend = "compiled"


def set_default_backend(name: str) -> None:
    """Set the process-wide default simulator backend."""
    if name not in BACKENDS:
        raise ValueError("unknown backend %r (choose from %s)" % (name, BACKENDS))
    global _default_backend
    _default_backend = name


def get_default_backend() -> str:
    """The process-wide default simulator backend."""
    return _default_backend


def resolve_backend(name: Optional[str]) -> str:
    """Resolve an explicit backend choice (``None`` -> the default)."""
    if name is None:
        return _default_backend
    if name not in BACKENDS:
        raise ValueError("unknown backend %r (choose from %s)" % (name, BACKENDS))
    return name


# ---------------------------------------------------------------------------
# Opcodes.
# ---------------------------------------------------------------------------

OP_AND = 0
OP_OR = 1
OP_NAND = 2
OP_NOR = 3
OP_XOR = 4
OP_XNOR = 5
OP_NOT = 6
OP_BUF = 7
OP_MUX = 8
OP_CONST0 = 9
OP_CONST1 = 10
OP_JUNC = 11
OP_GENERIC = 12

_FAMILY_TO_OP = {
    "AND": OP_AND,
    "OR": OP_OR,
    "NAND": OP_NAND,
    "NOR": OP_NOR,
    "XOR": OP_XOR,
    "XNOR": OP_XNOR,
    "NOT": OP_NOT,
    "BUF": OP_BUF,
    "MUX": OP_MUX,
    "CONST0": OP_CONST0,
    "CONST1": OP_CONST1,
    "JUNC": OP_JUNC,
    "GENERIC": OP_GENERIC,
}

#: One program step: (opcode, input net ids, output net ids, cell function).
#: The function reference is only consulted for ``OP_GENERIC``.
Op = Tuple[int, Tuple[int, ...], Tuple[int, ...], CellFunction]


# ---------------------------------------------------------------------------
# numpy boundary helpers (the batched wrappers speak ndarray, the core ints).
# ---------------------------------------------------------------------------


def column_to_mask(column: np.ndarray) -> int:
    """Pack a boolean lane column into an integer mask (bit i = lane i)."""
    packed = np.packbits(np.asarray(column, dtype=bool), bitorder="little")
    return int.from_bytes(packed.tobytes(), "little")


def mask_to_column(mask: int, batch: int) -> np.ndarray:
    """Unpack an integer lane mask into a boolean column of length *batch*."""
    if batch == 0:
        return np.zeros(0, dtype=bool)
    nbytes = (batch + 7) // 8
    buf = np.frombuffer(mask.to_bytes(nbytes, "little"), dtype=np.uint8)
    return np.unpackbits(buf, bitorder="little", count=batch).astype(bool)


def num_words_for(batch: int) -> int:
    """Words needed to carry *batch* lanes at 64 lanes per word."""
    if batch < 0:
        raise ValueError("negative batch size")
    return (batch + 63) // 64


def column_to_words(column: np.ndarray) -> np.ndarray:
    """Pack a boolean lane column into ``uint64`` words (64 lanes/word).

    Lane ``i`` lands in bit ``i % 64`` of word ``i // 64``, matching the
    LSB-first convention of :func:`column_to_mask` -- the two packings
    describe the same lane order, which is what makes the mask and word
    backends bit-for-bit comparable.
    """
    col = np.asarray(column, dtype=bool)
    nwords = num_words_for(col.size)
    packed = np.packbits(col, bitorder="little")
    buf = np.zeros(nwords * 8, dtype=np.uint8)
    buf[: packed.size] = packed
    return buf.view("<u8").astype(np.uint64, copy=False)


def words_to_column(words: np.ndarray, batch: int) -> np.ndarray:
    """Unpack ``uint64`` lane words into a boolean column of length *batch*."""
    if batch == 0:
        return np.zeros(0, dtype=bool)
    buf = (
        np.ascontiguousarray(words, dtype=np.uint64)
        .astype("<u8", copy=False)
        .view(np.uint8)
    )
    return np.unpackbits(buf, bitorder="little", count=batch).astype(bool)


# ---------------------------------------------------------------------------
# Generic-cell (non-library) lane-by-lane fallbacks.
# ---------------------------------------------------------------------------


def _generic_binary(fn: CellFunction, ins: Sequence[int], all_lanes: int) -> List[int]:
    outs = [0] * fn.n_outputs
    remaining = all_lanes
    while remaining:
        lane_bit = remaining & -remaining  # visit set lanes only
        remaining ^= lane_bit
        vals = fn.eval_binary(tuple(bool(m & lane_bit) for m in ins))
        for pin, v in enumerate(vals):
            if v:
                outs[pin] |= lane_bit
    return outs


_RAIL_OF_T = {ZERO: (1, 0), ONE: (0, 1), X: (1, 1)}
_T_OF_RAIL = {(1, 0): ZERO, (0, 1): ONE, (1, 1): X}


def _generic_ternary(
    fn: CellFunction, ins: Sequence[Tuple[int, int]], all_lanes: int
) -> List[Tuple[int, int]]:
    out_a = [0] * fn.n_outputs
    out_b = [0] * fn.n_outputs
    remaining = all_lanes
    while remaining:
        lane_bit = remaining & -remaining  # visit set lanes only
        remaining ^= lane_bit
        vector = tuple(
            _T_OF_RAIL[(1 if a & lane_bit else 0, 1 if b & lane_bit else 0)]
            for a, b in ins
        )
        vals = fn.eval_ternary(vector)
        for pin, v in enumerate(vals):
            ra, rb = _RAIL_OF_T[v]
            if ra:
                out_a[pin] |= lane_bit
            if rb:
                out_b[pin] |= lane_bit
    return list(zip(out_a, out_b))


def _generic_binary_words(
    fn: CellFunction, ins: Sequence[np.ndarray], M: np.ndarray
) -> List[np.ndarray]:
    """Word-level generic-cell fallback: per set lane, scalar eval."""
    outs = [np.zeros(M.shape[0], dtype=np.uint64) for _ in range(fn.n_outputs)]
    for w in range(M.shape[0]):
        remaining = int(M[w])
        in_words = [int(m[w]) for m in ins]
        while remaining:
            lane_bit = remaining & -remaining
            remaining ^= lane_bit
            vals = fn.eval_binary(tuple(bool(m & lane_bit) for m in in_words))
            for pin, v in enumerate(vals):
                if v:
                    outs[pin][w] |= np.uint64(lane_bit)
    return outs


def _generic_ternary_words(
    fn: CellFunction, ins: Sequence[Tuple[np.ndarray, np.ndarray]], M: np.ndarray
) -> List[Tuple[np.ndarray, np.ndarray]]:
    out_a = [np.zeros(M.shape[0], dtype=np.uint64) for _ in range(fn.n_outputs)]
    out_b = [np.zeros(M.shape[0], dtype=np.uint64) for _ in range(fn.n_outputs)]
    for w in range(M.shape[0]):
        remaining = int(M[w])
        in_words = [(int(a[w]), int(b[w])) for a, b in ins]
        while remaining:
            lane_bit = remaining & -remaining
            remaining ^= lane_bit
            vector = tuple(
                _T_OF_RAIL[(1 if a & lane_bit else 0, 1 if b & lane_bit else 0)]
                for a, b in in_words
            )
            vals = fn.eval_ternary(vector)
            for pin, v in enumerate(vals):
                ra, rb = _RAIL_OF_T[v]
                if ra:
                    out_a[pin][w] |= np.uint64(lane_bit)
                if rb:
                    out_b[pin][w] |= np.uint64(lane_bit)
    return list(zip(out_a, out_b))


# ---------------------------------------------------------------------------
# Code generation (the no-override fast path).
# ---------------------------------------------------------------------------

_CODE_CACHE: Dict[str, Any] = {}

#: Global memo of finished step functions keyed by (domain, program
#: signature).  Benchmarks and optimisation loops rebuild structurally
#: identical circuits constantly; sharing the compiled function across
#: instances turns recompilation into a dict lookup.
_FN_CACHE: Dict[Any, Callable] = {}


def _compile_source(source: str, env: Dict[str, Any]) -> Callable:
    code = _CODE_CACHE.get(source)
    if code is None:
        code = compile(source, "<repro.sim.compiled>", "exec")
        _CODE_CACHE[source] = code
    exec(code, env)  # noqa: S102 - self-generated source, memoised
    return env["_f"]


def _memoised_fn(cc: "CompiledCircuit", domain: str) -> Callable:
    """Compiled step function for *domain*: ``b``/``t`` evaluate integer
    lane masks, ``bw``/``tw`` the numpy ``uint64`` word variants."""
    key = (domain, cc.signature)
    fn = _FN_CACHE.get(key)
    if fn is None:
        with _span("compile.codegen"):
            emit = _emit_binary if domain.startswith("b") else _emit_ternary
            source, env = emit(cc, words=domain.endswith("w"))
            fn = _compile_source(source, env)
        _FN_CACHE[key] = fn
        _TRACE.incr("compile.codegen")
    else:
        _TRACE.incr("compile.codegen_cache_hits")
    return fn


def _emit_binary(
    cc: "CompiledCircuit", words: bool = False
) -> Tuple[str, Dict[str, Any]]:
    """Generate the binary lane-mask step function.

    Signature of the generated function:
    ``_f(S, I, M) -> (output_masks, next_state_masks)`` where ``S``/``I``
    are sequences of latch/input masks and ``M`` the all-lanes mask.

    With ``words=True`` the same program text evaluates ``uint64`` word
    arrays instead of arbitrary-precision ints: the bitwise operators
    broadcast elementwise, so only the zero constant (``Z``, an all-zero
    array -- a Python ``0`` would leak a scalar into array outputs) and
    the generic-cell helper differ.
    """
    lines = ["def _f(S, I, M):"]
    env: Dict[str, Any] = {"_gb": _generic_binary_words if words else _generic_binary}
    if words:
        lines.append("    Z = M ^ M")
    for pin, net in enumerate(cc.input_ids):
        lines.append("    v%d = I[%d]" % (net, pin))
    for pos, net in enumerate(cc.latch_out_ids):
        lines.append("    v%d = S[%d]" % (net, pos))
    for index, (opcode, in_ids, out_ids, fn) in enumerate(cc.ops):
        xs = ["v%d" % i for i in in_ids]
        o = "v%d" % out_ids[0]
        if opcode == OP_AND:
            lines.append("    %s = %s" % (o, " & ".join(xs)))
        elif opcode == OP_OR:
            lines.append("    %s = %s" % (o, " | ".join(xs)))
        elif opcode == OP_NAND:
            lines.append("    %s = M ^ (%s)" % (o, " & ".join(xs)))
        elif opcode == OP_NOR:
            lines.append("    %s = M ^ (%s)" % (o, " | ".join(xs)))
        elif opcode == OP_XOR:
            lines.append("    %s = %s" % (o, " ^ ".join(xs)))
        elif opcode == OP_XNOR:
            lines.append("    %s = M ^ (%s)" % (o, " ^ ".join(xs)))
        elif opcode == OP_NOT:
            lines.append("    %s = M ^ %s" % (o, xs[0]))
        elif opcode == OP_BUF:
            lines.append("    %s = %s" % (o, xs[0]))
        elif opcode == OP_MUX:
            s, w0, w1 = xs
            lines.append("    %s = (%s & %s) | ((M ^ %s) & %s)" % (o, s, w1, s, w0))
        elif opcode == OP_CONST0:
            lines.append("    %s = Z" % o if words else "    %s = 0" % o)
        elif opcode == OP_CONST1:
            lines.append("    %s = M" % o)
        elif opcode == OP_JUNC:
            for out in out_ids:
                lines.append("    v%d = %s" % (out, xs[0]))
        else:  # OP_GENERIC
            helper = "_fn%d" % index
            env[helper] = fn
            lines.append(
                "    %s = _gb(%s, (%s), M)"
                % (
                    "".join("v%d, " % out for out in out_ids),
                    helper,
                    "".join("%s, " % x for x in xs),
                )
            )
    outs = "".join("v%d, " % i for i in cc.output_ids)
    nxt = "".join("v%d, " % i for i in cc.latch_in_ids)
    lines.append("    return (%s), (%s)" % (outs, nxt))
    return "\n".join(lines) + "\n", env


def _emit_ternary(
    cc: "CompiledCircuit", words: bool = False
) -> Tuple[str, Dict[str, Any]]:
    """Generate the dual-rail ternary lane-mask step function.

    ``_f(S, I, M)`` takes sequences of ``(can0, can1)`` rail pairs and
    returns ``(output_rails, next_state_rails)``.  ``words=True`` emits
    the ``uint64``-array variant (see :func:`_emit_binary`).
    """
    lines = ["def _f(S, I, M):"]
    env: Dict[str, Any] = {"_gt": _generic_ternary_words if words else _generic_ternary}
    if words:
        lines.append("    Z = M ^ M")
    for pin, net in enumerate(cc.input_ids):
        lines.append("    a%d, b%d = I[%d]" % (net, net, pin))
    for pos, net in enumerate(cc.latch_out_ids):
        lines.append("    a%d, b%d = S[%d]" % (net, net, pos))

    def rails(ids):
        return ["a%d" % i for i in ids], ["b%d" % i for i in ids]

    for index, (opcode, in_ids, out_ids, fn) in enumerate(cc.ops):
        az, bz = rails(in_ids)
        oa, ob = "a%d" % out_ids[0], "b%d" % out_ids[0]
        if opcode in (OP_AND, OP_NAND):
            can0, can1 = " | ".join(az), " & ".join(bz)
            if opcode == OP_AND:
                lines.append("    %s = %s; %s = %s" % (oa, can0, ob, can1))
            else:
                lines.append("    %s = %s; %s = %s" % (oa, can1, ob, can0))
        elif opcode in (OP_OR, OP_NOR):
            can0, can1 = " & ".join(az), " | ".join(bz)
            if opcode == OP_OR:
                lines.append("    %s = %s; %s = %s" % (oa, can0, ob, can1))
            else:
                lines.append("    %s = %s; %s = %s" % (oa, can1, ob, can0))
        elif opcode in (OP_XOR, OP_XNOR):
            lines.append("    %s = %s; %s = %s" % (oa, az[0], ob, bz[0]))
            for a, b in zip(az[1:], bz[1:]):
                lines.append(
                    "    %s, %s = (%s & %s) | (%s & %s), (%s & %s) | (%s & %s)"
                    % (oa, ob, oa, a, ob, b, oa, b, ob, a)
                )
            if opcode == OP_XNOR:
                lines.append("    %s, %s = %s, %s" % (oa, ob, ob, oa))
        elif opcode == OP_NOT:
            lines.append("    %s = %s; %s = %s" % (oa, bz[0], ob, az[0]))
        elif opcode == OP_BUF:
            lines.append("    %s = %s; %s = %s" % (oa, az[0], ob, bz[0]))
        elif opcode == OP_MUX:
            (sa, w0a, w1a), (sb, w0b, w1b) = az, bz
            lines.append(
                "    %s = (%s & %s) | (%s & %s); %s = (%s & %s) | (%s & %s)"
                % (oa, sb, w1a, sa, w0a, ob, sb, w1b, sa, w0b)
            )
        elif opcode == OP_CONST0:
            zero = "Z" if words else "0"
            lines.append("    %s = M; %s = %s" % (oa, ob, zero))
        elif opcode == OP_CONST1:
            zero = "Z" if words else "0"
            lines.append("    %s = %s; %s = M" % (oa, zero, ob))
        elif opcode == OP_JUNC:
            for out in out_ids:
                lines.append("    a%d = %s; b%d = %s" % (out, az[0], out, bz[0]))
        else:  # OP_GENERIC
            helper = "_fn%d" % index
            env[helper] = fn
            lines.append(
                "    %s = _gt(%s, (%s), M)"
                % (
                    "".join("r%d_%d, " % (index, k) for k in range(len(out_ids))),
                    helper,
                    "".join("(a%d, b%d), " % (i, i) for i in in_ids),
                )
            )
            for k, out in enumerate(out_ids):
                lines.append("    a%d, b%d = r%d_%d" % (out, out, index, k))
    outs = "".join("(a%d, b%d), " % (i, i) for i in cc.output_ids)
    nxt = "".join("(a%d, b%d), " % (i, i) for i in cc.latch_in_ids)
    lines.append("    return (%s), (%s)" % (outs, nxt))
    return "\n".join(lines) + "\n", env


# ---------------------------------------------------------------------------
# The compiled circuit.
# ---------------------------------------------------------------------------


class CompiledCircuit:
    """A circuit lowered to a flat, dense-id evaluation program.

    Do not construct directly in normal use -- go through
    :func:`compile_circuit`, which caches the result on the circuit and
    participates in its mutation-invalidation contract.
    """

    def __init__(self, circuit: Circuit) -> None:
        self.name = circuit.name
        nets = circuit.nets()
        self.net_names: Tuple[str, ...] = nets
        self.net_index: Dict[str, int] = {net: i for i, net in enumerate(nets)}
        self.num_nets = len(nets)

        index = self.net_index
        try:
            self.input_ids: Tuple[int, ...] = tuple(index[n] for n in circuit.inputs)
            self.latch_out_ids: Tuple[int, ...] = tuple(
                index[latch.data_out] for latch in circuit.latches
            )
            self.latch_in_ids: Tuple[int, ...] = tuple(
                index[latch.data_in] for latch in circuit.latches
            )
            self.output_ids: Tuple[int, ...] = tuple(index[n] for n in circuit.outputs)

            cells = circuit._cells  # noqa: SLF001 - lowering is a sim.core peer
            ops: List[Op] = []
            for cell_name in circuit.topological_cells():
                cell = cells[cell_name]
                fn = cell.function
                ops.append(
                    (
                        _FAMILY_TO_OP[fn.family],
                        tuple(index[n] for n in cell.inputs),
                        tuple(index[n] for n in cell.outputs),
                        fn,
                    )
                )
        except KeyError as exc:
            raise CircuitError(
                "cannot compile %s: net %s has no driver" % (circuit.name, exc)
            )
        self.ops: Tuple[Op, ...] = tuple(ops)
        self.num_inputs = len(self.input_ids)
        self.num_latches = len(self.latch_out_ids)
        self.num_outputs = len(self.output_ids)

        #: Structural identity of the program.  Two circuits with the
        #: same signature evaluate identically, so their generated step
        #: functions are interchangeable (the cell function itself only
        #: matters for GENERIC ops, whose callable is baked in).
        self.signature = (
            self.num_nets,
            self.input_ids,
            self.latch_out_ids,
            self.latch_in_ids,
            self.output_ids,
            tuple(
                (opcode, in_ids, out_ids, fn if opcode == OP_GENERIC else None)
                for opcode, in_ids, out_ids, fn in self.ops
            ),
        )
        self._fn_binary: Optional[Callable] = None
        self._fn_ternary: Optional[Callable] = None
        self._fn_binary_words: Optional[Callable] = None
        self._fn_ternary_words: Optional[Callable] = None

    # -- pickling ----------------------------------------------------------
    #
    # The parallel execution layer (:mod:`repro.sim.parallel`) ships
    # compiled programs to worker processes.  The memoised step
    # functions are ``exec``-generated code objects and cannot cross a
    # process boundary; they are dropped on pickling and lazily
    # regenerated in the worker on first use (a dict hit in the global
    # ``_FN_CACHE`` for every program with the same signature).

    def __getstate__(self) -> Dict[str, Any]:
        state = dict(self.__dict__)
        state["_fn_binary"] = None
        state["_fn_ternary"] = None
        state["_fn_binary_words"] = None
        state["_fn_ternary_words"] = None
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__dict__.update(state)
        self.__dict__.setdefault("_fn_binary_words", None)
        self.__dict__.setdefault("_fn_ternary_words", None)

    # -- override plumbing -------------------------------------------------

    def forced_binary(
        self, overrides: Optional[Mapping[str, bool]]
    ) -> Optional[Dict[int, bool]]:
        """Translate a name-keyed stuck-at map to net ids (None if empty)."""
        if not overrides:
            return None
        return {self.net_index[net]: bool(v) for net, v in overrides.items()}

    def forced_ternary(
        self, overrides: Optional[Mapping[str, T]]
    ) -> Optional[Dict[int, T]]:
        """Translate a name-keyed ternary stuck-at map to net ids."""
        if not overrides:
            return None
        return {self.net_index[net]: v for net, v in overrides.items()}

    # -- mask-level backends ----------------------------------------------

    def step_binary_masks(
        self,
        state_masks: Sequence[int],
        input_masks: Sequence[int],
        all_lanes: int,
        forced: Optional[Mapping[int, bool]] = None,
    ) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        """One binary cycle over lane masks: ``(outputs, next_state)``."""
        if _TRACE.enabled:
            counters = _TRACE.counters
            counters["sim.compiled.binary.cycles"] = (
                counters.get("sim.compiled.binary.cycles", 0) + 1
            )
            counters["sim.compiled.binary.ops"] = (
                counters.get("sim.compiled.binary.ops", 0) + len(self.ops)
            )
            counters["sim.compiled.binary.lanes"] = (
                counters.get("sim.compiled.binary.lanes", 0) + all_lanes.bit_length()
            )
            if forced:
                counters["sim.compiled.forced.cycles"] = (
                    counters.get("sim.compiled.forced.cycles", 0) + 1
                )
        if forced:
            values = self._interpret_binary(state_masks, input_masks, all_lanes, forced)
            return (
                tuple(values[i] for i in self.output_ids),
                tuple(values[i] for i in self.latch_in_ids),
            )
        fn = self._fn_binary
        if fn is None:
            fn = self._fn_binary = _memoised_fn(self, "b")
        return fn(state_masks, input_masks, all_lanes)

    def step_ternary_masks(
        self,
        state_rails: Sequence[Tuple[int, int]],
        input_rails: Sequence[Tuple[int, int]],
        all_lanes: int,
        forced: Optional[Mapping[int, T]] = None,
    ) -> Tuple[Tuple[Tuple[int, int], ...], Tuple[Tuple[int, int], ...]]:
        """One dual-rail ternary cycle over lane masks."""
        if _TRACE.enabled:
            counters = _TRACE.counters
            counters["sim.compiled.ternary.cycles"] = (
                counters.get("sim.compiled.ternary.cycles", 0) + 1
            )
            counters["sim.compiled.ternary.ops"] = (
                counters.get("sim.compiled.ternary.ops", 0) + len(self.ops)
            )
            counters["sim.compiled.ternary.lanes"] = (
                counters.get("sim.compiled.ternary.lanes", 0) + all_lanes.bit_length()
            )
            if forced:
                counters["sim.compiled.forced.cycles"] = (
                    counters.get("sim.compiled.forced.cycles", 0) + 1
                )
        if forced:
            rails = self._interpret_ternary(state_rails, input_rails, all_lanes, forced)
            return (
                tuple(rails[i] for i in self.output_ids),
                tuple(rails[i] for i in self.latch_in_ids),
            )
        fn = self._fn_ternary
        if fn is None:
            fn = self._fn_ternary = _memoised_fn(self, "t")
        return fn(state_rails, input_rails, all_lanes)

    # -- word-level backends -----------------------------------------------
    #
    # Same flat program, evaluated over ``uint64`` arrays of lane words
    # (lane ``i`` in bit ``i % 64`` of word ``i // 64``).  ``M`` is the
    # all-lanes context: full words of ``0xFFFF...`` with a partial tail
    # word when the batch is not a multiple of 64.

    def step_binary_words(
        self,
        state_words: Sequence[np.ndarray],
        input_words: Sequence[np.ndarray],
        M: np.ndarray,
        forced: Optional[Mapping[int, bool]] = None,
    ) -> Tuple[Tuple[np.ndarray, ...], Tuple[np.ndarray, ...]]:
        """One binary cycle over lane-word arrays: ``(outputs, next_state)``."""
        if _TRACE.enabled:
            counters = _TRACE.counters
            counters["sim.words.binary.cycles"] = (
                counters.get("sim.words.binary.cycles", 0) + 1
            )
            counters["sim.words.binary.ops"] = (
                counters.get("sim.words.binary.ops", 0) + len(self.ops)
            )
            counters["sim.words.binary.words"] = (
                counters.get("sim.words.binary.words", 0) + int(M.shape[0])
            )
            if forced:
                counters["sim.words.forced.cycles"] = (
                    counters.get("sim.words.forced.cycles", 0) + 1
                )
        if forced:
            values = self._interpret_binary_words(state_words, input_words, M, forced)
            return (
                tuple(values[i] for i in self.output_ids),
                tuple(values[i] for i in self.latch_in_ids),
            )
        fn = self._fn_binary_words
        if fn is None:
            fn = self._fn_binary_words = _memoised_fn(self, "bw")
        return fn(state_words, input_words, M)

    def step_ternary_words(
        self,
        state_rails: Sequence[Tuple[np.ndarray, np.ndarray]],
        input_rails: Sequence[Tuple[np.ndarray, np.ndarray]],
        M: np.ndarray,
        forced: Optional[Mapping[int, T]] = None,
    ) -> Tuple[
        Tuple[Tuple[np.ndarray, np.ndarray], ...],
        Tuple[Tuple[np.ndarray, np.ndarray], ...],
    ]:
        """One dual-rail ternary cycle over lane-word arrays."""
        if _TRACE.enabled:
            counters = _TRACE.counters
            counters["sim.words.ternary.cycles"] = (
                counters.get("sim.words.ternary.cycles", 0) + 1
            )
            counters["sim.words.ternary.ops"] = (
                counters.get("sim.words.ternary.ops", 0) + len(self.ops)
            )
            counters["sim.words.ternary.words"] = (
                counters.get("sim.words.ternary.words", 0) + int(M.shape[0])
            )
            if forced:
                counters["sim.words.forced.cycles"] = (
                    counters.get("sim.words.forced.cycles", 0) + 1
                )
        if forced:
            rails = self._interpret_ternary_words(state_rails, input_rails, M, forced)
            return (
                tuple(rails[i] for i in self.output_ids),
                tuple(rails[i] for i in self.latch_in_ids),
            )
        fn = self._fn_ternary_words
        if fn is None:
            fn = self._fn_ternary_words = _memoised_fn(self, "tw")
        return fn(state_rails, input_rails, M)

    # -- scalar backends ---------------------------------------------------

    def _check_arity(self, n_inputs: int, n_state: int) -> None:
        if n_inputs != self.num_inputs:
            raise ValueError(
                "circuit %s has %d inputs, got %d values"
                % (self.name, self.num_inputs, n_inputs)
            )
        if n_state != self.num_latches:
            raise ValueError(
                "circuit %s has %d latches, got state of length %d"
                % (self.name, self.num_latches, n_state)
            )

    def step_binary(
        self,
        state: Sequence[bool],
        inputs: Sequence[bool],
        overrides: Optional[Mapping[str, bool]] = None,
    ) -> Tuple[Tuple[bool, ...], Tuple[bool, ...]]:
        """One scalar Boolean cycle: ``(outputs, next_state)``."""
        self._check_arity(len(inputs), len(state))
        S = [1 if v else 0 for v in state]
        I = [1 if v else 0 for v in inputs]
        outs, nxt = self.step_binary_masks(S, I, 1, self.forced_binary(overrides))
        return tuple(bool(v) for v in outs), tuple(bool(v) for v in nxt)

    def step_ternary(
        self,
        state: Sequence[T],
        inputs: Sequence[T],
        overrides: Optional[Mapping[str, T]] = None,
    ) -> Tuple[Tuple[T, ...], Tuple[T, ...]]:
        """One scalar conservative-ternary (CLS) cycle."""
        self._check_arity(len(inputs), len(state))
        S = [_RAIL_OF_T[v] for v in state]
        I = [_RAIL_OF_T[v] for v in inputs]
        outs, nxt = self.step_ternary_masks(S, I, 1, self.forced_ternary(overrides))
        return (
            tuple(_T_OF_RAIL[r] for r in outs),
            tuple(_T_OF_RAIL[r] for r in nxt),
        )

    # -- flat-program interpreters (override-aware mirror of the codegen) --

    def _interpret_binary(
        self,
        state_masks: Sequence[int],
        input_masks: Sequence[int],
        M: int,
        forced: Mapping[int, bool],
    ) -> List[int]:
        values = [0] * self.num_nets
        for pin, net in enumerate(self.input_ids):
            values[net] = input_masks[pin]
        for pos, net in enumerate(self.latch_out_ids):
            values[net] = state_masks[pos]
        for net, v in forced.items():
            values[net] = M if v else 0
        for opcode, in_ids, out_ids, fn in self.ops:
            if opcode == OP_AND or opcode == OP_NAND:
                r = M
                for i in in_ids:
                    r &= values[i]
                outs = (M ^ r if opcode == OP_NAND else r,)
            elif opcode == OP_OR or opcode == OP_NOR:
                r = 0
                for i in in_ids:
                    r |= values[i]
                outs = (M ^ r if opcode == OP_NOR else r,)
            elif opcode == OP_XOR or opcode == OP_XNOR:
                r = 0
                for i in in_ids:
                    r ^= values[i]
                outs = (M ^ r if opcode == OP_XNOR else r,)
            elif opcode == OP_NOT:
                outs = (M ^ values[in_ids[0]],)
            elif opcode == OP_BUF:
                outs = (values[in_ids[0]],)
            elif opcode == OP_MUX:
                s, w0, w1 = (values[i] for i in in_ids)
                outs = ((s & w1) | ((M ^ s) & w0),)
            elif opcode == OP_CONST0:
                outs = (0,)
            elif opcode == OP_CONST1:
                outs = (M,)
            elif opcode == OP_JUNC:
                outs = (values[in_ids[0]],) * len(out_ids)
            else:
                outs = _generic_binary(fn, [values[i] for i in in_ids], M)
            for net, r in zip(out_ids, outs):
                if net not in forced:
                    values[net] = r
        return values

    def _interpret_ternary(
        self,
        state_rails: Sequence[Tuple[int, int]],
        input_rails: Sequence[Tuple[int, int]],
        M: int,
        forced: Mapping[int, T],
    ) -> List[Tuple[int, int]]:
        rails: List[Tuple[int, int]] = [(0, 0)] * self.num_nets
        for pin, net in enumerate(self.input_ids):
            rails[net] = input_rails[pin]
        for pos, net in enumerate(self.latch_out_ids):
            rails[net] = state_rails[pos]
        forced_rails = {
            net: tuple(M if bit else 0 for bit in _RAIL_OF_T[v])
            for net, v in forced.items()
        }
        for net, rail in forced_rails.items():
            rails[net] = rail
        for opcode, in_ids, out_ids, fn in self.ops:
            if opcode == OP_AND or opcode == OP_NAND:
                a, b = 0, M
                for i in in_ids:
                    ra, rb = rails[i]
                    a |= ra
                    b &= rb
                outs = ((b, a) if opcode == OP_NAND else (a, b),)
            elif opcode == OP_OR or opcode == OP_NOR:
                a, b = M, 0
                for i in in_ids:
                    ra, rb = rails[i]
                    a &= ra
                    b |= rb
                outs = ((b, a) if opcode == OP_NOR else (a, b),)
            elif opcode == OP_XOR or opcode == OP_XNOR:
                a, b = rails[in_ids[0]]
                for i in in_ids[1:]:
                    ra, rb = rails[i]
                    a, b = (a & ra) | (b & rb), (a & rb) | (b & ra)
                outs = ((b, a) if opcode == OP_XNOR else (a, b),)
            elif opcode == OP_NOT:
                a, b = rails[in_ids[0]]
                outs = ((b, a),)
            elif opcode == OP_BUF:
                outs = (rails[in_ids[0]],)
            elif opcode == OP_MUX:
                (sa, sb), (w0a, w0b), (w1a, w1b) = (rails[i] for i in in_ids)
                outs = (((sb & w1a) | (sa & w0a), (sb & w1b) | (sa & w0b)),)
            elif opcode == OP_CONST0:
                outs = ((M, 0),)
            elif opcode == OP_CONST1:
                outs = ((0, M),)
            elif opcode == OP_JUNC:
                outs = (rails[in_ids[0]],) * len(out_ids)
            else:
                outs = _generic_ternary(fn, [rails[i] for i in in_ids], M)
            for net, rail in zip(out_ids, outs):
                if net not in forced_rails:
                    rails[net] = rail
        return rails

    # Word variants of the interpreters.  The shared ``M``/``Z`` arrays
    # are borrowed by many net slots, so every fold is non-in-place
    # (``r = r & v``, never ``r &= v``) -- an in-place op on a borrowed
    # ndarray would corrupt every other net referencing it.

    def _interpret_binary_words(
        self,
        state_words: Sequence[np.ndarray],
        input_words: Sequence[np.ndarray],
        M: np.ndarray,
        forced: Mapping[int, bool],
    ) -> List[np.ndarray]:
        Z = M ^ M
        values: List[np.ndarray] = [Z] * self.num_nets
        for pin, net in enumerate(self.input_ids):
            values[net] = input_words[pin]
        for pos, net in enumerate(self.latch_out_ids):
            values[net] = state_words[pos]
        for net, v in forced.items():
            values[net] = M if v else Z
        for opcode, in_ids, out_ids, fn in self.ops:
            if opcode == OP_AND or opcode == OP_NAND:
                r = M
                for i in in_ids:
                    r = r & values[i]
                outs = (M ^ r if opcode == OP_NAND else r,)
            elif opcode == OP_OR or opcode == OP_NOR:
                r = Z
                for i in in_ids:
                    r = r | values[i]
                outs = (M ^ r if opcode == OP_NOR else r,)
            elif opcode == OP_XOR or opcode == OP_XNOR:
                r = Z
                for i in in_ids:
                    r = r ^ values[i]
                outs = (M ^ r if opcode == OP_XNOR else r,)
            elif opcode == OP_NOT:
                outs = (M ^ values[in_ids[0]],)
            elif opcode == OP_BUF:
                outs = (values[in_ids[0]],)
            elif opcode == OP_MUX:
                s, w0, w1 = (values[i] for i in in_ids)
                outs = ((s & w1) | ((M ^ s) & w0),)
            elif opcode == OP_CONST0:
                outs = (Z,)
            elif opcode == OP_CONST1:
                outs = (M,)
            elif opcode == OP_JUNC:
                outs = (values[in_ids[0]],) * len(out_ids)
            else:
                outs = _generic_binary_words(fn, [values[i] for i in in_ids], M)
            for net, r in zip(out_ids, outs):
                if net not in forced:
                    values[net] = r
        return values

    def _interpret_ternary_words(
        self,
        state_rails: Sequence[Tuple[np.ndarray, np.ndarray]],
        input_rails: Sequence[Tuple[np.ndarray, np.ndarray]],
        M: np.ndarray,
        forced: Mapping[int, T],
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        Z = M ^ M
        rails: List[Tuple[np.ndarray, np.ndarray]] = [(Z, Z)] * self.num_nets
        for pin, net in enumerate(self.input_ids):
            rails[net] = input_rails[pin]
        for pos, net in enumerate(self.latch_out_ids):
            rails[net] = state_rails[pos]
        forced_rails = {
            net: tuple(M if bit else Z for bit in _RAIL_OF_T[v])
            for net, v in forced.items()
        }
        for net, rail in forced_rails.items():
            rails[net] = rail
        for opcode, in_ids, out_ids, fn in self.ops:
            if opcode == OP_AND or opcode == OP_NAND:
                a, b = Z, M
                for i in in_ids:
                    ra, rb = rails[i]
                    a = a | ra
                    b = b & rb
                outs = ((b, a) if opcode == OP_NAND else (a, b),)
            elif opcode == OP_OR or opcode == OP_NOR:
                a, b = M, Z
                for i in in_ids:
                    ra, rb = rails[i]
                    a = a & ra
                    b = b | rb
                outs = ((b, a) if opcode == OP_NOR else (a, b),)
            elif opcode == OP_XOR or opcode == OP_XNOR:
                a, b = rails[in_ids[0]]
                for i in in_ids[1:]:
                    ra, rb = rails[i]
                    a, b = (a & ra) | (b & rb), (a & rb) | (b & ra)
                outs = ((b, a) if opcode == OP_XNOR else (a, b),)
            elif opcode == OP_NOT:
                a, b = rails[in_ids[0]]
                outs = ((b, a),)
            elif opcode == OP_BUF:
                outs = (rails[in_ids[0]],)
            elif opcode == OP_MUX:
                (sa, sb), (w0a, w0b), (w1a, w1b) = (rails[i] for i in in_ids)
                outs = (((sb & w1a) | (sa & w0a), (sb & w1b) | (sa & w0b)),)
            elif opcode == OP_CONST0:
                outs = ((M, Z),)
            elif opcode == OP_CONST1:
                outs = ((Z, M),)
            elif opcode == OP_JUNC:
                outs = (rails[in_ids[0]],) * len(out_ids)
            else:
                outs = _generic_ternary_words(fn, [rails[i] for i in in_ids], M)
            for net, rail in zip(out_ids, outs):
                if net not in forced_rails:
                    rails[net] = rail
        return rails


def compile_circuit(circuit: Circuit) -> CompiledCircuit:
    """The compiled program of *circuit*, cached on the circuit.

    The cache lives in ``circuit._compiled_cache``, right next to the
    topological-order cache, and is cleared by the same mutation hooks
    (:meth:`Circuit._invalidate_caches`) -- so a compiled program can
    never outlive the structure it was lowered from.
    """
    cached = circuit._compiled_cache  # noqa: SLF001 - by-design cache slot
    if isinstance(cached, CompiledCircuit):
        if _TRACE.enabled:
            _TRACE.incr("compile.cache_hits")
        return cached
    with _span("compile"):
        compiled = CompiledCircuit(circuit)
    _TRACE.incr("compile.circuits")
    _TRACE.incr("compile.ops", len(compiled.ops))
    circuit._compiled_cache = compiled  # noqa: SLF001
    return compiled


# ---------------------------------------------------------------------------
# Lane backends: how a batch of simulation lanes is represented.
# ---------------------------------------------------------------------------


class LaneBackend:
    """Strategy interface over one lane representation.

    A *lane value* is whatever carries one bit per simulation lane for a
    single net -- an arbitrary-precision int (``mask``) or a ``uint64``
    word array (``words``).  The *context* is the backend's all-lanes
    handle for a given batch size, playing the role ``M`` plays in the
    compiled step functions.  Consumers (:mod:`repro.sim.exact`,
    :mod:`repro.sim.multi`, :mod:`repro.sim.ternary_multi`,
    :mod:`repro.sim.fault`) are written against this interface only, so
    the two engines are drop-in interchangeable and bit-for-bit
    comparable lane by lane.
    """

    name = "abstract"

    # -- representation ----------------------------------------------------

    def context(self, batch: int):
        """The all-lanes handle for a *batch*-lane sweep."""
        raise NotImplementedError

    def zero(self, ctx):
        """The no-lanes value matching *ctx*'s shape."""
        raise NotImplementedError

    def pack_column(self, column: np.ndarray):
        """Pack a boolean lane column into a lane value."""
        raise NotImplementedError

    def unpack_column(self, value, batch: int) -> np.ndarray:
        """Unpack a lane value into a boolean column of length *batch*."""
        raise NotImplementedError

    # -- derived helpers (representation-independent) ----------------------

    def constant(self, bit: bool, ctx):
        """A lane value holding *bit* in every lane."""
        return ctx if bit else self.zero(ctx)

    def constant_ternary(self, value: T, ctx):
        """A dual-rail pair holding ternary *value* in every lane."""
        ra, rb = _RAIL_OF_T[value]
        return (self.constant(bool(ra), ctx), self.constant(bool(rb), ctx))

    def pack_ternary_column(self, values: Sequence[T]):
        """Pack a column of ternary values into a dual-rail pair."""
        can0 = np.fromiter(
            (_RAIL_OF_T[v][0] for v in values), dtype=bool, count=len(values)
        )
        can1 = np.fromiter(
            (_RAIL_OF_T[v][1] for v in values), dtype=bool, count=len(values)
        )
        return (self.pack_column(can0), self.pack_column(can1))

    def unpack_ternary_column(self, rails, batch: int) -> Tuple[T, ...]:
        """Unpack a dual-rail pair into a column of ternary singletons."""
        can0 = self.unpack_column(rails[0], batch)
        can1 = self.unpack_column(rails[1], batch)
        return tuple(
            _T_OF_RAIL[(int(a), int(b))] for a, b in zip(can0, can1)
        )

    def state_range(
        self, start: int, stop: int, num_latches: int
    ) -> Tuple[Any, ...]:
        """Per-latch lane values for power-up states ``start..stop-1``.

        Lane ``i`` carries state index ``start + i``; latch ``j`` takes
        bit ``num_latches - 1 - j`` of the index, matching
        :func:`repro.sim.multi.all_states_array` row order -- this is
        what lets sharded sweeps generate their block locally instead of
        shipping the full ``2**n`` array across the process boundary.
        """
        indices = np.arange(start, stop, dtype=np.int64)
        return tuple(
            self.pack_column(
                ((indices >> (num_latches - 1 - bit)) & 1).astype(bool)
            )
            for bit in range(num_latches)
        )

    def exhaustive_states(self, num_latches: int) -> Tuple[Any, ...]:
        """Per-latch lane values of the full ``2**n`` sweep (memoised)."""
        return _exhaustive_states_cached(self.name, num_latches)

    # -- verdicts ----------------------------------------------------------

    def all_ones(self, value, ctx) -> bool:
        """Is *value* 1 in every lane of *ctx*?"""
        raise NotImplementedError

    def all_zeros(self, value) -> bool:
        """Is *value* 0 in every lane?"""
        raise NotImplementedError

    # -- stepping ----------------------------------------------------------

    def step_binary(self, compiled, state, inputs, ctx, forced=None):
        """One binary cycle: ``(outputs, next_state)`` in lane values."""
        raise NotImplementedError

    def step_ternary(self, compiled, state, inputs, ctx, forced=None):
        """One dual-rail ternary cycle in lane values."""
        raise NotImplementedError


class MaskLaneBackend(LaneBackend):
    """Lanes as one arbitrary-precision Python int per net (bit i = lane i)."""

    name = "mask"

    def context(self, batch: int) -> int:
        return (1 << batch) - 1

    def zero(self, ctx: int) -> int:
        return 0

    def pack_column(self, column: np.ndarray) -> int:
        return column_to_mask(column)

    def unpack_column(self, value: int, batch: int) -> np.ndarray:
        return mask_to_column(value, batch)

    def all_ones(self, value: int, ctx: int) -> bool:
        return value == ctx

    def all_zeros(self, value: int) -> bool:
        return value == 0

    def step_binary(self, compiled, state, inputs, ctx, forced=None):
        return compiled.step_binary_masks(state, inputs, ctx, forced)

    def step_ternary(self, compiled, state, inputs, ctx, forced=None):
        return compiled.step_ternary_masks(state, inputs, ctx, forced)


class WordLaneBackend(LaneBackend):
    """Lanes as numpy ``uint64`` word arrays (64 lanes per word)."""

    name = "words"

    def context(self, batch: int) -> np.ndarray:
        M = np.full(num_words_for(batch), ~np.uint64(0), dtype=np.uint64)
        tail = batch % 64
        if tail and M.shape[0]:
            M[-1] = np.uint64((1 << tail) - 1)
        return M

    def zero(self, ctx: np.ndarray) -> np.ndarray:
        return np.zeros_like(ctx)

    def pack_column(self, column: np.ndarray) -> np.ndarray:
        return column_to_words(column)

    def unpack_column(self, value: np.ndarray, batch: int) -> np.ndarray:
        return words_to_column(value, batch)

    def all_ones(self, value: np.ndarray, ctx: np.ndarray) -> bool:
        return bool(np.array_equal(value, ctx))

    def all_zeros(self, value: np.ndarray) -> bool:
        return not bool(np.any(value))

    def step_binary(self, compiled, state, inputs, ctx, forced=None):
        return compiled.step_binary_words(state, inputs, ctx, forced)

    def step_ternary(self, compiled, state, inputs, ctx, forced=None):
        return compiled.step_ternary_words(state, inputs, ctx, forced)


#: The available lane engines, in registry order.
LANE_ENGINES = ("mask", "words")

_LANE_BACKENDS: Dict[str, LaneBackend] = {
    "mask": MaskLaneBackend(),
    "words": WordLaneBackend(),
}


@lru_cache(maxsize=128)
def _exhaustive_states_cached(engine: str, num_latches: int) -> Tuple[Any, ...]:
    backend = _LANE_BACKENDS[engine]
    return backend.state_range(0, 1 << num_latches, num_latches)


def resolve_lane_engine(name: Optional[str] = None) -> str:
    """Resolve a lane-engine choice (``None`` -> track the backend).

    With no explicit choice the ``words`` engine is used exactly when
    the process default backend is ``words``; everything else keeps the
    historical ``mask`` engine.
    """
    if name is None:
        return "words" if _default_backend == "words" else "mask"
    if name not in LANE_ENGINES:
        raise ValueError(
            "unknown lane engine %r (choose from %s)" % (name, LANE_ENGINES)
        )
    return name


def get_lane_engine(name: Optional[str] = None) -> LaneBackend:
    """The :class:`LaneBackend` singleton for *name* (``None`` -> default)."""
    return _LANE_BACKENDS[resolve_lane_engine(name)]
