"""Shared cycle-simulation machinery.

All three scalar simulators (binary, conservative ternary, faulty
variants of either) follow the same schedule each clock cycle:

1. fix the *source nets* -- primary inputs and latch outputs -- from the
   applied input vector and the current state;
2. evaluate every cell once, in topological order of the combinational
   core;
3. read the primary outputs;
4. read the latch data inputs to form the next state.

The only degrees of freedom are the value domain (``bool`` vs
:class:`~repro.logic.ternary.T`) and an optional set of *net overrides*
used for stuck-at fault injection (an overridden net takes the forced
value no matter what its driver computes -- including source nets).

:func:`propagate` implements step 1-2 generically.  Since the
compile-once refactor it is the **reference interpreter**: production
simulation runs through the flat-program core in
:mod:`repro.sim.compiled` (select with ``backend="interpreted"`` on the
scalar simulators to come back here), and the property tests
cross-check every compiled backend against this function.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generic, List, Mapping, Optional, Sequence, Tuple, TypeVar

from ..netlist.circuit import Circuit
from ..obs.trace import TRACER as _TRACE

__all__ = ["propagate", "SimulationTrace"]

V = TypeVar("V")


def propagate(
    circuit: Circuit,
    input_values: Sequence[V],
    state: Sequence[V],
    *,
    ternary: bool,
    overrides: Optional[Mapping[str, V]] = None,
) -> Dict[str, V]:
    """Evaluate the combinational core for one cycle.

    Parameters
    ----------
    circuit:
        The circuit to evaluate (must have an acyclic combinational core).
    input_values:
        One value per primary input, in :attr:`Circuit.inputs` order.
    state:
        One value per latch, in :attr:`Circuit.latch_names` order.
    ternary:
        Selects :meth:`CellFunction.eval_ternary` (conservative) vs
        :meth:`CellFunction.eval_binary`.
    overrides:
        Optional stuck-at forcing: net name -> forced value.

    Returns the complete net -> value map for the cycle.
    """
    inputs = circuit.inputs
    latch_names = circuit.latch_names
    if len(input_values) != len(inputs):
        raise ValueError(
            "circuit %s has %d inputs, got %d values"
            % (circuit.name, len(inputs), len(input_values))
        )
    if len(state) != len(latch_names):
        raise ValueError(
            "circuit %s has %d latches, got state of length %d"
            % (circuit.name, len(latch_names), len(state))
        )
    overrides = overrides or {}

    values: Dict[str, V] = {}

    def write(net: str, value: V) -> None:
        values[net] = overrides.get(net, value)

    for net, value in zip(inputs, input_values):
        write(net, value)
    for latch, value in zip(circuit.latches, state):
        write(latch.data_out, value)

    cells = circuit._cells  # noqa: SLF001 - hot path, avoid tuple rebuilds
    for cell_name in circuit.topological_cells():
        cell = cells[cell_name]
        in_vals = tuple(values[n] for n in cell.inputs)
        out_vals = (
            cell.function.eval_ternary(in_vals)
            if ternary
            else cell.function.eval_binary(in_vals)
        )
        for net, value in zip(cell.outputs, out_vals):
            write(net, value)
    if _TRACE.enabled:
        counters = _TRACE.counters
        counters["sim.interpreted.cycles"] = counters.get("sim.interpreted.cycles", 0) + 1
        counters["sim.interpreted.cell_evals"] = (
            counters.get("sim.interpreted.cell_evals", 0) + len(cells)
        )
    return values


@dataclass
class SimulationTrace(Generic[V]):
    """The result of running a simulator over an input sequence.

    Attributes
    ----------
    inputs:
        The applied input vectors, one per cycle.
    outputs:
        The observed primary-output vectors, one per cycle
        (:attr:`Circuit.outputs` order).
    states:
        The latch state *before* each cycle, plus the final state; so
        ``len(states) == len(outputs) + 1``.
    """

    inputs: List[Tuple[V, ...]] = field(default_factory=list)
    outputs: List[Tuple[V, ...]] = field(default_factory=list)
    states: List[Tuple[V, ...]] = field(default_factory=list)

    @property
    def final_state(self) -> Tuple[V, ...]:
        """The latch state after the last simulated cycle."""
        if not self.states:
            raise ValueError("empty trace has no final state")
        return self.states[-1]

    def output_column(self, index: int = 0) -> Tuple[V, ...]:
        """The sequence of values seen at primary output *index*."""
        return tuple(vec[index] for vec in self.outputs)

    def __len__(self) -> int:
        return len(self.outputs)
