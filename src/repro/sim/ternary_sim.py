"""The conservative three-valued logic simulator (CLS) of Section 5.

The paper defines the CLS as a three-valued simulator over ``{0, 1, X}``
that "performs only local propagation of the X values (0·X = 0 but
1·X = X)" and "begins operation with all latches in the X state".  The
key theorem (Corollary 5.3) is that such a simulator **cannot
distinguish** a circuit from any retiming of it.

Local propagation means: each cell is evaluated with its own
(per-cell exact) ternary function, but correlations between X values on
different nets are forgotten.  Globally this loses information -- the
paper's example is an AND fed by an X and its complement: the true
output is 0, the CLS reports X.  That lost information is "precisely the
same information lost by moving a latch forward across an unjustifiable
element", which is why the invariance theorem holds.

Inputs may themselves be ternary (the theorems quantify over sequences
of three-valued input vectors); :func:`cls_outputs` is the convenience
entry point used by the benchmarks and the retiming validity checker.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Sequence, Tuple

from ..logic.ternary import T, TernaryLike, X, to_ternary
from ..netlist.circuit import Circuit
from ..obs.trace import TRACER as _TRACE
from .compiled import compile_circuit, resolve_backend
from .core import SimulationTrace, propagate

__all__ = ["TernarySimulator", "all_x_state", "cls_outputs", "cls_resets", "TernaryVec"]

TernaryVec = Tuple[T, ...]


class TernarySimulator:
    """Conservative three-valued cycle simulation.

    Parameters
    ----------
    circuit:
        The circuit to simulate.
    overrides:
        Optional stuck-at forcing (net -> :class:`T`), used by the
        three-valued fault analyses of Section 4's testing discussion.
    backend:
        ``"compiled"`` (the default) evaluates through the flat program
        of :mod:`repro.sim.compiled`; ``"interpreted"`` walks the
        netlist with the reference :func:`~repro.sim.core.propagate`;
        ``"words"`` behaves like ``compiled`` here (the word lane
        engine only changes batched sweeps).
    """

    def __init__(
        self,
        circuit: Circuit,
        overrides: Optional[Mapping[str, T]] = None,
        *,
        backend: Optional[str] = None,
    ) -> None:
        self.circuit = circuit
        self.overrides = dict(overrides) if overrides else {}
        self.backend = resolve_backend(backend)

    def step(
        self, state: Sequence[TernaryLike], inputs: Sequence[TernaryLike]
    ) -> Tuple[TernaryVec, TernaryVec]:
        """One clock cycle: returns ``(outputs, next_state)``."""
        in_vec = tuple(to_ternary(v) for v in inputs)
        st_vec = tuple(to_ternary(v) for v in state)
        if self.backend != "interpreted":  # compiled and words share the scalar core
            return compile_circuit(self.circuit).step_ternary(
                st_vec, in_vec, overrides=self.overrides or None
            )
        values = propagate(
            self.circuit, in_vec, st_vec, ternary=True, overrides=self.overrides
        )
        outputs = tuple(values[n] for n in self.circuit.outputs)
        next_state = tuple(values[latch.data_in] for latch in self.circuit.latches)
        return outputs, next_state

    def run(
        self,
        state: Sequence[TernaryLike],
        input_sequence: Iterable[Sequence[TernaryLike]],
    ) -> SimulationTrace:
        """Simulate the whole *input_sequence* from *state*."""
        trace: SimulationTrace = SimulationTrace()
        current = tuple(to_ternary(v) for v in state)
        trace.states.append(current)
        for raw in input_sequence:
            vector = tuple(to_ternary(v) for v in raw)
            outputs, current = self.step(current, vector)
            trace.inputs.append(vector)
            trace.outputs.append(outputs)
            trace.states.append(current)
        return trace

    def run_from_unknown(
        self, input_sequence: Iterable[Sequence[TernaryLike]]
    ) -> SimulationTrace:
        """Simulate from the all-X power-up state -- the CLS convention."""
        if _TRACE.enabled:
            _TRACE.incr("sim.cls.runs")
        return self.run(all_x_state(self.circuit), input_sequence)


def all_x_state(circuit: Circuit) -> TernaryVec:
    """The all-X (fully unknown) power-up state of *circuit*."""
    return (X,) * circuit.num_latches


def cls_outputs(
    circuit: Circuit, input_sequence: Iterable[Sequence[TernaryLike]]
) -> Tuple[TernaryVec, ...]:
    """CLS output sequence of *circuit* from the all-X state.

    This is the quantity Corollary 5.3 proves invariant under retiming:
    ``cls_outputs(C, pi) == cls_outputs(retime(C), pi)`` for every input
    sequence ``pi``.
    """
    sim = TernarySimulator(circuit)
    return tuple(sim.run_from_unknown(input_sequence).outputs)


def cls_resets(
    circuit: Circuit, input_sequence: Iterable[Sequence[TernaryLike]]
) -> bool:
    """Does *input_sequence* reset the circuit according to the CLS?

    A sequence resets the design (in the three-valued sense of
    Corollary 5.3's last sentence) when after applying it from the all-X
    state every latch holds a definite value.
    """
    sim = TernarySimulator(circuit)
    trace = sim.run_from_unknown(input_sequence)
    return all(v is not X for v in trace.final_state)
