"""Sequential ATPG (automatic test pattern generation), simulation based.

The testing half of the paper (Section 2.2, Theorem 4.6) talks about
*test sets* for single stuck-at faults under unknown power-up.  This
module generates such test sets, so the preservation experiments can
run on machine-generated suites rather than hand-picked sequences.

The generator is the classic simulation-based loop used for sequential
ATPG when no reset line exists:

1. draw a candidate input sequence (seeded RNG, growing lengths),
2. grade it against the remaining fault list with the chosen detection
   semantics (``exact`` = all-power-up-state sweep, ``cls`` =
   conservative three-valued from all-X -- the methodology the paper
   advocates),
3. keep sequences that detect at least one new fault, drop detected
   faults, stop at the coverage target or the attempt budget.

Some faults are sequentially untestable under unknown power-up (the
fault-free circuit may never produce a definite value at an output),
so 100% coverage is not generally reachable; callers set the target.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..netlist.circuit import Circuit
from ..obs.trace import TRACER as _TRACE
from ..obs.trace import span as _span
from .fault import (
    StuckAtFault,
    _first_detecting_index,
    detects_cls,
    detects_exact,
    enumerate_faults,
    good_outputs,
    pack_grading_arrays,
)
from .parallel import make_array_pack, resolve_jobs, run_sharded

__all__ = ["AtpgResult", "generate_tests", "grade_test_set"]

BoolVec = Tuple[bool, ...]
Test = Tuple[BoolVec, ...]


@dataclass
class AtpgResult:
    """Outcome of a generation run.

    Attributes
    ----------
    tests:
        The kept test sequences, in generation order.
    detected:
        Fault -> index of the detecting test.
    undetected:
        Faults the run failed to cover.
    attempts:
        Candidate sequences graded (kept + discarded).
    """

    tests: List[Test] = field(default_factory=list)
    detected: Dict[StuckAtFault, int] = field(default_factory=dict)
    undetected: List[StuckAtFault] = field(default_factory=list)
    attempts: int = 0

    @property
    def coverage(self) -> float:
        total = len(self.detected) + len(self.undetected)
        return 1.0 if total == 0 else len(self.detected) / total

    def summary(self) -> str:
        return "%d tests, %d/%d faults detected (%.1f%%), %d candidates graded" % (
            len(self.tests),
            len(self.detected),
            len(self.detected) + len(self.undetected),
            self.coverage * 100,
            self.attempts,
        )


def _detects(
    circuit: Circuit, fault: StuckAtFault, test: Test, semantics: str, good=None
) -> bool:
    if semantics == "exact":
        return detects_exact(circuit, fault, test, good=good).detected
    return detects_cls(circuit, fault, test, good=good).detected


def generate_tests(
    circuit: Circuit,
    *,
    faults: Optional[Sequence[StuckAtFault]] = None,
    semantics: str = "exact",
    target_coverage: float = 1.0,
    max_attempts: int = 200,
    max_length: int = 8,
    seed: int = 0,
) -> AtpgResult:
    """Generate a test set for *circuit*'s stuck-at faults.

    Parameters
    ----------
    faults:
        Fault list (default: every stuck-at fault on every net).
    semantics:
        ``"exact"`` or ``"cls"`` detection (see module docstring).
    target_coverage:
        Stop once this fraction of the fault list is detected.
    max_attempts:
        Candidate-sequence budget.
    max_length:
        Longest candidate sequence; lengths ramp up as attempts grow.
    seed:
        RNG seed -- runs are fully deterministic.
    """
    if semantics not in ("exact", "cls"):
        raise ValueError("semantics must be 'exact' or 'cls'")
    if not 0.0 <= target_coverage <= 1.0:
        raise ValueError("target_coverage must be within [0, 1]")
    rng = random.Random(seed)
    fault_list = list(faults) if faults is not None else list(enumerate_faults(circuit))
    result = AtpgResult(undetected=list(fault_list))
    total = len(fault_list)
    if total == 0:
        return result

    width = len(circuit.inputs)
    with _span("sim.atpg.generate"):
        for attempt in range(max_attempts):
            if len(result.detected) / total >= target_coverage:
                break
            length = 2 + (attempt * (max_length - 2)) // max(1, max_attempts - 1)
            candidate: Test = tuple(
                tuple(rng.random() < 0.5 for _ in range(width)) for _ in range(length)
            )
            result.attempts += 1
            good = good_outputs(circuit, candidate, semantics=semantics)
            caught = [
                fault
                for fault in result.undetected
                if _detects(circuit, fault, candidate, semantics, good)
            ]
            if caught:
                index = len(result.tests)
                result.tests.append(candidate)
                for fault in caught:
                    result.detected[fault] = index
                result.undetected = [f for f in result.undetected if f not in caught]
    if _TRACE.enabled:
        counters = _TRACE.counters
        counters["sim.atpg.candidates"] = (
            counters.get("sim.atpg.candidates", 0) + result.attempts
        )
        counters["sim.atpg.tests_kept"] = (
            counters.get("sim.atpg.tests_kept", 0) + len(result.tests)
        )
    return result


def grade_test_set(
    circuit: Circuit,
    tests: Sequence[Test],
    *,
    faults: Optional[Sequence[StuckAtFault]] = None,
    semantics: str = "exact",
    jobs: Optional[int] = None,
) -> AtpgResult:
    """Grade an existing test set (e.g. one generated for the original
    design, replayed on the retimed design).

    With ``jobs > 1`` (or a process-wide default from
    :mod:`repro.sim.parallel`) the fault list is sharded across worker
    processes, each receiving the circuit plus the fault-free reference
    outputs computed once here; the merged :class:`AtpgResult` --
    including the order of ``detected`` and ``undetected`` -- is
    identical to the serial one.
    """
    fault_list = list(faults) if faults is not None else list(enumerate_faults(circuit))
    result = AtpgResult(tests=list(tests), undetected=list(fault_list))
    if _TRACE.enabled:
        _TRACE.incr("sim.atpg.faults_graded", len(fault_list))
    resolved = resolve_jobs(jobs)
    if resolved > 1 and len(fault_list) > 1 and tests:
        frozen = tuple(tuple(tuple(v) for v in test) for test in tests)
        goods = tuple(good_outputs(circuit, test, semantics=semantics) for test in frozen)
        pack = make_array_pack(
            pack_grading_arrays(
                frozen, goods, len(circuit.inputs), len(circuit.outputs)
            )
        )
        try:
            with _span("sim.atpg.grade"):
                first = run_sharded(
                    _first_detecting_index,
                    (circuit, pack, semantics),
                    fault_list,
                    jobs=resolved,
                    label="test-set-grading",
                )
        finally:
            pack.release()
        by_fault = dict(zip(fault_list, first))
        # Re-play the serial bookkeeping so insertion orders match:
        # detected fills per test index, fault-list order within each.
        for index in range(len(tests)):
            for fault in fault_list:
                if by_fault[fault] == index:
                    result.detected[fault] = index
        result.undetected = [f for f in fault_list if by_fault[f] is None]
        result.attempts = len(tests)
        return result
    with _span("sim.atpg.grade"):
        for index, test in enumerate(tests):
            vectors = tuple(tuple(v) for v in test)
            good = good_outputs(circuit, vectors, semantics=semantics)
            caught = [
                fault
                for fault in result.undetected
                if _detects(circuit, fault, vectors, semantics, good)
            ]
            for fault in caught:
                result.detected[fault] = index
            result.undetected = [f for f in result.undetected if f not in caught]
            result.attempts += 1
    return result
