"""Batched Boolean simulation over many power-up states at once.

The paper's hypothetical "sufficiently powerful simulator"
(Section 2.1) reports a definite output value only when **every**
power-up state agrees.  Computing that requires simulating all ``2**n``
states; this module does so with numpy, one boolean array lane per
state, so that the exact simulator in :mod:`repro.sim.exact` stays fast
up to ~20 latches.

The vectorised evaluators are dispatched on the cell-function family
(AND/OR/NAND/NOR/XOR/XNOR/NOT/BUF/MUX/CONST/JUNC); an unknown family
falls back to per-lane scalar evaluation, which is slow but correct and
keeps the simulator total over custom cells.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..logic.functions import CellFunction
from ..netlist.circuit import Circuit

__all__ = ["BatchedBinarySimulator", "all_states_array"]


def all_states_array(num_latches: int) -> np.ndarray:
    """All ``2**n`` states as a boolean array of shape ``(2**n, n)``.

    Row ``i`` equals :func:`repro.sim.binary.state_from_int` of ``i``
    (latch 0 is the most significant bit).
    """
    if num_latches < 0:
        raise ValueError("negative latch count")
    count = 1 << num_latches
    if num_latches == 0:
        return np.zeros((1, 0), dtype=bool)
    indices = np.arange(count, dtype=np.int64)
    columns = [
        ((indices >> (num_latches - 1 - bit)) & 1).astype(bool)
        for bit in range(num_latches)
    ]
    return np.stack(columns, axis=1)


def _family(function: CellFunction) -> str:
    return function.name.rstrip("0123456789")


def _eval_vectorised(
    function: CellFunction, inputs: List[np.ndarray], batch: int
) -> List[np.ndarray]:
    family = _family(function)
    if family == "AND":
        return [np.logical_and.reduce(inputs)]
    if family == "OR":
        return [np.logical_or.reduce(inputs)]
    if family == "NAND":
        return [~np.logical_and.reduce(inputs)]
    if family == "NOR":
        return [~np.logical_or.reduce(inputs)]
    if family == "XOR":
        return [np.logical_xor.reduce(inputs)]
    if family == "XNOR":
        return [~np.logical_xor.reduce(inputs)]
    if family == "NOT":
        return [~inputs[0]]
    if family == "BUF":
        return [inputs[0].copy()]
    if family == "MUX":
        select, when_zero, when_one = inputs
        return [np.where(select, when_one, when_zero)]
    if family == "CONST":
        value = function.name.endswith("1")
        return [np.full(batch, value, dtype=bool)]
    if family == "JUNC":
        return [inputs[0].copy() for _ in range(function.n_outputs)]
    # Scalar fallback for exotic cells.
    outputs = [np.empty(batch, dtype=bool) for _ in range(function.n_outputs)]
    for lane in range(batch):
        scalar_out = function.eval_binary(tuple(bool(col[lane]) for col in inputs))
        for pin, value in enumerate(scalar_out):
            outputs[pin][lane] = value
    return outputs


class BatchedBinarySimulator:
    """Simulate many Boolean power-up states in lock-step.

    States are boolean arrays of shape ``(batch, num_latches)``; all
    lanes see the same input vector each cycle (that is the quantifier
    structure of the powerful simulator: one input sequence, all
    power-up states).
    """

    def __init__(
        self, circuit: Circuit, overrides: Optional[Mapping[str, bool]] = None
    ) -> None:
        self.circuit = circuit
        self.overrides = dict(overrides) if overrides else {}
        self._topo = circuit.topological_cells()

    def step(
        self, states: np.ndarray, inputs: Sequence[bool]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """One cycle for every lane: returns ``(outputs, next_states)``
        of shapes ``(batch, num_outputs)`` and ``(batch, num_latches)``.
        """
        circuit = self.circuit
        batch = states.shape[0]
        if states.shape[1] != circuit.num_latches:
            raise ValueError(
                "state array has %d columns, circuit has %d latches"
                % (states.shape[1], circuit.num_latches)
            )
        if len(inputs) != len(circuit.inputs):
            raise ValueError(
                "circuit has %d inputs, got %d" % (len(circuit.inputs), len(inputs))
            )

        values: Dict[str, np.ndarray] = {}

        def write(net: str, column: np.ndarray) -> None:
            if net in self.overrides:
                column = np.full(batch, self.overrides[net], dtype=bool)
            values[net] = column

        for net, bit in zip(circuit.inputs, inputs):
            write(net, np.full(batch, bool(bit), dtype=bool))
        for index, latch in enumerate(circuit.latches):
            write(latch.data_out, states[:, index].copy())

        for cell_name in self._topo:
            cell = circuit.cell(cell_name)
            in_cols = [values[n] for n in cell.inputs]
            out_cols = _eval_vectorised(cell.function, in_cols, batch)
            for net, column in zip(cell.outputs, out_cols):
                write(net, column)

        outputs = (
            np.stack([values[n] for n in circuit.outputs], axis=1)
            if circuit.outputs
            else np.zeros((batch, 0), dtype=bool)
        )
        next_states = (
            np.stack([values[latch.data_in] for latch in circuit.latches], axis=1)
            if circuit.latches
            else np.zeros((batch, 0), dtype=bool)
        )
        return outputs, next_states

    def run(
        self, states: np.ndarray, input_sequence: Iterable[Sequence[bool]]
    ) -> Tuple[List[np.ndarray], np.ndarray]:
        """Simulate a whole sequence; returns ``(outputs_per_cycle,
        final_states)`` where each outputs entry has shape
        ``(batch, num_outputs)``."""
        current = np.array(states, dtype=bool)
        outputs_per_cycle: List[np.ndarray] = []
        for vector in input_sequence:
            outputs, current = self.step(current, tuple(vector))
            outputs_per_cycle.append(outputs)
        return outputs_per_cycle, current
