"""Batched Boolean simulation over many power-up states at once.

The paper's hypothetical "sufficiently powerful simulator"
(Section 2.1) reports a definite output value only when **every**
power-up state agrees.  Computing that requires simulating all ``2**n``
states; this module runs them in lock-step, one lane per state.

Since the compile-once refactor this is a thin ndarray adapter over
:mod:`repro.sim.compiled`: the state array is packed column-wise into
integer lane masks (:func:`~repro.sim.compiled.column_to_mask`), one
pass of the compiled program evaluates every lane, and the resulting
masks are unpacked back into boolean arrays.  The duplicated
name-keyed numpy walk this module used to carry is gone.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..netlist.circuit import Circuit
from .compiled import column_to_mask, compile_circuit, mask_to_column

__all__ = ["BatchedBinarySimulator", "all_states_array"]


def all_states_array(num_latches: int) -> np.ndarray:
    """All ``2**n`` states as a boolean array of shape ``(2**n, n)``.

    Row ``i`` equals :func:`repro.sim.binary.state_from_int` of ``i``
    (latch 0 is the most significant bit).
    """
    if num_latches < 0:
        raise ValueError("negative latch count")
    count = 1 << num_latches
    if num_latches == 0:
        return np.zeros((1, 0), dtype=bool)
    indices = np.arange(count, dtype=np.int64)
    columns = [
        ((indices >> (num_latches - 1 - bit)) & 1).astype(bool)
        for bit in range(num_latches)
    ]
    return np.stack(columns, axis=1)


class BatchedBinarySimulator:
    """Simulate many Boolean power-up states in lock-step.

    States are boolean arrays of shape ``(batch, num_latches)``; all
    lanes see the same input vector each cycle (that is the quantifier
    structure of the powerful simulator: one input sequence, all
    power-up states).
    """

    def __init__(
        self, circuit: Circuit, overrides: Optional[Mapping[str, bool]] = None
    ) -> None:
        self.circuit = circuit
        self.overrides = dict(overrides) if overrides else {}

    def step(
        self, states: np.ndarray, inputs: Sequence[bool]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """One cycle for every lane: returns ``(outputs, next_states)``
        of shapes ``(batch, num_outputs)`` and ``(batch, num_latches)``.
        """
        circuit = self.circuit
        states = np.asarray(states, dtype=bool)
        batch = states.shape[0]
        if states.shape[1] != circuit.num_latches:
            raise ValueError(
                "state array has %d columns, circuit has %d latches"
                % (states.shape[1], circuit.num_latches)
            )
        if len(inputs) != len(circuit.inputs):
            raise ValueError(
                "circuit has %d inputs, got %d" % (len(circuit.inputs), len(inputs))
            )
        compiled = compile_circuit(circuit)
        all_lanes = (1 << batch) - 1
        state_masks = [
            column_to_mask(states[:, j]) for j in range(circuit.num_latches)
        ]
        input_masks = [all_lanes if bool(bit) else 0 for bit in inputs]
        out_masks, next_masks = compiled.step_binary_masks(
            state_masks, input_masks, all_lanes, compiled.forced_binary(self.overrides)
        )
        outputs = (
            np.stack([mask_to_column(m, batch) for m in out_masks], axis=1)
            if out_masks
            else np.zeros((batch, 0), dtype=bool)
        )
        next_states = (
            np.stack([mask_to_column(m, batch) for m in next_masks], axis=1)
            if next_masks
            else np.zeros((batch, 0), dtype=bool)
        )
        return outputs, next_states

    def run(
        self, states: np.ndarray, input_sequence: Iterable[Sequence[bool]]
    ) -> Tuple[List[np.ndarray], np.ndarray]:
        """Simulate a whole sequence; returns ``(outputs_per_cycle,
        final_states)`` where each outputs entry has shape
        ``(batch, num_outputs)``."""
        current = np.array(states, dtype=bool)
        outputs_per_cycle: List[np.ndarray] = []
        for vector in input_sequence:
            outputs, current = self.step(current, tuple(vector))
            outputs_per_cycle.append(outputs)
        return outputs_per_cycle, current
