"""Batched Boolean simulation over many power-up states at once.

The paper's hypothetical "sufficiently powerful simulator"
(Section 2.1) reports a definite output value only when **every**
power-up state agrees.  Computing that requires simulating all ``2**n``
states; this module runs them in lock-step, one lane per state.

Since the compile-once refactor this is a thin ndarray adapter over
:mod:`repro.sim.compiled`: the state array is packed column-wise into
lane values of the selected :class:`~repro.sim.compiled.LaneBackend`
(integer masks or ``uint64`` word arrays), one pass of the compiled
program evaluates every lane, and the results are unpacked back into
boolean arrays.  :meth:`BatchedBinarySimulator.run` packs the state
**once** and stays in lane form across the whole sequence -- only the
per-cycle outputs and the final state cross the ndarray boundary.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..netlist.circuit import Circuit
from .compiled import compile_circuit, get_lane_engine

__all__ = ["BatchedBinarySimulator", "all_states_array"]


def all_states_array(num_latches: int) -> np.ndarray:
    """All ``2**n`` states as a boolean array of shape ``(2**n, n)``.

    Row ``i`` equals :func:`repro.sim.binary.state_from_int` of ``i``
    (latch 0 is the most significant bit).
    """
    if num_latches < 0:
        raise ValueError("negative latch count")
    count = 1 << num_latches
    if num_latches == 0:
        return np.zeros((1, 0), dtype=bool)
    indices = np.arange(count, dtype=np.int64)
    columns = [
        ((indices >> (num_latches - 1 - bit)) & 1).astype(bool)
        for bit in range(num_latches)
    ]
    return np.stack(columns, axis=1)


class BatchedBinarySimulator:
    """Simulate many Boolean power-up states in lock-step.

    States are boolean arrays of shape ``(batch, num_latches)``; all
    lanes see the same input vector each cycle (that is the quantifier
    structure of the powerful simulator: one input sequence, all
    power-up states).  *lane_engine* picks the lane representation
    (``None`` tracks the process default backend).
    """

    def __init__(
        self,
        circuit: Circuit,
        overrides: Optional[Mapping[str, bool]] = None,
        *,
        lane_engine: Optional[str] = None,
    ) -> None:
        self.circuit = circuit
        self.overrides = dict(overrides) if overrides else {}
        self.lane_engine = lane_engine

    def _check_and_pack(self, states: np.ndarray, engine) -> Tuple[List, int]:
        circuit = self.circuit
        states = np.asarray(states, dtype=bool)
        batch = states.shape[0]
        if states.shape[1] != circuit.num_latches:
            raise ValueError(
                "state array has %d columns, circuit has %d latches"
                % (states.shape[1], circuit.num_latches)
            )
        return (
            [engine.pack_column(states[:, j]) for j in range(circuit.num_latches)],
            batch,
        )

    def _step_packed(self, compiled, engine, state_vals, inputs, ctx):
        if len(inputs) != compiled.num_inputs:
            raise ValueError(
                "circuit has %d inputs, got %d" % (compiled.num_inputs, len(inputs))
            )
        input_vals = [engine.constant(bool(bit), ctx) for bit in inputs]
        return engine.step_binary(
            compiled, state_vals, input_vals, ctx, compiled.forced_binary(self.overrides)
        )

    @staticmethod
    def _unpack(engine, values, batch: int) -> np.ndarray:
        if not values:
            return np.zeros((batch, 0), dtype=bool)
        return np.stack([engine.unpack_column(v, batch) for v in values], axis=1)

    def step(
        self, states: np.ndarray, inputs: Sequence[bool]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """One cycle for every lane: returns ``(outputs, next_states)``
        of shapes ``(batch, num_outputs)`` and ``(batch, num_latches)``.
        """
        engine = get_lane_engine(self.lane_engine)
        compiled = compile_circuit(self.circuit)
        state_vals, batch = self._check_and_pack(states, engine)
        ctx = engine.context(batch)
        out_vals, next_vals = self._step_packed(
            compiled, engine, state_vals, tuple(inputs), ctx
        )
        return self._unpack(engine, out_vals, batch), self._unpack(
            engine, next_vals, batch
        )

    def run(
        self, states: np.ndarray, input_sequence: Iterable[Sequence[bool]]
    ) -> Tuple[List[np.ndarray], np.ndarray]:
        """Simulate a whole sequence; returns ``(outputs_per_cycle,
        final_states)`` where each outputs entry has shape
        ``(batch, num_outputs)``.  State stays packed between cycles."""
        engine = get_lane_engine(self.lane_engine)
        compiled = compile_circuit(self.circuit)
        state_vals, batch = self._check_and_pack(states, engine)
        ctx = engine.context(batch)
        outputs_per_cycle: List[np.ndarray] = []
        for vector in input_sequence:
            out_vals, state_vals = self._step_packed(
                compiled, engine, state_vals, tuple(vector), ctx
            )
            outputs_per_cycle.append(self._unpack(engine, out_vals, batch))
        return outputs_per_cycle, self._unpack(engine, state_vals, batch)
