"""The paper's hypothetical "sufficiently powerful simulator".

Section 2.1 defines a simulator which, for a given input sequence,
outputs at each time step:

* ``1`` iff **all** power-up states output 1 at that step,
* ``0`` iff all power-up states output 0,
* ``X`` otherwise (two power-up states disagree).

This is exact (non-conservative) three-valued simulation with respect to
an unknown power-up state.  The paper shows it *can* distinguish a
retimed circuit from the original (``0·0·1·0`` vs ``0·X·X·X`` for
Figure 1's D and C), which is what makes the CLS result interesting.

The implementation sweeps every power-up state with the batched numpy
simulator, so it is exact up to :data:`DEFAULT_MAX_LATCHES` latches and
falls back to random state sampling beyond (sampling keeps the verdict
sound for ``X`` but may erroneously report a definite value; callers
that need exactness pass ``sample=None`` and accept the latch limit).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..logic.ternary import ONE, T, X, ZERO, from_bool
from ..netlist.circuit import Circuit
from .multi import BatchedBinarySimulator, all_states_array

__all__ = [
    "DEFAULT_MAX_LATCHES",
    "ExactSimulator",
    "exact_outputs",
    "is_initializing_sequence",
    "synchronized_state",
]

DEFAULT_MAX_LATCHES = 20

TernaryVec = Tuple[T, ...]


class ExactSimulator:
    """Sweep power-up states to compute exact unknown-state outputs.

    Parameters
    ----------
    circuit:
        The circuit to analyse.
    max_latches:
        Guard for the exhaustive sweep; exceeding it raises unless
        *sample* is given.
    sample:
        If set, use this many uniformly random power-up states instead
        of all ``2**n`` (with *seed*); the result is then a sound
        under-approximation of disagreement (X never wrongly reported).
    overrides:
        Optional stuck-at forcing (net -> bool), for fault analyses.
    """

    def __init__(
        self,
        circuit: Circuit,
        *,
        max_latches: int = DEFAULT_MAX_LATCHES,
        sample: Optional[int] = None,
        seed: int = 0,
        overrides=None,
    ) -> None:
        self.circuit = circuit
        self.exhaustive = sample is None
        if self.exhaustive:
            if circuit.num_latches > max_latches:
                raise ValueError(
                    "circuit %s has %d latches; exhaustive sweep capped at %d "
                    "(pass sample=... to subsample)"
                    % (circuit.name, circuit.num_latches, max_latches)
                )
            self.states = all_states_array(circuit.num_latches)
        else:
            rng = np.random.default_rng(seed)
            self.states = rng.integers(
                0, 2, size=(int(sample), circuit.num_latches)
            ).astype(bool)
        self._sim = BatchedBinarySimulator(circuit, overrides=overrides)

    def outputs(
        self, input_sequence: Iterable[Sequence[bool]], *, states: Optional[np.ndarray] = None
    ) -> Tuple[TernaryVec, ...]:
        """Exact three-valued output sequence for *input_sequence*.

        An optional explicit *states* array restricts the quantifier to
        a subset of power-up states -- the delayed-design analyses pass
        the reachable states of ``D^n`` here.
        """
        lanes = self.states if states is None else np.asarray(states, dtype=bool)
        per_cycle, _ = self._sim.run(lanes, input_sequence)
        result: List[TernaryVec] = []
        for outputs in per_cycle:
            row: List[T] = []
            for pin in range(outputs.shape[1]):
                column = outputs[:, pin]
                if column.all():
                    row.append(ONE)
                elif not column.any():
                    row.append(ZERO)
                else:
                    row.append(X)
            result.append(tuple(row))
        return tuple(result)

    def final_states(
        self, input_sequence: Iterable[Sequence[bool]], *, states: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """The set of final states (as array rows, duplicates possible)."""
        lanes = self.states if states is None else np.asarray(states, dtype=bool)
        _, final = self._sim.run(lanes, input_sequence)
        return final


def exact_outputs(
    circuit: Circuit,
    input_sequence: Iterable[Sequence[bool]],
    *,
    max_latches: int = DEFAULT_MAX_LATCHES,
    sample: Optional[int] = None,
    seed: int = 0,
) -> Tuple[TernaryVec, ...]:
    """Convenience wrapper: exact unknown-power-up output sequence.

    >>> from repro.bench.paper_circuits import figure1_design_d
    >>> from repro.logic.ternary import format_ternary_sequence
    >>> seq = [(False,), (True,), (True,), (True,)]
    >>> outs = exact_outputs(figure1_design_d(), seq)
    >>> format_ternary_sequence(v[0] for v in outs)
    '0·0·1·0'
    """
    sim = ExactSimulator(circuit, max_latches=max_latches, sample=sample, seed=seed)
    return sim.outputs(input_sequence)


def is_initializing_sequence(
    circuit: Circuit,
    input_sequence: Iterable[Sequence[bool]],
    *,
    max_latches: int = DEFAULT_MAX_LATCHES,
) -> bool:
    """Does *input_sequence* drive every power-up state to one state?

    This is the classical notion of an initializing (synchronizing /
    reset) sequence: Figure 2 of the paper shows design D initialised by
    the length-1 sequence ``0`` while the retimed C is not.
    """
    return synchronized_state(circuit, input_sequence, max_latches=max_latches) is not None


def synchronized_state(
    circuit: Circuit,
    input_sequence: Iterable[Sequence[bool]],
    *,
    max_latches: int = DEFAULT_MAX_LATCHES,
) -> Optional[Tuple[bool, ...]]:
    """The unique state reached from all power-up states, or ``None``.

    Returns the state tuple if *input_sequence* initialises the circuit,
    ``None`` if at least two power-up states end up in different states.
    """
    sim = ExactSimulator(circuit, max_latches=max_latches)
    final = sim.final_states(input_sequence)
    if final.shape[0] == 0:
        return None
    first = final[0]
    if (final == first).all():
        return tuple(bool(v) for v in first)
    return None
