"""The paper's hypothetical "sufficiently powerful simulator".

Section 2.1 defines a simulator which, for a given input sequence,
outputs at each time step:

* ``1`` iff **all** power-up states output 1 at that step,
* ``0`` iff all power-up states output 0,
* ``X`` otherwise (two power-up states disagree).

This is exact (non-conservative) three-valued simulation with respect to
an unknown power-up state.  The paper shows it *can* distinguish a
retimed circuit from the original (``0·0·1·0`` vs ``0·X·X·X`` for
Figure 1's D and C), which is what makes the CLS result interesting.

The implementation sweeps every power-up state with the compiled
lane-parallel core (:mod:`repro.sim.compiled`): one lane value per net
carries all ``2**n`` lanes, and the universal/existential verdict per
output pin is a single all-lanes comparison (all ones -> ``1``, all
zeros -> ``0``, anything else -> ``X``).  The lane representation is a
pluggable :class:`~repro.sim.compiled.LaneBackend` -- integer bitmasks
(``mask``) or numpy ``uint64`` word arrays (``words``); both produce
bit-for-bit identical verdicts.  The sweep is exact up to
:data:`DEFAULT_MAX_LATCHES` latches and falls back to random state
sampling beyond (sampling keeps the verdict sound for ``X`` but may
erroneously report a definite value; callers that need exactness pass
``sample=None`` and accept the latch limit).

Large sweeps shard across worker processes: with ``jobs > 1`` the
power-up lane space is partitioned into contiguous blocks, each worker
sweeps its blocks independently (the universal/existential verdict
distributes over any partition of the lanes), and the per-block
verdicts are merged deterministically.  The bulk arrays of the worker
payload -- the input sequence and any explicit power-up state rows --
travel via the shared-memory transport of :mod:`repro.sim.parallel`
(zero-copy attach; inline pickling as the portability fallback), and
exhaustive blocks are generated locally from lane indices so the
``2**n`` state array never crosses a process boundary at all.  This is
what makes exhaustive sweeps past the historical latch cap practical --
raise ``max_latches`` and pass ``jobs`` -- while ``jobs=1`` keeps the
original single-pass code path bit for bit.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..logic.ternary import ONE, T, X, ZERO
from ..netlist.circuit import Circuit
from ..obs.trace import TRACER as _TRACE
from ..obs.trace import span as _span
from .compiled import compile_circuit, get_lane_engine, resolve_lane_engine
from .multi import all_states_array
from .parallel import make_array_pack, resolve_jobs, run_sharded

__all__ = [
    "DEFAULT_MAX_LATCHES",
    "ExactSimulator",
    "exact_outputs",
    "is_initializing_sequence",
    "synchronized_state",
]

DEFAULT_MAX_LATCHES = 20

#: Below this many power-up lanes a pool costs more than it saves and
#: the parallel path quietly stays serial.
PARALLEL_MIN_LANES = 128

TernaryVec = Tuple[T, ...]


def _sweep_lane_block(payload, blocks):
    """Worker task: sweep contiguous lane blocks of the power-up space.

    *payload* is ``(circuit, overrides, pack, n, engine_name)`` where
    *pack* is an array pack (shared-memory or inline, see
    :func:`repro.sim.parallel.make_array_pack`) carrying the boolean
    ``"sequence"`` matrix and, for sampled/restricted sweeps, the
    explicit ``"states"`` rows; exhaustive blocks are generated locally
    from the lane indices, so the full ``2**n`` array never crosses the
    process boundary.  Per block, returns

    ``(per_cycle_flags, final_state_columns, block_size)``

    with ``per_cycle_flags[t][o] = (all_ones, all_zeros)`` for output
    ``o`` at cycle ``t`` -- the two quantifier verdicts restricted to
    this block -- and the final states already unpacked to a boolean
    ``(block, n)`` array, so the merge step is backend-agnostic.
    """
    circuit, overrides, pack, num_latches, engine_name = payload
    engine = get_lane_engine(engine_name)
    compiled = compile_circuit(circuit)
    forced = compiled.forced_binary(overrides)
    sequence = np.asarray(pack["sequence"], dtype=bool)
    states = pack["states"] if "states" in pack else None
    results = []
    for start, stop in blocks:
        batch = stop - start
        if states is None:
            state_vals = engine.state_range(start, stop, num_latches)
        else:
            lanes = np.asarray(states[start:stop], dtype=bool)
            state_vals = tuple(
                engine.pack_column(lanes[:, j]) for j in range(lanes.shape[1])
            )
        ctx = engine.context(batch)
        flags = []
        for vector in sequence:
            input_vals = [engine.constant(bool(bit), ctx) for bit in vector]
            out_vals, state_vals = engine.step_binary(
                compiled, state_vals, input_vals, ctx, forced
            )
            flags.append(
                tuple(
                    (engine.all_ones(v, ctx), engine.all_zeros(v)) for v in out_vals
                )
            )
        final = (
            np.stack([engine.unpack_column(v, batch) for v in state_vals], axis=1)
            if state_vals
            else np.zeros((batch, 0), dtype=bool)
        )
        results.append((tuple(flags), final, batch))
    return results


class ExactSimulator:
    """Sweep power-up states to compute exact unknown-state outputs.

    Parameters
    ----------
    circuit:
        The circuit to analyse.
    max_latches:
        Guard for the exhaustive sweep; exceeding it raises unless
        *sample* is given.
    sample:
        If set, use this many uniformly random power-up states instead
        of all ``2**n`` (with *seed*); the result is then a sound
        under-approximation of disagreement (X never wrongly reported).
    overrides:
        Optional stuck-at forcing (net -> bool), for fault analyses.
    jobs:
        Worker processes for lane-partitioned sweeps (``None`` -> the
        process default of :mod:`repro.sim.parallel`).  The lane space
        is split into contiguous blocks and the per-block verdicts
        merged; results are identical to the serial single-pass sweep.
        Sweeps under :data:`PARALLEL_MIN_LANES` lanes stay serial.
    lane_engine:
        Lane representation: ``"mask"``, ``"words"`` or ``None`` to
        track the process default backend (``--backend words`` switches
        every sweep to the word engine).  Verdicts are bit-for-bit
        identical across engines.
    """

    def __init__(
        self,
        circuit: Circuit,
        *,
        max_latches: int = DEFAULT_MAX_LATCHES,
        sample: Optional[int] = None,
        seed: int = 0,
        overrides=None,
        jobs: Optional[int] = None,
        lane_engine: Optional[str] = None,
    ) -> None:
        self.circuit = circuit
        self.exhaustive = sample is None
        self._states: Optional[np.ndarray] = None
        if self.exhaustive:
            if circuit.num_latches > max_latches:
                raise ValueError(
                    "circuit %s has %d latches; exhaustive sweep capped at %d "
                    "(pass sample=... to subsample)"
                    % (circuit.name, circuit.num_latches, max_latches)
                )
        else:
            rng = np.random.default_rng(seed)
            self._states = rng.integers(
                0, 2, size=(int(sample), circuit.num_latches)
            ).astype(bool)
        self.overrides = dict(overrides) if overrides else {}
        self.jobs = jobs
        self.lane_engine = lane_engine

    @property
    def states(self) -> np.ndarray:
        """The swept power-up states, one row per lane."""
        if self._states is None:
            self._states = all_states_array(self.circuit.num_latches)
        return self._states

    def _sweep(
        self,
        states: Optional[np.ndarray],
        input_sequence: Iterable[Sequence[bool]],
    ) -> Tuple[List[Tuple], Tuple, object, int, object]:
        """Run all lanes through the compiled core, staying in lane form."""
        engine = get_lane_engine(self.lane_engine)
        compiled = compile_circuit(self.circuit)
        if states is None and self.exhaustive:
            state_vals: Tuple = engine.exhaustive_states(self.circuit.num_latches)
            batch = 1 << self.circuit.num_latches
        else:
            lanes = np.asarray(
                self.states if states is None else states, dtype=bool
            )
            batch = lanes.shape[0]
            state_vals = tuple(
                engine.pack_column(lanes[:, j]) for j in range(lanes.shape[1])
            )
        ctx = engine.context(batch)
        forced = compiled.forced_binary(self.overrides)
        outputs_per_cycle: List[Tuple] = []
        with _span("sim.exact"):
            for vector in input_sequence:
                input_vals = [engine.constant(bool(bit), ctx) for bit in vector]
                out_vals, state_vals = engine.step_binary(
                    compiled, state_vals, input_vals, ctx, forced
                )
                outputs_per_cycle.append(out_vals)
        if _TRACE.enabled:
            counters = _TRACE.counters
            counters["sim.exact.sweeps"] = counters.get("sim.exact.sweeps", 0) + 1
            counters["sim.exact.lanes"] = counters.get("sim.exact.lanes", 0) + batch
            counters["sim.exact.cycles"] = (
                counters.get("sim.exact.cycles", 0) + len(outputs_per_cycle)
            )
        return outputs_per_cycle, state_vals, ctx, batch, engine

    def _batch_size(self, states: Optional[np.ndarray]) -> int:
        if states is not None:
            return np.asarray(states).shape[0]
        if self.exhaustive and self._states is None:
            return 1 << self.circuit.num_latches
        return self.states.shape[0]

    def _sweep_parallel(
        self,
        states: Optional[np.ndarray],
        input_sequence: Sequence[Sequence[bool]],
        jobs: int,
    ) -> List[Tuple]:
        """Shard the lane space into blocks; per-block results in order."""
        batch = self._batch_size(states)
        if states is None and self.exhaustive and self._states is None:
            explicit = None
        else:
            explicit = np.asarray(
                self.states if states is None else states, dtype=bool
            )
        sequence = tuple(tuple(bool(b) for b in vec) for vec in input_sequence)
        block_size = max(1, -(-batch // (jobs * 4)))
        blocks = [
            (start, min(start + block_size, batch))
            for start in range(0, batch, block_size)
        ]
        arrays = {
            "sequence": (
                np.asarray(sequence, dtype=bool)
                if sequence
                else np.zeros((0, len(self.circuit.inputs)), dtype=bool)
            )
        }
        if explicit is not None:
            arrays["states"] = explicit
        pack = make_array_pack(arrays)
        payload = (
            self.circuit,
            self.overrides,
            pack,
            self.circuit.num_latches,
            resolve_lane_engine(self.lane_engine),
        )
        try:
            with _span("sim.exact"):
                per_chunk = run_sharded(
                    _sweep_lane_block,
                    payload,
                    blocks,
                    jobs=jobs,
                    label="exact-sweep",
                )
        finally:
            pack.release()
        if _TRACE.enabled:
            counters = _TRACE.counters
            counters["sim.exact.sweeps"] = counters.get("sim.exact.sweeps", 0) + 1
            counters["sim.exact.lanes"] = counters.get("sim.exact.lanes", 0) + batch
            counters["sim.exact.cycles"] = (
                counters.get("sim.exact.cycles", 0) + len(sequence)
            )
        return per_chunk

    def _use_parallel(self, states: Optional[np.ndarray]) -> int:
        """The worker count to use, or 0 for the serial path."""
        jobs = resolve_jobs(self.jobs)
        if jobs > 1 and self._batch_size(states) >= PARALLEL_MIN_LANES:
            return jobs
        return 0

    def outputs(
        self, input_sequence: Iterable[Sequence[bool]], *, states: Optional[np.ndarray] = None
    ) -> Tuple[TernaryVec, ...]:
        """Exact three-valued output sequence for *input_sequence*.

        An optional explicit *states* array restricts the quantifier to
        a subset of power-up states -- the delayed-design analyses pass
        the reachable states of ``D^n`` here.
        """
        jobs = self._use_parallel(states)
        if jobs:
            sequence = [tuple(vec) for vec in input_sequence]
            blocks = self._sweep_parallel(states, sequence, jobs)
            num_outputs = len(self.circuit.outputs)
            verdicts = []
            for t in range(len(sequence)):
                row = []
                for o in range(num_outputs):
                    if all(flags[t][o][0] for flags, _, _ in blocks):
                        row.append(ONE)
                    elif all(flags[t][o][1] for flags, _, _ in blocks):
                        row.append(ZERO)
                    else:
                        row.append(X)
                verdicts.append(tuple(row))
            return tuple(verdicts)
        per_cycle, _, ctx, _, engine = self._sweep(states, input_sequence)
        return tuple(
            tuple(
                ONE
                if engine.all_ones(value, ctx)
                else (ZERO if engine.all_zeros(value) else X)
                for value in out_vals
            )
            for out_vals in per_cycle
        )

    def final_states(
        self, input_sequence: Iterable[Sequence[bool]], *, states: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """The set of final states (as array rows, duplicates possible)."""
        jobs = self._use_parallel(states)
        if jobs:
            sequence = [tuple(vec) for vec in input_sequence]
            blocks = self._sweep_parallel(states, sequence, jobs)
            return np.concatenate([final for _, final, _ in blocks], axis=0)
        _, final_vals, _, batch, engine = self._sweep(states, input_sequence)
        if not final_vals:
            return np.zeros((batch, 0), dtype=bool)
        return np.stack(
            [engine.unpack_column(value, batch) for value in final_vals], axis=1
        )


def exact_outputs(
    circuit: Circuit,
    input_sequence: Iterable[Sequence[bool]],
    *,
    max_latches: int = DEFAULT_MAX_LATCHES,
    sample: Optional[int] = None,
    seed: int = 0,
) -> Tuple[TernaryVec, ...]:
    """Convenience wrapper: exact unknown-power-up output sequence.

    >>> from repro.bench.paper_circuits import figure1_design_d
    >>> from repro.logic.ternary import format_ternary_sequence
    >>> seq = [(False,), (True,), (True,), (True,)]
    >>> outs = exact_outputs(figure1_design_d(), seq)
    >>> format_ternary_sequence(v[0] for v in outs)
    '0·0·1·0'
    """
    sim = ExactSimulator(circuit, max_latches=max_latches, sample=sample, seed=seed)
    return sim.outputs(input_sequence)


def is_initializing_sequence(
    circuit: Circuit,
    input_sequence: Iterable[Sequence[bool]],
    *,
    max_latches: int = DEFAULT_MAX_LATCHES,
) -> bool:
    """Does *input_sequence* drive every power-up state to one state?

    This is the classical notion of an initializing (synchronizing /
    reset) sequence: Figure 2 of the paper shows design D initialised by
    the length-1 sequence ``0`` while the retimed C is not.
    """
    return synchronized_state(circuit, input_sequence, max_latches=max_latches) is not None


def synchronized_state(
    circuit: Circuit,
    input_sequence: Iterable[Sequence[bool]],
    *,
    max_latches: int = DEFAULT_MAX_LATCHES,
) -> Optional[Tuple[bool, ...]]:
    """The unique state reached from all power-up states, or ``None``.

    Returns the state tuple if *input_sequence* initialises the circuit,
    ``None`` if at least two power-up states end up in different states.
    """
    sim = ExactSimulator(circuit, max_latches=max_latches)
    final = sim.final_states(input_sequence)
    if final.shape[0] == 0:
        return None
    first = final[0]
    if (final == first).all():
        return tuple(bool(v) for v in first)
    return None
