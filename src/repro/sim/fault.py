"""Stuck-at faults and sequential test evaluation.

Section 2.2 of the paper shows that a sequential test for a single
stuck-at fault can stop working after retiming; Theorem 4.6 restores the
result for sufficiently delayed designs.  This module provides the
machinery those arguments run on:

* :class:`StuckAtFault` -- a net stuck at 0 or 1.  In single-fanout
  normal form every cell pin has its own net, so net faults subsume the
  classical pin faults (fanout branches are separate nets behind the
  ``JUNC`` cell, exactly as fanout-branch faults require).
* fault injection via simulator overrides,
* two detection semantics for a test sequence under unknown power-up:

  ``detects_exact``
      there is a time step and output where the fault-free circuit
      produces one definite value **from every power-up state** and the
      faulty circuit produces the complementary definite value from
      every power-up state.  This is the criterion used for the
      Figure 3 discussion ("the fault-free version of D produces the
      output 0·0 from all power-up states whereas the faulty version
      produces 0·1").

  ``detects_cls``
      the same, but with the conservative three-valued simulator as the
      yardstick (both circuits started all-X).  Because the CLS is
      conservative, CLS-detection implies exact-detection; the converse
      fails, which is the price a 3-valued test methodology pays.

* a small fault simulator with fault dropping for whole test sets --
  optionally fault-partitioned across worker processes
  (:mod:`repro.sim.parallel`): each fault's verdict (the index of the
  first detecting test) is independent of every other fault's, so the
  fault list shards freely and the merged verdict map is bit-for-bit
  the serial one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..logic.ternary import ONE, T, X, ZERO, from_bool, is_definite
from ..netlist.circuit import Circuit
from ..obs.trace import TRACER as _TRACE
from ..obs.trace import span as _span
from .exact import ExactSimulator
from .parallel import make_array_pack, resolve_jobs, run_sharded
from .ternary_sim import TernarySimulator, all_x_state

__all__ = [
    "StuckAtFault",
    "enumerate_faults",
    "faulty_overrides",
    "good_outputs",
    "detects_exact",
    "detects_cls",
    "detection_time",
    "pack_grading_arrays",
    "unpack_grading_arrays",
    "FaultSimulator",
    "TestEvaluation",
]

BoolVec = Tuple[bool, ...]


@dataclass(frozen=True)
class StuckAtFault:
    """A single stuck-at fault: *net* permanently holds *value*."""

    net: str
    value: bool

    def __str__(self) -> str:
        return "%s/s-a-%d" % (self.net, int(self.value))


def enumerate_faults(circuit: Circuit, nets: Optional[Iterable[str]] = None) -> Tuple[StuckAtFault, ...]:
    """All stuck-at-0/1 faults on the given nets (default: every net)."""
    targets = tuple(nets) if nets is not None else circuit.nets()
    faults: List[StuckAtFault] = []
    for net in targets:
        faults.append(StuckAtFault(net, False))
        faults.append(StuckAtFault(net, True))
    return tuple(faults)


def faulty_overrides(fault: StuckAtFault) -> Dict[str, bool]:
    """Simulator override map injecting *fault*."""
    return {fault.net: fault.value}


def _ternary_overrides(fault: StuckAtFault) -> Dict[str, T]:
    return {fault.net: ONE if fault.value else ZERO}


@dataclass(frozen=True)
class TestEvaluation:
    """Outcome of evaluating one test sequence against one fault.

    ``detected`` is the verdict; ``time_step``/``output_index`` locate
    the first distinguishing observation (both ``None`` if undetected);
    ``good_value`` is the definite fault-free value observed there.
    """

    detected: bool
    time_step: Optional[int] = None
    output_index: Optional[int] = None
    good_value: Optional[bool] = None


def _first_distinguishing(
    good: Sequence[Sequence[T]], bad: Sequence[Sequence[T]]
) -> TestEvaluation:
    for t, (good_vec, bad_vec) in enumerate(zip(good, bad)):
        for o, (g, b) in enumerate(zip(good_vec, bad_vec)):
            if is_definite(g) and is_definite(b) and g is not b:
                return TestEvaluation(True, t, o, g is ONE)
    return TestEvaluation(False)


def good_outputs(
    circuit: Circuit,
    test: Sequence[Sequence[bool]],
    *,
    semantics: str = "exact",
    max_latches: int = 20,
) -> Tuple[Tuple[T, ...], ...]:
    """Fault-free reference outputs of *circuit* for *test*.

    Fault grading compares every fault against the same fault-free run;
    computing it once per test (instead of once per fault-test pair)
    and passing it via the ``good=`` parameter of :func:`detects_exact`
    / :func:`detects_cls` halves the simulation work of a grading sweep.
    """
    if semantics == "exact":
        return ExactSimulator(circuit, max_latches=max_latches).outputs(test)
    if semantics == "cls":
        return tuple(TernarySimulator(circuit).run_from_unknown(test).outputs)
    raise ValueError("semantics must be 'exact' or 'cls', not %r" % semantics)


def detects_exact(
    circuit: Circuit,
    fault: StuckAtFault,
    test: Sequence[Sequence[bool]],
    *,
    max_latches: int = 20,
    good: Optional[Sequence[Sequence[T]]] = None,
) -> TestEvaluation:
    """Exact-semantics detection verdict (all power-up states swept)."""
    if _TRACE.enabled:
        _TRACE.incr("sim.fault.evals")
    if good is None:
        good = good_outputs(circuit, test, semantics="exact", max_latches=max_latches)
    faulty_sim = ExactSimulator(
        circuit, max_latches=max_latches, overrides=faulty_overrides(fault)
    )
    bad = faulty_sim.outputs(test)
    return _first_distinguishing(good, bad)


def detects_cls(
    circuit: Circuit,
    fault: StuckAtFault,
    test: Sequence[Sequence[T]],
    *,
    good: Optional[Sequence[Sequence[T]]] = None,
) -> TestEvaluation:
    """CLS-semantics detection verdict (both circuits started all-X)."""
    if _TRACE.enabled:
        _TRACE.incr("sim.fault.evals")
    if good is None:
        good = good_outputs(circuit, test, semantics="cls")
    bad_sim = TernarySimulator(circuit, overrides=_ternary_overrides(fault))
    bad = bad_sim.run_from_unknown(test).outputs
    return _first_distinguishing(good, bad)


def detection_time(
    circuit: Circuit,
    fault: StuckAtFault,
    test: Sequence[Sequence[bool]],
    *,
    semantics: str = "exact",
) -> Optional[int]:
    """Cycle index (0-based) at which *test* first detects *fault*, or
    ``None``.  ``semantics`` is ``"exact"`` or ``"cls"``."""
    if semantics == "exact":
        verdict = detects_exact(circuit, fault, test)
    elif semantics == "cls":
        verdict = detects_cls(circuit, fault, test)
    else:
        raise ValueError("semantics must be 'exact' or 'cls', not %r" % semantics)
    return verdict.time_step if verdict.detected else None


#: Shared worker context for fault-partitioned grading: the circuit, an
#: array pack (shared-memory or inline, see
#: :func:`repro.sim.parallel.make_array_pack`) carrying the padded test
#: set and per-test fault-free reference outputs (computed once in the
#: parent, attached zero-copy by every worker) and the semantics.
GradingPayload = Tuple[Circuit, object, str]

#: Code points of the packed ternary reference-output arrays.  Decoding
#: must restore the module singletons -- detection compares with ``is``.
_T_CODE = {ZERO: 0, ONE: 1, X: 2}
_T_OF_CODE = (ZERO, ONE, X)


def pack_grading_arrays(
    tests: Sequence[Sequence[Sequence[bool]]],
    goods: Sequence[Sequence[Sequence[T]]],
    num_inputs: int,
    num_outputs: int,
) -> Dict[str, np.ndarray]:
    """Pad a test set and its reference outputs into dense arrays.

    ``tests`` becomes a boolean ``(num_tests, max_len, num_inputs)``
    block, ``goods`` a ``uint8`` ternary-coded block of matching shape
    over the outputs, plus a ``lengths`` vector -- the layout the
    shared-memory transport ships to grading workers.
    """
    num_tests = len(tests)
    max_len = max((len(t) for t in tests), default=0)
    tests_arr = np.zeros((num_tests, max_len, num_inputs), dtype=bool)
    goods_arr = np.zeros((num_tests, max_len, num_outputs), dtype=np.uint8)
    lengths = np.zeros(num_tests, dtype=np.int64)
    for i, (test, good) in enumerate(zip(tests, goods)):
        lengths[i] = len(test)
        for t, vector in enumerate(test):
            tests_arr[i, t] = np.fromiter(
                (bool(v) for v in vector), dtype=bool, count=num_inputs
            )
        for t, vector in enumerate(good):
            goods_arr[i, t] = np.fromiter(
                (_T_CODE[v] for v in vector), dtype=np.uint8, count=num_outputs
            )
    return {"tests": tests_arr, "goods": goods_arr, "lengths": lengths}


def unpack_grading_arrays(pack) -> Tuple[Tuple, Tuple]:
    """Rebuild ``(tests, goods)`` tuples from a grading array pack.

    Ternary codes decode back to the ``ZERO``/``ONE``/``X`` singletons,
    which detection verdicts rely on (identity comparison).
    """
    tests_arr = np.asarray(pack["tests"], dtype=bool)
    goods_arr = np.asarray(pack["goods"])
    lengths = pack["lengths"]
    tests: List[Tuple] = []
    goods: List[Tuple] = []
    for i in range(tests_arr.shape[0]):
        length = int(lengths[i])
        tests.append(
            tuple(
                tuple(bool(v) for v in tests_arr[i, t]) for t in range(length)
            )
        )
        goods.append(
            tuple(
                tuple(_T_OF_CODE[int(c)] for c in goods_arr[i, t])
                for t in range(length)
            )
        )
    return tuple(tests), tuple(goods)


def _first_detecting_index(
    payload: GradingPayload, faults: Sequence[StuckAtFault]
) -> List[Optional[int]]:
    """Worker task: first detecting test index per fault (or ``None``).

    Must stay a module-level function so :func:`repro.sim.parallel.run_sharded`
    can pickle it by reference.
    """
    circuit, pack, semantics = payload
    tests, goods = unpack_grading_arrays(pack)
    detect = detects_exact if semantics == "exact" else detects_cls
    verdicts: List[Optional[int]] = []
    for fault in faults:
        found: Optional[int] = None
        for index, (test, good) in enumerate(zip(tests, goods)):
            if detect(circuit, fault, test, good=good).detected:
                found = index
                break
        verdicts.append(found)
    return verdicts


class FaultSimulator:
    """Evaluate test sets against fault lists, with fault dropping.

    Parameters
    ----------
    circuit:
        Fault-free reference circuit.
    semantics:
        ``"exact"`` (power-up sweep) or ``"cls"`` (conservative
        three-valued, all-X start).
    jobs:
        Worker processes for fault-partitioned grading (``None`` -> the
        process default of :mod:`repro.sim.parallel`; ``1`` = serial).
        The verdicts are identical either way -- each fault's first
        detecting test does not depend on any other fault.
    """

    def __init__(
        self,
        circuit: Circuit,
        *,
        semantics: str = "exact",
        jobs: Optional[int] = None,
    ) -> None:
        if semantics not in ("exact", "cls"):
            raise ValueError("semantics must be 'exact' or 'cls'")
        self.circuit = circuit
        self.semantics = semantics
        self.jobs = jobs

    def _detects(
        self,
        fault: StuckAtFault,
        test: Sequence[Sequence[bool]],
        good: Optional[Sequence[Sequence[T]]] = None,
    ) -> bool:
        if self.semantics == "exact":
            return detects_exact(self.circuit, fault, test, good=good).detected
        return detects_cls(self.circuit, fault, test, good=good).detected

    def run_test_set(
        self,
        tests: Sequence[Sequence[Sequence[bool]]],
        faults: Optional[Sequence[StuckAtFault]] = None,
    ) -> Dict[StuckAtFault, Optional[int]]:
        """Map each fault to the index of the first detecting test
        (``None`` if the whole set misses it).  Detected faults are
        dropped from later tests (classical fault dropping).

        With ``jobs > 1`` the fault list is sharded across worker
        processes; the fault-free reference outputs are computed once
        here and shipped to every worker, and per-fault dropping (stop
        at the first detecting test) happens inside each shard.  The
        returned map is identical to the serial one.
        """
        fault_list = list(faults) if faults is not None else list(enumerate_faults(self.circuit))
        if _TRACE.enabled:
            counters = _TRACE.counters
            counters["sim.fault.faults"] = (
                counters.get("sim.fault.faults", 0) + len(fault_list)
            )
            counters["sim.fault.tests"] = counters.get("sim.fault.tests", 0) + len(tests)
        jobs = resolve_jobs(self.jobs)
        if jobs > 1 and len(fault_list) > 1:
            frozen_tests = tuple(tuple(tuple(v) for v in test) for test in tests)
            goods = tuple(
                good_outputs(self.circuit, test, semantics=self.semantics)
                for test in frozen_tests
            )
            pack = make_array_pack(
                pack_grading_arrays(
                    frozen_tests,
                    goods,
                    len(self.circuit.inputs),
                    len(self.circuit.outputs),
                )
            )
            payload: GradingPayload = (self.circuit, pack, self.semantics)
            try:
                with _span("sim.fault.grade"):
                    first = run_sharded(
                        _first_detecting_index,
                        payload,
                        fault_list,
                        jobs=jobs,
                        label="fault-grading",
                    )
            finally:
                pack.release()
            if _TRACE.enabled:
                _TRACE.incr(
                    "sim.fault.detected", sum(1 for v in first if v is not None)
                )
            return dict(zip(fault_list, first))
        verdicts: Dict[StuckAtFault, Optional[int]] = {f: None for f in fault_list}
        remaining = list(fault_list)
        with _span("sim.fault.grade"):
            for index, test in enumerate(tests):
                good = good_outputs(self.circuit, test, semantics=self.semantics)
                still: List[StuckAtFault] = []
                for fault in remaining:
                    if self._detects(fault, test, good):
                        verdicts[fault] = index
                    else:
                        still.append(fault)
                remaining = still
                if not remaining:
                    break
        if _TRACE.enabled:
            _TRACE.incr(
                "sim.fault.detected",
                sum(1 for v in verdicts.values() if v is not None),
            )
        return verdicts

    def coverage(
        self,
        tests: Sequence[Sequence[Sequence[bool]]],
        faults: Optional[Sequence[StuckAtFault]] = None,
    ) -> float:
        """Fraction of faults detected by the test set."""
        verdicts = self.run_test_set(tests, faults)
        if not verdicts:
            return 1.0
        detected = sum(1 for v in verdicts.values() if v is not None)
        return detected / float(len(verdicts))
