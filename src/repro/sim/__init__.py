"""Simulators: binary, conservative three-valued (CLS), exact, faulty.

All of them evaluate through the compile-once core in
:mod:`repro.sim.compiled`; :func:`propagate` remains the reference
interpreter the property tests cross-check against.
"""

from .core import SimulationTrace, propagate  # noqa: F401
from .parallel import (  # noqa: F401
    ArrayPack,
    ParallelStats,
    SharedArrayPack,
    TRANSPORTS,
    default_job_count,
    get_default_jobs,
    make_array_pack,
    resolve_jobs,
    run_sharded,
    set_default_jobs,
)
from .compiled import (  # noqa: F401
    BACKENDS,
    LANE_ENGINES,
    CompiledCircuit,
    LaneBackend,
    MaskLaneBackend,
    WordLaneBackend,
    compile_circuit,
    get_default_backend,
    get_lane_engine,
    resolve_backend,
    resolve_lane_engine,
    set_default_backend,
)
from .binary import (  # noqa: F401
    BinarySimulator,
    all_power_up_states,
    format_state,
    parse_state,
    state_from_int,
    state_to_int,
)
from .ternary_sim import (  # noqa: F401
    TernarySimulator,
    all_x_state,
    cls_outputs,
    cls_resets,
)
from .multi import BatchedBinarySimulator, all_states_array  # noqa: F401
from .exact import (  # noqa: F401
    ExactSimulator,
    exact_outputs,
    is_initializing_sequence,
    synchronized_state,
)
from .fault import (  # noqa: F401
    FaultSimulator,
    StuckAtFault,
    TestEvaluation,
    detection_time,
    detects_cls,
    detects_exact,
    enumerate_faults,
    faulty_overrides,
    good_outputs,
)
from .atpg import AtpgResult, generate_tests, grade_test_set  # noqa: F401
from .event_driven import ActivityStats, EventDrivenSimulator  # noqa: F401
from .ternary_multi import (  # noqa: F401
    BatchedTernarySimulator,
    decode_ternary,
    encode_ternary,
)
from .vcd import trace_to_vcd  # noqa: F401
