"""Combinational cell functions: binary and conservative ternary semantics.

A *cell function* describes what one library cell computes, independent
of any particular instantiation in a netlist.  Every cell function
carries two evaluators:

``eval_binary(inputs) -> outputs``
    the ordinary Boolean semantics over tuples of ``bool``;

``eval_ternary(inputs) -> outputs``
    the *conservative* three-valued semantics used by the CLS
    (Section 5 of the paper).  For a single cell the conservative
    semantics is the exact ternary image of the binary function --
    conservativeness arises globally, because each cell forgets the
    correlations between the ``X`` values on its inputs (the paper's
    AND-of-complementary-X example).

The default ternary evaluator provided by :class:`CellFunction` computes
the exact per-cell image by enumerating the definite completions of the
input vector and taking the pointwise :func:`~repro.logic.ternary.meet`
of the resulting outputs.  Standard gates override this with O(n) Kleene
evaluators, which coincide with the exact per-cell image (a classical
fact, verified exhaustively by the test-suite).

The registry at the bottom of this module defines the cell library of
the paper's circuit model (Section 3.2): single-output gates, the
multi-output fanout junction ``JUNC``, and constant cells.  Constant
cells deserve a note: the paper's Section 5 assumes that *"if all inputs
of any combinational element are X's, then all outputs are X's"*, an
assumption a constant cell violates; :attr:`CellFunction.all_x_to_all_x`
records whether each cell satisfies it, and the retiming validity
checker refuses hazardous moves across cells that do not.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence, Tuple

from .ternary import (
    ONE,
    T,
    X,
    ZERO,
    definite_completions,
    from_bool,
    meet,
    t_and_all,
    t_mux,
    t_not,
    t_or_all,
    t_xor_all,
)

__all__ = [
    "CellFunction",
    "make_gate",
    "junction",
    "registry_names",
    "get_function",
    "AND",
    "OR",
    "NAND",
    "NOR",
    "XOR",
    "XNOR",
    "NOT",
    "BUF",
    "MUX",
    "CONST0",
    "CONST1",
]

BinaryEval = Callable[[Tuple[bool, ...]], Tuple[bool, ...]]
TernaryEval = Callable[[Tuple[T, ...]], Tuple[T, ...]]


@dataclass(frozen=True)
class CellFunction:
    """The behaviour of one combinational library cell.

    Parameters
    ----------
    name:
        Library name, e.g. ``"AND"`` or ``"JUNC3"``.
    n_inputs, n_outputs:
        Pin counts.  All cells here have fixed arity; variable-arity
        gates are materialised per arity by :func:`make_gate`.
    binary:
        The Boolean evaluator.
    ternary:
        Optional fast conservative ternary evaluator.  When omitted the
        exact per-cell ternary image is computed from ``binary`` by
        completion enumeration (exponential in the number of X inputs --
        fine for library cells, which are small).
    """

    name: str
    n_inputs: int
    n_outputs: int
    binary: BinaryEval
    ternary: Optional[TernaryEval] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.n_inputs < 0 or self.n_outputs < 1:
            raise ValueError(
                "cell %s must have >= 0 inputs and >= 1 output" % self.name
            )

    # -- evaluation ---------------------------------------------------

    def eval_binary(self, inputs: Sequence[bool]) -> Tuple[bool, ...]:
        """Evaluate the Boolean function on a definite input vector."""
        if len(inputs) != self.n_inputs:
            raise ValueError(
                "cell %s expects %d inputs, got %d"
                % (self.name, self.n_inputs, len(inputs))
            )
        outputs = self.binary(tuple(bool(v) for v in inputs))
        if len(outputs) != self.n_outputs:
            raise AssertionError(
                "cell %s produced %d outputs, declared %d"
                % (self.name, len(outputs), self.n_outputs)
            )
        return outputs

    def eval_ternary(self, inputs: Sequence[T]) -> Tuple[T, ...]:
        """Evaluate the conservative ternary function.

        Uses the registered fast evaluator when present, otherwise the
        exact per-cell image (meet over all definite completions).
        """
        if len(inputs) != self.n_inputs:
            raise ValueError(
                "cell %s expects %d inputs, got %d"
                % (self.name, self.n_inputs, len(inputs))
            )
        vector = tuple(inputs)
        if self.ternary is not None:
            outputs = self.ternary(vector)
            if len(outputs) != self.n_outputs:
                raise AssertionError(
                    "cell %s ternary evaluator produced %d outputs, declared %d"
                    % (self.name, len(outputs), self.n_outputs)
                )
            return outputs
        return self.exact_ternary_image(vector)

    def exact_ternary_image(self, inputs: Sequence[T]) -> Tuple[T, ...]:
        """Exact ternary image of this cell on *inputs*.

        An output is definite iff every definite completion of the input
        vector produces the same Boolean value there.  This is the gold
        standard against which fast ternary evaluators are tested.
        """
        acc: Optional[Tuple[T, ...]] = None
        for completion in definite_completions(tuple(inputs)):
            out = self.eval_binary(tuple(v is ONE for v in completion))
            out_t = tuple(from_bool(v) for v in out)
            acc = out_t if acc is None else tuple(meet(a, b) for a, b in zip(acc, out_t))
        assert acc is not None
        return acc

    # -- structural queries --------------------------------------------

    @property
    def family(self) -> str:
        """The library family this cell evaluates as.

        One of ``AND OR NAND NOR XOR XNOR NOT BUF MUX CONST0 CONST1
        JUNC`` -- or ``GENERIC`` for cells outside the standard library
        (or with non-standard pin counts), which evaluators must handle
        via :meth:`eval_binary` / :meth:`eval_ternary`.  This is the
        opcode source for :mod:`repro.sim.compiled` and the batched
        simulators; family classification is by library name, exactly
        the convention :func:`make_gate` / :func:`junction` establish.
        """
        head = self.name.rstrip("0123456789")
        if head in _GATE_SPECS and self.n_outputs == 1 and self.n_inputs >= 1:
            return head
        if head == "JUNC" and self.n_inputs == 1 and self.n_outputs >= 1:
            return "JUNC"
        if self.name == "NOT" and (self.n_inputs, self.n_outputs) == (1, 1):
            return "NOT"
        if self.name == "BUF" and (self.n_inputs, self.n_outputs) == (1, 1):
            return "BUF"
        if self.name == "MUX" and (self.n_inputs, self.n_outputs) == (3, 1):
            return "MUX"
        if head == "CONST" and (self.n_inputs, self.n_outputs) == (0, 1):
            return "CONST1" if self.name.endswith("1") else "CONST0"
        return "GENERIC"

    @property
    def is_multi_output(self) -> bool:
        """True for cells with more than one output pin."""
        return self.n_outputs > 1

    # -- pickling ------------------------------------------------------

    def __reduce__(self):
        """Pickle library cells by name, via the registry.

        The evaluators of registry cells are closures/lambdas and do not
        pickle; reconstructing through :func:`get_function` restores the
        per-process singleton instead.  This is what lets circuits and
        compiled programs cross process boundaries for the parallel
        execution layer (:mod:`repro.sim.parallel`).  ``GENERIC`` cells
        fall back to field-wise pickling, which works exactly when their
        evaluators are module-level functions.
        """
        if self.family != "GENERIC":
            return (get_function, (self.name,))
        return (
            CellFunction,
            (self.name, self.n_inputs, self.n_outputs, self.binary, self.ternary),
        )

    def output_image(self) -> frozenset:
        """The set of producible output vectors (as bool tuples).

        This is the object the justifiability definition (Section 3.2)
        quantifies over: the cell is justifiable iff the image is all of
        ``2**n_outputs``.
        """
        image = set()
        for bits in itertools.product((False, True), repeat=self.n_inputs):
            image.add(self.eval_binary(bits))
        return frozenset(image)

    @property
    def is_justifiable(self) -> bool:
        """True iff every output vector is produced by some input vector."""
        return len(self.output_image()) == 2 ** self.n_outputs

    @property
    def all_x_to_all_x(self) -> bool:
        """Does an all-X input vector map to an all-X output vector?

        Section 5 requires this of every cell for the CLS-invariance
        theorem; constant cells are the canonical violators.  Cells with
        zero inputs vacuously have an "all-X" input, so a constant cell
        fails the check.
        """
        out = self.eval_ternary((X,) * self.n_inputs)
        return all(v is X for v in out)


# ---------------------------------------------------------------------------
# Gate constructors.
# ---------------------------------------------------------------------------


def _bool_and(inputs: Tuple[bool, ...]) -> Tuple[bool, ...]:
    return (all(inputs),)


def _bool_or(inputs: Tuple[bool, ...]) -> Tuple[bool, ...]:
    return (any(inputs),)


def _bool_nand(inputs: Tuple[bool, ...]) -> Tuple[bool, ...]:
    return (not all(inputs),)


def _bool_nor(inputs: Tuple[bool, ...]) -> Tuple[bool, ...]:
    return (not any(inputs),)


def _bool_xor(inputs: Tuple[bool, ...]) -> Tuple[bool, ...]:
    acc = False
    for v in inputs:
        acc ^= v
    return (acc,)


def _bool_xnor(inputs: Tuple[bool, ...]) -> Tuple[bool, ...]:
    acc = True
    for v in inputs:
        acc ^= v
    return (acc,)


def _bool_not(inputs: Tuple[bool, ...]) -> Tuple[bool, ...]:
    return (not inputs[0],)


def _bool_buf(inputs: Tuple[bool, ...]) -> Tuple[bool, ...]:
    return (inputs[0],)


def _bool_mux(inputs: Tuple[bool, ...]) -> Tuple[bool, ...]:
    select, when_zero, when_one = inputs
    return (when_one if select else when_zero,)


_GATE_SPECS: Dict[str, Tuple[BinaryEval, TernaryEval]] = {
    "AND": (_bool_and, lambda v: (t_and_all(v),)),
    "OR": (_bool_or, lambda v: (t_or_all(v),)),
    "NAND": (_bool_nand, lambda v: (t_not(t_and_all(v)),)),
    "NOR": (_bool_nor, lambda v: (t_not(t_or_all(v)),)),
    "XOR": (_bool_xor, lambda v: (t_xor_all(v),)),
    "XNOR": (_bool_xnor, lambda v: (t_not(t_xor_all(v)),)),
}


def make_gate(kind: str, n_inputs: int) -> CellFunction:
    """Build a single-output gate function of the given kind and arity.

    ``kind`` is one of ``AND OR NAND NOR XOR XNOR NOT BUF MUX CONST0
    CONST1``.  ``NOT``/``BUF`` require arity 1, ``MUX`` arity 3
    (select, data0, data1), constants arity 0.  Results are cached in a
    registry so that equal gates are the same object.
    """
    kind = kind.upper()
    key = (kind, n_inputs)
    cached = _REGISTRY.get(key)
    if cached is not None:
        return cached

    if kind in _GATE_SPECS:
        if n_inputs < 1:
            raise ValueError("%s gate needs at least one input" % kind)
        binary, ternary = _GATE_SPECS[kind]
        fn = CellFunction(
            name="%s%d" % (kind, n_inputs) if n_inputs != 2 else kind,
            n_inputs=n_inputs,
            n_outputs=1,
            binary=binary,
            ternary=ternary,
        )
    elif kind == "NOT":
        if n_inputs != 1:
            raise ValueError("NOT gate must have exactly one input")
        fn = CellFunction("NOT", 1, 1, _bool_not, lambda v: (t_not(v[0]),))
    elif kind == "BUF":
        if n_inputs != 1:
            raise ValueError("BUF gate must have exactly one input")
        fn = CellFunction("BUF", 1, 1, _bool_buf, lambda v: (v[0],))
    elif kind == "MUX":
        if n_inputs != 3:
            raise ValueError("MUX gate must have exactly three inputs")
        fn = CellFunction("MUX", 3, 1, _bool_mux, lambda v: (t_mux(v[0], v[1], v[2]),))
    elif kind == "CONST0":
        if n_inputs != 0:
            raise ValueError("CONST0 has no inputs")
        fn = CellFunction("CONST0", 0, 1, lambda v: (False,), lambda v: (ZERO,))
    elif kind == "CONST1":
        if n_inputs != 0:
            raise ValueError("CONST1 has no inputs")
        fn = CellFunction("CONST1", 0, 1, lambda v: (True,), lambda v: (ONE,))
    else:
        raise ValueError("unknown gate kind %r" % (kind,))

    _REGISTRY[key] = fn
    return fn


def junction(fanout: int) -> CellFunction:
    """The k-way fanout junction ``JUNC`` (Figure 5 of the paper).

    One input, ``fanout`` equal outputs.  For ``fanout > 1`` only the
    all-equal output vectors are producible, so the cell is
    non-justifiable -- the root cause of retiming's unsafety.
    """
    if fanout < 1:
        raise ValueError("junction fanout must be >= 1")
    key = ("JUNC", fanout)
    cached = _REGISTRY.get(key)
    if cached is not None:
        return cached

    def binary(inputs: Tuple[bool, ...], _k: int = fanout) -> Tuple[bool, ...]:
        return (inputs[0],) * _k

    def ternary(inputs: Tuple[T, ...], _k: int = fanout) -> Tuple[T, ...]:
        return (inputs[0],) * _k

    fn = CellFunction("JUNC%d" % fanout, 1, fanout, binary, ternary)
    _REGISTRY[key] = fn
    return fn


_REGISTRY: Dict[Tuple[str, int], CellFunction] = {}


def registry_names() -> Tuple[str, ...]:
    """Names of all cell functions materialised so far."""
    return tuple(sorted(fn.name for fn in _REGISTRY.values()))


def get_function(name: str) -> CellFunction:
    """Look up a cell function by its library name (e.g. ``AND3``,
    ``JUNC2``, ``MUX``), materialising it on demand."""
    name = name.upper()
    for fn in _REGISTRY.values():
        if fn.name == name:
            return fn
    # Parse trailing arity, e.g. AND3 / JUNC2.
    head = name.rstrip("0123456789")
    tail = name[len(head):]
    if head == "JUNC" and tail:
        return junction(int(tail))
    if head in ("CONST",):
        return make_gate(name, 0)
    if tail:
        return make_gate(head, int(tail))
    defaults = {"AND": 2, "OR": 2, "NAND": 2, "NOR": 2, "XOR": 2, "XNOR": 2,
                "NOT": 1, "BUF": 1, "MUX": 3, "CONST0": 0, "CONST1": 0}
    if head in defaults:
        return make_gate(head, defaults[head])
    raise ValueError("unknown cell function name %r" % (name,))


# Convenience singletons for the common 2-input / 1-input library cells.
AND = make_gate("AND", 2)
OR = make_gate("OR", 2)
NAND = make_gate("NAND", 2)
NOR = make_gate("NOR", 2)
XOR = make_gate("XOR", 2)
XNOR = make_gate("XNOR", 2)
NOT = make_gate("NOT", 1)
BUF = make_gate("BUF", 1)
MUX = make_gate("MUX", 3)
CONST0 = make_gate("CONST0", 0)
CONST1 = make_gate("CONST1", 0)
