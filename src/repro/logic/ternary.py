"""Three-valued (ternary) logic values and Kleene operators.

The paper's conservative three-valued logic simulator (CLS, Section 5)
operates over the value set ``{0, 1, X}`` where ``X`` denotes an unknown
(undetermined) logic value.  This module provides:

* :class:`T` -- the ternary value type (an ``IntEnum`` with members
  :data:`ZERO`, :data:`ONE` and :data:`X`),
* the Kleene (strong three-valued) connectives ``t_not``, ``t_and``,
  ``t_or``, ``t_xor`` and friends, which implement exactly the "local
  propagation" semantics the paper assumes for individual gates
  (``0 · X = 0`` but ``1 · X = X``),
* conversion helpers between Python booleans / ints / characters and
  ternary values, and sequence helpers used throughout the simulators.

Information ordering
--------------------

The ternary domain is a flat CPO with ``X`` at the bottom::

        0       1
         \\     /
           X

``refines(a, b)`` is true when ``a`` is at least as defined as ``b``
(i.e. ``b == X`` or ``a == b``).  All Kleene connectives are monotone
with respect to this order; the property tests in
``tests/logic/test_ternary.py`` verify monotonicity exhaustively.
"""

from __future__ import annotations

import enum
from typing import Iterable, List, Sequence, Tuple, Union

__all__ = [
    "T",
    "ZERO",
    "ONE",
    "X",
    "TernaryLike",
    "to_ternary",
    "from_bool",
    "to_bool",
    "is_definite",
    "refines",
    "meet",
    "t_not",
    "t_and",
    "t_or",
    "t_nand",
    "t_nor",
    "t_xor",
    "t_xnor",
    "t_buf",
    "t_mux",
    "t_and_all",
    "t_or_all",
    "t_xor_all",
    "parse_ternary_string",
    "format_ternary",
    "format_ternary_sequence",
    "all_ternary_vectors",
    "definite_completions",
    "vector_refines",
]


class T(enum.IntEnum):
    """A three-valued logic constant: ``ZERO``, ``ONE`` or ``X``.

    The integer encoding (0, 1, 2) is an implementation detail but is
    stable and used by the table-driven gate evaluators for speed.
    """

    ZERO = 0
    ONE = 1
    X = 2

    def __str__(self) -> str:  # pragma: no cover - trivial
        return format_ternary(self)

    def __repr__(self) -> str:
        return "T.%s" % self.name


ZERO = T.ZERO
ONE = T.ONE
X = T.X

#: Anything accepted where a ternary value is expected.
TernaryLike = Union[T, bool, int, str, None]

_CHAR_TO_T = {
    "0": ZERO,
    "1": ONE,
    "x": X,
    "X": X,
    "?": X,
    "u": X,
    "U": X,
}


def to_ternary(value: TernaryLike) -> T:
    """Coerce *value* to a :class:`T`.

    Accepts :class:`T` itself, booleans, the integers 0/1/2, the
    characters ``0 1 x X ? u U`` and ``None`` (mapped to ``X``).

    >>> to_ternary(True), to_ternary(0), to_ternary('x'), to_ternary(None)
    (T.ONE, T.ZERO, T.X, T.X)
    """
    if isinstance(value, T):
        return value
    if value is None:
        return X
    if isinstance(value, bool):
        return ONE if value else ZERO
    if isinstance(value, int):
        if value in (0, 1, 2):
            return T(value)
        raise ValueError("integer %r is not a valid ternary encoding" % (value,))
    if isinstance(value, str):
        try:
            return _CHAR_TO_T[value]
        except KeyError:
            raise ValueError("character %r is not a valid ternary literal" % (value,))
    raise TypeError("cannot interpret %r as a ternary value" % (value,))


def from_bool(value: bool) -> T:
    """Map a Python boolean to a definite ternary value."""
    return ONE if value else ZERO


def to_bool(value: T) -> bool:
    """Map a definite ternary value back to a boolean.

    Raises :class:`ValueError` on ``X`` -- callers that may legitimately
    see an ``X`` should test :func:`is_definite` first.
    """
    if value is ZERO:
        return False
    if value is ONE:
        return True
    raise ValueError("cannot convert X to a boolean")


def is_definite(value: T) -> bool:
    """True iff *value* is 0 or 1 (not X)."""
    return value is not X


def refines(a: T, b: T) -> bool:
    """Information-order comparison: does *a* refine (is at least as
    defined as) *b*?

    ``refines(a, b)`` holds when ``b is X`` or ``a == b``.  The
    conservativeness statement for the CLS is phrased with this
    predicate: every exact simulation value refines the corresponding
    CLS value.
    """
    return b is X or a is b


def meet(a: T, b: T) -> T:
    """Greatest lower bound in the information order.

    Two agreeing definite values meet at themselves; any disagreement or
    unknown collapses to ``X``.  This is exactly the merge rule of the
    paper's hypothetical "powerful simulator" (Section 2.1): an output is
    reported definite only when every power-up state agrees.
    """
    return a if a is b else X


# ---------------------------------------------------------------------------
# Kleene connectives (table driven).
# ---------------------------------------------------------------------------

# Row-major tables indexed by the IntEnum encoding (0, 1, 2=X).
_AND_TABLE = (
    (ZERO, ZERO, ZERO),
    (ZERO, ONE, X),
    (ZERO, X, X),
)

_OR_TABLE = (
    (ZERO, ONE, X),
    (ONE, ONE, ONE),
    (X, ONE, X),
)

_XOR_TABLE = (
    (ZERO, ONE, X),
    (ONE, ZERO, X),
    (X, X, X),
)

_NOT_TABLE = (ONE, ZERO, X)


def t_not(a: T) -> T:
    """Kleene negation: ``not X == X``."""
    return _NOT_TABLE[a]


def t_and(a: T, b: T) -> T:
    """Kleene conjunction: ``0 and X == 0``, ``1 and X == X``."""
    return _AND_TABLE[a][b]


def t_or(a: T, b: T) -> T:
    """Kleene disjunction: ``1 or X == 1``, ``0 or X == X``."""
    return _OR_TABLE[a][b]


def t_nand(a: T, b: T) -> T:
    """Kleene NAND."""
    return _NOT_TABLE[_AND_TABLE[a][b]]


def t_nor(a: T, b: T) -> T:
    """Kleene NOR."""
    return _NOT_TABLE[_OR_TABLE[a][b]]


def t_xor(a: T, b: T) -> T:
    """Kleene exclusive-or: any X input yields X."""
    return _XOR_TABLE[a][b]


def t_xnor(a: T, b: T) -> T:
    """Kleene exclusive-nor."""
    return _NOT_TABLE[_XOR_TABLE[a][b]]


def t_buf(a: T) -> T:
    """Identity (buffer)."""
    return a


def t_mux(select: T, when_zero: T, when_one: T) -> T:
    """Conservative 2:1 multiplexer.

    With a definite select the selected data input passes through.  With
    select ``X`` the output is the :func:`meet` of the two data inputs:
    definite only when both branches agree -- which is precisely the
    local (per-gate exact, globally conservative) semantics of a MUX
    standard cell in a three-valued simulator.
    """
    if select is ZERO:
        return when_zero
    if select is ONE:
        return when_one
    return meet(when_zero, when_one)


def t_and_all(values: Iterable[T]) -> T:
    """N-ary Kleene AND (identity ``ONE`` for an empty sequence)."""
    acc = ONE
    for v in values:
        acc = _AND_TABLE[acc][v]
        # No early exit on ZERO: keeping the loop total keeps the
        # function trivially monotone and the cost is negligible.
    return acc


def t_or_all(values: Iterable[T]) -> T:
    """N-ary Kleene OR (identity ``ZERO`` for an empty sequence)."""
    acc = ZERO
    for v in values:
        acc = _OR_TABLE[acc][v]
    return acc


def t_xor_all(values: Iterable[T]) -> T:
    """N-ary Kleene XOR (identity ``ZERO`` for an empty sequence)."""
    acc = ZERO
    for v in values:
        acc = _XOR_TABLE[acc][v]
    return acc


# ---------------------------------------------------------------------------
# Sequences and vectors.
# ---------------------------------------------------------------------------


def parse_ternary_string(text: str) -> Tuple[T, ...]:
    """Parse a compact ternary vector/sequence literal.

    Separators (spaces, dots, middle dots as used in the paper's
    ``0·1·1·1`` notation, commas) are ignored:

    >>> parse_ternary_string('0·1·1·1')
    (T.ZERO, T.ONE, T.ONE, T.ONE)
    >>> parse_ternary_string('0X1')
    (T.ZERO, T.X, T.ONE)
    """
    out: List[T] = []
    for ch in text:
        if ch in " .,·\t":
            continue
        out.append(to_ternary(ch))
    return tuple(out)


def format_ternary(value: T) -> str:
    """Render a single ternary value as ``0``, ``1`` or ``X``."""
    if value is ZERO:
        return "0"
    if value is ONE:
        return "1"
    return "X"


def format_ternary_sequence(values: Iterable[T], sep: str = "·") -> str:
    """Render a ternary sequence in the paper's dotted style.

    >>> format_ternary_sequence((ZERO, X, ONE))
    '0·X·1'
    """
    return sep.join(format_ternary(v) for v in values)


def all_ternary_vectors(width: int) -> Iterable[Tuple[T, ...]]:
    """Yield all ``3**width`` ternary vectors of the given width."""
    if width < 0:
        raise ValueError("width must be non-negative")
    if width == 0:
        yield ()
        return
    for rest in all_ternary_vectors(width - 1):
        for v in (ZERO, ONE, X):
            yield rest + (v,)


def definite_completions(vector: Sequence[T]) -> Iterable[Tuple[T, ...]]:
    """Yield every fully definite vector refining *vector*.

    Each ``X`` position is expanded to both 0 and 1; definite positions
    are kept.  Used by the exact simulator and the justifiability
    analysis to enumerate the concretisations of a partially unknown
    vector.
    """
    pending: List[Tuple[T, ...]] = [()]
    for v in vector:
        choices = (ZERO, ONE) if v is X else (v,)
        pending = [prefix + (c,) for prefix in pending for c in choices]
    return iter(pending)


def vector_refines(a: Sequence[T], b: Sequence[T]) -> bool:
    """Pointwise :func:`refines` over equal-length vectors."""
    if len(a) != len(b):
        raise ValueError("vectors have different lengths (%d vs %d)" % (len(a), len(b)))
    return all(refines(x, y) for x, y in zip(a, b))
