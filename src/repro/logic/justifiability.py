"""Justifiability analysis of multi-output combinational cells.

Section 3.2 of the paper classifies multi-output cells by whether every
output vector is *justifiable* (producible by some input vector):

    "F is justifiable if and only if for every output y in 2^m there
     exists an input x in 2^n such that y = F(x); if there exists
     y in 2^m such that for all x in 2^n, y != F(x), then F is
     non-justifiable."

The k-way fanout junction ``JUNC`` is the canonical non-justifiable cell
(only the all-0 and all-1 output vectors are producible), and forward
retiming moves across non-justifiable cells are exactly the moves that
break safe replacement (Section 4).

This module provides the full analysis: the image of a cell, its
justifiability verdict, witness vectors, and for justifiable cells a
*justification function* mapping each output vector to one producing
input vector (used by the backward-simulation arguments in
Propositions 4.1/4.2 and by their executable counterparts in
:mod:`repro.retime.validity`).
"""

from __future__ import annotations

import functools
import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .functions import CellFunction

__all__ = [
    "JustifiabilityReport",
    "analyze",
    "is_justifiable",
    "justify",
    "unjustifiable_vectors",
]

BoolVec = Tuple[bool, ...]


@dataclass(frozen=True)
class JustifiabilityReport:
    """The result of analysing one cell function.

    Attributes
    ----------
    cell_name:
        Name of the analysed cell.
    n_inputs, n_outputs:
        Pin counts of the cell.
    justifiable:
        The paper's verdict: every output vector has a preimage.
    image:
        The set of producible output vectors.
    witnesses:
        For each producible output vector, one input vector producing
        it (the first in lexicographic input order).
    missing:
        The non-producible output vectors, sorted; empty iff
        ``justifiable``.
    """

    cell_name: str
    n_inputs: int
    n_outputs: int
    justifiable: bool
    image: frozenset
    witnesses: "Dict[BoolVec, BoolVec]"
    missing: Tuple[BoolVec, ...]

    @property
    def coverage(self) -> float:
        """Fraction of the output space that is producible."""
        return len(self.image) / float(2 ** self.n_outputs)

    def describe(self) -> str:
        """Human-readable one-paragraph summary."""
        verdict = "justifiable" if self.justifiable else "NON-justifiable"
        lines = [
            "%s: %d inputs, %d outputs -> %s (image %d/%d output vectors)"
            % (
                self.cell_name,
                self.n_inputs,
                self.n_outputs,
                verdict,
                len(self.image),
                2 ** self.n_outputs,
            )
        ]
        if self.missing:
            shown = ", ".join(
                "".join("1" if b else "0" for b in vec) for vec in self.missing[:8]
            )
            suffix = ", ..." if len(self.missing) > 8 else ""
            lines.append("  unjustifiable output vectors: %s%s" % (shown, suffix))
        return "\n".join(lines)


@functools.lru_cache(maxsize=None)
def analyze(cell: CellFunction) -> JustifiabilityReport:
    """Exhaustively analyse *cell* for justifiability.

    Enumerates all ``2**n_inputs`` input vectors; intended for library
    cells (small arity), not whole circuits.  Results are cached per
    cell function (cell functions are frozen and interned by the
    registry, so the cache stays small).
    """
    witnesses: Dict[BoolVec, BoolVec] = {}
    for bits in itertools.product((False, True), repeat=cell.n_inputs):
        out = cell.eval_binary(bits)
        witnesses.setdefault(out, bits)
    image = frozenset(witnesses)
    missing: List[BoolVec] = [
        vec
        for vec in itertools.product((False, True), repeat=cell.n_outputs)
        if vec not in image
    ]
    missing.sort()
    return JustifiabilityReport(
        cell_name=cell.name,
        n_inputs=cell.n_inputs,
        n_outputs=cell.n_outputs,
        justifiable=not missing,
        image=image,
        witnesses=witnesses,
        missing=tuple(missing),
    )


def is_justifiable(cell: CellFunction) -> bool:
    """Shortcut for ``analyze(cell).justifiable``.

    Single-output cells are justifiable iff they are not constant
    functions of their inputs... in fact a single-output cell is
    justifiable iff both 0 and 1 appear in its image; a constant cell
    (or a gate computing a constant) is non-justifiable, matching the
    paper's remark that forward moves across constant-producing elements
    are also unsafe.
    """
    return analyze(cell).justifiable


def justify(cell: CellFunction, output_vector: BoolVec) -> Optional[BoolVec]:
    """Return an input vector producing *output_vector*, or ``None``.

    This is the computational content of the existence claim in
    Proposition 4.1's case (ii): for a justifiable element and any
    latched output vector Y' there is an input vector Z with F(Z) = Y'.
    """
    report = analyze(cell)
    return report.witnesses.get(tuple(bool(v) for v in output_vector))


def unjustifiable_vectors(cell: CellFunction) -> Tuple[BoolVec, ...]:
    """The output vectors of *cell* with no preimage (empty if justifiable)."""
    return analyze(cell).missing
