"""Reduced Ordered Binary Decision Diagrams, from scratch.

The verification layer the paper's community ran on (Pixley's SHE
implementation [Pix92], the safe-replacement checks of [PSAB94]) was
built on ROBDDs.  This module provides a compact, dependency-free BDD
manager sufficient for the symbolic analyses in
:mod:`repro.stg.symbolic` and the symbolic containment engine in
:mod:`repro.stg.symbolic_replaceability`:

* hash-consed nodes (a *unique table*), so equality of functions is
  pointer equality of node indices;
* the Shannon-expansion ``ite`` (if-then-else) core with memoisation,
  from which all Boolean connectives derive;
* restriction (cofactors), recursive existential/universal
  quantification over variable sets, variable-to-variable renaming (the
  next-state <-> current-state substitution of image computation);
* a fused and-exists operator :meth:`BDDManager.relprod` -- the
  relational-product workhorse of image computation, which never
  materialises the (often huge) intermediate conjunction;
* **bounded computed tables**: every operation cache is capped at
  ``cache_limit`` entries and flushed wholesale when full, so a long
  fixpoint run cannot grow memoisation without bound;
* **mark-and-sweep garbage collection** keyed on protected roots
  (:meth:`protect` / :meth:`collect`), recycling node slots through a
  free list while keeping hash-consing canonical for the survivors;
* **dynamic variable reordering** (Rudell sifting): adjacent-level
  swaps as the in-place primitive (:meth:`swap_adjacent`), full sifting
  passes (:meth:`reorder`), and an automatic trigger at a live-node
  threshold (``reorder="auto"``) -- see the contract below;
* per-operation counters in :attr:`BDDManager.stats` (ite calls, cache
  hits, evictions, GC runs, nodes created, ``reorder.*``) that the
  symbolic engines surface through ``repro.obs`` as ``bdd.*``;
* satisfy-one, model counting and support extraction.

Variable order and reordering
-----------------------------

Variables carry a stable *id* (their registration order, the order of
:meth:`BDDManager.variable` calls) and a mutable *level* (their current
position in the diagram order).  With ``reorder="off"`` (the default)
id and level coincide forever -- the historical fixed-order behaviour.
:meth:`reorder` runs one Rudell sifting pass: each variable is moved
through the order by adjacent-level swaps to its locally best level,
with the excursion abandoned once the table grows past ``max_growth``
times its size at the start of that variable's sift.  With
``reorder="auto"`` a sifting pass fires automatically whenever the live
node count crosses ``reorder_threshold`` (and thereafter each time it
doubles past the post-sift size); ``reorder="manual"`` never
auto-triggers but documents that the owner will call :meth:`reorder`
at moments of its choosing.

**Handle-validity contract.**  Reordering is *in place*: a node's index
keeps denoting the same Boolean function across any sequence of swaps
and sifts, so every live :class:`BDD` handle -- including the indices
callers have squirrelled away in sets and dicts -- remains valid, and
canonicity (equal functions <=> equal indices) is preserved.  The
manager tracks all live handles through weak references and treats
them as reorder roots, so a reorder can never free a node a handle can
still reach.  Auto-reordering only ever fires at public operation
boundaries (never inside a recursion), where no partially-built
diagram exists.

**Cache-invalidation contract.**  A swap can free nodes (dead cofactor
nodes of the two affected levels), so all operation caches (``ite``,
``exists``, ``relprod``) are flushed at the start of every reorder --
cached entries are function-correct across a pure swap, but may name
freed slots.  The interned quantified-variable sets (``qsets``) are
keyed by stable variable ids and survive reordering unchanged.

Node representation: index into parallel arrays; node 0 is the constant
FALSE, node 1 the constant TRUE.  Every node satisfies the ROBDD
invariants (``low != high``, children at deeper levels), so semantic
equivalence really is index equality -- a property the test suite
checks against brute-force truth tables and across random reorders.

GC contract: :meth:`collect` frees every node not reachable from a
protected root (or a root passed to the call); any :class:`BDD` handle
to a freed node is *invalidated* -- its slot may be recycled by later
allocations.  Callers running long fixpoints protect their live
frontier/relation roots and collect between iterations.  (Reordering
is stricter: it never invalidates handles.)
"""

from __future__ import annotations

import weakref
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "BDDManager",
    "BDD",
    "DEFAULT_CACHE_LIMIT",
    "DEFAULT_REORDER_THRESHOLD",
    "DEFAULT_MAX_GROWTH",
    "REORDER_MODES",
    "NodeLimitExceeded",
]

FALSE_INDEX = 0
TRUE_INDEX = 1

#: Default bound on each operation cache (entries, not nodes).
DEFAULT_CACHE_LIMIT = 1 << 20

#: Live-node count at which ``reorder="auto"`` fires its first sift.
#: Deliberately high: a sifting pass is O(variables x nodes) of pure
#: Python, so at this scale one run costs on the order of a minute --
#: worth it only against a computation that would otherwise blow up.
#: Auto mode is a last-resort rescue, not a routine optimisation;
#: workloads that want eager reordering pass a lower threshold.
DEFAULT_REORDER_THRESHOLD = 500_000

#: A sifted variable's excursion is abandoned once the table exceeds
#: this factor of its size when the variable's sift started.
DEFAULT_MAX_GROWTH = 1.2

#: Accepted values for the ``reorder`` knob, here and downstream
#: (``SymbolicContainmentChecker``, the CLI's ``--reorder``).
REORDER_MODES = ("off", "auto", "manual")

_FREED = -2  # sentinel var id marking a slot on the free list


class NodeLimitExceeded(MemoryError):
    """The unique table outgrew the manager's ``node_limit``.

    Subclasses :class:`MemoryError` so the budget-discipline paths that
    already map blown search budgets to "undecided" verdicts (the CLI's
    exit 2, the service's ``budget-exceeded`` envelope) treat a blown
    node budget the same way.
    """


class BDD:
    """A handle to one function in a :class:`BDDManager`.

    Handles support the Boolean operators (``&``, ``|``, ``^``, ``~``)
    and comparisons; they are only meaningful within their manager.
    Live handles are tracked (weakly) by the manager and are kept valid
    across dynamic reordering.
    """

    __slots__ = ("manager", "index", "__weakref__")

    def __init__(self, manager: "BDDManager", index: int) -> None:
        self.manager = manager
        self.index = index
        manager._track(self)

    # -- operators -------------------------------------------------------

    def _check(self, other: "BDD") -> None:
        if self.manager is not other.manager:
            raise ValueError("BDD operands belong to different managers")

    def __and__(self, other: "BDD") -> "BDD":
        self._check(other)
        m = self.manager
        m._maybe_reorder()
        return BDD(m, m._ite(self.index, other.index, FALSE_INDEX))

    def __or__(self, other: "BDD") -> "BDD":
        self._check(other)
        m = self.manager
        m._maybe_reorder()
        return BDD(m, m._ite(self.index, TRUE_INDEX, other.index))

    def __xor__(self, other: "BDD") -> "BDD":
        self._check(other)
        m = self.manager
        m._maybe_reorder()
        not_other = m._ite(other.index, FALSE_INDEX, TRUE_INDEX)
        return BDD(m, m._ite(self.index, not_other, other.index))

    def __invert__(self) -> "BDD":
        m = self.manager
        m._maybe_reorder()
        return BDD(m, m._ite(self.index, FALSE_INDEX, TRUE_INDEX))

    def iff(self, other: "BDD") -> "BDD":
        """Logical biconditional (XNOR)."""
        return ~(self ^ other)

    def implies(self, other: "BDD") -> "BDD":
        """Logical implication."""
        self._check(other)
        m = self.manager
        m._maybe_reorder()
        return BDD(m, m._ite(self.index, other.index, TRUE_INDEX))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, BDD)
            and other.manager is self.manager
            and other.index == self.index
        )

    def __hash__(self) -> int:
        return hash((id(self.manager), self.index))

    def __repr__(self) -> str:
        if self.index == FALSE_INDEX:
            return "<BDD FALSE>"
        if self.index == TRUE_INDEX:
            return "<BDD TRUE>"
        return "<BDD node %d, %d nodes>" % (self.index, self.manager.size_of(self))

    # -- predicates --------------------------------------------------------

    @property
    def is_false(self) -> bool:
        return self.index == FALSE_INDEX

    @property
    def is_true(self) -> bool:
        return self.index == TRUE_INDEX

    # -- conveniences delegating to the manager ------------------------------

    def restrict(self, assignment: Dict[str, bool]) -> "BDD":
        """Cofactor with respect to a partial variable assignment."""
        return self.manager.restrict(self, assignment)

    def exists(self, variables: Iterable[str]) -> "BDD":
        """Existential quantification over *variables*."""
        return self.manager.exists(self, variables)

    def forall(self, variables: Iterable[str]) -> "BDD":
        """Universal quantification over *variables*."""
        return self.manager.forall(self, variables)

    def rename(self, mapping: Dict[str, str]) -> "BDD":
        """Variable-to-variable substitution (see
        :meth:`BDDManager.rename`)."""
        return self.manager.rename(self, mapping)

    def support(self) -> Tuple[str, ...]:
        """Variables this function actually depends on."""
        return self.manager.support(self)

    def satisfy_one(self) -> Optional[Dict[str, bool]]:
        """One satisfying assignment over the support, or ``None``."""
        return self.manager.satisfy_one(self)

    def count(self, variables: Sequence[str]) -> int:
        """Number of satisfying assignments over *variables*."""
        return self.manager.count(self, variables)

    def evaluate(self, assignment: Dict[str, bool]) -> bool:
        """Evaluate under a total assignment of the support."""
        return self.manager.evaluate(self, assignment)


class BDDManager:
    """A unique-table BDD store with an ``ite``-based operator core.

    Parameters
    ----------
    cache_limit:
        Bound on each operation cache (``ite``, ``exists``,
        ``relprod``).  When a cache reaches the limit it is flushed
        (counted in ``stats["cache_evictions"]``); correctness is
        unaffected -- only recomputation cost.
    reorder:
        ``"off"`` (fixed order, the default), ``"auto"`` (sift when the
        live node count crosses *reorder_threshold*) or ``"manual"``
        (never auto-sift; the owner calls :meth:`reorder`).
    reorder_threshold:
        Live-node count that arms the first automatic sift.
    max_growth:
        Per-variable growth bound during sifting (see module docs).
    node_limit:
        Optional hard budget on unique-table nodes; exceeding it raises
        :class:`NodeLimitExceeded` (a :class:`MemoryError`), the BDD
        analogue of a blown subset-search budget.
    """

    def __init__(
        self,
        *,
        cache_limit: int = DEFAULT_CACHE_LIMIT,
        reorder: str = "off",
        reorder_threshold: int = DEFAULT_REORDER_THRESHOLD,
        max_growth: float = DEFAULT_MAX_GROWTH,
        node_limit: Optional[int] = None,
    ) -> None:
        if cache_limit < 1:
            raise ValueError("cache_limit must be positive")
        if reorder not in REORDER_MODES:
            raise ValueError(
                "reorder must be one of %s, not %r" % (REORDER_MODES, reorder)
            )
        if reorder_threshold < 2:
            raise ValueError("reorder_threshold must be at least 2")
        if max_growth < 1.0:
            raise ValueError("max_growth must be >= 1.0")
        if node_limit is not None and node_limit < 2:
            raise ValueError("node_limit must be at least 2")
        # Parallel node arrays; entries 0/1 are the terminals (their
        # var id is -1; their level is +inf conceptually).
        self._var: List[int] = [-1, -1]
        self._low: List[int] = [-1, -1]
        self._high: List[int] = [-1, -1]
        self._unique: Dict[Tuple[int, int, int], int] = {}
        self._ite_cache: Dict[Tuple[int, int, int], int] = {}
        self._exists_cache: Dict[Tuple[int, int], int] = {}
        self._relprod_cache: Dict[Tuple[int, int, int], int] = {}
        self._var_names: List[str] = []
        self._var_index: Dict[str, int] = {}
        # Dynamic order: var id <-> level, plus the per-variable node
        # index the swap primitive works from.
        self._order: List[int] = []
        self._level_vars: List[int] = []
        self._var_nodes: List[set] = []
        self._free: List[int] = []
        self._protected: Dict[int, int] = {}
        self._qsets: Dict[FrozenSet[int], int] = {}
        self._qset_vars: List[FrozenSet[int]] = []
        # Live handles, tracked by OBJECT identity (BDD.__eq__ compares
        # indices, so a value-keyed WeakSet would collapse distinct
        # handles onto one weakref and lose track when it dies).
        self._handles: Dict[int, "weakref.ref[BDD]"] = {}
        self.cache_limit = cache_limit
        self.reorder_mode = reorder
        self.reorder_threshold = reorder_threshold
        self.max_growth = max_growth
        self.node_limit = node_limit
        self._next_reorder_at = reorder_threshold
        self._reordering = False
        #: Monotone per-operation counters (never reset by GC/flushes).
        self.stats: Dict[str, int] = {
            "nodes_created": 0,
            "ite_calls": 0,
            "ite_cache_hits": 0,
            "exists_calls": 0,
            "exists_cache_hits": 0,
            "relprod_calls": 0,
            "relprod_cache_hits": 0,
            "cache_evictions": 0,
            "gc_runs": 0,
            "gc_freed_nodes": 0,
            "peak_live_nodes": 2,
            "reorder.runs": 0,
            "reorder.auto_triggers": 0,
            "reorder.swaps": 0,
            "reorder.nodes_reclaimed": 0,
        }

    def _track(self, handle: BDD) -> None:
        """Register a live handle (weakly, by object identity) so
        reordering can treat it as a root."""
        key = id(handle)
        handles = self._handles
        handles[key] = weakref.ref(
            handle, lambda _ref, _key=key, _handles=handles: _handles.pop(_key, None)
        )

    # -- variables -----------------------------------------------------------

    def variable(self, name: str) -> BDD:
        """The function of a single variable, registering it (at the
        end of the current order) on first use."""
        var = self._var_index.get(name)
        if var is None:
            var = len(self._var_names)
            self._var_names.append(name)
            self._var_index[name] = var
            self._order.append(len(self._level_vars))
            self._level_vars.append(var)
            self._var_nodes.append(set())
        return BDD(self, self._node(var, FALSE_INDEX, TRUE_INDEX))

    def declare(self, *names: str) -> List[BDD]:
        """Register variables in the given order; returns their BDDs."""
        return [self.variable(name) for name in names]

    @property
    def variable_names(self) -> Tuple[str, ...]:
        """All registered variables, in registration (id) order --
        stable across reordering."""
        return tuple(self._var_names)

    def level_of(self, name: str) -> int:
        """Current position of *name* in the variable order."""
        return self._order[self._var_index[name]]

    def current_order(self) -> Tuple[str, ...]:
        """The variable names in their current diagram order, top
        (level 0) first."""
        return tuple(self._var_names[var] for var in self._level_vars)

    # -- constants -------------------------------------------------------------

    @property
    def true(self) -> BDD:
        return BDD(self, TRUE_INDEX)

    @property
    def false(self) -> BDD:
        return BDD(self, FALSE_INDEX)

    def constant(self, value: bool) -> BDD:
        return self.true if value else self.false

    # -- node store --------------------------------------------------------------

    def _node(self, var: int, low: int, high: int) -> int:
        if low == high:
            return low
        key = (var, low, high)
        found = self._unique.get(key)
        if found is not None:
            return found
        if self.node_limit is not None and len(self._unique) + 2 >= self.node_limit:
            raise NodeLimitExceeded(
                "BDD unique table exceeded its %d-node budget" % self.node_limit
            )
        if self._free:
            index = self._free.pop()
            self._var[index] = var
            self._low[index] = low
            self._high[index] = high
        else:
            index = len(self._var)
            self._var.append(var)
            self._low.append(low)
            self._high.append(high)
        self._unique[key] = index
        self._var_nodes[var].add(index)
        stats = self.stats
        stats["nodes_created"] += 1
        live = len(self._unique) + 2
        if live > stats["peak_live_nodes"]:
            stats["peak_live_nodes"] = live
        return index

    def _level(self, index: int) -> int:
        var = self._var[index]
        return 1 << 30 if var < 0 else self._order[var]

    def _cache_room(self, cache: Dict) -> Dict:
        """Flush *cache* when it has hit the bound; returns the cache."""
        if len(cache) >= self.cache_limit:
            cache.clear()
            self.stats["cache_evictions"] += 1
        return cache

    # -- the ite core ---------------------------------------------------------------

    def _ite(self, f: int, g: int, h: int) -> int:
        # Terminal cases.
        if f == TRUE_INDEX:
            return g
        if f == FALSE_INDEX:
            return h
        if g == h:
            return g
        if g == TRUE_INDEX and h == FALSE_INDEX:
            return f
        self.stats["ite_calls"] += 1
        key = (f, g, h)
        cached = self._ite_cache.get(key)
        if cached is not None:
            self.stats["ite_cache_hits"] += 1
            return cached
        top = min(self._level(f), self._level(g), self._level(h))

        def cofactor(index: int, branch: bool) -> int:
            if self._level(index) != top:
                return index
            return self._high[index] if branch else self._low[index]

        high = self._ite(cofactor(f, True), cofactor(g, True), cofactor(h, True))
        low = self._ite(cofactor(f, False), cofactor(g, False), cofactor(h, False))
        result = self._node(self._level_vars[top], low, high)
        self._cache_room(self._ite_cache)[key] = result
        return result

    # -- restriction & quantification ----------------------------------------------

    def restrict(self, f: BDD, assignment: Dict[str, bool]) -> BDD:
        self._maybe_reorder()
        by_var = {self._var_index[name]: value for name, value in assignment.items()}
        cache: Dict[int, int] = {}

        def walk(index: int) -> int:
            if index <= TRUE_INDEX:
                return index
            hit = cache.get(index)
            if hit is not None:
                return hit
            var = self._var[index]
            if var in by_var:
                result = walk(self._high[index] if by_var[var] else self._low[index])
            else:
                result = self._node(var, walk(self._low[index]), walk(self._high[index]))
            cache[index] = result
            return result

        return BDD(self, walk(f.index))

    def _restrict1(self, index: int, var: int, value: bool) -> int:
        """Cofactor of a raw node at a single variable."""
        cache: Dict[int, int] = {}

        def walk(node: int) -> int:
            if node <= TRUE_INDEX:
                return node
            hit = cache.get(node)
            if hit is not None:
                return hit
            v = self._var[node]
            if v == var:
                result = self._high[node] if value else self._low[node]
            else:
                result = self._node(v, walk(self._low[node]), walk(self._high[node]))
            cache[node] = result
            return result

        return walk(index)

    def _qset_id(self, variables: FrozenSet[int]) -> int:
        """Intern a quantified-variable-id set for compact cache keys
        (ids are stable, so interned sets survive reordering)."""
        found = self._qsets.get(variables)
        if found is None:
            found = len(self._qset_vars)
            self._qsets[variables] = found
            self._qset_vars.append(variables)
        return found

    def _vars_of(self, variables: Iterable[str]) -> FrozenSet[int]:
        return frozenset(self._var_index[name] for name in variables)

    def _exists(self, index: int, varset: FrozenSet[int], qid: int, deepest: int) -> int:
        """Recursive multi-variable existential quantification.

        *deepest* is the maximum current level of the quantified
        variables: a node entirely below it cannot contain a quantified
        variable, so its subtree passes through.
        """
        if index <= TRUE_INDEX:
            return index
        var = self._var[index]
        if self._order[var] > deepest:
            return index
        self.stats["exists_calls"] += 1
        key = (index, qid)
        cached = self._exists_cache.get(key)
        if cached is not None:
            self.stats["exists_cache_hits"] += 1
            return cached
        low = self._exists(self._low[index], varset, qid, deepest)
        high = self._exists(self._high[index], varset, qid, deepest)
        if var in varset:
            result = self._ite(low, TRUE_INDEX, high)  # low | high
        else:
            result = self._node(var, low, high)
        self._cache_room(self._exists_cache)[key] = result
        return result

    def _deepest(self, varset: FrozenSet[int]) -> int:
        return max(self._order[var] for var in varset)

    def exists(self, f: BDD, variables: Iterable[str]) -> BDD:
        varset = self._vars_of(variables)
        if not varset:
            return f
        self._maybe_reorder()
        return BDD(
            self,
            self._exists(f.index, varset, self._qset_id(varset), self._deepest(varset)),
        )

    def forall(self, f: BDD, variables: Iterable[str]) -> BDD:
        # ∀V f  ==  ¬∃V ¬f
        varset = self._vars_of(variables)
        if not varset:
            return f
        self._maybe_reorder()
        negated = self._ite(f.index, FALSE_INDEX, TRUE_INDEX)
        result = self._exists(
            negated, varset, self._qset_id(varset), self._deepest(varset)
        )
        return BDD(self, self._ite(result, FALSE_INDEX, TRUE_INDEX))

    def relprod(self, f: BDD, g: BDD, variables: Iterable[str]) -> BDD:
        """Fused and-exists: ``exists(variables, f & g)`` without ever
        building the conjunction.

        This is the relational product at the heart of symbolic image
        computation: quantified subtrees collapse to TRUE as soon as one
        branch is satisfiable, so the intermediate product never
        materialises.  Semantically identical to
        ``(f & g).exists(variables)`` (property-tested against it).
        """
        if f.manager is not self or g.manager is not self:
            raise ValueError("relprod operands belong to a different manager")
        varset = self._vars_of(variables)
        if not varset:
            return f & g
        self._maybe_reorder()
        qid = self._qset_id(varset)
        return BDD(
            self, self._relprod(f.index, g.index, varset, qid, self._deepest(varset))
        )

    def _relprod(
        self, f: int, g: int, varset: FrozenSet[int], qid: int, deepest: int
    ) -> int:
        if f == FALSE_INDEX or g == FALSE_INDEX:
            return FALSE_INDEX
        if f == TRUE_INDEX and g == TRUE_INDEX:
            return TRUE_INDEX
        if f == g or g == TRUE_INDEX:
            return self._exists(f, varset, qid, deepest)
        if f == TRUE_INDEX:
            return self._exists(g, varset, qid, deepest)
        level_f, level_g = self._level(f), self._level(g)
        top = level_f if level_f < level_g else level_g
        if top > deepest:
            # Entirely below the quantified variables: plain conjunction.
            return self._ite(f, g, FALSE_INDEX)
        self.stats["relprod_calls"] += 1
        if f > g:  # conjunction commutes; normalise the cache key
            f, g = g, f
            level_f, level_g = level_g, level_f
        key = (f, g, qid)
        cached = self._relprod_cache.get(key)
        if cached is not None:
            self.stats["relprod_cache_hits"] += 1
            return cached
        f_low, f_high = (
            (self._low[f], self._high[f]) if level_f == top else (f, f)
        )
        g_low, g_high = (
            (self._low[g], self._high[g]) if level_g == top else (g, g)
        )
        top_var = self._level_vars[top]
        low = self._relprod(f_low, g_low, varset, qid, deepest)
        if top_var in varset and low == TRUE_INDEX:
            result = TRUE_INDEX  # short-circuit: branch already satisfiable
        else:
            high = self._relprod(f_high, g_high, varset, qid, deepest)
            if top_var in varset:
                result = self._ite(low, TRUE_INDEX, high)  # low | high
            else:
                result = self._node(top_var, low, high)
        self._cache_room(self._relprod_cache)[key] = result
        return result

    def rename(self, f: BDD, mapping: Dict[str, str]) -> BDD:
        """Substitute variables by variables (simultaneously).

        When the mapping is *order-compatible* -- the relative order of
        any two support variables is unchanged by the substitution
        (true for the ``state <-> next_state`` pairings of image
        computation when declared interleaved, under the declaration
        order) -- a single linear relabelling walk is used.  Otherwise
        (e.g. after dynamic reordering has interleaved the two
        machines' variables) the substitution falls back to a general
        Shannon-recomposition pass built on ``ite``, which is correct
        under any variable order.
        """
        if not mapping:
            return f
        self._maybe_reorder()
        for src, dst in mapping.items():
            if src not in self._var_index or dst not in self._var_index:
                raise KeyError(
                    "rename involves an unregistered variable: %r -> %r" % (src, dst)
                )
        support = list(self.support(f))
        renamed_levels = [
            self._order[self._var_index[mapping.get(name, name)]] for name in support
        ]
        original_levels = [self._order[self._var_index[name]] for name in support]
        var_map = {
            self._var_index[src]: self._var_index[dst] for src, dst in mapping.items()
        }
        if sorted(range(len(support)), key=lambda i: renamed_levels[i]) != sorted(
            range(len(support)), key=lambda i: original_levels[i]
        ):
            return BDD(self, self._substitute(f.index, var_map, {}))
        cache: Dict[int, int] = {}

        def walk(index: int) -> int:
            if index <= TRUE_INDEX:
                return index
            hit = cache.get(index)
            if hit is not None:
                return hit
            var = self._var[index]
            result = self._node(
                var_map.get(var, var), walk(self._low[index]), walk(self._high[index])
            )
            cache[index] = result
            return result

        return BDD(self, walk(f.index))

    def _substitute(self, index: int, var_map: Dict[int, int], cache: Dict) -> int:
        """General simultaneous variable-to-variable substitution: at
        each node, recompose ``ite(target, high', low')`` so the result
        is well-ordered whatever the current level permutation."""
        if index <= TRUE_INDEX:
            return index
        hit = cache.get(index)
        if hit is not None:
            return hit
        low = self._substitute(self._low[index], var_map, cache)
        high = self._substitute(self._high[index], var_map, cache)
        target = var_map.get(self._var[index], self._var[index])
        selector = self._node(target, FALSE_INDEX, TRUE_INDEX)
        result = self._ite(selector, high, low)
        cache[index] = result
        return result

    # -- garbage collection -------------------------------------------------------

    def protect(self, f: BDD) -> BDD:
        """Mark *f* as a GC root (reference-counted); returns *f*."""
        if f.manager is not self:
            raise ValueError("cannot protect a BDD from another manager")
        self._protected[f.index] = self._protected.get(f.index, 0) + 1
        return f

    def unprotect(self, f: BDD) -> None:
        """Drop one protection reference added by :meth:`protect`."""
        count = self._protected.get(f.index, 0)
        if count <= 1:
            self._protected.pop(f.index, None)
        else:
            self._protected[f.index] = count - 1

    def collect(self, roots: Iterable[BDD] = ()) -> int:
        """Mark-and-sweep: free every node unreachable from the
        protected roots and *roots*; returns the number freed.

        Handles to freed nodes are invalidated (their slots go on a
        free list for reuse); all operation caches are flushed, since
        cached entries may reference freed slots.
        """
        marked = {FALSE_INDEX, TRUE_INDEX}
        stack: List[int] = list(self._protected)
        for f in roots:
            if f.manager is not self:
                raise ValueError("cannot collect with a root from another manager")
            stack.append(f.index)
        while stack:
            index = stack.pop()
            if index in marked:
                continue
            marked.add(index)
            stack.append(self._low[index])
            stack.append(self._high[index])
        freed = 0
        for key, index in list(self._unique.items()):
            if index not in marked:
                del self._unique[key]
                self._var_nodes[self._var[index]].discard(index)
                self._var[index] = _FREED
                self._low[index] = -1
                self._high[index] = -1
                self._free.append(index)
                freed += 1
        # Cached results may name freed slots; flush everything.
        self._ite_cache.clear()
        self._exists_cache.clear()
        self._relprod_cache.clear()
        self.stats["gc_runs"] += 1
        self.stats["gc_freed_nodes"] += freed
        return freed

    @property
    def live_node_count(self) -> int:
        """Nodes currently in the unique table, plus the terminals."""
        return len(self._unique) + 2

    # -- dynamic variable reordering ------------------------------------------------

    def _maybe_reorder(self) -> None:
        """Auto-trigger hook, called at public operation boundaries
        (never inside a recursion -- see the module contract)."""
        if (
            self.reorder_mode == "auto"
            and not self._reordering
            and len(self._level_vars) >= 2
            and len(self._unique) + 2 >= self._next_reorder_at
        ):
            self.stats["reorder.auto_triggers"] += 1
            self.reorder()

    def _build_refs(self) -> List[int]:
        """Reference counts for every slot: parents in the unique table
        plus one for each live handle / protected root.  Only used (and
        kept consistent) for the duration of one reorder."""
        ref = [0] * len(self._var)
        low, high = self._low, self._high
        for index in self._unique.values():
            ref[low[index]] += 1
            ref[high[index]] += 1
        for handle_ref in list(self._handles.values()):
            handle = handle_ref()
            if handle is not None and 0 <= handle.index < len(ref):
                ref[handle.index] += 1
        for index in self._protected:
            ref[index] += 1
        ref[FALSE_INDEX] += 1
        ref[TRUE_INDEX] += 1
        return ref

    def _reorder_make(self, var: int, low: int, high: int, ref: List[int]) -> int:
        """``_node`` twin for use inside a swap: keeps *ref* exact for
        nodes it creates (the caller adds its own reference)."""
        if low == high:
            return low
        key = (var, low, high)
        found = self._unique.get(key)
        if found is not None:
            return found
        if self._free:
            index = self._free.pop()
            self._var[index] = var
            self._low[index] = low
            self._high[index] = high
        else:
            index = len(self._var)
            self._var.append(var)
            self._low.append(low)
            self._high.append(high)
            ref.append(0)
        self._unique[key] = index
        self._var_nodes[var].add(index)
        ref[index] = 0
        ref[low] += 1
        ref[high] += 1
        stats = self.stats
        stats["nodes_created"] += 1
        live = len(self._unique) + 2
        if live > stats["peak_live_nodes"]:
            stats["peak_live_nodes"] = live
        return index

    def _deref(self, index: int, ref: List[int]) -> None:
        """Drop one reference; free the node (and recurse into its
        children) when the count reaches zero."""
        stack = [index]
        while stack:
            node = stack.pop()
            if node <= TRUE_INDEX:
                continue
            ref[node] -= 1
            if ref[node] == 0:
                var = self._var[node]
                del self._unique[(var, self._low[node], self._high[node])]
                self._var_nodes[var].discard(node)
                stack.append(self._low[node])
                stack.append(self._high[node])
                self._var[node] = _FREED
                self._low[node] = -1
                self._high[node] = -1
                self._free.append(node)

    def _swap_adjacent(self, level: int, ref: List[int]) -> None:
        """Swap the variables at *level* and *level + 1* in place.

        Nodes of the upper variable that reference the lower variable
        are rewritten in their own slots (same index, same function);
        all other nodes are untouched.  Dead cofactor nodes are freed
        eagerly via *ref* so the unique-table size is an exact sifting
        metric.
        """
        upper = self._level_vars[level]
        lower = self._level_vars[level + 1]
        var, low_arr, high_arr = self._var, self._low, self._high
        unique = self._unique
        to_rewrite = [
            n
            for n in self._var_nodes[upper]
            if var[low_arr[n]] == lower or var[high_arr[n]] == lower
        ]
        for n in to_rewrite:
            low, high = low_arr[n], high_arr[n]
            if var[low] == lower:
                f00, f01 = low_arr[low], high_arr[low]
            else:
                f00 = f01 = low
            if var[high] == lower:
                f10, f11 = low_arr[high], high_arr[high]
            else:
                f10 = f11 = high
            new_low = self._reorder_make(upper, f00, f10, ref)
            new_high = self._reorder_make(upper, f01, f11, ref)
            ref[new_low] += 1
            ref[new_high] += 1
            del unique[(upper, low, high)]
            var[n] = lower
            low_arr[n] = new_low
            high_arr[n] = new_high
            assert (lower, new_low, new_high) not in unique, (
                "swap produced a duplicate node -- canonicity violated"
            )
            unique[(lower, new_low, new_high)] = n
            self._var_nodes[upper].discard(n)
            self._var_nodes[lower].add(n)
            self._deref(low, ref)
            self._deref(high, ref)
        self._level_vars[level], self._level_vars[level + 1] = upper_swapped = (
            lower,
            upper,
        )
        del upper_swapped
        self._order[upper] = level + 1
        self._order[lower] = level
        self.stats["reorder.swaps"] += 1

    def swap_adjacent(self, level: int) -> None:
        """Public adjacent-level swap (a safe-point operation): swap the
        variables at *level* and *level + 1*, preserving every live
        handle's function.  The workhorse of the reorder test harness;
        :meth:`reorder` drives the same primitive."""
        if not 0 <= level < len(self._level_vars) - 1:
            raise ValueError(
                "level %d out of range for %d variables"
                % (level, len(self._level_vars))
            )
        if self._reordering:
            raise RuntimeError("swap_adjacent called during a reorder")
        self._reordering = True
        try:
            self._flush_op_caches()
            self._swap_adjacent(level, self._build_refs())
        finally:
            self._reordering = False

    def _flush_op_caches(self) -> None:
        self._ite_cache.clear()
        self._exists_cache.clear()
        self._relprod_cache.clear()

    def _sift_one(self, var: int, ref: List[int], limit_factor: float) -> None:
        """Move *var* to its locally best level by adjacent swaps,
        abandoning an excursion once the table passes the growth
        bound, and settling on the best size seen."""
        nlevels = len(self._level_vars)
        start_size = len(self._unique)
        limit = int(start_size * limit_factor) + 8
        best_size = start_size
        best_pos = self._order[var]
        # Excursion 1: to the bottom.
        while self._order[var] < nlevels - 1 and len(self._unique) <= limit:
            self._swap_adjacent(self._order[var], ref)
            size = len(self._unique)
            if size < best_size:
                best_size, best_pos = size, self._order[var]
        # Excursion 2: to the top (always at least back to best_pos).
        while self._order[var] > 0 and (
            len(self._unique) <= limit or self._order[var] > best_pos
        ):
            self._swap_adjacent(self._order[var] - 1, ref)
            size = len(self._unique)
            if size <= best_size:
                best_size, best_pos = size, self._order[var]
        # Settle on the best position seen.
        while self._order[var] > best_pos:
            self._swap_adjacent(self._order[var] - 1, ref)
        while self._order[var] < best_pos:
            self._swap_adjacent(self._order[var], ref)

    def reorder(self, *, max_growth: Optional[float] = None) -> Dict[str, int]:
        """One Rudell sifting pass over every variable (most populated
        level first); returns a ``{"before": ..., "after": ...,
        "swaps": ...}`` summary in live-node counts.

        Safe-point operation: all live handles stay valid (same index,
        same function); operation caches are flushed first (see the
        module contract).
        """
        if self._reordering or len(self._level_vars) < 2:
            return {"before": self.live_node_count, "after": self.live_node_count, "swaps": 0}
        growth = self.max_growth if max_growth is None else max_growth
        if growth < 1.0:
            raise ValueError("max_growth must be >= 1.0")
        self._reordering = True
        try:
            self._flush_op_caches()
            before = len(self._unique)
            swaps_before = self.stats["reorder.swaps"]
            ref = self._build_refs()
            for var in sorted(
                range(len(self._var_names)),
                key=lambda v: (-len(self._var_nodes[v]), v),
            ):
                self._sift_one(var, ref, growth)
            after = len(self._unique)
            self.stats["reorder.runs"] += 1
            if before > after:
                self.stats["reorder.nodes_reclaimed"] += before - after
            self._next_reorder_at = max(self.reorder_threshold, 2 * (after + 2))
            return {
                "before": before + 2,
                "after": after + 2,
                "swaps": self.stats["reorder.swaps"] - swaps_before,
            }
        finally:
            self._reordering = False

    # -- inspection ---------------------------------------------------------------

    def support(self, f: BDD) -> Tuple[str, ...]:
        """Variables *f* depends on, in registration (id) order --
        stable across reordering."""
        seen = set()
        variables = set()
        stack = [f.index]
        while stack:
            index = stack.pop()
            if index <= TRUE_INDEX or index in seen:
                continue
            seen.add(index)
            variables.add(self._var[index])
            stack.append(self._low[index])
            stack.append(self._high[index])
        return tuple(self._var_names[var] for var in sorted(variables))

    def size_of(self, f: BDD) -> int:
        """Node count of the (shared) diagram rooted at *f*."""
        seen = set()
        stack = [f.index]
        while stack:
            index = stack.pop()
            if index <= TRUE_INDEX or index in seen:
                continue
            seen.add(index)
            stack.append(self._low[index])
            stack.append(self._high[index])
        return len(seen) + 2  # + terminals

    def satisfy_one(self, f: BDD) -> Optional[Dict[str, bool]]:
        """The lexicographically smallest satisfying assignment of the
        support, by registration order with False < True -- a canonical
        choice, so the witness is identical whatever the current
        variable order (the reorder-invariance contract downstream
        witness reconstruction relies on)."""
        if f.index == FALSE_INDEX:
            return None
        assignment: Dict[str, bool] = {}
        index = f.index
        for name in self.support(f):  # registration order
            var = self._var_index[name]
            low = self._restrict1(index, var, False)
            if low != FALSE_INDEX:
                assignment[name] = False
                index = low
            else:
                assignment[name] = True
                index = self._restrict1(index, var, True)
        return assignment

    def count(self, f: BDD, variables: Sequence[str]) -> int:
        """Model count over the given variable list (must cover the
        support of *f*)."""
        support = set(self.support(f))
        names = list(variables)
        missing = support - set(names)
        if missing:
            raise ValueError("count variables missing support vars: %s" % sorted(missing))
        levels = sorted(self._order[self._var_index[name]] for name in names)
        position = {level: i for i, level in enumerate(levels)}
        cache: Dict[int, int] = {}

        def walk(index: int) -> Tuple[int, int]:
            """Returns (count, level-position of this node)."""
            if index == FALSE_INDEX:
                return 0, len(levels)
            if index == TRUE_INDEX:
                return 1, len(levels)
            if index in cache:
                return cache[index], position[self._order[self._var[index]]]
            low_count, low_pos = walk(self._low[index])
            high_count, high_pos = walk(self._high[index])
            my_pos = position[self._order[self._var[index]]]
            total = low_count * (1 << (low_pos - my_pos - 1)) + high_count * (
                1 << (high_pos - my_pos - 1)
            )
            cache[index] = total
            return total, my_pos

        count, pos = walk(f.index)
        return count * (1 << pos)

    def evaluate(self, f: BDD, assignment: Dict[str, bool]) -> bool:
        index = f.index
        while index > TRUE_INDEX:
            name = self._var_names[self._var[index]]
            try:
                branch = assignment[name]
            except KeyError:
                raise ValueError("assignment missing variable %r" % name)
            index = self._high[index] if branch else self._low[index]
        return index == TRUE_INDEX

    # -- bulk helpers ------------------------------------------------------------

    def cube(self, assignment: Dict[str, bool]) -> BDD:
        """The conjunction of literals described by *assignment*."""
        result = self.true
        for name, value in assignment.items():
            var = self.variable(name)
            result = result & (var if value else ~var)
        return result

    def disjunction(self, functions: Iterable[BDD]) -> BDD:
        result = self.false
        for f in functions:
            result = result | f
        return result

    def conjunction(self, functions: Iterable[BDD]) -> BDD:
        result = self.true
        for f in functions:
            result = result & f
        return result

    @property
    def num_nodes(self) -> int:
        """Total node slots allocated in this manager (monotone; freed
        slots remain allocated until reused)."""
        return len(self._var)
