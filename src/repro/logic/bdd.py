"""Reduced Ordered Binary Decision Diagrams, from scratch.

The verification layer the paper's community ran on (Pixley's SHE
implementation [Pix92], the safe-replacement checks of [PSAB94]) was
built on ROBDDs.  This module provides a compact, dependency-free BDD
manager sufficient for the symbolic analyses in
:mod:`repro.stg.symbolic` and the symbolic containment engine in
:mod:`repro.stg.symbolic_replaceability`:

* hash-consed nodes (a *unique table*), so equality of functions is
  pointer equality of node indices;
* the Shannon-expansion ``ite`` (if-then-else) core with memoisation,
  from which all Boolean connectives derive;
* restriction (cofactors), recursive existential/universal
  quantification over variable sets, variable-to-variable renaming (the
  next-state <-> current-state substitution of image computation);
* a fused and-exists operator :meth:`BDDManager.relprod` -- the
  relational-product workhorse of image computation, which never
  materialises the (often huge) intermediate conjunction;
* **bounded computed tables**: every operation cache is capped at
  ``cache_limit`` entries and flushed wholesale when full, so a long
  fixpoint run cannot grow memoisation without bound;
* **mark-and-sweep garbage collection** keyed on protected roots
  (:meth:`protect` / :meth:`collect`), recycling node slots through a
  free list while keeping hash-consing canonical for the survivors;
* per-operation counters in :attr:`BDDManager.stats` (ite calls, cache
  hits, evictions, GC runs, nodes created) that the symbolic engines
  surface through ``repro.obs``;
* satisfy-one, model counting and support extraction.

Variable order is the order of :meth:`BDDManager.variable` calls (an
explicit ``order`` index can interleave).  No dynamic reordering -- a
fixed interleaved current/next order works for the machines here.

Node representation: index into parallel arrays; node 0 is the constant
FALSE, node 1 the constant TRUE.  Every node satisfies the ROBDD
invariants (``low != high``, children below the node's variable), so
semantic equivalence really is index equality -- a property the test
suite checks against brute-force truth tables.

GC contract: :meth:`collect` frees every node not reachable from a
protected root (or a root passed to the call); any :class:`BDD` handle
to a freed node is *invalidated* -- its slot may be recycled by later
allocations.  Callers running long fixpoints protect their live
frontier/relation roots and collect between iterations.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

__all__ = ["BDDManager", "BDD", "DEFAULT_CACHE_LIMIT"]

FALSE_INDEX = 0
TRUE_INDEX = 1

#: Default bound on each operation cache (entries, not nodes).
DEFAULT_CACHE_LIMIT = 1 << 20

_FREED = -2  # sentinel var level marking a slot on the free list


class BDD:
    """A handle to one function in a :class:`BDDManager`.

    Handles support the Boolean operators (``&``, ``|``, ``^``, ``~``)
    and comparisons; they are only meaningful within their manager.
    """

    __slots__ = ("manager", "index")

    def __init__(self, manager: "BDDManager", index: int) -> None:
        self.manager = manager
        self.index = index

    # -- operators -------------------------------------------------------

    def _check(self, other: "BDD") -> None:
        if self.manager is not other.manager:
            raise ValueError("BDD operands belong to different managers")

    def __and__(self, other: "BDD") -> "BDD":
        self._check(other)
        return BDD(self.manager, self.manager._ite(self.index, other.index, FALSE_INDEX))

    def __or__(self, other: "BDD") -> "BDD":
        self._check(other)
        return BDD(self.manager, self.manager._ite(self.index, TRUE_INDEX, other.index))

    def __xor__(self, other: "BDD") -> "BDD":
        self._check(other)
        not_other = self.manager._ite(other.index, FALSE_INDEX, TRUE_INDEX)
        return BDD(self.manager, self.manager._ite(self.index, not_other, other.index))

    def __invert__(self) -> "BDD":
        return BDD(self.manager, self.manager._ite(self.index, FALSE_INDEX, TRUE_INDEX))

    def iff(self, other: "BDD") -> "BDD":
        """Logical biconditional (XNOR)."""
        return ~(self ^ other)

    def implies(self, other: "BDD") -> "BDD":
        """Logical implication."""
        self._check(other)
        return BDD(self.manager, self.manager._ite(self.index, other.index, TRUE_INDEX))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, BDD)
            and other.manager is self.manager
            and other.index == self.index
        )

    def __hash__(self) -> int:
        return hash((id(self.manager), self.index))

    def __repr__(self) -> str:
        if self.index == FALSE_INDEX:
            return "<BDD FALSE>"
        if self.index == TRUE_INDEX:
            return "<BDD TRUE>"
        return "<BDD node %d, %d nodes>" % (self.index, self.manager.size_of(self))

    # -- predicates --------------------------------------------------------

    @property
    def is_false(self) -> bool:
        return self.index == FALSE_INDEX

    @property
    def is_true(self) -> bool:
        return self.index == TRUE_INDEX

    # -- conveniences delegating to the manager ------------------------------

    def restrict(self, assignment: Dict[str, bool]) -> "BDD":
        """Cofactor with respect to a partial variable assignment."""
        return self.manager.restrict(self, assignment)

    def exists(self, variables: Iterable[str]) -> "BDD":
        """Existential quantification over *variables*."""
        return self.manager.exists(self, variables)

    def forall(self, variables: Iterable[str]) -> "BDD":
        """Universal quantification over *variables*."""
        return self.manager.forall(self, variables)

    def rename(self, mapping: Dict[str, str]) -> "BDD":
        """Variable-to-variable substitution (see
        :meth:`BDDManager.rename` for the ordering requirement)."""
        return self.manager.rename(self, mapping)

    def support(self) -> Tuple[str, ...]:
        """Variables this function actually depends on."""
        return self.manager.support(self)

    def satisfy_one(self) -> Optional[Dict[str, bool]]:
        """One satisfying assignment over the support, or ``None``."""
        return self.manager.satisfy_one(self)

    def count(self, variables: Sequence[str]) -> int:
        """Number of satisfying assignments over *variables*."""
        return self.manager.count(self, variables)

    def evaluate(self, assignment: Dict[str, bool]) -> bool:
        """Evaluate under a total assignment of the support."""
        return self.manager.evaluate(self, assignment)


class BDDManager:
    """A unique-table BDD store with an ``ite``-based operator core.

    Parameters
    ----------
    cache_limit:
        Bound on each operation cache (``ite``, ``exists``,
        ``relprod``).  When a cache reaches the limit it is flushed
        (counted in ``stats["cache_evictions"]``); correctness is
        unaffected -- only recomputation cost.
    """

    def __init__(self, *, cache_limit: int = DEFAULT_CACHE_LIMIT) -> None:
        if cache_limit < 1:
            raise ValueError("cache_limit must be positive")
        # Parallel node arrays; entries 0/1 are the terminals (their
        # var level is +inf conceptually; we use a sentinel).
        self._var: List[int] = [-1, -1]
        self._low: List[int] = [-1, -1]
        self._high: List[int] = [-1, -1]
        self._unique: Dict[Tuple[int, int, int], int] = {}
        self._ite_cache: Dict[Tuple[int, int, int], int] = {}
        self._exists_cache: Dict[Tuple[int, int], int] = {}
        self._relprod_cache: Dict[Tuple[int, int, int], int] = {}
        self._var_names: List[str] = []
        self._var_index: Dict[str, int] = {}
        self._free: List[int] = []
        self._protected: Dict[int, int] = {}
        self._qsets: Dict[FrozenSet[int], int] = {}
        self._qset_levels: List[FrozenSet[int]] = []
        self.cache_limit = cache_limit
        #: Monotone per-operation counters (never reset by GC/flushes).
        self.stats: Dict[str, int] = {
            "nodes_created": 0,
            "ite_calls": 0,
            "ite_cache_hits": 0,
            "exists_calls": 0,
            "exists_cache_hits": 0,
            "relprod_calls": 0,
            "relprod_cache_hits": 0,
            "cache_evictions": 0,
            "gc_runs": 0,
            "gc_freed_nodes": 0,
            "peak_live_nodes": 2,
        }

    # -- variables -----------------------------------------------------------

    def variable(self, name: str) -> BDD:
        """The function of a single variable, registering it (at the
        end of the current order) on first use."""
        level = self._var_index.get(name)
        if level is None:
            level = len(self._var_names)
            self._var_names.append(name)
            self._var_index[name] = level
        return BDD(self, self._node(level, FALSE_INDEX, TRUE_INDEX))

    def declare(self, *names: str) -> List[BDD]:
        """Register variables in the given order; returns their BDDs."""
        return [self.variable(name) for name in names]

    @property
    def variable_names(self) -> Tuple[str, ...]:
        return tuple(self._var_names)

    def level_of(self, name: str) -> int:
        """Position of *name* in the variable order."""
        return self._var_index[name]

    # -- constants -------------------------------------------------------------

    @property
    def true(self) -> BDD:
        return BDD(self, TRUE_INDEX)

    @property
    def false(self) -> BDD:
        return BDD(self, FALSE_INDEX)

    def constant(self, value: bool) -> BDD:
        return self.true if value else self.false

    # -- node store --------------------------------------------------------------

    def _node(self, var: int, low: int, high: int) -> int:
        if low == high:
            return low
        key = (var, low, high)
        found = self._unique.get(key)
        if found is not None:
            return found
        if self._free:
            index = self._free.pop()
            self._var[index] = var
            self._low[index] = low
            self._high[index] = high
        else:
            index = len(self._var)
            self._var.append(var)
            self._low.append(low)
            self._high.append(high)
        self._unique[key] = index
        stats = self.stats
        stats["nodes_created"] += 1
        live = len(self._unique) + 2
        if live > stats["peak_live_nodes"]:
            stats["peak_live_nodes"] = live
        return index

    def _level(self, index: int) -> int:
        var = self._var[index]
        return 1 << 30 if var < 0 else var

    def _cache_room(self, cache: Dict) -> Dict:
        """Flush *cache* when it has hit the bound; returns the cache."""
        if len(cache) >= self.cache_limit:
            cache.clear()
            self.stats["cache_evictions"] += 1
        return cache

    # -- the ite core ---------------------------------------------------------------

    def _ite(self, f: int, g: int, h: int) -> int:
        # Terminal cases.
        if f == TRUE_INDEX:
            return g
        if f == FALSE_INDEX:
            return h
        if g == h:
            return g
        if g == TRUE_INDEX and h == FALSE_INDEX:
            return f
        self.stats["ite_calls"] += 1
        key = (f, g, h)
        cached = self._ite_cache.get(key)
        if cached is not None:
            self.stats["ite_cache_hits"] += 1
            return cached
        top = min(self._level(f), self._level(g), self._level(h))

        def cofactor(index: int, branch: bool) -> int:
            if self._level(index) != top:
                return index
            return self._high[index] if branch else self._low[index]

        high = self._ite(cofactor(f, True), cofactor(g, True), cofactor(h, True))
        low = self._ite(cofactor(f, False), cofactor(g, False), cofactor(h, False))
        result = self._node(top, low, high)
        self._cache_room(self._ite_cache)[key] = result
        return result

    # -- restriction & quantification ----------------------------------------------

    def restrict(self, f: BDD, assignment: Dict[str, bool]) -> BDD:
        by_level = {self._var_index[name]: value for name, value in assignment.items()}
        cache: Dict[int, int] = {}

        def walk(index: int) -> int:
            if index <= TRUE_INDEX:
                return index
            hit = cache.get(index)
            if hit is not None:
                return hit
            var = self._var[index]
            if var in by_level:
                result = walk(self._high[index] if by_level[var] else self._low[index])
            else:
                result = self._node(var, walk(self._low[index]), walk(self._high[index]))
            cache[index] = result
            return result

        return BDD(self, walk(f.index))

    def _qset_id(self, levels: FrozenSet[int]) -> int:
        """Intern a quantified-level set for compact cache keys."""
        found = self._qsets.get(levels)
        if found is None:
            found = len(self._qset_levels)
            self._qsets[levels] = found
            self._qset_levels.append(levels)
        return found

    def _levels_of(self, variables: Iterable[str]) -> FrozenSet[int]:
        return frozenset(self._var_index[name] for name in variables)

    def _exists(self, index: int, levels: FrozenSet[int], qid: int, deepest: int) -> int:
        """Recursive multi-variable existential quantification.

        *deepest* is ``max(levels)``: a node entirely below it cannot
        contain a quantified variable, so its subtree passes through.
        """
        if index <= TRUE_INDEX:
            return index
        var = self._var[index]
        if var > deepest:
            return index
        self.stats["exists_calls"] += 1
        key = (index, qid)
        cached = self._exists_cache.get(key)
        if cached is not None:
            self.stats["exists_cache_hits"] += 1
            return cached
        low = self._exists(self._low[index], levels, qid, deepest)
        high = self._exists(self._high[index], levels, qid, deepest)
        if var in levels:
            result = self._ite(low, TRUE_INDEX, high)  # low | high
        else:
            result = self._node(var, low, high)
        self._cache_room(self._exists_cache)[key] = result
        return result

    def exists(self, f: BDD, variables: Iterable[str]) -> BDD:
        levels = self._levels_of(variables)
        if not levels:
            return f
        return BDD(
            self, self._exists(f.index, levels, self._qset_id(levels), max(levels))
        )

    def forall(self, f: BDD, variables: Iterable[str]) -> BDD:
        # ∀V f  ==  ¬∃V ¬f
        levels = self._levels_of(variables)
        if not levels:
            return f
        negated = self._ite(f.index, FALSE_INDEX, TRUE_INDEX)
        result = self._exists(negated, levels, self._qset_id(levels), max(levels))
        return BDD(self, self._ite(result, FALSE_INDEX, TRUE_INDEX))

    def relprod(self, f: BDD, g: BDD, variables: Iterable[str]) -> BDD:
        """Fused and-exists: ``exists(variables, f & g)`` without ever
        building the conjunction.

        This is the relational product at the heart of symbolic image
        computation: quantified subtrees collapse to TRUE as soon as one
        branch is satisfiable, so the intermediate product never
        materialises.  Semantically identical to
        ``(f & g).exists(variables)`` (property-tested against it).
        """
        if f.manager is not self or g.manager is not self:
            raise ValueError("relprod operands belong to a different manager")
        levels = self._levels_of(variables)
        if not levels:
            return f & g
        qid = self._qset_id(levels)
        return BDD(self, self._relprod(f.index, g.index, levels, qid, max(levels)))

    def _relprod(
        self, f: int, g: int, levels: FrozenSet[int], qid: int, deepest: int
    ) -> int:
        if f == FALSE_INDEX or g == FALSE_INDEX:
            return FALSE_INDEX
        if f == TRUE_INDEX and g == TRUE_INDEX:
            return TRUE_INDEX
        if f == g or g == TRUE_INDEX:
            return self._exists(f, levels, qid, deepest)
        if f == TRUE_INDEX:
            return self._exists(g, levels, qid, deepest)
        level_f, level_g = self._level(f), self._level(g)
        top = level_f if level_f < level_g else level_g
        if top > deepest:
            # Entirely below the quantified variables: plain conjunction.
            return self._ite(f, g, FALSE_INDEX)
        self.stats["relprod_calls"] += 1
        if f > g:  # conjunction commutes; normalise the cache key
            f, g = g, f
            level_f, level_g = level_g, level_f
        key = (f, g, qid)
        cached = self._relprod_cache.get(key)
        if cached is not None:
            self.stats["relprod_cache_hits"] += 1
            return cached
        f_low, f_high = (
            (self._low[f], self._high[f]) if level_f == top else (f, f)
        )
        g_low, g_high = (
            (self._low[g], self._high[g]) if level_g == top else (g, g)
        )
        low = self._relprod(f_low, g_low, levels, qid, deepest)
        if top in levels and low == TRUE_INDEX:
            result = TRUE_INDEX  # short-circuit: branch already satisfiable
        else:
            high = self._relprod(f_high, g_high, levels, qid, deepest)
            if top in levels:
                result = self._ite(low, TRUE_INDEX, high)  # low | high
            else:
                result = self._node(top, low, high)
        self._cache_room(self._relprod_cache)[key] = result
        return result

    def rename(self, f: BDD, mapping: Dict[str, str]) -> BDD:
        """Substitute variables by variables.

        Requires the mapping to be *order-compatible*: the relative
        order of any two support variables must be unchanged by the
        substitution (true for the ``state <-> next_state`` pairings
        used in image computation when declared interleaved).  Raises
        :class:`ValueError` otherwise, rather than silently building a
        malformed diagram.
        """
        if not mapping:
            return f
        # Validate order-compatibility on the support.
        support = [name for name in self.support(f)]
        renamed_levels = [
            self._var_index[mapping.get(name, name)] for name in support
        ]
        original_levels = [self._var_index[name] for name in support]
        if sorted(range(len(support)), key=lambda i: renamed_levels[i]) != sorted(
            range(len(support)), key=lambda i: original_levels[i]
        ):
            raise ValueError(
                "rename mapping is not order-compatible with the variable order"
            )
        level_map = {
            self._var_index[src]: self._var_index[dst] for src, dst in mapping.items()
        }
        cache: Dict[int, int] = {}

        def walk(index: int) -> int:
            if index <= TRUE_INDEX:
                return index
            hit = cache.get(index)
            if hit is not None:
                return hit
            var = self._var[index]
            result = self._node(
                level_map.get(var, var), walk(self._low[index]), walk(self._high[index])
            )
            cache[index] = result
            return result

        return BDD(self, walk(f.index))

    # -- garbage collection -------------------------------------------------------

    def protect(self, f: BDD) -> BDD:
        """Mark *f* as a GC root (reference-counted); returns *f*."""
        if f.manager is not self:
            raise ValueError("cannot protect a BDD from another manager")
        self._protected[f.index] = self._protected.get(f.index, 0) + 1
        return f

    def unprotect(self, f: BDD) -> None:
        """Drop one protection reference added by :meth:`protect`."""
        count = self._protected.get(f.index, 0)
        if count <= 1:
            self._protected.pop(f.index, None)
        else:
            self._protected[f.index] = count - 1

    def collect(self, roots: Iterable[BDD] = ()) -> int:
        """Mark-and-sweep: free every node unreachable from the
        protected roots and *roots*; returns the number freed.

        Handles to freed nodes are invalidated (their slots go on a
        free list for reuse); all operation caches are flushed, since
        cached entries may reference freed slots.
        """
        marked = {FALSE_INDEX, TRUE_INDEX}
        stack: List[int] = list(self._protected)
        for f in roots:
            if f.manager is not self:
                raise ValueError("cannot collect with a root from another manager")
            stack.append(f.index)
        while stack:
            index = stack.pop()
            if index in marked:
                continue
            marked.add(index)
            stack.append(self._low[index])
            stack.append(self._high[index])
        freed = 0
        for key, index in list(self._unique.items()):
            if index not in marked:
                del self._unique[key]
                self._var[index] = _FREED
                self._low[index] = -1
                self._high[index] = -1
                self._free.append(index)
                freed += 1
        # Cached results may name freed slots; flush everything.
        self._ite_cache.clear()
        self._exists_cache.clear()
        self._relprod_cache.clear()
        self.stats["gc_runs"] += 1
        self.stats["gc_freed_nodes"] += freed
        return freed

    @property
    def live_node_count(self) -> int:
        """Nodes currently in the unique table, plus the terminals."""
        return len(self._unique) + 2

    # -- inspection ---------------------------------------------------------------

    def support(self, f: BDD) -> Tuple[str, ...]:
        seen = set()
        levels = set()
        stack = [f.index]
        while stack:
            index = stack.pop()
            if index <= TRUE_INDEX or index in seen:
                continue
            seen.add(index)
            levels.add(self._var[index])
            stack.append(self._low[index])
            stack.append(self._high[index])
        return tuple(self._var_names[level] for level in sorted(levels))

    def size_of(self, f: BDD) -> int:
        """Node count of the (shared) diagram rooted at *f*."""
        seen = set()
        stack = [f.index]
        while stack:
            index = stack.pop()
            if index <= TRUE_INDEX or index in seen:
                continue
            seen.add(index)
            stack.append(self._low[index])
            stack.append(self._high[index])
        return len(seen) + 2  # + terminals

    def satisfy_one(self, f: BDD) -> Optional[Dict[str, bool]]:
        if f.index == FALSE_INDEX:
            return None
        assignment: Dict[str, bool] = {}
        index = f.index
        while index > TRUE_INDEX:
            var = self._var_names[self._var[index]]
            if self._low[index] != FALSE_INDEX:
                assignment[var] = False
                index = self._low[index]
            else:
                assignment[var] = True
                index = self._high[index]
        return assignment

    def count(self, f: BDD, variables: Sequence[str]) -> int:
        """Model count over the given variable list (must cover the
        support of *f*)."""
        support = set(self.support(f))
        names = list(variables)
        missing = support - set(names)
        if missing:
            raise ValueError("count variables missing support vars: %s" % sorted(missing))
        levels = sorted(self._var_index[name] for name in names)
        position = {level: i for i, level in enumerate(levels)}
        cache: Dict[int, int] = {}

        def walk(index: int) -> Tuple[int, int]:
            """Returns (count, level-position of this node)."""
            if index == FALSE_INDEX:
                return 0, len(levels)
            if index == TRUE_INDEX:
                return 1, len(levels)
            if index in cache:
                return cache[index], position[self._var[index]]
            low_count, low_pos = walk(self._low[index])
            high_count, high_pos = walk(self._high[index])
            my_pos = position[self._var[index]]
            total = low_count * (1 << (low_pos - my_pos - 1)) + high_count * (
                1 << (high_pos - my_pos - 1)
            )
            cache[index] = total
            return total, my_pos

        count, pos = walk(f.index)
        return count * (1 << pos)

    def evaluate(self, f: BDD, assignment: Dict[str, bool]) -> bool:
        index = f.index
        while index > TRUE_INDEX:
            name = self._var_names[self._var[index]]
            try:
                branch = assignment[name]
            except KeyError:
                raise ValueError("assignment missing variable %r" % name)
            index = self._high[index] if branch else self._low[index]
        return index == TRUE_INDEX

    # -- bulk helpers ------------------------------------------------------------

    def cube(self, assignment: Dict[str, bool]) -> BDD:
        """The conjunction of literals described by *assignment*."""
        result = self.true
        for name, value in assignment.items():
            var = self.variable(name)
            result = result & (var if value else ~var)
        return result

    def disjunction(self, functions: Iterable[BDD]) -> BDD:
        result = self.false
        for f in functions:
            result = result | f
        return result

    def conjunction(self, functions: Iterable[BDD]) -> BDD:
        result = self.true
        for f in functions:
            result = result & f
        return result

    @property
    def num_nodes(self) -> int:
        """Total node slots allocated in this manager (monotone; freed
        slots remain allocated until reused)."""
        return len(self._var)
