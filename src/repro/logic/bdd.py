"""Reduced Ordered Binary Decision Diagrams, from scratch.

The verification layer the paper's community ran on (Pixley's SHE
implementation [Pix92], the safe-replacement checks of [PSAB94]) was
built on ROBDDs.  This module provides a compact, dependency-free BDD
manager sufficient for the symbolic analyses in
:mod:`repro.stg.symbolic`:

* hash-consed nodes (a *unique table*), so equality of functions is
  pointer equality of node indices;
* the Shannon-expansion ``ite`` (if-then-else) core with memoisation,
  from which all Boolean connectives derive;
* restriction (cofactors), existential/universal quantification over
  variable sets, variable-to-variable renaming (the next-state <->
  current-state substitution of image computation);
* satisfy-one, model counting and support extraction.

Variable order is the order of :meth:`BDDManager.variable` calls (an
explicit ``order`` index can interleave).  No dynamic reordering -- the
circuits here are small and a fixed topological-ish order works fine.

Node representation: index into parallel arrays; node 0 is the constant
FALSE, node 1 the constant TRUE.  Every node satisfies the ROBDD
invariants (``low != high``, children below the node's variable), so
semantic equivalence really is index equality -- a property the test
suite checks against brute-force truth tables.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

__all__ = ["BDDManager", "BDD"]

FALSE_INDEX = 0
TRUE_INDEX = 1


class BDD:
    """A handle to one function in a :class:`BDDManager`.

    Handles support the Boolean operators (``&``, ``|``, ``^``, ``~``)
    and comparisons; they are only meaningful within their manager.
    """

    __slots__ = ("manager", "index")

    def __init__(self, manager: "BDDManager", index: int) -> None:
        self.manager = manager
        self.index = index

    # -- operators -------------------------------------------------------

    def _check(self, other: "BDD") -> None:
        if self.manager is not other.manager:
            raise ValueError("BDD operands belong to different managers")

    def __and__(self, other: "BDD") -> "BDD":
        self._check(other)
        return BDD(self.manager, self.manager._ite(self.index, other.index, FALSE_INDEX))

    def __or__(self, other: "BDD") -> "BDD":
        self._check(other)
        return BDD(self.manager, self.manager._ite(self.index, TRUE_INDEX, other.index))

    def __xor__(self, other: "BDD") -> "BDD":
        self._check(other)
        not_other = self.manager._ite(other.index, FALSE_INDEX, TRUE_INDEX)
        return BDD(self.manager, self.manager._ite(self.index, not_other, other.index))

    def __invert__(self) -> "BDD":
        return BDD(self.manager, self.manager._ite(self.index, FALSE_INDEX, TRUE_INDEX))

    def iff(self, other: "BDD") -> "BDD":
        """Logical biconditional (XNOR)."""
        return ~(self ^ other)

    def implies(self, other: "BDD") -> "BDD":
        """Logical implication."""
        self._check(other)
        return BDD(self.manager, self.manager._ite(self.index, other.index, TRUE_INDEX))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, BDD)
            and other.manager is self.manager
            and other.index == self.index
        )

    def __hash__(self) -> int:
        return hash((id(self.manager), self.index))

    def __repr__(self) -> str:
        if self.index == FALSE_INDEX:
            return "<BDD FALSE>"
        if self.index == TRUE_INDEX:
            return "<BDD TRUE>"
        return "<BDD node %d, %d nodes>" % (self.index, self.manager.size_of(self))

    # -- predicates --------------------------------------------------------

    @property
    def is_false(self) -> bool:
        return self.index == FALSE_INDEX

    @property
    def is_true(self) -> bool:
        return self.index == TRUE_INDEX

    # -- conveniences delegating to the manager ------------------------------

    def restrict(self, assignment: Dict[str, bool]) -> "BDD":
        """Cofactor with respect to a partial variable assignment."""
        return self.manager.restrict(self, assignment)

    def exists(self, variables: Iterable[str]) -> "BDD":
        """Existential quantification over *variables*."""
        return self.manager.exists(self, variables)

    def forall(self, variables: Iterable[str]) -> "BDD":
        """Universal quantification over *variables*."""
        return self.manager.forall(self, variables)

    def rename(self, mapping: Dict[str, str]) -> "BDD":
        """Variable-to-variable substitution (see
        :meth:`BDDManager.rename` for the ordering requirement)."""
        return self.manager.rename(self, mapping)

    def support(self) -> Tuple[str, ...]:
        """Variables this function actually depends on."""
        return self.manager.support(self)

    def satisfy_one(self) -> Optional[Dict[str, bool]]:
        """One satisfying assignment over the support, or ``None``."""
        return self.manager.satisfy_one(self)

    def count(self, variables: Sequence[str]) -> int:
        """Number of satisfying assignments over *variables*."""
        return self.manager.count(self, variables)

    def evaluate(self, assignment: Dict[str, bool]) -> bool:
        """Evaluate under a total assignment of the support."""
        return self.manager.evaluate(self, assignment)


class BDDManager:
    """A unique-table BDD store with an ``ite``-based operator core."""

    def __init__(self) -> None:
        # Parallel node arrays; entries 0/1 are the terminals (their
        # var level is +inf conceptually; we use a sentinel).
        self._var: List[int] = [-1, -1]
        self._low: List[int] = [-1, -1]
        self._high: List[int] = [-1, -1]
        self._unique: Dict[Tuple[int, int, int], int] = {}
        self._ite_cache: Dict[Tuple[int, int, int], int] = {}
        self._var_names: List[str] = []
        self._var_index: Dict[str, int] = {}

    # -- variables -----------------------------------------------------------

    def variable(self, name: str) -> BDD:
        """The function of a single variable, registering it (at the
        end of the current order) on first use."""
        level = self._var_index.get(name)
        if level is None:
            level = len(self._var_names)
            self._var_names.append(name)
            self._var_index[name] = level
        return BDD(self, self._node(level, FALSE_INDEX, TRUE_INDEX))

    def declare(self, *names: str) -> List[BDD]:
        """Register variables in the given order; returns their BDDs."""
        return [self.variable(name) for name in names]

    @property
    def variable_names(self) -> Tuple[str, ...]:
        return tuple(self._var_names)

    def level_of(self, name: str) -> int:
        """Position of *name* in the variable order."""
        return self._var_index[name]

    # -- constants -------------------------------------------------------------

    @property
    def true(self) -> BDD:
        return BDD(self, TRUE_INDEX)

    @property
    def false(self) -> BDD:
        return BDD(self, FALSE_INDEX)

    def constant(self, value: bool) -> BDD:
        return self.true if value else self.false

    # -- node store --------------------------------------------------------------

    def _node(self, var: int, low: int, high: int) -> int:
        if low == high:
            return low
        key = (var, low, high)
        found = self._unique.get(key)
        if found is not None:
            return found
        index = len(self._var)
        self._var.append(var)
        self._low.append(low)
        self._high.append(high)
        self._unique[key] = index
        return index

    def _level(self, index: int) -> int:
        var = self._var[index]
        return 1 << 30 if var < 0 else var

    # -- the ite core ---------------------------------------------------------------

    def _ite(self, f: int, g: int, h: int) -> int:
        # Terminal cases.
        if f == TRUE_INDEX:
            return g
        if f == FALSE_INDEX:
            return h
        if g == h:
            return g
        if g == TRUE_INDEX and h == FALSE_INDEX:
            return f
        key = (f, g, h)
        cached = self._ite_cache.get(key)
        if cached is not None:
            return cached
        top = min(self._level(f), self._level(g), self._level(h))

        def cofactor(index: int, branch: bool) -> int:
            if self._level(index) != top:
                return index
            return self._high[index] if branch else self._low[index]

        high = self._ite(cofactor(f, True), cofactor(g, True), cofactor(h, True))
        low = self._ite(cofactor(f, False), cofactor(g, False), cofactor(h, False))
        result = self._node(top, low, high)
        self._ite_cache[key] = result
        return result

    # -- restriction & quantification ----------------------------------------------

    def restrict(self, f: BDD, assignment: Dict[str, bool]) -> BDD:
        by_level = {self._var_index[name]: value for name, value in assignment.items()}
        cache: Dict[int, int] = {}

        def walk(index: int) -> int:
            if index <= TRUE_INDEX:
                return index
            hit = cache.get(index)
            if hit is not None:
                return hit
            var = self._var[index]
            if var in by_level:
                result = walk(self._high[index] if by_level[var] else self._low[index])
            else:
                result = self._node(var, walk(self._low[index]), walk(self._high[index]))
            cache[index] = result
            return result

        return BDD(self, walk(f.index))

    def exists(self, f: BDD, variables: Iterable[str]) -> BDD:
        result = f
        for name in variables:
            low = self.restrict(result, {name: False})
            high = self.restrict(result, {name: True})
            result = low | high
        return result

    def forall(self, f: BDD, variables: Iterable[str]) -> BDD:
        result = f
        for name in variables:
            low = self.restrict(result, {name: False})
            high = self.restrict(result, {name: True})
            result = low & high
        return result

    def rename(self, f: BDD, mapping: Dict[str, str]) -> BDD:
        """Substitute variables by variables.

        Requires the mapping to be *order-compatible*: the relative
        order of any two support variables must be unchanged by the
        substitution (true for the ``state <-> next_state`` pairings
        used in image computation when declared interleaved).  Raises
        :class:`ValueError` otherwise, rather than silently building a
        malformed diagram.
        """
        if not mapping:
            return f
        # Validate order-compatibility on the support.
        support = [name for name in self.support(f)]
        renamed_levels = [
            self._var_index[mapping.get(name, name)] for name in support
        ]
        original_levels = [self._var_index[name] for name in support]
        if sorted(range(len(support)), key=lambda i: renamed_levels[i]) != sorted(
            range(len(support)), key=lambda i: original_levels[i]
        ):
            raise ValueError(
                "rename mapping is not order-compatible with the variable order"
            )
        level_map = {
            self._var_index[src]: self._var_index[dst] for src, dst in mapping.items()
        }
        cache: Dict[int, int] = {}

        def walk(index: int) -> int:
            if index <= TRUE_INDEX:
                return index
            hit = cache.get(index)
            if hit is not None:
                return hit
            var = self._var[index]
            result = self._node(
                level_map.get(var, var), walk(self._low[index]), walk(self._high[index])
            )
            cache[index] = result
            return result

        return BDD(self, walk(f.index))

    # -- inspection ---------------------------------------------------------------

    def support(self, f: BDD) -> Tuple[str, ...]:
        seen = set()
        levels = set()
        stack = [f.index]
        while stack:
            index = stack.pop()
            if index <= TRUE_INDEX or index in seen:
                continue
            seen.add(index)
            levels.add(self._var[index])
            stack.append(self._low[index])
            stack.append(self._high[index])
        return tuple(self._var_names[level] for level in sorted(levels))

    def size_of(self, f: BDD) -> int:
        """Node count of the (shared) diagram rooted at *f*."""
        seen = set()
        stack = [f.index]
        while stack:
            index = stack.pop()
            if index <= TRUE_INDEX or index in seen:
                continue
            seen.add(index)
            stack.append(self._low[index])
            stack.append(self._high[index])
        return len(seen) + 2  # + terminals

    def satisfy_one(self, f: BDD) -> Optional[Dict[str, bool]]:
        if f.index == FALSE_INDEX:
            return None
        assignment: Dict[str, bool] = {}
        index = f.index
        while index > TRUE_INDEX:
            var = self._var_names[self._var[index]]
            if self._low[index] != FALSE_INDEX:
                assignment[var] = False
                index = self._low[index]
            else:
                assignment[var] = True
                index = self._high[index]
        return assignment

    def count(self, f: BDD, variables: Sequence[str]) -> int:
        """Model count over the given variable list (must cover the
        support of *f*)."""
        support = set(self.support(f))
        names = list(variables)
        missing = support - set(names)
        if missing:
            raise ValueError("count variables missing support vars: %s" % sorted(missing))
        levels = sorted(self._var_index[name] for name in names)
        position = {level: i for i, level in enumerate(levels)}
        cache: Dict[int, int] = {}

        def walk(index: int) -> Tuple[int, int]:
            """Returns (count, level-position of this node)."""
            if index == FALSE_INDEX:
                return 0, len(levels)
            if index == TRUE_INDEX:
                return 1, len(levels)
            if index in cache:
                return cache[index], position[self._var[index]]
            low_count, low_pos = walk(self._low[index])
            high_count, high_pos = walk(self._high[index])
            my_pos = position[self._var[index]]
            total = low_count * (1 << (low_pos - my_pos - 1)) + high_count * (
                1 << (high_pos - my_pos - 1)
            )
            cache[index] = total
            return total, my_pos

        count, pos = walk(f.index)
        return count * (1 << pos)

    def evaluate(self, f: BDD, assignment: Dict[str, bool]) -> bool:
        index = f.index
        while index > TRUE_INDEX:
            name = self._var_names[self._var[index]]
            try:
                branch = assignment[name]
            except KeyError:
                raise ValueError("assignment missing variable %r" % name)
            index = self._high[index] if branch else self._low[index]
        return index == TRUE_INDEX

    # -- bulk helpers ------------------------------------------------------------

    def cube(self, assignment: Dict[str, bool]) -> BDD:
        """The conjunction of literals described by *assignment*."""
        result = self.true
        for name, value in assignment.items():
            var = self.variable(name)
            result = result & (var if value else ~var)
        return result

    def disjunction(self, functions: Iterable[BDD]) -> BDD:
        result = self.false
        for f in functions:
            result = result | f
        return result

    def conjunction(self, functions: Iterable[BDD]) -> BDD:
        result = self.true
        for f in functions:
            result = result & f
        return result

    @property
    def num_nodes(self) -> int:
        """Total nodes allocated in this manager (monotone; no GC)."""
        return len(self._var)
