"""Tseitin CNF encoding of the compiled op program, dual-rail ternary.

One frame of a circuit is encoded exactly the way the lane simulators
evaluate it: every net carries a ``(can0, can1)`` rail pair -- ``(1,0)``
is 0, ``(0,1)`` is 1, ``(1,1)`` is X -- and each opcode of
:func:`repro.sim.compiled.compile_circuit`'s flat program becomes the
same dual-rail form ``_emit_ternary`` compiles to Python (AND's can0 is
the OR of the input can0s, XOR is the pairwise rail product chain, MUX
is the two-way rail blend, NOT swaps rails...).  The compiled program is
the **single source of truth** for cell semantics: the encoder walks
``CompiledCircuit.ops``, so a cell the simulators and the SAT engine
disagree on cannot exist by construction.  ``OP_GENERIC`` cells are
encoded by enumerating their ternary truth table
(``CellFunction.eval_ternary``), the same fallback the lane engines use.

Binary contexts (the containment miters, where machines are the paper's
completely specified binary STGs) do not pay for the second rail: a
*definite* net is one variable ``x`` with the rail pair aliased to
``(-x, x)``, and the rail-algebra helpers constant-fold through the
aliases, so a purely binary unrolling produces the familiar single-rail
Tseitin CNF.  Ternary contexts (the CLS miter) allocate both rails and
constrain them valid (``can0 | can1`` -- the ``(0,0)`` combination is
not a value).
"""

from __future__ import annotations

from itertools import product
from typing import Dict, List, Sequence, Tuple

from ..logic.ternary import ONE, T, X, ZERO
from ..netlist.circuit import Circuit
from ..sim.compiled import (
    OP_AND,
    OP_BUF,
    OP_CONST0,
    OP_CONST1,
    OP_GENERIC,
    OP_JUNC,
    OP_MUX,
    OP_NAND,
    OP_NOR,
    OP_NOT,
    OP_OR,
    OP_XNOR,
    OP_XOR,
    _RAIL_OF_T,
    compile_circuit,
)
from .cnf import CNF

__all__ = [
    "CircuitEncoder",
    "Rails",
    "decode_rails",
    "tseitin_and",
    "tseitin_or",
    "tseitin_xor",
]

#: A net's (can0, can1) rail pair as CNF literals.
Rails = Tuple[int, int]

#: Enumerating a GENERIC cell's ternary table is 3**n rows; this caps n.
MAX_GENERIC_INPUTS = 10


def _simplify(lits: Sequence[int], true_lit: int) -> Tuple[bool, List[int]]:
    """Drop true/duplicate literals for a conjunction.

    Returns ``(is_false, lits)`` -- ``is_false`` when a literal is
    constant-false or two literals are complementary.
    """
    out: List[int] = []
    seen = set()
    for lit in lits:
        if lit == true_lit:
            continue
        if lit == -true_lit or -lit in seen:
            return True, []
        if lit not in seen:
            seen.add(lit)
            out.append(lit)
    return False, out


def tseitin_and(cnf: CNF, lits: Sequence[int], true_lit: int) -> int:
    """A literal equivalent to the conjunction of *lits*."""
    is_false, lits = _simplify(lits, true_lit)
    if is_false:
        return -true_lit
    if not lits:
        return true_lit
    if len(lits) == 1:
        return lits[0]
    y = cnf.new_var()
    for lit in lits:
        cnf.add(-y, lit)
    cnf.add_clause([y] + [-lit for lit in lits])
    return y


def tseitin_or(cnf: CNF, lits: Sequence[int], true_lit: int) -> int:
    """A literal equivalent to the disjunction of *lits*."""
    return -tseitin_and(cnf, [-lit for lit in lits], true_lit)


def tseitin_xor(cnf: CNF, p: int, q: int, true_lit: int) -> int:
    """A literal equivalent to ``p XOR q``."""
    for a, b in ((p, q), (q, p)):
        if a == true_lit:
            return -b
        if a == -true_lit:
            return b
    if p == q:
        return -true_lit
    if p == -q:
        return true_lit
    y = cnf.new_var()
    cnf.add(-y, p, q)
    cnf.add(-y, -p, -q)
    cnf.add(y, p, -q)
    cnf.add(y, -p, q)
    return y


def _blend(cnf: CNF, p: int, q: int, r: int, s: int, true_lit: int) -> int:
    """A literal equivalent to ``(p AND q) OR (r AND s)`` -- the rail
    product form shared by the XOR chain and the MUX."""
    return tseitin_or(
        cnf,
        [tseitin_and(cnf, [p, q], true_lit), tseitin_and(cnf, [r, s], true_lit)],
        true_lit,
    )


class CircuitEncoder:
    """Unrolls one circuit's compiled program into a shared CNF.

    One encoder per (circuit, CNF) pair; :meth:`encode_frame` appends
    one clock cycle and returns the output and next-state rails, which
    the caller chains into the next frame.  Helper constructors build
    the three flavours of frame boundary the miters need: free binary
    nets (one variable), constant nets (aliases of the true literal)
    and free ternary nets (two variables constrained valid).
    """

    def __init__(self, cnf: CNF, circuit: Circuit) -> None:
        self.cnf = cnf
        self.circuit = circuit
        self.cc = compile_circuit(circuit)
        self.true_lit = cnf.true_lit()

    # -- frame-boundary rails ---------------------------------------------

    def new_binary_rails(self, count: int) -> Tuple[List[int], List[Rails]]:
        """*count* fresh definite nets; returns (vars, rail pairs)."""
        vars_ = self.cnf.new_vars(count)
        return vars_, [(-v, v) for v in vars_]

    def new_ternary_rails(self, count: int) -> List[Rails]:
        """*count* fresh three-valued nets, each constrained valid."""
        rails: List[Rails] = []
        for _ in range(count):
            a, b = self.cnf.new_var(), self.cnf.new_var()
            self.cnf.add(a, b)  # (0,0) is not a value
            rails.append((a, b))
        return rails

    def constant_rails(self, bits: Sequence[bool]) -> List[Rails]:
        """Rails pinned to concrete binary values (via the true literal)."""
        t = self.true_lit
        return [(-t, t) if bit else (t, -t) for bit in bits]

    def all_x_rails(self, count: int) -> List[Rails]:
        """Rails pinned to X -- the CLS all-unknown power-up state."""
        t = self.true_lit
        return [(t, t)] * count

    # -- one clock cycle --------------------------------------------------

    def encode_frame(
        self, state: Sequence[Rails], inputs: Sequence[Rails]
    ) -> Tuple[List[Rails], List[Rails]]:
        """Append one cycle; returns (output rails, next-state rails)."""
        cc, cnf, t = self.cc, self.cnf, self.true_lit
        rails: Dict[int, Rails] = {}
        for pin, net in enumerate(cc.input_ids):
            rails[net] = inputs[pin]
        for pos, net in enumerate(cc.latch_out_ids):
            rails[net] = state[pos]
        for opcode, in_ids, out_ids, fn in cc.ops:
            az = [rails[i][0] for i in in_ids]
            bz = [rails[i][1] for i in in_ids]
            if opcode in (OP_AND, OP_NAND):
                can0 = tseitin_or(cnf, az, t)
                can1 = tseitin_and(cnf, bz, t)
                rails[out_ids[0]] = (can0, can1) if opcode == OP_AND else (can1, can0)
            elif opcode in (OP_OR, OP_NOR):
                can0 = tseitin_and(cnf, az, t)
                can1 = tseitin_or(cnf, bz, t)
                rails[out_ids[0]] = (can0, can1) if opcode == OP_OR else (can1, can0)
            elif opcode in (OP_XOR, OP_XNOR):
                oa, ob = az[0], bz[0]
                for a, b in zip(az[1:], bz[1:]):
                    oa, ob = (
                        _blend(cnf, oa, a, ob, b, t),
                        _blend(cnf, oa, b, ob, a, t),
                    )
                rails[out_ids[0]] = (oa, ob) if opcode == OP_XOR else (ob, oa)
            elif opcode == OP_NOT:
                rails[out_ids[0]] = (bz[0], az[0])
            elif opcode == OP_BUF:
                rails[out_ids[0]] = (az[0], bz[0])
            elif opcode == OP_MUX:
                (sa, w0a, w1a), (sb, w0b, w1b) = az, bz
                rails[out_ids[0]] = (
                    _blend(cnf, sb, w1a, sa, w0a, t),
                    _blend(cnf, sb, w1b, sa, w0b, t),
                )
            elif opcode == OP_CONST0:
                rails[out_ids[0]] = (t, -t)
            elif opcode == OP_CONST1:
                rails[out_ids[0]] = (-t, t)
            elif opcode == OP_JUNC:
                for out in out_ids:
                    rails[out] = (az[0], bz[0])
            else:  # OP_GENERIC: enumerate the ternary truth table
                self._encode_generic(fn, in_ids, out_ids, rails)
        outputs = [rails[net] for net in cc.output_ids]
        next_state = [rails[net] for net in cc.latch_in_ids]
        return outputs, next_state

    def _encode_generic(
        self,
        fn,
        in_ids: Sequence[int],
        out_ids: Sequence[int],
        rails: Dict[int, Rails],
    ) -> None:
        """Row-by-row encoding of ``fn.eval_ternary`` over valid inputs.

        For each of the ``3**n`` ternary input vectors, a clause per
        output rail forces the rail to the tabulated value whenever the
        input rails spell that vector.  Valid rails (never ``(0,0)``)
        make the row premises exhaustive, so the outputs are fully
        determined -- the same contract the lane engines' ``_generic_*``
        fallbacks implement.
        """
        cnf, t = self.cnf, self.true_lit
        if len(in_ids) > MAX_GENERIC_INPUTS:
            raise ValueError(
                "GENERIC cell with %d inputs exceeds the %d-input CNF cap"
                % (len(in_ids), MAX_GENERIC_INPUTS)
            )
        out_rails = [(cnf.new_var(), cnf.new_var()) for _ in out_ids]
        for net, pair in zip(out_ids, out_rails):
            rails[net] = pair
        in_rails = [rails[i] for i in in_ids]
        for vector in product((ZERO, ONE, X), repeat=len(in_ids)):
            # not-premise: the disjunction of each input rail differing
            # from this row's rail spelling.
            not_premise: List[int] = []
            for (a_lit, b_lit), value in zip(in_rails, vector):
                ra, rb = _RAIL_OF_T[value]
                not_premise.append(-a_lit if ra else a_lit)
                not_premise.append(-b_lit if rb else b_lit)
            values = fn.eval_ternary(tuple(vector))
            for (oa, ob), value in zip(out_rails, values):
                ra, rb = _RAIL_OF_T[value]
                self._add_row_clause(not_premise, oa if ra else -oa)
                self._add_row_clause(not_premise, ob if rb else -ob)

    def _add_row_clause(self, not_premise: Sequence[int], conclusion: int) -> None:
        """Add ``premise -> conclusion``, folding constant literals."""
        t = self.true_lit
        if conclusion == t:
            return
        lits: List[int] = []
        for lit in not_premise:
            if lit == t:
                return  # premise can never hold
            if lit != -t:
                lits.append(lit)
        if conclusion != -t:
            lits.append(conclusion)
        self.cnf.add_clause(lits)


def decode_rails(model: Dict[int, bool], rails: Rails, true_lit: int) -> T:
    """Read one net's ternary value out of a satisfying assignment."""

    def lit_value(lit: int) -> bool:
        if lit == true_lit:
            return True
        if lit == -true_lit:
            return False
        value = model[abs(lit)]
        return value if lit > 0 else not value

    a, b = lit_value(rails[0]), lit_value(rails[1])
    if a and b:
        return X
    if b:
        return ONE
    if a:
        return ZERO
    raise ValueError("invalid (0,0) rail pair in SAT model")
