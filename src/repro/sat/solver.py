"""A pure-Python CDCL SAT solver (the MiniSat recipe, unadorned).

The pieces are the classical ones:

* **two-watched-literal propagation** -- each clause is watched by its
  first two literals; only clauses watching a literal that just became
  false are visited, everything else is untouched on backtracking;
* **1-UIP conflict analysis** -- resolve the conflict clause backwards
  along the trail until exactly one literal of the current decision
  level remains, learn that clause, backjump to its assertion level;
* **VSIDS-style activity** -- variables touched by conflict analysis
  are bumped, activities decay geometrically, decisions pick the hottest
  unassigned variable (lazy max-heap) with saved phases;
* **Luby restarts** -- search restarts on the ``luby(i) * 128`` conflict
  schedule, keeping learned clauses.

Budgets are first-class: ``max_conflicts`` / ``max_decisions`` raise
:class:`~repro.stg.replaceability.SearchBudgetExceeded` -- the same
exception the explicit subset search and the symbolic bucket fixpoint
use -- so the CLI's exit-code-2 path and the service's
``budget-exceeded`` envelope work unchanged for this engine.

Every satisfying assignment is re-checked against the clause database
before being returned (:func:`repro.sat.cnf.check_model`); a CDCL bug
surfaces as a hard error, never as a wrong verdict.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Sequence, Tuple

from ..stg.replaceability import SearchBudgetExceeded
from .cnf import check_model

__all__ = ["Solver", "SolverStats", "luby"]

_UNASSIGNED = -1
_RESTART_BASE = 128
_ACTIVITY_DECAY = 0.95
_ACTIVITY_RESCALE = 1e100


def luby(i: int) -> int:
    """The Luby restart sequence 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
    (0-indexed).  Term i of the sequence is ``2**(k-1)`` when
    ``i+1 == 2**k - 1``; otherwise recurse on the tail of the current
    block."""
    i += 1
    while True:
        k = i.bit_length()
        if i == (1 << k) - 1:
            return 1 << (k - 1)
        i -= (1 << (k - 1)) - 1


class SolverStats:
    """Counters the engine folds into the ``sat.*`` obs namespace."""

    __slots__ = ("conflicts", "decisions", "propagations", "restarts", "learned")

    def __init__(self) -> None:
        self.conflicts = 0
        self.decisions = 0
        self.propagations = 0
        self.restarts = 0
        self.learned = 0


class Solver:
    """Solve one CNF instance; construct fresh per :meth:`solve` call."""

    def __init__(
        self,
        num_vars: int,
        clauses: Sequence[Sequence[int]],
        *,
        max_conflicts: Optional[int] = None,
        max_decisions: Optional[int] = None,
    ) -> None:
        self.num_vars = num_vars
        self.max_conflicts = max_conflicts
        self.max_decisions = max_decisions
        self.stats = SolverStats()
        self.assign: List[int] = [_UNASSIGNED] * (num_vars + 1)
        self.level: List[int] = [0] * (num_vars + 1)
        self.reason: List[Optional[List[int]]] = [None] * (num_vars + 1)
        self.phase: List[bool] = [False] * (num_vars + 1)
        self.activity: List[float] = [0.0] * (num_vars + 1)
        self.var_inc = 1.0
        # Lazy max-heap over (-activity, var); stale entries (assigned
        # vars, outdated activities) are discarded on pop.  Bumps and
        # unassignments push, so the true maximum is always present.
        self._heap: List[Tuple[float, int]] = [
            (0.0, var) for var in range(1, num_vars + 1)
        ]
        self.trail: List[int] = []
        self.trail_lim: List[int] = []
        self.qhead = 0
        # watches[lit] lists the clauses currently watching literal lit
        # (offset by num_vars so negative literals index directly).
        self._woff = num_vars
        self.watches: List[List[List[int]]] = [
            [] for _ in range(2 * num_vars + 1)
        ]
        self.ok = True
        self._input_clauses = [tuple(clause) for clause in clauses]
        for clause in self._input_clauses:
            if not self._add_clause(list(clause)):
                self.ok = False
                break

    # -- plumbing ---------------------------------------------------------

    def _watchlist(self, lit: int) -> List[List[int]]:
        return self.watches[lit + self._woff]

    def _value(self, lit: int) -> int:
        value = self.assign[abs(lit)]
        if value == _UNASSIGNED:
            return _UNASSIGNED
        return value if lit > 0 else 1 - value

    def _decision_level(self) -> int:
        return len(self.trail_lim)

    def _enqueue(self, lit: int, reason: Optional[List[int]]) -> None:
        var = abs(lit)
        self.assign[var] = 1 if lit > 0 else 0
        self.level[var] = self._decision_level()
        self.reason[var] = reason
        self.phase[var] = lit > 0
        self.trail.append(lit)

    def _add_clause(self, lits: List[int]) -> bool:
        """Install an input clause; returns False on immediate UNSAT.

        Construction runs entirely at decision level 0, so literals
        already false there are permanently false and can be dropped
        (and clauses with a true literal skipped) before watching.
        """
        seen = set()
        clause: List[int] = []
        for lit in lits:
            if -lit in seen:
                return True  # tautology
            value = self._value(lit)
            if value == 1:
                return True  # satisfied at level 0
            if value == 0:
                continue  # permanently false literal
            if lit not in seen:
                seen.add(lit)
                clause.append(lit)
        if not clause:
            return False
        if len(clause) == 1:
            self._enqueue(clause[0], None)
            return self._propagate() is None
        self._watchlist(clause[0]).append(clause)
        self._watchlist(clause[1]).append(clause)
        return True

    # -- propagation ------------------------------------------------------

    def _propagate(self) -> Optional[List[int]]:
        """Exhaust unit propagation; returns a conflicting clause or None."""
        while self.qhead < len(self.trail):
            lit = self.trail[self.qhead]
            self.qhead += 1
            self.stats.propagations += 1
            false_lit = -lit
            watchers = self._watchlist(false_lit)
            self.watches[false_lit + self._woff] = []
            keep = self._watchlist(false_lit)
            i = 0
            while i < len(watchers):
                clause = watchers[i]
                i += 1
                if clause[0] == false_lit:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if self._value(first) == 1:
                    keep.append(clause)
                    continue
                for k in range(2, len(clause)):
                    if self._value(clause[k]) != 0:
                        clause[1], clause[k] = clause[k], clause[1]
                        self._watchlist(clause[1]).append(clause)
                        break
                else:
                    keep.append(clause)
                    if self._value(first) == 0:
                        keep.extend(watchers[i:])
                        self.qhead = len(self.trail)
                        return clause
                    self._enqueue(first, clause)
        return None

    # -- conflict analysis ------------------------------------------------

    def _bump(self, var: int) -> None:
        self.activity[var] += self.var_inc
        if self.activity[var] > _ACTIVITY_RESCALE:
            for v in range(1, self.num_vars + 1):
                self.activity[v] *= 1.0 / _ACTIVITY_RESCALE
            self.var_inc *= 1.0 / _ACTIVITY_RESCALE
        heapq.heappush(self._heap, (-self.activity[var], var))

    def _analyze(self, conflict: List[int]) -> Tuple[List[int], int]:
        """1-UIP learning: returns (learned clause, backjump level).

        The asserting literal ends up at position 0 of the learned
        clause, the highest-level remaining literal at position 1 (so
        the clause is correctly watched the moment it is installed).
        """
        current = self._decision_level()
        learnt: List[int] = [0]
        seen = [False] * (self.num_vars + 1)
        counter = 0
        p: Optional[int] = None
        index = len(self.trail) - 1
        clause = conflict
        while True:
            for q in clause[1 if p is not None else 0:]:
                var = abs(q)
                if not seen[var] and self.level[var] > 0:
                    seen[var] = True
                    self._bump(var)
                    if self.level[var] >= current:
                        counter += 1
                    else:
                        learnt.append(q)
            while not seen[abs(self.trail[index])]:
                index -= 1
            p = self.trail[index]
            index -= 1
            counter -= 1
            if counter == 0:
                break
            reason = self.reason[abs(p)]
            assert reason is not None
            clause = reason
        learnt[0] = -p
        if len(learnt) == 1:
            return learnt, 0
        # Move the literal with the highest decision level to slot 1.
        best = max(range(1, len(learnt)), key=lambda k: self.level[abs(learnt[k])])
        learnt[1], learnt[best] = learnt[best], learnt[1]
        return learnt, self.level[abs(learnt[1])]

    def _backtrack(self, target_level: int) -> None:
        while self._decision_level() > target_level:
            bound = self.trail_lim.pop()
            while len(self.trail) > bound:
                lit = self.trail.pop()
                var = abs(lit)
                self.assign[var] = _UNASSIGNED
                self.reason[var] = None
                heapq.heappush(self._heap, (-self.activity[var], var))
        self.qhead = len(self.trail)

    # -- decisions --------------------------------------------------------

    def _pick_branch_var(self) -> Optional[int]:
        while self._heap:
            negact, var = heapq.heappop(self._heap)
            if self.assign[var] == _UNASSIGNED and -negact >= self.activity[var]:
                return var
        # The heap only holds candidates; fall back to a scan in case
        # every remaining entry was stale.
        for var in range(1, self.num_vars + 1):
            if self.assign[var] == _UNASSIGNED:
                return var
        return None

    # -- the search loop --------------------------------------------------

    def solve(self) -> Optional[Dict[int, bool]]:
        """A satisfying assignment (variable -> bool), or None (UNSAT).

        Raises :class:`SearchBudgetExceeded` when the conflict or
        decision budget runs out before a verdict.
        """
        if not self.ok:
            return None
        if self._propagate() is not None:
            return None
        restart_limit = luby(self.stats.restarts) * _RESTART_BASE
        conflicts_here = 0
        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.stats.conflicts += 1
                conflicts_here += 1
                if self._decision_level() == 0:
                    return None
                if (
                    self.max_conflicts is not None
                    and self.stats.conflicts > self.max_conflicts
                ):
                    raise SearchBudgetExceeded(
                        "SAT search exceeded %d conflicts" % self.max_conflicts
                    )
                learnt, back_level = self._analyze(conflict)
                self._backtrack(back_level)
                if len(learnt) > 1:
                    self._watchlist(learnt[0]).append(learnt)
                    self._watchlist(learnt[1]).append(learnt)
                    self.stats.learned += 1
                self._enqueue(learnt[0], learnt if len(learnt) > 1 else None)
                self.var_inc *= 1.0 / _ACTIVITY_DECAY
                continue
            if conflicts_here >= restart_limit:
                self.stats.restarts += 1
                restart_limit = luby(self.stats.restarts) * _RESTART_BASE
                conflicts_here = 0
                self._backtrack(0)
                continue
            var = self._pick_branch_var()
            if var is None:
                model = {
                    v: self.assign[v] == 1 for v in range(1, self.num_vars + 1)
                }
                if not check_model(self._input_clauses, model):
                    raise AssertionError(
                        "CDCL returned a model that fails the clause re-check"
                    )
                return model
            self.stats.decisions += 1
            if (
                self.max_decisions is not None
                and self.stats.decisions > self.max_decisions
            ):
                raise SearchBudgetExceeded(
                    "SAT search exceeded %d decisions" % self.max_decisions
                )
            self.trail_lim.append(len(self.trail))
            self._enqueue(var if self.phase[var] else -var, None)
