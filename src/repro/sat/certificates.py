"""Certificate exports: the SAT engine's verdicts, re-checkable elsewhere.

Three artifact formats, each consumable by tooling this repo does not
ship (that is the point -- the verdict must survive outside the engine
that produced it):

* **DIMACS** (:func:`export_dimacs`) -- the miter CNF with a comment
  header documenting what each variable block means, so any DIMACS
  solver reproduces the SAT/UNSAT verdict at that unrolling depth.
* **SMV** (:func:`export_smv`) -- the safe-replacement miter as a NuSMV
  model: both circuits as modules with nondeterministic (free power-up)
  latches, one D instance per power-up state pinned by ``INIT``,
  sticky mismatch latches, and ``LTLSPEC G !(...)`` that holds iff
  ``C ≼ D`` -- the *unbounded* twin of the frame-unrolled CNF, checked
  by a model checker rather than a SAT solver.
* **Witness JSON** (:mod:`repro.sat.witness`) -- a replayable input
  trace, confirmed by :mod:`repro.sat.replay` with the stock
  simulators.

:func:`write_bundle` lays a verdict out as a self-contained directory
(circuits in ``.bench``, DIMACS, SMV, witness, MANIFEST) so a single
``python -m repro.sat.replay`` invocation re-checks it from files alone.
"""

from __future__ import annotations

import os
from itertools import product
from typing import Dict, List, Optional, Sequence

from ..netlist.circuit import Circuit
from ..netlist.io_bench import write_bench
from ..sim.compiled import (
    OP_AND,
    OP_BUF,
    OP_CONST0,
    OP_CONST1,
    OP_GENERIC,
    OP_JUNC,
    OP_MUX,
    OP_NAND,
    OP_NOR,
    OP_NOT,
    OP_OR,
    OP_XNOR,
    OP_XOR,
    compile_circuit,
)
from .engine import SatResult
from .miter import CLSMiter, ImplicationMiter, SafeReplacementMiter, _int_bits
from .witness import WitnessTrace, witness_to_json

__all__ = ["export_dimacs", "export_smv", "write_bundle"]


# ---------------------------------------------------------------------------
# DIMACS with a variable-role header.
# ---------------------------------------------------------------------------


def _role_lines(miter) -> List[str]:
    """Human-readable map from CNF variable blocks to circuit roles."""
    lines = [
        "repro.sat %s miter: %s (C) vs %s (D), %d frame(s)"
        % (miter.kind, miter.c_circuit.name, miter.d_circuit.name, miter.frames),
        "true literal: %d (fixed true by a unit clause)" % miter.true_lit,
    ]

    def block(name: str, vars_: Sequence[int]) -> None:
        if vars_:
            lines.append("%s: vars %s" % (name, " ".join(str(v) for v in vars_)))

    if isinstance(miter, SafeReplacementMiter):
        block("C power-up state (MSB first)", miter.c_init_vars)
        for t, vars_ in enumerate(miter.input_vars):
            block("frame %d shared inputs" % t, vars_)
    elif isinstance(miter, ImplicationMiter):
        block("C power-up state (MSB first)", miter.c_init_vars)
        for t, vars_ in enumerate(miter.warmup_input_vars):
            block("warm-up frame %d inputs" % t, vars_)
        for d0, frames in enumerate(miter.pair_input_vars):
            for t, vars_ in enumerate(frames):
                block("vs D state %d, frame %d inputs" % (d0, t), vars_)
    elif isinstance(miter, CLSMiter):
        for t, rails in enumerate(miter.input_rails):
            flat: List[int] = []
            for a, b in rails:
                flat.extend((abs(a), abs(b)))
            block("frame %d ternary inputs (can0,can1 pairs)" % t, flat)
    return lines


def export_dimacs(miter) -> str:
    """The miter CNF in DIMACS, prefixed by a variable-role header.

    Satisfiable exactly when the miter's property is refutable at its
    unrolling depth; any off-the-shelf solver reproduces the verdict.
    """
    header = "".join("c %s\n" % line for line in _role_lines(miter))
    return header + miter.cnf.to_dimacs()


# ---------------------------------------------------------------------------
# SMV: the unbounded safe-replacement miter.
# ---------------------------------------------------------------------------


def _smv_module(circuit: Circuit, module_name: str) -> List[str]:
    """One circuit as an SMV module: latches are free-power-up ``VAR``s
    (no ``init`` assignment -- NuSMV leaves them nondeterministic, which
    is exactly the paper's arbitrary power-up state), nets are
    ``DEFINE``s mirroring the compiled op program."""
    cc = compile_circuit(circuit)
    params = ["i%d" % pin for pin in range(len(circuit.inputs))]
    lines = ["MODULE %s(%s)" % (module_name, ", ".join(params))]
    names: Dict[int, str] = {}
    for pin, net in enumerate(cc.input_ids):
        names[net] = "i%d" % pin
    lines.append("VAR")
    for pos, net in enumerate(cc.latch_out_ids):
        names[net] = "l%d" % pos
        lines.append("  l%d : boolean;" % pos)
    defines: List[str] = []
    for opcode, in_ids, out_ids, fn in cc.ops:
        args = [names[i] for i in in_ids]
        if opcode == OP_JUNC:
            for out in out_ids:
                names[out] = names[in_ids[0]]
            continue
        target = "n%d" % out_ids[0]
        if opcode in (OP_AND, OP_NAND):
            expr = " & ".join(args)
            if opcode == OP_NAND:
                expr = "!(%s)" % expr
        elif opcode in (OP_OR, OP_NOR):
            expr = " | ".join(args)
            if opcode == OP_NOR:
                expr = "!(%s)" % expr
        elif opcode in (OP_XOR, OP_XNOR):
            expr = " xor ".join(args)
            if opcode == OP_XNOR:
                expr = "!(%s)" % expr
        elif opcode == OP_NOT:
            expr = "!%s" % args[0]
        elif opcode == OP_BUF:
            expr = args[0]
        elif opcode == OP_MUX:
            sel, w0, w1 = args
            expr = "(%s & %s) | (!%s & %s)" % (sel, w1, sel, w0)
        elif opcode == OP_CONST0:
            expr = "FALSE"
        elif opcode == OP_CONST1:
            expr = "TRUE"
        elif opcode == OP_GENERIC:
            exprs = _generic_minterms(fn, args)
            for out, one_expr in zip(out_ids, exprs):
                names[out] = "n%d" % out
                defines.append("  n%d := %s;" % (out, one_expr))
            continue
        else:  # pragma: no cover - the opcode set is closed
            raise ValueError("unsupported opcode %d in SMV export" % opcode)
        names[out_ids[0]] = target
        defines.append("  %s := %s;" % (target, expr))
    for pin, net in enumerate(cc.output_ids):
        defines.append("  o%d := %s;" % (pin, names[net]))
    if defines:
        lines.append("DEFINE")
        lines.extend(defines)
    lines.append("ASSIGN")
    for pos, net in enumerate(cc.latch_in_ids):
        lines.append("  next(l%d) := %s;" % (pos, names[net]))
    return lines


def _generic_minterms(fn, args: Sequence[str]) -> List[str]:
    """Each output of a GENERIC cell as a disjunction of its binary
    minterms (the table is completely specified, so this is exact)."""
    per_output: List[List[str]] = [[] for _ in range(fn.n_outputs)]
    for row in product((False, True), repeat=len(args)):
        values = fn.eval_binary(row)
        term = " & ".join(
            arg if bit else "!%s" % arg for arg, bit in zip(args, row)
        ) or "TRUE"
        for k, value in enumerate(values):
            if value:
                per_output[k].append("(%s)" % term)
    return [" | ".join(terms) if terms else "FALSE" for terms in per_output]


def export_smv(c: Circuit, d: Circuit) -> str:
    """The **unbounded** safe-replacement miter as an SMV model.

    ``main`` instantiates C once (free power-up state, free inputs) and
    one D copy per power-up state, pinned by ``INIT``.  Sticky ``mm_j``
    latches remember whether copy ``j`` has mismatched C yet; the
    LTL spec ``G !(cur_mm_0 & cur_mm_1 & ...)`` says "never have *all*
    copies mismatched", which holds iff ``C ≼ D`` -- a model checker's
    answer cross-checks the bounded CNF verdicts with no frame cap.
    """
    if len(c.inputs) != len(d.inputs) or len(c.outputs) != len(d.outputs):
        raise ValueError("machines have mismatched interfaces")
    lines: List[str] = [
        "-- repro.sat safe-replacement miter: %s (C) vs %s (D)" % (c.name, d.name),
        "-- The LTLSPEC holds iff C is a safe replacement for D (C ≼ D).",
    ]
    lines.extend(_smv_module(c, "circ_c"))
    lines.append("")
    lines.extend(_smv_module(d, "circ_d"))
    lines.append("")
    lines.append("MODULE main")
    lines.append("VAR")
    inputs = ["in%d" % pin for pin in range(len(c.inputs))]
    for name in inputs:
        lines.append("  %s : boolean;" % name)
    arg_list = ", ".join(inputs)
    lines.append("  C : circ_c(%s);" % arg_list)
    copies = 1 << d.num_latches
    for j in range(copies):
        lines.append("  D%d : circ_d(%s);" % (j, arg_list))
    for j in range(copies):
        lines.append("  mm%d : boolean;" % j)
    for j in range(copies):
        bits = _int_bits(j, d.num_latches)
        if bits:
            pins = " & ".join(
                "D%d.l%d" % (j, pos) if bit else "!D%d.l%d" % (j, pos)
                for pos, bit in enumerate(bits)
            )
            lines.append("INIT %s" % pins)
    lines.append("DEFINE")
    for j in range(copies):
        diff = " | ".join(
            "(C.o%d xor D%d.o%d)" % (pin, j, pin)
            for pin in range(len(c.outputs))
        )
        lines.append("  diff%d := %s;" % (j, diff))
        lines.append("  cur_mm%d := mm%d | diff%d;" % (j, j, j))
    lines.append("ASSIGN")
    for j in range(copies):
        lines.append("  init(mm%d) := FALSE;" % j)
        lines.append("  next(mm%d) := cur_mm%d;" % (j, j))
    conj = " & ".join("cur_mm%d" % j for j in range(copies))
    lines.append("LTLSPEC G !(%s)" % conj)
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Bundles: verdict + everything needed to re-check it, as files.
# ---------------------------------------------------------------------------


def write_bundle(
    directory: str,
    result: SatResult,
    c: Circuit,
    d: Circuit,
) -> List[str]:
    """Write a self-contained certificate directory; returns filenames.

    Always: both circuits (``c.bench``/``d.bench``), the deciding miter
    as DIMACS, and ``MANIFEST.txt``.  Safe-replacement verdicts add the
    unbounded SMV miter; violations add ``witness.json``, replayable
    via ``python -m repro.sat.replay witness.json --c c.bench --d
    d.bench``.
    """
    os.makedirs(directory, exist_ok=True)
    written: List[str] = []

    def put(name: str, text: str) -> None:
        with open(os.path.join(directory, name), "w", encoding="utf-8") as handle:
            handle.write(text)
        written.append(name)

    put("c.bench", write_bench(c, header="C (candidate): %s" % c.name))
    put("d.bench", write_bench(d, header="D (reference): %s" % d.name))
    if result.miter is not None:
        put("miter.dimacs", export_dimacs(result.miter))
    if result.kind == "safe-replacement":
        put("miter.smv", export_smv(c, d))
    if result.witness is not None:
        put("witness.json", witness_to_json(result.witness))
    power = "^%d" % result.k if result.k else ""
    verdict = {
        "safe-replacement": ("C ≼ D", "C ⋠ D"),
        "implication": ("C%s ⊑ D" % power, "C%s ⋢ D" % power),
        "cls": ("CLS-equivalent (bounded)", "CLS traces differ"),
    }[result.kind][0 if result.holds else 1]
    manifest = [
        "repro.sat certificate bundle",
        "kind: %s" % result.kind,
        "C: %s   D: %s" % (c.name, d.name),
        "verdict: %s  (method: %s, frames: %d)"
        % (verdict, result.method, result.frames),
        "files: %s" % ", ".join(written),
    ]
    if result.witness is not None:
        manifest.append(
            "re-check: python -m repro.sat.replay witness.json "
            "--c c.bench --d d.bench"
        )
    put("MANIFEST.txt", "\n".join(manifest) + "\n")
    return written
