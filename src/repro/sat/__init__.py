"""``repro.sat`` -- the third decision engine: CNF/CDCL bounded containment.

The explicit engine enumerates STGs, the symbolic engine runs BDD
fixpoints; this package decides the same paper verdicts by Tseitin-
encoding the two circuits' compiled op programs into CNF (over the
dual-rail ternary encoding the lane simulators already use), unrolling
a C-vs-D miter frame by frame, and handing the result to a pure-Python
CDCL solver.  Every verdict is backed by an exportable certificate
(DIMACS, SMV, replayable witness traces) that can be re-checked with no
trust in the SAT machinery -- see :mod:`repro.sat.replay`.

Public surface:

* :mod:`repro.sat.engine` -- ``sat_implies`` / ``sat_find_violation`` /
  ``sat_delayed_implies`` / ``sat_first_cls_difference`` and the
  result-object API (:class:`~repro.sat.engine.SatResult`).
* :mod:`repro.sat.certificates` -- DIMACS / SMV / witness-trace export.
* :mod:`repro.sat.replay` -- the independent witness checker
  (``python -m repro.sat.replay``).
"""

from .engine import (  # noqa: F401
    SAT_CONFLICT_LIMIT,
    SAT_FRAME_LIMIT,
    SatResult,
    check_cls_equivalence,
    check_implication,
    check_safe_replacement,
    sat_delay_needed,
    sat_delayed_implies,
    sat_find_violation,
    sat_first_cls_difference,
    sat_implies,
    sat_is_safe_replacement,
    sat_machines_equivalent,
)
from .witness import WitnessTrace  # noqa: F401

__all__ = [
    "SAT_CONFLICT_LIMIT",
    "SAT_FRAME_LIMIT",
    "SatResult",
    "WitnessTrace",
    "check_cls_equivalence",
    "check_implication",
    "check_safe_replacement",
    "sat_delay_needed",
    "sat_delayed_implies",
    "sat_find_violation",
    "sat_first_cls_difference",
    "sat_implies",
    "sat_is_safe_replacement",
    "sat_machines_equivalent",
]
