"""CNF container with DIMACS round-trip.

Literals follow the DIMACS convention: variables are positive integers
``1..num_vars`` and a negative literal is the negation of its variable.
The container is deliberately dumb -- clause simplification lives in
:mod:`repro.sat.encode`, search in :mod:`repro.sat.solver` -- so the
DIMACS text :meth:`CNF.to_dimacs` emits is exactly what the solver saw,
which is what makes the exported certificates independently checkable
(feed the file to any DIMACS solver and compare verdicts).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

__all__ = ["CNF", "ParsedDimacs", "parse_dimacs", "check_model"]


class CNF:
    """A growable clause database with a variable allocator."""

    def __init__(self) -> None:
        self.num_vars = 0
        self.clauses: List[Tuple[int, ...]] = []
        self.comments: List[str] = []
        self._true_lit = 0

    def new_var(self) -> int:
        """Allocate a fresh variable; returns its positive literal."""
        self.num_vars += 1
        return self.num_vars

    def new_vars(self, count: int) -> List[int]:
        return [self.new_var() for _ in range(count)]

    def add(self, *lits: int) -> None:
        """Append one clause (a disjunction of literals)."""
        self.add_clause(lits)

    def add_clause(self, lits: Sequence[int]) -> None:
        clause = tuple(lits)
        for lit in clause:
            if lit == 0 or abs(lit) > self.num_vars:
                raise ValueError("literal %d out of range" % lit)
        self.clauses.append(clause)

    def true_lit(self) -> int:
        """A literal constrained true (allocated once, on first use).

        Constant nets and fixed power-up bits alias to this literal (or
        its negation) instead of spending a variable each.
        """
        if self._true_lit == 0:
            self._true_lit = self.new_var()
            self.add(self._true_lit)
        return self._true_lit

    def comment(self, text: str) -> None:
        """Record a ``c`` header line for the DIMACS export."""
        self.comments.append(text)

    def to_dimacs(self) -> str:
        """Serialize in DIMACS ``cnf`` format (comments first)."""
        lines = ["c %s" % text if text else "c" for text in self.comments]
        lines.append("p cnf %d %d" % (self.num_vars, len(self.clauses)))
        for clause in self.clauses:
            lines.append(" ".join(str(lit) for lit in clause) + " 0")
        return "\n".join(lines) + "\n"


@dataclass
class ParsedDimacs:
    """The result of :func:`parse_dimacs`."""

    num_vars: int
    clauses: List[Tuple[int, ...]] = field(default_factory=list)
    comments: List[str] = field(default_factory=list)


def parse_dimacs(text: str) -> ParsedDimacs:
    """Parse DIMACS ``cnf`` text back into clauses.

    The certificate round-trip tests re-read exported miters through
    this to prove the export is lossless; it accepts exactly the subset
    of DIMACS that :meth:`CNF.to_dimacs` emits (plus whitespace slack).
    """
    num_vars = -1
    expected_clauses = -1
    parsed = ParsedDimacs(num_vars=0)
    pending: List[int] = []
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("c"):
            parsed.comments.append(line[2:] if line.startswith("c ") else line[1:])
            continue
        if line.startswith("p"):
            fields = line.split()
            if len(fields) != 4 or fields[1] != "cnf":
                raise ValueError("malformed DIMACS header: %r" % line)
            num_vars, expected_clauses = int(fields[2]), int(fields[3])
            parsed.num_vars = num_vars
            continue
        if num_vars < 0:
            raise ValueError("clause before DIMACS header")
        for token in line.split():
            lit = int(token)
            if lit == 0:
                parsed.clauses.append(tuple(pending))
                pending = []
            else:
                if abs(lit) > num_vars:
                    raise ValueError("literal %d out of range" % lit)
                pending.append(lit)
    if pending:
        raise ValueError("unterminated clause at end of DIMACS input")
    if expected_clauses >= 0 and len(parsed.clauses) != expected_clauses:
        raise ValueError(
            "header promised %d clauses, found %d"
            % (expected_clauses, len(parsed.clauses))
        )
    return parsed


def check_model(clauses: Sequence[Sequence[int]], model: Dict[int, bool]) -> bool:
    """Does *model* (variable -> value) satisfy every clause?

    Used by the solver's own self-check and by tests; unassigned
    variables count as falsifying, so a partial model never passes.
    """
    for clause in clauses:
        for lit in clause:
            value = model.get(abs(lit))
            if value is None:
                continue
            if value == (lit > 0):
                break
        else:
            return False
    return True
