"""Replayable witness traces -- the portable half of a SAT certificate.

A :class:`WitnessTrace` is everything an independent checker needs to
confirm a violation verdict **without trusting the SAT engine**: the
offending power-up state, the input word (three-valued, so CLS
witnesses carry their Xs), and the output traces the two circuits are
claimed to produce.  :mod:`repro.sat.replay` re-simulates the trace
with the stock simulators and compares.

The JSON layout (version 1) spells ternary vectors as strings over
``0``/``1``/``X``, one character per pin, one vector per frame::

    {"format": "repro.sat.witness", "v": 1, "kind": "safe-replacement",
     "c": "fig1-c", "d": "fig1-d", "frames": 2, "c_state": 2,
     "inputs": ["0", "1"], "c_outputs": ["00", "01"], ...}
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from ..logic.ternary import T, format_ternary, parse_ternary_string

__all__ = ["ImplicationPair", "WitnessTrace", "witness_to_json", "witness_from_json"]

#: The witness kinds, in the order the engine produces them.
KINDS = ("safe-replacement", "implication", "cls")

Vector = Tuple[T, ...]


@dataclass(frozen=True)
class ImplicationPair:
    """One per-D-power-up-state distinguishing experiment.

    Refuting ``C ⊑ D`` needs, for a single C state, a (possibly
    different) distinguishing input word against **every** D power-up
    state; each pair records one of them with both output traces.
    """

    d_state: int
    inputs: Tuple[Vector, ...]
    c_outputs: Tuple[Vector, ...]
    d_outputs: Tuple[Vector, ...]


@dataclass(frozen=True)
class WitnessTrace:
    """A violation witness, as emitted by :mod:`repro.sat.engine`.

    ``kind`` selects which fields are meaningful:

    * ``"safe-replacement"`` -- ``c_state`` + ``inputs`` is an input
      word after which no D power-up state has matched ``c_outputs``;
    * ``"implication"`` -- ``c_state`` plus one :class:`ImplicationPair`
      per D power-up state (``inputs``/``c_outputs`` are empty);
    * ``"cls"`` -- ``inputs`` is a ternary word on which the two
      all-X-started CLS simulations produce ``c_outputs`` vs
      ``d_outputs``, differing at the final frame.
    """

    kind: str
    c_name: str
    d_name: str
    frames: int
    c_state: Optional[int]
    inputs: Tuple[Vector, ...] = ()
    c_outputs: Tuple[Vector, ...] = ()
    d_outputs: Tuple[Vector, ...] = ()
    pairs: Tuple[ImplicationPair, ...] = field(default=())


def _format(vectors: Sequence[Vector]) -> list:
    return ["".join(format_ternary(v) for v in vector) for vector in vectors]


def _parse(texts: Sequence[str]) -> Tuple[Vector, ...]:
    return tuple(parse_ternary_string(text) for text in texts)


def witness_to_json(witness: WitnessTrace) -> str:
    """Serialize to the version-1 JSON exchange form."""
    payload = {
        "format": "repro.sat.witness",
        "v": 1,
        "kind": witness.kind,
        "c": witness.c_name,
        "d": witness.d_name,
        "frames": witness.frames,
        "c_state": witness.c_state,
        "inputs": _format(witness.inputs),
        "c_outputs": _format(witness.c_outputs),
        "d_outputs": _format(witness.d_outputs),
        "pairs": [
            {
                "d_state": pair.d_state,
                "inputs": _format(pair.inputs),
                "c_outputs": _format(pair.c_outputs),
                "d_outputs": _format(pair.d_outputs),
            }
            for pair in witness.pairs
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def witness_from_json(text: str) -> WitnessTrace:
    """Parse the JSON exchange form back (strict on format/version)."""
    payload = json.loads(text)
    if payload.get("format") != "repro.sat.witness" or payload.get("v") != 1:
        raise ValueError("not a repro.sat.witness v1 document")
    kind = payload["kind"]
    if kind not in KINDS:
        raise ValueError("unknown witness kind %r" % kind)
    return WitnessTrace(
        kind=kind,
        c_name=payload["c"],
        d_name=payload["d"],
        frames=int(payload["frames"]),
        c_state=payload["c_state"],
        inputs=_parse(payload["inputs"]),
        c_outputs=_parse(payload["c_outputs"]),
        d_outputs=_parse(payload["d_outputs"]),
        pairs=tuple(
            ImplicationPair(
                d_state=int(entry["d_state"]),
                inputs=_parse(entry["inputs"]),
                c_outputs=_parse(entry["c_outputs"]),
                d_outputs=_parse(entry["d_outputs"]),
            )
            for entry in payload.get("pairs", ())
        ),
    )
