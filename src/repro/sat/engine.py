"""The bounded-containment driver: paper verdicts out of miters + CDCL.

The three checks deepen a miter frame by frame and stop at the first
satisfiable depth (so extracted witnesses have **minimal length**, the
same guarantee the explicit BFS and the symbolic frontier chain give) or
at a *completeness bound* -- a frame count at which UNSAT proves the
property outright:

* ``Cᵏ ⊑ D`` (:func:`check_implication`): state equivalence of machines
  with ``N_C`` / ``N_D`` states is settled by input words of length
  ``N_C + N_D - 1`` (joint partition refinement stabilizes in fewer
  splits than there are states), so UNSAT there is a **proof**.
* ``C ≼ D`` (:func:`check_safe_replacement`): the subset-machine walk
  revisits a ``(c_state, matcher set)`` pair within
  ``N_C * 2**N_D`` steps, so violations longer than that cannot be
  minimal.  That bound is exponential, so the driver first tries the
  Prop 3.1 shortcut (``C ⊑ D ⇒ C ≼ D`` -- and the implication bound is
  merely linear in states); pairs that are safe but *not* contained are
  the only ones that need the full unroll.
* CLS difference (:func:`check_cls_equivalence`): the product of the
  two three-valued machines has at most ``3**(n_c+n_d)`` states
  reachable from all-X, bounding the first differing cycle.

A check either returns a definitive :class:`SatResult` or raises
:class:`~repro.stg.replaceability.SearchBudgetExceeded` -- the SAT
engine never guesses, which is what lets the dispatchers treat its
answers exactly like the other two engines' (and lets the serve layer
map exhaustion to the ``budget-exceeded`` envelope).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..logic.ternary import ONE, T, ZERO
from ..netlist.circuit import Circuit
from ..obs.trace import TRACER as _TRACE
from ..obs.trace import span as _span
from ..stg.replaceability import SafeReplacementViolation, SearchBudgetExceeded
from .miter import CLSMiter, ImplicationMiter, SafeReplacementMiter, _MiterBase
from .solver import Solver
from .witness import ImplicationPair, WitnessTrace

__all__ = [
    "SAT_CONFLICT_LIMIT",
    "SAT_FRAME_LIMIT",
    "SatResult",
    "check_cls_equivalence",
    "check_implication",
    "check_safe_replacement",
    "sat_delay_needed",
    "sat_delayed_implies",
    "sat_find_violation",
    "sat_first_cls_difference",
    "sat_implies",
    "sat_is_safe_replacement",
    "sat_machines_equivalent",
]

#: Default cap on unrolled frames per check (over all deepening steps the
#: *deepest* miter built, not the sum).
SAT_FRAME_LIMIT = 64

#: Default total conflict budget per check, shared across every solver
#: call the deepening loop makes.
SAT_CONFLICT_LIMIT = 200000

#: Frames to hunt for short ``≼`` violations before trying the
#: (possibly more expensive) Prop 3.1 implication shortcut.  Each
#: probed depth that finds nothing is an UNSAT proof the solver must
#: finish, so the probe is shallow; real violations are overwhelmingly
#: short (the explicit engine's BFS depths on the paper and random
#: pairs are 1-3).
_PROBE_FRAMES = 3


class _Budget:
    """Total-conflict budget threaded through a deepening loop."""

    def __init__(self, max_conflicts: Optional[int]) -> None:
        self.max_conflicts = max_conflicts
        self.conflicts = 0
        self.decisions = 0
        self.propagations = 0
        self.learned = 0
        self.restarts = 0
        self.solves = 0

    def remaining(self) -> Optional[int]:
        if self.max_conflicts is None:
            return None
        left = self.max_conflicts - self.conflicts
        if left <= 0:
            raise SearchBudgetExceeded(
                "SAT search exceeded %d conflicts" % self.max_conflicts
            )
        return left

    def absorb(self, solver: Solver) -> None:
        stats = solver.stats
        self.conflicts += stats.conflicts
        self.decisions += stats.decisions
        self.propagations += stats.propagations
        self.learned += stats.learned
        self.restarts += stats.restarts
        self.solves += 1

    def publish(self) -> None:
        if not _TRACE.enabled:
            return
        for name in ("conflicts", "decisions", "propagations", "learned", "restarts", "solves"):
            value = getattr(self, name)
            if value:
                _TRACE.incr("sat.%s" % name, value)


@dataclass
class SatResult:
    """A definitive verdict plus everything a certificate needs.

    ``holds`` answers the positive property of ``kind`` (``C ≼ D``,
    ``Cᵏ ⊑ D``, CLS equivalence).  ``method`` records how it was
    decided: ``"unrolled"`` (a satisfiable miter -- see ``witness``),
    ``"complete-bound"`` (UNSAT at the completeness depth) or
    ``"implication-shortcut"`` (Prop 3.1).  ``miter`` is the deciding
    miter -- the satisfiable one for violations, the deepest UNSAT one
    for proofs -- and is what :mod:`repro.sat.certificates` exports.
    """

    kind: str
    holds: bool
    frames: int
    method: str
    k: int = 0
    violation: Optional[SafeReplacementViolation] = None
    witness: Optional[WitnessTrace] = None
    miter: Optional[_MiterBase] = None
    model: Optional[Dict[int, bool]] = None
    stats: Dict[str, int] = field(default_factory=dict)


def _bits_to_vector(bits: Iterable[bool]) -> Tuple[T, ...]:
    return tuple(ONE if bit else ZERO for bit in bits)


def _solve(miter: _MiterBase, budget: _Budget) -> Optional[Dict[int, bool]]:
    remaining = budget.remaining()
    solver = Solver(
        miter.cnf.num_vars, miter.cnf.clauses, max_conflicts=remaining
    )
    if _TRACE.enabled:
        _TRACE.incr("sat.vars", miter.cnf.num_vars)
        _TRACE.incr("sat.clauses", len(miter.cnf.clauses))
    try:
        return solver.solve()
    finally:
        budget.absorb(solver)


def _finish(result: SatResult, budget: _Budget) -> SatResult:
    result.stats = {
        "solves": budget.solves,
        "conflicts": budget.conflicts,
        "decisions": budget.decisions,
        "propagations": budget.propagations,
        "learned": budget.learned,
        "restarts": budget.restarts,
    }
    budget.publish()
    if _TRACE.enabled:
        _TRACE.incr("sat.checks")
        _TRACE.incr("sat.frames", result.frames)
        if not result.holds:
            _TRACE.incr("sat.violations")
    return result


def _deepening_schedule(limit: int) -> List[int]:
    """1, 2, *limit*: shallow probes for quick refutations, then the
    completeness depth.

    Implication refutations need no minimal-length guarantee (each
    per-D-state experiment is independent), so intermediate depths --
    each an UNSAT proof the solver must complete when the property
    holds -- are pure overhead beyond a cheap probe for the common
    shallow-counterexample case.
    """
    return sorted({1, min(2, limit), limit})


# ---------------------------------------------------------------------------
# Implication  Cᵏ ⊑ D.
# ---------------------------------------------------------------------------


def _implication_bound(c: Circuit, d: Circuit) -> int:
    return (1 << c.num_latches) + (1 << d.num_latches) - 1


def check_implication(
    c: Circuit,
    d: Circuit,
    *,
    k: int = 0,
    max_frames: Optional[int] = None,
    max_conflicts: Optional[int] = SAT_CONFLICT_LIMIT,
    _budget: Optional[_Budget] = None,
) -> SatResult:
    """Decide the paper's ``Cᵏ ⊑ D`` (``k=0``: plain implication).

    Deepens the distinguisher length on a doubling schedule; a model at
    any depth refutes, UNSAT at ``N_C + N_D - 1`` proves.  Raises
    :class:`SearchBudgetExceeded` when ``max_frames`` stops the loop
    short of that bound without finding a refutation.
    """
    budget = _budget if _budget is not None else _Budget(max_conflicts)
    bound = _implication_bound(c, d)
    cap = max_frames if max_frames is not None else max(SAT_FRAME_LIMIT, bound)
    limit = min(bound, cap)
    with _span("stg.sat.implication"):
        miter: Optional[ImplicationMiter] = None
        for depth in _deepening_schedule(limit):
            miter = ImplicationMiter(c, d, depth, warmup=k)
            model = _solve(miter, budget)
            if model is not None:
                c_init, _c0, raw_pairs = miter.decode(model)
                warmup_inputs = tuple(
                    _bits_to_vector(miter._decode_bits(model, vars_))
                    for vars_ in miter.warmup_input_vars
                )
                pairs = tuple(
                    ImplicationPair(
                        d_state=entry["d_state"],
                        inputs=tuple(_bits_to_vector(v) for v in entry["inputs"]),
                        c_outputs=tuple(
                            _bits_to_vector(v) for v in entry["c_outputs"]
                        ),
                        d_outputs=tuple(
                            _bits_to_vector(v) for v in entry["d_outputs"]
                        ),
                    )
                    for entry in raw_pairs
                )
                witness = WitnessTrace(
                    kind="implication",
                    c_name=c.name,
                    d_name=d.name,
                    frames=depth,
                    c_state=c_init,
                    inputs=warmup_inputs,
                    pairs=pairs,
                )
                return _finish(
                    SatResult(
                        kind="implication",
                        holds=False,
                        frames=depth,
                        method="unrolled",
                        k=k,
                        witness=witness,
                        miter=miter,
                        model=model,
                    ),
                    budget,
                )
        if limit >= bound:
            return _finish(
                SatResult(
                    kind="implication",
                    holds=True,
                    frames=limit,
                    method="complete-bound",
                    k=k,
                    miter=miter,
                ),
                budget,
            )
    raise SearchBudgetExceeded(
        "implication undecided within %d frames (complete at %d)" % (limit, bound)
    )


# ---------------------------------------------------------------------------
# Safe replacement  C ≼ D.
# ---------------------------------------------------------------------------


def _safe_replacement_bound(c: Circuit, d: Circuit) -> Optional[int]:
    """Frames at which UNSAT proves ``C ≼ D``, or None when it is too
    large to ever unroll (the subset space is doubly exponential)."""
    if d.num_latches > 5:
        return None
    return (1 << c.num_latches) * (1 << (1 << d.num_latches))


def check_safe_replacement(
    c: Circuit,
    d: Circuit,
    *,
    max_frames: Optional[int] = None,
    max_conflicts: Optional[int] = SAT_CONFLICT_LIMIT,
    use_implication_shortcut: bool = True,
) -> SatResult:
    """Decide the paper's ``C ≼ D`` with minimal-length witnesses.

    Deepens one frame at a time (so the first model is a
    minimal-length violation, matching the other engines), probing a
    few shallow frames before attempting the Prop 3.1 shortcut for the
    common safe case.
    """
    budget = _Budget(max_conflicts)
    cap = max_frames if max_frames is not None else SAT_FRAME_LIMIT
    bound = _safe_replacement_bound(c, d)
    limit = cap if bound is None else min(cap, bound)
    shortcut_failed = False
    with _span("stg.sat.safe_replacement"):
        for depth in range(1, limit + 1):
            if depth == _PROBE_FRAMES + 1 and use_implication_shortcut:
                # No short violation: try to *prove* safety the cheap way.
                try:
                    imp = check_implication(c, d, _budget=budget)
                except SearchBudgetExceeded:
                    raise
                if imp.holds:
                    return _finish(
                        SatResult(
                            kind="safe-replacement",
                            holds=True,
                            frames=imp.frames,
                            method="implication-shortcut",
                            miter=imp.miter,
                        ),
                        budget,
                    )
                shortcut_failed = True
            miter = SafeReplacementMiter(c, d, depth)
            model = _solve(miter, budget)
            if model is not None:
                c_state, symbols, outputs, input_bits, output_bits = miter.decode(
                    model
                )
                violation = SafeReplacementViolation(
                    c_state=c_state,
                    input_symbols=symbols,
                    c_outputs=outputs,
                )
                witness = WitnessTrace(
                    kind="safe-replacement",
                    c_name=c.name,
                    d_name=d.name,
                    frames=depth,
                    c_state=c_state,
                    inputs=tuple(_bits_to_vector(v) for v in input_bits),
                    c_outputs=tuple(_bits_to_vector(v) for v in output_bits),
                )
                return _finish(
                    SatResult(
                        kind="safe-replacement",
                        holds=False,
                        frames=depth,
                        method="unrolled",
                        violation=violation,
                        witness=witness,
                        miter=miter,
                        model=model,
                    ),
                    budget,
                )
        if bound is not None and limit >= bound:
            return _finish(
                SatResult(
                    kind="safe-replacement",
                    holds=True,
                    frames=limit,
                    method="complete-bound",
                    miter=miter,
                ),
                budget,
            )
        if use_implication_shortcut and not shortcut_failed and limit <= _PROBE_FRAMES:
            # The frame cap ended the loop before the shortcut fired.
            imp = check_implication(c, d, _budget=budget)
            if imp.holds:
                return _finish(
                    SatResult(
                        kind="safe-replacement",
                        holds=True,
                        frames=imp.frames,
                        method="implication-shortcut",
                        miter=imp.miter,
                    ),
                    budget,
                )
    raise SearchBudgetExceeded(
        "safe replacement undecided within %d frames (complete at %s)"
        % (limit, "unreachable" if bound is None else bound)
    )


# ---------------------------------------------------------------------------
# CLS equivalence (bounded).
# ---------------------------------------------------------------------------


def check_cls_equivalence(
    c: Circuit,
    d: Circuit,
    *,
    max_frames: Optional[int] = None,
    max_conflicts: Optional[int] = SAT_CONFLICT_LIMIT,
) -> SatResult:
    """Hunt for a ternary word on which the all-X CLS traces differ.

    The dual-rail encoding carries the Xs natively; a model decodes to
    a replayable **ternary** input trace with the first differing cycle
    at its final frame.  UNSAT at ``3**(n_c+n_d)`` frames (every
    reachable pair of three-valued states revisited) proves CLS
    equivalence -- the bounded twin of
    :func:`repro.stg.ternary_equiv.decide_cls_equivalence`.
    """
    budget = _Budget(max_conflicts)
    bound = 3 ** (c.num_latches + d.num_latches)
    cap = max_frames if max_frames is not None else SAT_FRAME_LIMIT
    limit = min(cap, bound)
    with _span("stg.sat.cls"):
        miter: Optional[CLSMiter] = None
        for depth in range(1, limit + 1):
            miter = CLSMiter(c, d, depth)
            model = _solve(miter, budget)
            if model is not None:
                inputs, c_outputs, d_outputs, _first = miter.decode(model)
                witness = WitnessTrace(
                    kind="cls",
                    c_name=c.name,
                    d_name=d.name,
                    frames=depth,
                    c_state=None,
                    inputs=tuple(inputs),
                    c_outputs=tuple(c_outputs),
                    d_outputs=tuple(d_outputs),
                )
                return _finish(
                    SatResult(
                        kind="cls",
                        holds=False,
                        frames=depth,
                        method="unrolled",
                        witness=witness,
                        miter=miter,
                        model=model,
                    ),
                    budget,
                )
        if limit >= bound:
            return _finish(
                SatResult(
                    kind="cls",
                    holds=True,
                    frames=limit,
                    method="complete-bound",
                    miter=miter,
                ),
                budget,
            )
    raise SearchBudgetExceeded(
        "CLS equivalence undecided within %d frames (complete at %d)" % (limit, bound)
    )


# ---------------------------------------------------------------------------
# Dispatcher-facing wrappers (the other engines' vocabulary).
# ---------------------------------------------------------------------------


def sat_implies(c: Circuit, d: Circuit, **kwargs) -> bool:
    """``C ⊑ D`` by bounded CNF unrolling (complete; may raise budget)."""
    return check_implication(c, d, **kwargs).holds


def sat_delayed_implies(c: Circuit, d: Circuit, k: int, **kwargs) -> bool:
    """The paper's ``Cᵏ ⊑ D`` (Prop 4.2 / Thm 4.5), SAT-decided."""
    return check_implication(c, d, k=k, **kwargs).holds


def sat_machines_equivalent(c: Circuit, d: Circuit, **kwargs) -> bool:
    """FSM equivalence: implication in both directions."""
    return sat_implies(c, d, **kwargs) and sat_implies(d, c, **kwargs)


def sat_find_violation(
    c: Circuit, d: Circuit, **kwargs
) -> Optional[SafeReplacementViolation]:
    """A minimal-length ``C ⋠ D`` witness, or None when ``C ≼ D``.

    The same signature contract as the explicit subset search and the
    symbolic bucket fixpoint: a returned witness is minimal, None is a
    proof, exhaustion raises.
    """
    return check_safe_replacement(c, d, **kwargs).violation


def sat_is_safe_replacement(c: Circuit, d: Circuit, **kwargs) -> bool:
    """Decide the paper's ``C ≼ D`` (SAT engine)."""
    return check_safe_replacement(c, d, **kwargs).holds


def sat_delay_needed(
    c: Circuit,
    d: Circuit,
    *,
    max_cycles: Optional[int] = None,
    **kwargs,
) -> Optional[int]:
    """The least n with ``Cⁿ ⊑ D``, or None when no delay ever works.

    ``Cⁿ ⊑ D`` is monotone in n (the delayed image chain shrinks), and
    the chain stabilizes within ``2**latches(C)`` steps, so checking the
    stabilized depth settles the None case and a binary search finds
    the least n with O(log) implication checks.  ``n = 0`` is probed
    first: valid retimings (no hazardous moves) satisfy plain
    implication, making one check the common total cost.
    """
    if check_implication(c, d, k=0, **kwargs).holds:
        return 0
    ceiling = 1 << c.num_latches
    if max_cycles is not None:
        ceiling = min(ceiling, max_cycles)
    if ceiling <= 0:
        return None
    if not check_implication(c, d, k=ceiling, **kwargs).holds:
        return None
    low, high = 1, ceiling
    while low < high:
        mid = (low + high) // 2
        if check_implication(c, d, k=mid, **kwargs).holds:
            high = mid
        else:
            low = mid + 1
    return low


def sat_first_cls_difference(
    c: Circuit, d: Circuit, **kwargs
) -> Optional[WitnessTrace]:
    """A minimal-cycle ternary CLS-distinguishing trace, or None."""
    result = check_cls_equivalence(c, d, **kwargs)
    return result.witness
