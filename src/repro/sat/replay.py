"""Independent witness checker: confirm SAT verdicts without SAT.

``python -m repro.sat.replay witness.json --c c.bench --d d.bench``

A :class:`~repro.sat.witness.WitnessTrace` claims that two circuits
behave in a particular way on a particular input word.  That claim is
checkable by *running the circuits* -- with the stock simulators
(:class:`repro.sim.binary.BinarySimulator`,
:func:`repro.sim.ternary_sim.cls_outputs`), which share no code with
the CNF encoder beyond the netlist itself.  A witness that replays
cleanly re-proves the violation from first principles; nothing about
the CDCL search has to be trusted.

What each kind must survive:

* ``safe-replacement`` -- C started in ``c_state`` must produce exactly
  the recorded ``c_outputs`` on the recorded word, and **every** D
  power-up state must differ from that trace at some frame (that is
  literally the paper's ``C ⋠ D``: an ability of C no power-up state of
  D has).
* ``implication`` -- the warm-up word must drive ``c_state`` to a state
  c0 such that for every D power-up state, the pair's experiment word
  produces the recorded (and somewhere-different) output traces from c0
  and that D state.
* ``cls`` -- both circuits' CLS simulations from all-X on the recorded
  ternary word must reproduce the recorded output traces, which differ
  at the final frame.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..logic.ternary import ONE, T
from ..netlist.circuit import Circuit
from ..sim.binary import BinarySimulator, state_from_int, state_to_int
from ..sim.ternary_sim import cls_outputs
from .witness import WitnessTrace, witness_from_json

__all__ = [
    "ReplayResult",
    "replay_witness",
    "replay_safe_replacement",
    "replay_implication",
    "replay_cls",
    "main",
]


@dataclass
class ReplayResult:
    """The outcome of re-simulating a witness against both circuits."""

    ok: bool
    kind: str
    checks: int = 0
    errors: List[str] = field(default_factory=list)

    def fail(self, message: str) -> None:
        self.ok = False
        self.errors.append(message)


def _to_bits(vector: Sequence[T], what: str) -> Tuple[bool, ...]:
    if any(v not in (0, 1) for v in vector):
        raise ValueError("%s carries an X but must be definite" % what)
    return tuple(v is ONE or v == 1 for v in vector)


def _bit_word(vectors: Sequence[Sequence[T]], what: str) -> List[Tuple[bool, ...]]:
    return [_to_bits(vector, what) for vector in vectors]


def replay_safe_replacement(
    c: Circuit, d: Circuit, witness: WitnessTrace
) -> ReplayResult:
    """Re-simulate a ``C ⋠ D`` witness with the binary simulator."""
    result = ReplayResult(ok=True, kind=witness.kind)
    word = _bit_word(witness.inputs, "safe-replacement input word")
    expected = _bit_word(witness.c_outputs, "recorded C outputs")
    if len(word) != witness.frames or len(expected) != witness.frames:
        result.fail(
            "trace length %d/%d does not match frames=%d"
            % (len(word), len(expected), witness.frames)
        )
        return result
    if witness.c_state is None:
        result.fail("safe-replacement witness carries no C power-up state")
        return result
    if not 0 <= witness.c_state < (1 << c.num_latches):
        result.fail(
            "C power-up state %d is out of range for %d latch(es) -- "
            "wrong circuit?" % (witness.c_state, c.num_latches)
        )
        return result
    sim_c = BinarySimulator(c)
    produced = sim_c.output_sequence(state_from_int(c, witness.c_state), word)
    result.checks += 1
    if list(produced) != expected:
        result.fail(
            "C from state %d does not reproduce the recorded outputs: %r != %r"
            % (witness.c_state, list(produced), expected)
        )
        return result
    sim_d = BinarySimulator(d)
    for d0 in range(1 << d.num_latches):
        result.checks += 1
        trace = sim_d.output_sequence(state_from_int(d, d0), word)
        if list(trace) == expected:
            result.fail(
                "D power-up state %d matches the whole word -- not a violation"
                % d0
            )
    return result


def replay_implication(c: Circuit, d: Circuit, witness: WitnessTrace) -> ReplayResult:
    """Re-simulate a ``Cᵏ ⊑ D`` refutation: warm-up, then one
    distinguishing experiment per D power-up state."""
    result = ReplayResult(ok=True, kind=witness.kind)
    if witness.c_state is None:
        result.fail("implication witness carries no C power-up state")
        return result
    if not 0 <= witness.c_state < (1 << c.num_latches):
        result.fail(
            "C power-up state %d is out of range for %d latch(es) -- "
            "wrong circuit?" % (witness.c_state, c.num_latches)
        )
        return result
    sim_c = BinarySimulator(c)
    sim_d = BinarySimulator(d)
    # The warm-up word (possibly empty) establishes c0 as reachable.
    state = state_from_int(c, witness.c_state)
    for vector in _bit_word(witness.inputs, "warm-up word"):
        _, state = sim_c.step(state, vector)
    c0 = state
    result.checks += 1
    expected_states = set(range(1 << d.num_latches))
    seen_states = set()
    for pair in witness.pairs:
        seen_states.add(pair.d_state)
        if not 0 <= pair.d_state < (1 << d.num_latches):
            result.fail(
                "D power-up state %d is out of range for %d latch(es) -- "
                "wrong circuit?" % (pair.d_state, d.num_latches)
            )
            continue
        word = _bit_word(pair.inputs, "experiment word")
        want_c = _bit_word(pair.c_outputs, "recorded C outputs")
        want_d = _bit_word(pair.d_outputs, "recorded D outputs")
        got_c = list(sim_c.output_sequence(c0, word))
        got_d = list(sim_d.output_sequence(state_from_int(d, pair.d_state), word))
        result.checks += 1
        if got_c != want_c:
            result.fail(
                "C from c0=%d does not reproduce the recorded outputs vs d0=%d"
                % (state_to_int(c0), pair.d_state)
            )
        if got_d != want_d:
            result.fail(
                "D from state %d does not reproduce the recorded outputs"
                % pair.d_state
            )
        if got_c == got_d:
            result.fail(
                "c0=%d and d0=%d agree on the experiment word -- no distinction"
                % (state_to_int(c0), pair.d_state)
            )
    missing = expected_states - seen_states
    if missing:
        result.fail(
            "no distinguishing experiment for D power-up state(s) %s"
            % sorted(missing)
        )
    return result


def replay_cls(c: Circuit, d: Circuit, witness: WitnessTrace) -> ReplayResult:
    """Re-simulate a CLS difference with the ternary simulator."""
    result = ReplayResult(ok=True, kind=witness.kind)
    word = [tuple(vector) for vector in witness.inputs]
    got_c = list(cls_outputs(c, word))
    got_d = list(cls_outputs(d, word))
    result.checks += 2
    if got_c != list(witness.c_outputs):
        result.fail("C's CLS trace does not match the recorded outputs")
    if got_d != list(witness.d_outputs):
        result.fail("D's CLS trace does not match the recorded outputs")
    if got_c == got_d:
        result.fail("the CLS traces agree on the whole word -- no difference")
    return result


def replay_witness(c: Circuit, d: Circuit, witness: WitnessTrace) -> ReplayResult:
    """Dispatch on ``witness.kind``."""
    if witness.kind == "safe-replacement":
        return replay_safe_replacement(c, d, witness)
    if witness.kind == "implication":
        return replay_implication(c, d, witness)
    if witness.kind == "cls":
        return replay_cls(c, d, witness)
    raise ValueError("unknown witness kind %r" % witness.kind)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI shim: exit 0 when the witness replays cleanly, 1 when not."""
    from ..netlist.io_bench import parse_bench

    parser = argparse.ArgumentParser(
        prog="python -m repro.sat.replay",
        description="Re-simulate a repro.sat witness against both circuits "
        "with the stock simulators (no SAT involved).",
    )
    parser.add_argument("witness", help="witness JSON file")
    parser.add_argument("--c", required=True, help="candidate circuit (.bench)")
    parser.add_argument("--d", required=True, help="reference circuit (.bench)")
    args = parser.parse_args(argv)
    with open(args.witness, "r", encoding="utf-8") as handle:
        witness = witness_from_json(handle.read())

    def load(path: str) -> Circuit:
        with open(path, "r", encoding="utf-8") as handle:
            return parse_bench(handle.read(), name=path)

    c = load(args.c)
    d = load(args.d)
    result = replay_witness(c, d, witness)
    if result.ok:
        print(
            "witness OK: %s violation confirmed by re-simulation (%d checks)"
            % (result.kind, result.checks)
        )
        return 0
    print("witness REJECTED (%s):" % result.kind, file=sys.stderr)
    for error in result.errors:
        print("  - %s" % error, file=sys.stderr)
    return 1


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
