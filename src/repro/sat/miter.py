"""Miter constructors: C-vs-D unrolled k frames into one CNF.

All three miters share the shape "unroll both machines over common
frame boundaries, compare outputs, assert a mismatch pattern"; they
differ in which side of the paper's quantifiers becomes copies and
which becomes free variables:

* :class:`SafeReplacementMiter` -- refutes ``C ≼ D`` at word length
  ``frames``: C runs once from a **free** power-up state on **free**
  inputs; D runs once per power-up state (the ``∃ d0`` of safe
  replacement turns into a finite conjunction: *every* copy must
  mismatch somewhere along the word).  SAT models decode to the
  paper's minimal-length violation strings when the driver deepens
  ``frames`` one at a time.
* :class:`ImplicationMiter` -- refutes ``Cᵏ ⊑ D``: a shared k-frame
  warm-up drives C's free power-up state to an arbitrary k-step
  successor c0 (Prop 4.2's delayed design), then per D power-up state
  an **independent** input word distinguishes c0 from it.  Because
  state equivalence of machines with ``N_C`` and ``N_D`` states is
  settled by words of length ``N_C + N_D - 1`` (the joint partition
  refinement depth), UNSAT at that bound *proves* containment.
* :class:`CLSMiter` -- hunts for a ternary word on which the two
  conservative (CLS) simulations, both started all-X, produce
  different output vectors at some frame.  This one genuinely uses the
  second rail: inputs are free three-valued nets.

Each miter records the variable roles it allocated so the engine can
decode witnesses from models and the DIMACS export can document its
variables.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..logic.ternary import T
from ..netlist.circuit import Circuit
from .cnf import CNF
from .encode import CircuitEncoder, Rails, decode_rails, tseitin_or, tseitin_xor

__all__ = ["SafeReplacementMiter", "ImplicationMiter", "CLSMiter"]


def _check_interfaces(c: Circuit, d: Circuit) -> None:
    if len(c.inputs) != len(d.inputs) or len(c.outputs) != len(d.outputs):
        raise ValueError(
            "machines have mismatched interfaces: %d/%d inputs, %d/%d outputs"
            % (len(c.inputs), len(d.inputs), len(c.outputs), len(d.outputs))
        )


def _int_bits(value: int, width: int) -> List[bool]:
    """MSB-first bit vector -- the STG state/symbol convention
    (latch 0 / pin 0 is the most significant bit)."""
    return [bool((value >> (width - 1 - i)) & 1) for i in range(width)]


def bits_to_int(bits: List[bool]) -> int:
    value = 0
    for bit in bits:
        value = (value << 1) | int(bit)
    return value


class _MiterBase:
    """Shared plumbing: the CNF, both encoders, witness decode helpers."""

    kind = "miter"

    def __init__(self, c: Circuit, d: Circuit, frames: int) -> None:
        _check_interfaces(c, d)
        if frames < 1:
            raise ValueError("a miter needs at least one frame")
        self.c_circuit = c
        self.d_circuit = d
        self.frames = frames
        self.cnf = CNF()
        self.enc_c = CircuitEncoder(self.cnf, c)
        self.enc_d = CircuitEncoder(self.cnf, d)
        self.true_lit = self.cnf.true_lit()
        self.num_inputs = len(c.inputs)
        self.num_outputs = len(c.outputs)

    def _mismatch(self, out_c: List[Rails], out_d: List[Rails]) -> int:
        """A literal: "these two definite output vectors differ"."""
        diffs = [
            tseitin_xor(self.cnf, oc[1], od[1], self.true_lit)
            for oc, od in zip(out_c, out_d)
        ]
        return tseitin_or(self.cnf, diffs, self.true_lit)

    def _rail_mismatch(self, out_c: List[Rails], out_d: List[Rails]) -> int:
        """A literal: "these two ternary output vectors differ" (either
        rail disagrees on some pin)."""
        diffs: List[int] = []
        for oc, od in zip(out_c, out_d):
            diffs.append(tseitin_xor(self.cnf, oc[0], od[0], self.true_lit))
            diffs.append(tseitin_xor(self.cnf, oc[1], od[1], self.true_lit))
        return tseitin_or(self.cnf, diffs, self.true_lit)

    def _decode_bits(self, model: Dict[int, bool], vars_: List[int]) -> List[bool]:
        return [model[v] for v in vars_]

    def _decode_vector(self, model: Dict[int, bool], rails: List[Rails]) -> Tuple[T, ...]:
        return tuple(decode_rails(model, pair, self.true_lit) for pair in rails)


class SafeReplacementMiter(_MiterBase):
    """Is there a length-``frames`` input word C can answer in a way no
    D power-up state can?  SAT = a ``C ⋠ D`` witness of that length."""

    kind = "safe-replacement"

    def __init__(self, c: Circuit, d: Circuit, frames: int) -> None:
        super().__init__(c, d, frames)
        cnf = self.cnf
        self.c_init_vars, c_state = self.enc_c.new_binary_rails(c.num_latches)
        self.input_vars: List[List[int]] = []
        input_rails: List[List[Rails]] = []
        for _ in range(frames):
            vars_, rails = self.enc_c.new_binary_rails(self.num_inputs)
            self.input_vars.append(vars_)
            input_rails.append(rails)
        self.c_output_rails: List[List[Rails]] = []
        for t in range(frames):
            outputs, c_state = self.enc_c.encode_frame(c_state, input_rails[t])
            self.c_output_rails.append(outputs)
        # One D copy per power-up state; each must mismatch somewhere.
        for d0 in range(1 << d.num_latches):
            d_state = self.enc_d.constant_rails(_int_bits(d0, d.num_latches))
            mismatches: List[int] = []
            for t in range(frames):
                outputs, d_state = self.enc_d.encode_frame(d_state, input_rails[t])
                mismatches.append(self._mismatch(self.c_output_rails[t], outputs))
            cnf.add(tseitin_or(cnf, mismatches, self.true_lit))

    def decode(
        self, model: Dict[int, bool]
    ) -> Tuple[int, Tuple[int, ...], Tuple[int, ...], List[List[bool]], List[List[bool]]]:
        """(c_state, input symbols, output symbols, input bits, output bits)."""
        c_state = bits_to_int(self._decode_bits(model, self.c_init_vars))
        input_bits = [self._decode_bits(model, vars_) for vars_ in self.input_vars]
        output_bits = [
            [v == 1 for v in self._decode_vector(model, rails)]
            for rails in self.c_output_rails
        ]
        symbols = tuple(bits_to_int(bits) for bits in input_bits)
        outputs = tuple(bits_to_int(bits) for bits in output_bits)
        return c_state, symbols, outputs, input_bits, output_bits


class ImplicationMiter(_MiterBase):
    """Is some k-step successor of a C power-up state inequivalent to
    **every** D power-up state, with distinguishing words of length at
    most ``frames``?  SAT = a ``Cᵏ ⊑ D`` refutation."""

    kind = "implication"

    def __init__(self, c: Circuit, d: Circuit, frames: int, *, warmup: int = 0) -> None:
        super().__init__(c, d, frames)
        if warmup < 0:
            raise ValueError("warmup must be >= 0")
        self.warmup = warmup
        cnf = self.cnf
        self.c_init_vars, c0_state = self.enc_c.new_binary_rails(c.num_latches)
        self.warmup_input_vars: List[List[int]] = []
        for _ in range(warmup):
            vars_, rails = self.enc_c.new_binary_rails(self.num_inputs)
            self.warmup_input_vars.append(vars_)
            _, c0_state = self.enc_c.encode_frame(c0_state, rails)
        self.c0_rails = c0_state
        # Per D power-up state: an independent distinguishing word.
        self.pair_input_vars: List[List[List[int]]] = []
        self.pair_c_output_rails: List[List[List[Rails]]] = []
        self.pair_d_output_rails: List[List[List[Rails]]] = []
        for d0 in range(1 << d.num_latches):
            input_vars: List[List[int]] = []
            input_rails: List[List[Rails]] = []
            for _ in range(frames):
                vars_, rails = self.enc_c.new_binary_rails(self.num_inputs)
                input_vars.append(vars_)
                input_rails.append(rails)
            c_state = c0_state
            d_state = self.enc_d.constant_rails(_int_bits(d0, d.num_latches))
            c_outs: List[List[Rails]] = []
            d_outs: List[List[Rails]] = []
            mismatches: List[int] = []
            for t in range(frames):
                oc, c_state = self.enc_c.encode_frame(c_state, input_rails[t])
                od, d_state = self.enc_d.encode_frame(d_state, input_rails[t])
                c_outs.append(oc)
                d_outs.append(od)
                mismatches.append(self._mismatch(oc, od))
            cnf.add(tseitin_or(cnf, mismatches, self.true_lit))
            self.pair_input_vars.append(input_vars)
            self.pair_c_output_rails.append(c_outs)
            self.pair_d_output_rails.append(d_outs)

    def decode(self, model: Dict[int, bool]) -> Tuple[int, int, List[dict]]:
        """(c power-up state, c0 after warm-up, per-D-state experiments)."""
        c_init = bits_to_int(self._decode_bits(model, self.c_init_vars))
        c0_bits = [
            v == 1 for v in self._decode_vector(model, self.c0_rails)
        ]
        pairs: List[dict] = []
        for d0, input_vars in enumerate(self.pair_input_vars):
            inputs = [
                tuple(self._decode_bits(model, vars_)) for vars_ in input_vars
            ]
            c_outputs = [
                tuple(v == 1 for v in self._decode_vector(model, rails))
                for rails in self.pair_c_output_rails[d0]
            ]
            d_outputs = [
                tuple(v == 1 for v in self._decode_vector(model, rails))
                for rails in self.pair_d_output_rails[d0]
            ]
            pairs.append(
                {
                    "d_state": d0,
                    "inputs": inputs,
                    "c_outputs": c_outputs,
                    "d_outputs": d_outputs,
                }
            )
        return c_init, bits_to_int(c0_bits), pairs


class CLSMiter(_MiterBase):
    """Is there a ternary input word (both machines started all-X) on
    which the CLS output traces differ within ``frames`` cycles?"""

    kind = "cls"

    def __init__(self, c: Circuit, d: Circuit, frames: int) -> None:
        super().__init__(c, d, frames)
        cnf = self.cnf
        self.input_rails: List[List[Rails]] = [
            self.enc_c.new_ternary_rails(self.num_inputs) for _ in range(frames)
        ]
        c_state = self.enc_c.all_x_rails(c.num_latches)
        d_state = self.enc_d.all_x_rails(d.num_latches)
        self.c_output_rails: List[List[Rails]] = []
        self.d_output_rails: List[List[Rails]] = []
        mismatches: List[int] = []
        for t in range(frames):
            oc, c_state = self.enc_c.encode_frame(c_state, self.input_rails[t])
            od, d_state = self.enc_d.encode_frame(d_state, self.input_rails[t])
            self.c_output_rails.append(oc)
            self.d_output_rails.append(od)
            mismatches.append(self._rail_mismatch(oc, od))
        cnf.add(tseitin_or(cnf, mismatches, self.true_lit))

    def decode(
        self, model: Dict[int, bool]
    ) -> Tuple[List[Tuple[T, ...]], List[Tuple[T, ...]], List[Tuple[T, ...]], Optional[int]]:
        """(inputs, c outputs, d outputs, first differing cycle)."""
        inputs = [self._decode_vector(model, rails) for rails in self.input_rails]
        c_outputs = [self._decode_vector(model, rails) for rails in self.c_output_rails]
        d_outputs = [self._decode_vector(model, rails) for rails in self.d_output_rails]
        first = None
        for t, (vc, vd) in enumerate(zip(c_outputs, d_outputs)):
            if vc != vd:
                first = t
                break
        return inputs, c_outputs, d_outputs, first
