"""Command-line interface: ``python -m repro [options] <command> ...``.

Global options (before the subcommand):

``--backend {compiled,interpreted,words}``
    simulator evaluation backend -- ``compiled`` (the flat-program
    default), ``interpreted`` (the reference netlist walk) or ``words``
    (the compiled program over the numpy ``uint64`` word lane engine;
    batched sweeps carry 64 lanes per word and produce bit-for-bit the
    same verdicts as ``compiled``)
``--jobs N``
    worker processes for the parallelisable sweeps (fault grading,
    exact power-up sweeps, CLS invariance and redundancy checks);
    ``1`` (the default) is the bit-for-bit serial path, ``0`` means
    "one per CPU core"
``--engine {explicit,symbolic,auto}``
    containment engine for the ``⊑`` / ``≼`` analyses -- ``explicit``
    (enumerated STGs + subset construction), ``symbolic`` (BDD
    fixpoints) or ``auto`` (the default: explicit below the latch
    threshold, symbolic above)
``--reorder {off,auto,manual}``
    BDD dynamic variable reordering for the symbolic engine --
    ``auto`` (the default: sift when the manager crosses its node
    threshold), ``off`` (pin the declaration order) or ``manual``
    (sift once after compilation); verdicts are identical in every
    mode, only node counts and wall time differ
``--trace``
    enable the observability layer (:mod:`repro.obs`) for the run and
    print the span/counter summary to stderr on exit
``--report FILE.json``
    enable the observability layer and write the full
    :class:`~repro.obs.RunReport` as JSON to FILE

Subcommands:

``info``        circuit statistics, clock period, SHE analysis
``simulate``    binary / conservative-ternary / exact simulation
                (optionally dumping a VCD waveform)
``retime``      min-period and/or min-area retiming, writing .bench out
``check``       verify a retimed circuit against its original (sampled,
                exhaustive-CLS, and STG implication where tractable)
``atpg``        generate a stuck-at test set
``redundancy``  CLS-invariant redundancy removal (Section 6 program)
``paper``       replay the paper's Figure 1 story on the console
``bench``       run a standard compile/simulate/retime/fault workload
                with tracing always on (the before/after artefact for
                performance work; pair with ``--report``)
``serve``       run the persistent verification service: circuits,
                compiled programs and worker processes stay resident
                across newline-delimited JSON requests over TCP or a
                unix socket, and compatible CLS sweeps from concurrent
                requests are micro-batched into shared lane passes
                (protocol reference: ``docs/SERVICE.md``)
``fuzz``        cross-engine conformance fuzzing: replay the regression
                corpus, stream seeded random cases through the engine x
                backend matrix, shrink and bundle any disagreement
                (exit 1 if one survives; contract: ``docs/TESTING.md``)

All commands read and write ISCAS-89 ``.bench`` files (BLIF via the
``.blif`` extension), the formats the benchmark circuits of the paper's
era shipped in.  The full reference with worked examples is
``docs/CLI.md``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from . import obs
from .analysis.reporting import ascii_table, banner
from .logic.ternary import format_ternary_sequence, parse_ternary_string, to_ternary
from .netlist.io_bench import parse_bench, write_bench
from .netlist.transform import normalize_fanout
from .netlist.validate import validate
from .retime.apply import lag_to_moves, realize
from .retime.graph import build_retiming_graph
from .retime.leiserson_saxe import min_period_retiming
from .retime.min_area import min_area_retiming
from .retime.validity import cls_equivalent
from .sim.atpg import generate_tests
from .sim.binary import BinarySimulator, parse_state
from .sim.compiled import BACKENDS, set_default_backend
from .sim.exact import exact_outputs
from .sim.parallel import default_job_count, set_default_jobs
from .sim.ternary_sim import TernarySimulator
from .stg.explicit import extract_stg
from .stg.scc import she_analysis
from .stg.symbolic_replaceability import (
    ENGINES,
    REORDER_MODES,
    set_default_engine,
    set_default_reorder,
)
from .stg.ternary_equiv import decide_cls_equivalence

__all__ = ["main"]


def _load(path: str, *, normalize: bool = True):
    """Load a circuit, dispatching on extension (.blif vs .bench)."""
    with open(path) as handle:
        text = handle.read()
    if path.endswith(".blif"):
        from .netlist.io_blif import parse_blif

        circuit = parse_blif(text, name=path).circuit
    else:
        circuit = parse_bench(text, name=path)
    if normalize:
        circuit = normalize_fanout(circuit)
    validate(circuit)
    return circuit


def _write_circuit(circuit, path: str, header: str) -> None:
    """Write a circuit, dispatching on extension (.blif vs .bench)."""
    if path.endswith(".blif"):
        from .netlist.io_blif import write_blif

        text = write_blif(circuit)
    else:
        text = write_bench(circuit, header=header)
    with open(path, "w") as handle:
        handle.write(text)


def _parse_sequence(text: str, width: int):
    """Parse ``01,10,11`` (one vector per cycle) or ``0111`` (single
    input) into a list of ternary vectors."""
    if "," in text:
        vectors = [parse_ternary_string(chunk) for chunk in text.split(",")]
    else:
        vectors = [(v,) for v in parse_ternary_string(text)]
    for vector in vectors:
        if len(vector) != width:
            raise SystemExit(
                "input vector %s has width %d, circuit has %d inputs"
                % (format_ternary_sequence(vector, sep=""), len(vector), width)
            )
    return vectors


# ---------------------------------------------------------------------------
# Subcommands.
# ---------------------------------------------------------------------------


def cmd_info(args: argparse.Namespace) -> int:
    circuit = _load(args.circuit)
    print(banner("circuit %s" % args.circuit))
    print(circuit.pretty())
    graph = build_retiming_graph(circuit)
    print()
    print("clock period (unit delays): %d" % graph.clock_period())
    print("registers:                  %d" % graph.num_registers)
    bits = circuit.num_latches + len(circuit.inputs)
    if bits <= args.max_stg_bits:
        report = she_analysis(extract_stg(circuit))
        print(
            "SHE: %d states, %d minimal, %d SCCs, %d TSCC(s) -> %s"
            % (
                report.num_states,
                report.num_blocks,
                report.num_sccs,
                report.num_terminal_sccs,
                "essentially resettable"
                if report.essentially_resettable
                else "NOT essentially resettable",
            )
        )
    else:
        print("SHE: skipped (state space over 2**%d)" % args.max_stg_bits)
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    circuit = _load(args.circuit)
    sequence = _parse_sequence(args.sequence, len(circuit.inputs))
    trace_for_vcd = None
    if args.mode == "cls":
        trace = TernarySimulator(circuit).run_from_unknown(sequence)
        trace_for_vcd = trace
        rows = [
            (
                cycle,
                format_ternary_sequence(trace.inputs[cycle], sep=""),
                format_ternary_sequence(trace.outputs[cycle], sep=""),
                format_ternary_sequence(trace.states[cycle + 1], sep=""),
            )
            for cycle in range(len(trace))
        ]
        print(ascii_table(("cycle", "inputs", "outputs", "state after"), rows))
    elif args.mode == "exact":
        bool_seq = [
            tuple(v.value == 1 for v in vec) for vec in sequence
        ]
        if any(v.value == 2 for vec in sequence for v in vec):
            raise SystemExit("exact simulation needs a definite input sequence")
        outs = exact_outputs(circuit, bool_seq)
        rows = [
            (cycle, format_ternary_sequence(out, sep=""))
            for cycle, out in enumerate(outs)
        ]
        print(ascii_table(("cycle", "outputs (all power-up states)"), rows))
    else:  # binary
        if args.state is None:
            raise SystemExit("--state is required for binary simulation")
        state = parse_state(args.state)
        bool_seq = [tuple(v.value == 1 for v in vec) for vec in sequence]
        trace = BinarySimulator(circuit).run(state, bool_seq)
        trace_for_vcd = trace
        rows = [
            (
                cycle,
                "".join("1" if b else "0" for b in trace.inputs[cycle]),
                "".join("1" if b else "0" for b in trace.outputs[cycle]),
                "".join("1" if b else "0" for b in trace.states[cycle + 1]),
            )
            for cycle in range(len(trace))
        ]
        print(ascii_table(("cycle", "inputs", "outputs", "state after"), rows))
    if args.vcd:
        if trace_for_vcd is None:
            raise SystemExit("--vcd needs binary or cls mode (a full trace)")
        from .sim.vcd import trace_to_vcd

        with open(args.vcd, "w") as handle:
            handle.write(trace_to_vcd(circuit, trace_for_vcd))
        print("wrote %s" % args.vcd)
    return 0


def cmd_redundancy(args: argparse.Namespace) -> int:
    from .optimize.redundancy import remove_cls_redundancies

    circuit = _load(args.circuit)
    report = remove_cls_redundancies(circuit, max_pairs=args.max_pairs)
    print(banner("CLS-invariant redundancy removal on %s" % args.circuit))
    print(report.summary())
    for net, value in report.substitutions:
        print("  %s := %d" % (net, int(value)))
    if args.output:
        _write_circuit(
            report.circuit, args.output, "redundancy-removed from %s" % args.circuit
        )
        print("wrote %s" % args.output)
    return 0


def cmd_retime(args: argparse.Namespace) -> int:
    from .retime.delay_models import delay_model

    circuit = _load(args.circuit)
    graph = build_retiming_graph(circuit, delays=delay_model(circuit, args.delay_model))
    minp = min_period_retiming(graph)
    if args.period is not None:
        period = args.period
    elif args.objective == "min-period":
        period = minp.period
    else:
        period = None

    if args.objective == "min-period" and args.period is None:
        lag = minp.lag
        achieved_period = minp.period
    else:
        result = min_area_retiming(graph, period=period)
        lag = result.lag
        achieved_period = result.period

    session = lag_to_moves(circuit, lag)
    retimed = session.current
    after = build_retiming_graph(
        retimed, delays=delay_model(retimed, args.delay_model)
    )
    print(banner("retiming %s (%s)" % (args.circuit, args.objective)))
    print("period:    %d -> %d" % (graph.clock_period(), after.clock_period()))
    print("registers: %d -> %d" % (graph.num_registers, after.num_registers))
    print(session.summary())
    if not cls_equivalent(circuit, retimed, count=6, length=10, seed=args.seed):
        print("WARNING: CLS invariance check failed -- this is a bug", file=sys.stderr)
        return 2
    print("CLS invariance (sampled): OK")
    if args.output:
        _write_circuit(retimed, args.output, "retimed from %s" % args.circuit)
        print("wrote %s" % args.output)
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    original = _load(args.original)
    retimed = _load(args.retimed)
    print(banner("checking %s against %s" % (args.retimed, args.original)))
    sampled = cls_equivalent(
        original, retimed, count=args.samples, length=args.length, seed=args.seed
    )
    print(
        "CLS equivalence (sampled %d sequences, seed %d): %s"
        % (args.samples, args.seed, sampled)
    )
    verdict = 0 if sampled else 1
    if args.exhaustive:
        witness = decide_cls_equivalence(original, retimed)
        if witness is None:
            print("CLS equivalence (exhaustive): EQUIVALENT")
        else:
            print("CLS equivalence (exhaustive): DIFFER -- %s" % witness.describe())
            verdict = 1
    if args.stg:
        from .stg.replaceability import SearchBudgetExceeded
        from .stg.symbolic_replaceability import (
            SymbolicContainmentChecker,
            resolve_engine,
        )

        engine = resolve_engine(None, retimed, original)
        bits = max(
            original.num_latches + len(original.inputs),
            retimed.num_latches + len(retimed.inputs),
        )
        try:
            if engine == "explicit" and bits > args.max_stg_bits:
                print(
                    "STG analysis: skipped (state space over 2**%d; "
                    "try --engine symbolic)" % args.max_stg_bits
                )
            elif engine == "symbolic":
                checker = SymbolicContainmentChecker(retimed, original)
                suffix = (
                    "" if checker.reorder == "auto"
                    else ", reorder %s" % checker.reorder
                )
                print("containment engine: symbolic (BDD fixpoints%s)" % suffix)
                print("implication  (retimed ⊑ original):", checker.implies())
                print(
                    "safe replacement (retimed ≼ original):",
                    checker.is_safe_replacement(),
                )
                print("least n with retimed^n ⊑ original:", checker.delay_needed())
            elif engine == "sat":
                from .sat import (
                    check_safe_replacement,
                    sat_delay_needed,
                    sat_implies,
                )

                print("containment engine: sat (bounded CNF unrolling)")
                print(
                    "implication  (retimed ⊑ original):",
                    sat_implies(retimed, original),
                )
                safe_result = check_safe_replacement(retimed, original)
                print(
                    "safe replacement (retimed ≼ original):", safe_result.holds
                )
                print(
                    "least n with retimed^n ⊑ original:",
                    sat_delay_needed(retimed, original),
                )
                if args.certificates:
                    from .sat.certificates import write_bundle

                    files = write_bundle(
                        args.certificates, safe_result, retimed, original
                    )
                    print(
                        "certificates: wrote %s to %s"
                        % (", ".join(files), args.certificates)
                    )
            else:
                from .stg.delayed import delay_needed_for_implication
                from .stg.equivalence import implies
                from .stg.replaceability import is_safe_replacement

                o_stg = extract_stg(original)
                r_stg = extract_stg(retimed)
                print("containment engine: explicit (enumerated STGs)")
                print("implication  (retimed ⊑ original):", implies(r_stg, o_stg))
                print(
                    "safe replacement (retimed ≼ original):",
                    is_safe_replacement(r_stg, o_stg),
                )
                print(
                    "least n with retimed^n ⊑ original:",
                    delay_needed_for_implication(r_stg, o_stg),
                )
        except SearchBudgetExceeded as exc:
            print(
                "STG analysis: aborted -- %s (retry with --engine symbolic "
                "or a bigger budget)" % exc,
                file=sys.stderr,
            )
            verdict = 2
    return verdict


def cmd_atpg(args: argparse.Namespace) -> int:
    circuit = _load(args.circuit)
    result = generate_tests(
        circuit,
        semantics=args.semantics,
        max_attempts=args.attempts,
        max_length=args.length,
        seed=args.seed,
    )
    print(banner("ATPG for %s (%s semantics)" % (args.circuit, args.semantics)))
    print(result.summary())
    for index, test in enumerate(result.tests):
        print(
            "test %d: %s"
            % (index, ",".join("".join("1" if b else "0" for b in vec) for vec in test))
        )
    if result.undetected and args.verbose:
        print("undetected: %s" % ", ".join(str(f) for f in result.undetected))
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    """The standard instrumented workload: compile, simulate, retime,
    fault-grade one circuit.  ``main`` turns tracing on for this command
    unconditionally, so each phase below lands in the report; perf PRs
    diff the ``--report`` JSON of two checkouts."""
    import random as random_mod

    from .bench.generators import random_sequential_circuit
    from .retime.apply import lag_to_moves
    from .sim.compiled import compile_circuit, get_default_backend, resolve_lane_engine
    from .sim.fault import FaultSimulator

    if args.circuit:
        circuit = _load(args.circuit)
    else:
        circuit = random_sequential_circuit(
            args.seed, num_inputs=3, num_gates=24, num_latches=5, name="bench-rnd"
        )
    rng = random_mod.Random(args.seed)
    width = len(circuit.inputs)
    print(banner("bench workload on %s" % circuit.name))

    with obs.span("compile"):
        compiled = compile_circuit(circuit)
    print(
        "compile:       %d ops, %d latches (backend %s, lane engine %s)"
        % (
            len(compiled.ops),
            circuit.num_latches,
            get_default_backend(),
            resolve_lane_engine(None),
        )
    )

    with obs.span("simulate"):
        tests = [
            tuple(
                tuple(rng.random() < 0.5 for _ in range(width))
                for _ in range(args.cycles)
            )
            for _ in range(args.tests)
        ]
        cls_trace = TernarySimulator(circuit).run_from_unknown(tests[0])
        exact = exact_outputs(circuit, tests[0])
    print(
        "simulate:      %d cycles CLS + exact sweep of %d power-up states"
        % (len(cls_trace), 1 << circuit.num_latches)
    )

    with obs.span("retime"):
        graph = build_retiming_graph(circuit)
        minp = min_period_retiming(graph)
        session = lag_to_moves(circuit, minp.lag)
    print(
        "retime:        period %d -> %d in %d moves"
        % (minp.original_period, minp.period, len(session.history))
    )

    with obs.span("containment"):
        from .stg.replaceability import SearchBudgetExceeded, decide_safe_replacement
        from .stg.symbolic_replaceability import resolve_engine

        engine = resolve_engine(None, session.current, circuit)
        budget_hit: Optional[str] = None
        try:
            safe = decide_safe_replacement(session.current, circuit)
        except SearchBudgetExceeded as exc:
            budget_hit = str(exc)
    if budget_hit is not None:
        print(
            "containment:   undecided -- %s (retry with --engine symbolic "
            "or a bigger budget)" % budget_hit
        )
    else:
        print(
            "containment:   retimed ≼ original: %s (%s engine)" % (safe, engine)
        )

    with obs.span("fault-grading"):
        simulator = FaultSimulator(circuit, semantics="cls")
        verdicts = simulator.run_test_set(tests)
    detected = sum(1 for v in verdicts.values() if v is not None)
    print(
        "fault-grading: %d/%d faults detected by %d random tests"
        % (detected, len(verdicts), len(tests))
    )
    del exact
    return 0


def cmd_paper(args: argparse.Namespace) -> int:
    from .bench.paper_circuits import TABLE1_INPUT_SEQUENCE, figure1_design_c, figure1_design_d
    from .sim.ternary_sim import cls_outputs

    d, c = figure1_design_d(), figure1_design_c()
    seq = TABLE1_INPUT_SEQUENCE
    print(banner("The Validity of Retiming Sequential Circuits -- Figure 1"))
    print("exact D: %s" % format_ternary_sequence(v[0] for v in exact_outputs(d, seq)))
    print("exact C: %s" % format_ternary_sequence(v[0] for v in exact_outputs(c, seq)))
    t_seq = [tuple(to_ternary(v) for v in vec) for vec in seq]
    print("CLS   D: %s" % format_ternary_sequence(v[0] for v in cls_outputs(d, t_seq)))
    print("CLS   C: %s" % format_ternary_sequence(v[0] for v in cls_outputs(c, t_seq)))
    print()
    print(
        "Retiming changed what an exact simulator sees, but not what the\n"
        "conservative three-valued simulator sees (Corollary 5.3)."
    )
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .serve.server import ReproServer

    async def run() -> None:
        server = ReproServer(
            host=args.host,
            port=args.port,
            unix_socket=args.socket,
            budget=args.budget,
            batch_window_s=args.batch_window / 1e3,
            batch_max_lanes=args.batch_lanes,
            service_report_path=args.service_report,
        )
        await server.start()
        if server.unix_socket:
            print("serving on %s (unix socket)" % server.address, flush=True)
        else:
            print("serving on %s:%d" % tuple(server.address), flush=True)
        print(
            'jobs=%d; stop with {"op": "shutdown"} or Ctrl-C' % server.jobs,
            flush=True,
        )
        try:
            await server.wait_closed()
        except asyncio.CancelledError:
            await server.shutdown()
            raise

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("interrupted -- shut down", file=sys.stderr)
    return 0


def cmd_fuzz(args: argparse.Namespace) -> int:
    from .qa.fuzz import run_fuzz

    if args.iterations is None and args.time_budget is None:
        args.iterations = 200
    client = None
    server = None
    try:
        if args.matrix == "full":
            # The served arms need a live service; run one on a daemon
            # thread for the duration of the fuzz.
            from .serve.client import ServeClient, start_background_server

            server, address, _thread = start_background_server(port=0)
            client = ServeClient(address)
        outcome = run_fuzz(
            seed=args.seed,
            iterations=args.iterations,
            time_budget=args.time_budget,
            matrix=args.matrix,
            corpus_dir=args.corpus,
            client=client,
            log=lambda line: print(line, flush=True),
        )
    finally:
        if client is not None:
            try:
                client.request({"op": "shutdown"})
                client.close()
            except Exception:
                pass
    print(outcome.summary())
    return 0 if outcome.ok else 1


# ---------------------------------------------------------------------------
# Argument parsing.
# ---------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Retiming-validity toolkit (Singhal/Pixley/Rudell/Brayton, DAC'95)",
    )
    parser.add_argument(
        "--backend",
        choices=BACKENDS,
        default=None,
        help="simulator evaluation backend: 'compiled' (flat-program, the "
        "default), 'interpreted' (reference netlist walk) or 'words' "
        "(compiled program over the numpy uint64 word lane engine; "
        "identical verdicts, faster at high lane counts)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for fault grading, exact sweeps and "
        "equivalence checks; 1 (default) = serial, 0 = one per CPU core",
    )
    parser.add_argument(
        "--engine",
        choices=ENGINES,
        default=None,
        help="containment engine for ⊑/≼ analyses: 'explicit' "
        "(enumerated STGs), 'symbolic' (BDD fixpoints), 'sat' (bounded "
        "CNF unrolling with exportable certificates; decides or exits "
        "undecided, never guesses) or 'auto' (default: explicit below "
        "the latch threshold, symbolic above; never sat)",
    )
    parser.add_argument(
        "--reorder",
        choices=REORDER_MODES,
        default=None,
        help="BDD dynamic variable reordering for the symbolic engine: "
        "'auto' (default: sift at the node threshold), 'off' (pin the "
        "declaration order) or 'manual' (sift once after compiling); "
        "verdicts are identical in every mode",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="record spans/counters for the run and print the summary "
        "to stderr on exit",
    )
    parser.add_argument(
        "--report",
        metavar="FILE.json",
        default=None,
        help="record spans/counters for the run and write the JSON "
        "RunReport here",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("info", help="circuit statistics and SHE analysis")
    p.add_argument("circuit")
    p.add_argument("--max-stg-bits", type=int, default=16)
    p.set_defaults(func=cmd_info)

    p = sub.add_parser("simulate", help="simulate a .bench circuit")
    p.add_argument("circuit")
    p.add_argument("--sequence", required=True, help="e.g. '0111' or '01,10,11'")
    p.add_argument("--mode", choices=("binary", "cls", "exact"), default="cls")
    p.add_argument("--state", help="power-up state for binary mode, e.g. '010'")
    p.add_argument("--vcd", help="write the trace as a VCD waveform here")
    p.set_defaults(func=cmd_simulate)

    p = sub.add_parser("retime", help="optimise a circuit by retiming")
    p.add_argument("circuit")
    p.add_argument("--objective", choices=("min-period", "min-area"), default="min-period")
    p.add_argument("--period", type=int, help="period constraint for min-area")
    p.add_argument(
        "--delay-model", choices=("unit", "loaded"), default="unit",
        help="gate delay table used for period computation",
    )
    p.add_argument("-o", "--output", help="write the retimed .bench here")
    p.add_argument(
        "--seed", type=int, default=0,
        help="seed for the sampled CLS invariance self-check",
    )
    p.set_defaults(func=cmd_retime)

    p = sub.add_parser("check", help="verify retimed vs original")
    p.add_argument("original")
    p.add_argument("retimed")
    p.add_argument("--samples", type=int, default=20)
    p.add_argument("--length", type=int, default=12)
    p.add_argument(
        "--seed", type=int, default=0,
        help="seed for the sampled sequence batch (logged in the verdict "
        "line, so any failure reproduces from the printed command alone)",
    )
    p.add_argument("--exhaustive", action="store_true")
    p.add_argument("--stg", action="store_true", help="also run STG implication analysis")
    p.add_argument("--max-stg-bits", type=int, default=16)
    p.add_argument(
        "--certificates",
        metavar="DIR",
        help="with --engine sat and --stg: write the DIMACS/SMV/witness "
        "certificate bundle for the safe-replacement verdict here",
    )
    p.set_defaults(func=cmd_check)

    p = sub.add_parser("redundancy", help="CLS-invariant redundancy removal")
    p.add_argument("circuit")
    p.add_argument("-o", "--output", help="write the optimised .bench here")
    p.add_argument("--max-pairs", type=int, default=50_000)
    p.set_defaults(func=cmd_redundancy)

    p = sub.add_parser("atpg", help="generate a stuck-at test set")
    p.add_argument("circuit")
    p.add_argument("--semantics", choices=("exact", "cls"), default="exact")
    p.add_argument("--attempts", type=int, default=100)
    p.add_argument("--length", type=int, default=8)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--verbose", action="store_true")
    p.set_defaults(func=cmd_atpg)

    p = sub.add_parser("paper", help="replay the paper's Figure 1 story")
    p.set_defaults(func=cmd_paper)

    p = sub.add_parser(
        "bench",
        help="run the standard instrumented workload (tracing always on)",
    )
    p.add_argument(
        "circuit",
        nargs="?",
        default=None,
        help="circuit to exercise (default: a built-in random circuit)",
    )
    p.add_argument("--cycles", type=int, default=16, help="cycles per test sequence")
    p.add_argument("--tests", type=int, default=4, help="random test sequences")
    p.add_argument("--seed", type=int, default=0)
    # Convenience copies of the global flags, so `repro bench --report
    # out.json` works without flag-before-subcommand gymnastics.
    # SUPPRESS keeps an omitted copy from clobbering the global value.
    p.add_argument("--trace", action="store_true", default=argparse.SUPPRESS)
    p.add_argument("--report", metavar="FILE.json", default=argparse.SUPPRESS)
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser(
        "serve",
        help="run the persistent verification service (NDJSON over "
        "TCP/unix socket; see docs/SERVICE.md)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--port", type=int, default=7357, help="TCP port (0 = ephemeral)"
    )
    p.add_argument(
        "--socket",
        metavar="PATH",
        default=None,
        help="serve on a unix-domain socket instead of TCP",
    )
    p.add_argument(
        "--budget",
        type=int,
        default=None,
        metavar="N",
        help="default search budget for containment/equivalence "
        "analyses (per-request \"budget\" overrides; exhaustion "
        "answers a budget-exceeded envelope, not a crash)",
    )
    p.add_argument(
        "--batch-window",
        type=float,
        default=2.0,
        metavar="MS",
        help="how long the micro-batcher holds the first sweep of a "
        "batch waiting for compatible company (milliseconds)",
    )
    p.add_argument(
        "--batch-lanes",
        type=int,
        default=4096,
        metavar="N",
        help="flush a pending batch early at this many lanes",
    )
    p.add_argument(
        "--service-report",
        metavar="FILE.json",
        default=None,
        help="write the rolling service report here on shutdown",
    )
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "fuzz",
        help="cross-engine conformance fuzzing (corpus replay + seeded "
        "random differentials; see docs/TESTING.md)",
    )
    p.add_argument("--seed", type=int, default=0, help="master seed for the recipe stream")
    p.add_argument(
        "--iterations",
        type=int,
        default=None,
        metavar="N",
        help="fuzz N cases (default 200 when no --time-budget is given)",
    )
    p.add_argument(
        "--time-budget",
        type=float,
        default=None,
        metavar="SECONDS",
        help="stop starting new cases after this much wall clock",
    )
    p.add_argument(
        "--matrix",
        choices=("quick", "std", "full"),
        default="std",
        help="arm matrix: quick (explicit+symbolic), std (+reorder, "
        "sat, words lanes), full (+served arms; spawns a background "
        "server)",
    )
    p.add_argument(
        "--corpus",
        metavar="DIR",
        default=None,
        help="regression corpus: replay every bundle in DIR first, and "
        "write shrunk bundles for new disagreements there",
    )
    p.set_defaults(func=cmd_fuzz)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.backend is not None:
        set_default_backend(args.backend)
    if args.jobs is not None:
        if args.jobs < 0:
            parser.error("--jobs must be >= 0")
        set_default_jobs(default_job_count() if args.jobs == 0 else args.jobs)
    if args.engine is not None:
        set_default_engine(args.engine)
    if args.reorder is not None:
        set_default_reorder(args.reorder)

    trace = bool(getattr(args, "trace", False))
    report_path = getattr(args, "report", None)
    # `bench` exists to produce a report, so it always records.
    observe = trace or report_path is not None or args.command == "bench"
    if observe:
        obs.reset()
        obs.enable(command=args.command)
    try:
        status = args.func(args)
    finally:
        if observe:
            obs.disable()
    if observe:
        run_report = obs.report()
        if report_path:
            run_report.write(report_path)
            print("wrote %s" % report_path, file=sys.stderr)
        if trace:
            print(run_report.summary(), file=sys.stderr)
        elif args.command == "bench" and not report_path:
            print(run_report.summary())
        obs.reset()
    return status


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
