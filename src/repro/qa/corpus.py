"""Self-contained reproducer bundles and the regression corpus.

A *bundle* is one directory holding everything needed to re-run a
(formerly) disagreeing case with no access to the fuzzer's RNG:

``recipe.json``
    the generating recipe plus the move sequence (if any) and the
    matrix the disagreement was found under;
``candidate.bench`` / ``original.bench``
    the shrunk circuit pair, the ground truth -- replay never
    regenerates from the recipe, the recipe is provenance only;
``verdicts.json``
    the expected (consensus) verdict, the per-arm verdicts actually
    observed at capture time, and the disagreement lines.

A *corpus* is a directory of bundles.  The replay contract (see
``docs/TESTING.md``): every bundle in a committed corpus must *agree*
when replayed -- bundles are bugs that were fixed (or fault-injection
captures with the fault off), kept forever as regression tests.
``repro fuzz --corpus DIR`` replays the corpus before fuzzing and
counts any replayed disagreement as a surviving failure.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple, Union

from ..netlist.io_bench import parse_bench, write_bench
from ..netlist.transform import normalize_fanout
from ..retime.engine import replay_moves
from .generate import Case, Recipe, moves_from_json, moves_to_json

__all__ = [
    "Bundle",
    "canonical_bench",
    "write_bundle",
    "load_bundle",
    "iter_bundles",
    "bundle_name",
]

_PathLike = Union[str, pathlib.Path]


def canonical_bench(circuit) -> str:
    """``write_bench`` output minus comment lines: circuit names are
    provenance, not semantics, and must not break replay comparisons."""
    return "\n".join(
        line for line in write_bench(circuit).splitlines()
        if not line.lstrip().startswith("#")
    )


@dataclass
class Bundle:
    """One loaded reproducer bundle."""

    path: pathlib.Path
    case: Case
    matrix: str
    expected: dict
    observed: List[dict]
    disagreements: List[str]

    @property
    def name(self) -> str:
        return self.path.name


def bundle_name(case: Case) -> str:
    return "%s-%d" % (case.recipe.kind, case.recipe.seed)


def write_bundle(
    corpus_dir: _PathLike,
    case: Case,
    *,
    matrix: str,
    expected: dict,
    observed: List[dict],
    disagreements: List[str],
) -> pathlib.Path:
    """Write *case* as a bundle under *corpus_dir*; returns its path."""
    root = pathlib.Path(corpus_dir) / bundle_name(case)
    root.mkdir(parents=True, exist_ok=True)
    recipe_doc = {
        "recipe": json.loads(case.recipe.to_json()),
        "moves": moves_to_json(case.moves),
        "matrix": matrix,
    }
    (root / "recipe.json").write_text(json.dumps(recipe_doc, indent=2, sort_keys=True))
    (root / "candidate.bench").write_text(write_bench(case.candidate))
    (root / "original.bench").write_text(write_bench(case.original))
    (root / "verdicts.json").write_text(
        json.dumps(
            {
                "expected": expected,
                "observed": observed,
                "disagreements": disagreements,
            },
            indent=2,
            sort_keys=True,
        )
    )
    return root


def load_bundle(path: _PathLike) -> Bundle:
    """Load a bundle directory back into a runnable :class:`Case`.

    Circuits come from the ``.bench`` pair.  If the bundle carries a
    move sequence that still replays from ``original.bench`` to exactly
    ``candidate.bench``, the case gets a live session (so the theorem
    ballots replay too); otherwise the pair stands alone.
    """
    root = pathlib.Path(path)
    recipe_doc = json.loads((root / "recipe.json").read_text())
    recipe = Recipe.from_json(json.dumps(recipe_doc["recipe"]))
    original = parse_bench((root / "original.bench").read_text())
    candidate = parse_bench((root / "candidate.bench").read_text())
    moves = moves_from_json(recipe_doc.get("moves", []))

    session = None
    if moves:
        # Moves may name junction cells that only exist in single-fanout
        # normal form; .bench denormalises, so try the parsed circuit
        # first and its re-normalisation second (normalize_fanout is
        # deterministic, so junction names regenerate identically).
        for base in (original, normalize_fanout(original)):
            try:
                replayed = replay_moves(base, moves)
            except Exception:
                continue
            if canonical_bench(replayed.current) == canonical_bench(candidate):
                session = replayed
                original = base
                candidate = replayed.current
                break
    case = Case(
        recipe=recipe,
        original=original,
        candidate=candidate,
        moves=moves if session is not None else (),
        session=session,
    )

    verdicts = json.loads((root / "verdicts.json").read_text())
    return Bundle(
        path=root,
        case=case,
        matrix=recipe_doc.get("matrix", "std"),
        expected=verdicts.get("expected", {}),
        observed=verdicts.get("observed", []),
        disagreements=verdicts.get("disagreements", []),
    )


def iter_bundles(corpus_dir: _PathLike) -> Iterator[Bundle]:
    """Yield every bundle under *corpus_dir* in name order."""
    root = pathlib.Path(corpus_dir)
    if not root.is_dir():
        return
    for entry in sorted(root.iterdir()):
        if entry.is_dir() and (entry / "recipe.json").is_file():
            yield load_bundle(entry)
