"""Greedy shrinking of a disagreeing case to a minimal reproducer.

A fuzz disagreement on a 10-gate case is debuggable; the same split
ballot on 3 gates is obvious.  :func:`shrink_case` minimises a case
under a caller-supplied *predicate* ("the differential still
disagrees"), re-checking after every candidate deletion so the output
provably still reproduces:

1. **Move deletion** (retiming cases): drop one move at a time and
   replay the remainder through :func:`~repro.retime.engine.replay_moves`
   -- sequences that are no longer legal are skipped, shrunk sessions
   keep honest Thm 4.5 / Cor 4.4 accounting.
2. **Cell and latch deletion** (both circuits): delete one ``.bench``
   line at a time, substituting the deleted net by the gate's first
   fan-in (a latch by its data input) with word-boundary substitution,
   then re-parse and re-validate.  Deletions that break the netlist
   (dangling nets, combinational cycles from a collapsed latch) are
   skipped.  Once a circuit is edited below the recipe, the move replay
   no longer applies, so the shrunk case drops its session -- the
   engine-vs-engine split is what circuit shrinking preserves, and the
   predicate enforces exactly that.

Greedy single-deletion passes repeat to a fixpoint, so the result is
1-minimal: removing any single move, cell or latch either breaks the
netlist or makes the disagreement vanish.
"""

from __future__ import annotations

import re
from typing import Callable, List, Optional, Tuple

from ..netlist.circuit import Circuit
from ..netlist.io_bench import parse_bench, write_bench
from ..netlist.validate import validate
from ..obs import trace as _trace
from ..retime.engine import replay_moves
from .generate import Case

__all__ = ["shrink_case", "shrink_moves", "shrink_circuit"]

Predicate = Callable[[Case], bool]

#: ``out = KIND(a, b, ...)`` -- one cell or latch definition.
_DEF_RE = re.compile(r"^\s*(\S+)\s*=\s*([A-Za-z]+)\s*\(([^)]*)\)\s*$")


def _substitute(text: str, old: str, new: str) -> str:
    """Replace net *old* by *new* at word boundaries (net names may
    contain no regex metacharacters beyond ``_``, but escape anyway)."""
    return re.sub(r"(?<![\w])%s(?![\w])" % re.escape(old), new, text)


def _delete_line(text: str, line_index: int) -> Optional[str]:
    """*text* with definition line *line_index* removed and its output
    net substituted by the first fan-in; ``None`` if the edit does not
    parse back into a valid circuit."""
    lines = text.splitlines()
    match = _DEF_RE.match(lines[line_index])
    if match is None:
        return None
    out, _kind, args = match.group(1), match.group(2), match.group(3)
    fanins = [a.strip() for a in args.split(",") if a.strip()]
    if not fanins:
        return None
    replacement = fanins[0]
    if replacement == out:  # self-loop latch; nothing to collapse onto
        return None
    del lines[line_index]
    edited = "\n".join(_substitute(line, out, replacement) for line in lines)
    try:
        circuit = parse_bench(edited)
        validate(circuit)
    except Exception:
        return None
    if circuit.num_cells + circuit.num_latches == 0:
        return None
    return write_bench(circuit)


def shrink_circuit(
    circuit: Circuit, still_interesting: Callable[[Circuit], bool]
) -> Circuit:
    """Greedily delete cells and latches from *circuit* while
    *still_interesting* holds, to a 1-minimal fixpoint."""
    text = write_bench(circuit)
    changed = True
    while changed:
        changed = False
        lines = text.splitlines()
        for i in range(len(lines)):
            if not _DEF_RE.match(lines[i]):
                continue
            candidate_text = _delete_line(text, i)
            if candidate_text is None:
                continue
            candidate = parse_bench(candidate_text)
            if still_interesting(candidate):
                text = candidate_text
                changed = True
                break  # line numbering moved; restart the scan
    return parse_bench(text)


def shrink_moves(case: Case, predicate: Predicate) -> Case:
    """Greedily drop moves from a retiming case while it stays
    interesting.  Returns *case* unchanged for non-retiming cases."""
    if case.session is None or not case.moves:
        return case
    best = case
    moves: List = list(case.moves)
    changed = True
    while changed and moves:
        changed = False
        for i in range(len(moves)):
            reduced = moves[:i] + moves[i + 1 :]
            try:
                session = replay_moves(case.original, reduced)
            except Exception:
                continue  # that prefix is no longer a legal sequence
            candidate = Case(
                recipe=case.recipe,
                original=case.original,
                candidate=session.current,
                moves=session.moves,
                session=session,
            )
            if predicate(candidate):
                best = candidate
                moves = reduced
                changed = True
                break
    return best


def shrink_case(case: Case, predicate: Predicate) -> Case:
    """Minimise *case* under *predicate*.

    The predicate must return ``True`` for the input case (an
    uninteresting case has nothing to shrink; raises ``ValueError``).
    Moves shrink first (keeping the session's theorem accounting
    alive), then both circuits shrink cell-by-cell; if any circuit
    edit lands, the session is dropped -- see the module docstring.
    """
    if not predicate(case):
        raise ValueError("case is not interesting; nothing to shrink")
    _trace.incr("qa.shrink.cases")
    case = shrink_moves(case, predicate)

    def rebuild(original: Circuit, candidate: Circuit) -> Case:
        return Case(
            recipe=case.recipe,
            original=original,
            candidate=candidate,
            moves=(),
            session=None,
        )

    structural = rebuild(case.original, case.candidate)
    if not predicate(structural):
        # The disagreement depends on the session's theorem ballots;
        # move-level shrinking is as far as structure can go.
        return case

    current = structural
    while True:
        before = (current.candidate.num_cells, current.original.num_cells,
                  current.candidate.num_latches, current.original.num_latches)
        frozen_d = current.original
        shrunk_c = shrink_circuit(
            current.candidate, lambda c: predicate(rebuild(frozen_d, c))
        )
        current = rebuild(frozen_d, shrunk_c)
        frozen_c = current.candidate
        shrunk_d = shrink_circuit(
            current.original, lambda d: predicate(rebuild(d, frozen_c))
        )
        current = rebuild(shrunk_d, frozen_c)
        after = (current.candidate.num_cells, current.original.num_cells,
                 current.candidate.num_latches, current.original.num_latches)
        if after == before:
            break
    _trace.incr(
        "qa.shrink.cells_removed",
        (case.candidate.num_cells + case.original.num_cells)
        - (current.candidate.num_cells + current.original.num_cells),
    )
    return current
