"""Seeded, replayable recipes for conformance-fuzzing cases.

A :class:`Recipe` is a tiny JSON-serialisable value that fully
determines one differential test case: the circuits, and (for retiming
cases) the move sequence deriving the candidate from the original.
Everything downstream -- fuzzing, shrinking, corpus bundles -- speaks
recipes, so any failure anywhere reproduces from its logged recipe
alone.

Two case kinds:

``retiming``
    D is a random sequential circuit and C is D after a random legal
    sequence of atomic retiming moves.  Every claim of the paper
    applies: Cor 4.4 (hazard-free implies C |= D), Thm 4.5 (delayed
    containment within the k bound), Cor 5.3 (CLS equivalence).

``pair``
    C and D are independent random circuits over the same interface.
    Containment usually fails, which is what exercises witness
    construction -- minimality, bit-level agreement and replay.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..bench.generators import random_sequential_circuit
from ..netlist.circuit import Circuit
from ..retime.engine import RetimingSession, replay_moves
from ..retime.moves import Direction, RetimingMove, enabled_moves

__all__ = ["Recipe", "Case", "build_case", "random_recipe", "moves_to_json", "moves_from_json"]

KINDS = ("retiming", "pair")


@dataclass(frozen=True)
class Recipe:
    """Everything needed to regenerate one differential case."""

    kind: str
    seed: int
    num_inputs: int
    num_outputs: int
    num_gates: int
    num_latches: int
    num_moves: int = 0

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError("kind must be one of %s, got %r" % (KINDS, self.kind))

    def to_json(self) -> str:
        return json.dumps(
            {
                "kind": self.kind,
                "seed": self.seed,
                "num_inputs": self.num_inputs,
                "num_outputs": self.num_outputs,
                "num_gates": self.num_gates,
                "num_latches": self.num_latches,
                "num_moves": self.num_moves,
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "Recipe":
        data = json.loads(text)
        return cls(
            kind=data["kind"],
            seed=int(data["seed"]),
            num_inputs=int(data["num_inputs"]),
            num_outputs=int(data["num_outputs"]),
            num_gates=int(data["num_gates"]),
            num_latches=int(data["num_latches"]),
            num_moves=int(data.get("num_moves", 0)),
        )


@dataclass
class Case:
    """A built case: original design D, candidate C, and (for retiming
    kinds) the session that derived C, carrying the move accounting
    Thm 4.5 / Cor 4.4 claims are checked against."""

    recipe: Recipe
    original: Circuit  # D
    candidate: Circuit  # C
    moves: Tuple[RetimingMove, ...] = ()
    session: Optional[RetimingSession] = None

    @property
    def label(self) -> str:
        return "%s(seed=%d)" % (self.recipe.kind, self.recipe.seed)


def random_recipe(master_seed: int, index: int, *, max_latches: int = 3) -> Recipe:
    """The *index*-th recipe of a fuzz run seeded with *master_seed*.

    Sizes stay small enough that the explicit engine (the ground-truth
    arm) always participates: the point of the fuzzer is agreement, not
    scale.
    """
    rng = random.Random(master_seed * 1_000_003 + index)
    kind = "retiming" if rng.random() < 0.6 else "pair"
    return Recipe(
        kind=kind,
        seed=rng.randrange(1 << 30),
        num_inputs=rng.randint(1, 2),
        num_outputs=rng.randint(1, 2),
        num_gates=rng.randint(4, 10),
        num_latches=rng.randint(1, max_latches),
        num_moves=rng.randint(1, 8) if kind == "retiming" else 0,
    )


def build_case(recipe: Recipe) -> Case:
    """Deterministically materialise *recipe* into circuits."""
    original = random_sequential_circuit(
        recipe.seed,
        num_inputs=recipe.num_inputs,
        num_outputs=recipe.num_outputs,
        num_gates=recipe.num_gates,
        num_latches=recipe.num_latches,
        name="d_%d" % recipe.seed,
    )
    if recipe.kind == "pair":
        candidate = random_sequential_circuit(
            recipe.seed + 59999,
            num_inputs=recipe.num_inputs,
            num_outputs=recipe.num_outputs,
            num_gates=recipe.num_gates,
            num_latches=recipe.num_latches,
            name="c_%d" % recipe.seed,
        )
        return Case(recipe=recipe, original=original, candidate=candidate)

    rng = random.Random(recipe.seed ^ 0x5EED)
    session = RetimingSession(original)
    for _ in range(recipe.num_moves):
        moves = enabled_moves(session.current)
        if not moves:
            break
        session.apply(rng.choice(moves))
    return Case(
        recipe=recipe,
        original=original,
        candidate=session.current,
        moves=session.moves,
        session=session,
    )


def moves_to_json(moves: Tuple[RetimingMove, ...]) -> list:
    return [
        {"element": m.element, "direction": m.direction.value} for m in moves
    ]


def moves_from_json(data: list) -> Tuple[RetimingMove, ...]:
    return tuple(
        RetimingMove(item["element"], Direction(item["direction"])) for item in data
    )
