"""The fuzz driver: corpus replay, then budgeted random differentials.

:func:`run_fuzz` is everything behind ``repro fuzz``:

1. **Corpus replay.**  Every bundle already in ``corpus_dir`` is
   replayed first (the regression contract -- committed bundles must
   agree).  A replayed disagreement is a *surviving* failure.
2. **Fuzzing.**  Recipes ``random_recipe(seed, i)`` stream through
   :func:`~repro.qa.differential.run_differential` until the iteration
   count or the wall-clock budget runs out.  Each disagreement is
   shrunk to a 1-minimal reproducer and written into the corpus as a
   bundle; it, too, survives (this run cannot have fixed it).

The outcome is deterministic for a given ``(seed, iterations, matrix,
corpus)`` -- a failing CI line reproduces locally from those four
values alone, and its bundle reproduces without even those.

Counters (visible via ``--trace`` / ``--report``): ``qa.fuzz.cases``,
``qa.fuzz.replayed``, ``qa.fuzz.disagreements``, ``qa.shrink.cases``,
``qa.shrink.cells_removed``.
"""

from __future__ import annotations

import pathlib
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Union

from ..obs import trace as _trace
from .corpus import iter_bundles, write_bundle
from .differential import MATRICES, run_differential
from .generate import Case, build_case, random_recipe
from .shrink import shrink_case

__all__ = ["FuzzFailure", "FuzzOutcome", "run_fuzz"]

_PathLike = Union[str, pathlib.Path]


@dataclass
class FuzzFailure:
    """One surviving disagreement (fresh or replayed-from-corpus)."""

    label: str
    source: str  # "fuzz" | "corpus"
    disagreements: List[str]
    bundle: Optional[pathlib.Path] = None


@dataclass
class FuzzOutcome:
    seed: int
    matrix: str
    iterations_run: int = 0
    corpus_replayed: int = 0
    elapsed: float = 0.0
    failures: List[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        lines = [
            "fuzz seed=%d matrix=%s: %d corpus bundle%s replayed, "
            "%d case%s fuzzed in %.1fs"
            % (
                self.seed,
                self.matrix,
                self.corpus_replayed,
                "" if self.corpus_replayed == 1 else "s",
                self.iterations_run,
                "" if self.iterations_run == 1 else "s",
                self.elapsed,
            )
        ]
        if self.ok:
            lines.append("no disagreements survive")
        else:
            lines.append("%d SURVIVING DISAGREEMENT(S):" % len(self.failures))
            for failure in self.failures:
                lines.append("  [%s] %s" % (failure.source, failure.label))
                for problem in failure.disagreements:
                    lines.append("    %s" % problem)
                if failure.bundle is not None:
                    lines.append("    bundle: %s" % failure.bundle)
        return "\n".join(lines)


def _shrink_predicate(matrix: str, client) -> Callable[[Case], bool]:
    def predicate(case: Case) -> bool:
        return not run_differential(case, matrix=matrix, client=client).agreed

    return predicate


def run_fuzz(
    *,
    seed: int,
    iterations: Optional[int] = None,
    time_budget: Optional[float] = None,
    matrix: str = "std",
    corpus_dir: Optional[_PathLike] = None,
    client=None,
    log: Optional[Callable[[str], None]] = None,
) -> FuzzOutcome:
    """Replay the corpus, then fuzz; see the module docstring.

    At least one of *iterations* / *time_budget* (seconds) must bound
    the run.  *log* (if given) receives one progress line per corpus
    bundle and per disagreement.
    """
    if matrix not in MATRICES:
        raise ValueError("unknown matrix %r (known: %s)" % (matrix, sorted(MATRICES)))
    if iterations is None and time_budget is None:
        raise ValueError("bound the run with iterations= and/or time_budget=")
    say = log or (lambda line: None)
    outcome = FuzzOutcome(seed=seed, matrix=matrix)
    started = time.monotonic()

    if corpus_dir is not None:
        for bundle in iter_bundles(corpus_dir):
            result = run_differential(bundle.case, matrix=bundle.matrix, client=client)
            outcome.corpus_replayed += 1
            _trace.incr("qa.fuzz.replayed")
            if not result.agreed:
                say("corpus bundle %s DISAGREES" % bundle.name)
                outcome.failures.append(
                    FuzzFailure(
                        label=bundle.name,
                        source="corpus",
                        disagreements=result.disagreements,
                        bundle=bundle.path,
                    )
                )

    index = 0
    while True:
        if iterations is not None and index >= iterations:
            break
        if time_budget is not None and time.monotonic() - started >= time_budget:
            break
        case = build_case(random_recipe(seed, index))
        index += 1
        result = run_differential(case, matrix=matrix, client=client)
        outcome.iterations_run += 1
        _trace.incr("qa.fuzz.cases")
        if result.agreed:
            continue
        _trace.incr("qa.fuzz.disagreements")
        say("case %s DISAGREES: %s" % (case.label, result.disagreements))
        shrunk = shrink_case(case, _shrink_predicate(matrix, client))
        shrunk_result = run_differential(shrunk, matrix=matrix, client=client)
        bundle_path = None
        if corpus_dir is not None:
            bundle_path = write_bundle(
                corpus_dir,
                shrunk,
                matrix=matrix,
                expected=shrunk_result.consensus(),
                observed=[v.as_json() for v in shrunk_result.verdicts.values()],
                disagreements=shrunk_result.disagreements,
            )
            say("  shrunk to %d+%d cells, bundled at %s"
                % (shrunk.candidate.num_cells, shrunk.original.num_cells, bundle_path))
        outcome.failures.append(
            FuzzFailure(
                label=case.label,
                source="fuzz",
                disagreements=result.disagreements,
                bundle=bundle_path,
            )
        )

    outcome.elapsed = time.monotonic() - started
    return outcome
