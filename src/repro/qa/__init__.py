"""Cross-engine conformance fuzzing, shrinking and the regression corpus.

The QA layer turns the repo's redundancy -- four containment engines,
three lane backends, a process-boundary service, and the paper's own
theorems -- into a test oracle: on seeded random cases every arm must
agree on every claim, bit-for-bit where witnesses are comparable.  See
:mod:`repro.qa.generate` (recipes), :mod:`repro.qa.differential` (the
matrix and the ballot), :mod:`repro.qa.shrink` (1-minimal reproducers),
:mod:`repro.qa.corpus` (bundles) and :mod:`repro.qa.fuzz` (the driver
behind ``repro fuzz``).  The operating contract is ``docs/TESTING.md``.
"""

from .corpus import Bundle, iter_bundles, load_bundle, write_bundle
from .differential import (
    FAULT_NAMES,
    MATRICES,
    DifferentialResult,
    Verdict,
    injected_fault,
    run_differential,
)
from .fuzz import FuzzFailure, FuzzOutcome, run_fuzz
from .generate import Case, Recipe, build_case, random_recipe
from .shrink import shrink_case, shrink_circuit, shrink_moves

__all__ = [
    "Bundle",
    "Case",
    "DifferentialResult",
    "FAULT_NAMES",
    "FuzzFailure",
    "FuzzOutcome",
    "MATRICES",
    "Recipe",
    "Verdict",
    "build_case",
    "injected_fault",
    "iter_bundles",
    "load_bundle",
    "random_recipe",
    "run_differential",
    "run_fuzz",
    "shrink_case",
    "shrink_circuit",
    "shrink_moves",
    "write_bundle",
]
