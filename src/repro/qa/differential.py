"""Run every claim of the paper across the engine matrix and diff it.

For one :class:`~repro.qa.generate.Case`, each *arm* answers the same
questions independently:

* implication ``C ⊑ D`` (Section 3);
* safe replacement ``C ≼ D`` with a minimal-length witness on failure
  (Section 3.1);
* delayed containment -- the least n with ``Cⁿ ⊑ D`` (Section 4);
* CLS equivalence on a shared seeded sequence batch (Section 5).

Arms are the four decision engines (explicit subset construction,
symbolic BDD fixpoints, the same fixpoints under auto reordering over
a partitioned transition relation, bounded CNF unrolling), optionally
the served path (the same engines behind ``repro serve``), and the
lane-backend/jobs variants for the CLS batch.  :func:`run_differential`
collects the ballots and returns the disagreements:

* every *decided* verdict must be unanimous (``None`` = the arm's
  budget ran out -- an honest abstention, never counted as a vote);
* witnesses must be bit-identical within the symbolic family and
  between the direct and served paths, and minimal-length everywhere
  (the explicit BFS and the SAT unrolling are both shortest-first);
* SAT witnesses must replay through the stock simulators;
* on retiming cases the paper's own theorems join the ballot: a
  hazard-free move sequence must yield ``C ⊑ D`` (Cor 4.4) and the
  delay needed must stay within Thm 4.5's k bound.

Fault injection for mutation-testing the fuzzer itself (and nothing
else) lives behind :func:`injected_fault`: each named fault flips one
realistic engine branch -- e.g. the explicit BFS "losing" deep
witnesses -- so tests can verify a real bug would be caught, shrunk
and bundled.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..logic.bdd import BDDManager
from ..retime.validity import first_cls_difference, random_ternary_sequences
from ..sim.compiled import get_default_backend, set_default_backend
from ..sat import check_safe_replacement, sat_delay_needed, sat_implies
from ..sat.replay import replay_witness
from ..stg.delayed import delay_needed_for_implication
from ..stg.equivalence import implies as stg_implies
from ..stg.explicit import extract_stg
from ..stg.replaceability import SearchBudgetExceeded, find_violation
from ..stg.symbolic_replaceability import SymbolicContainmentChecker
from .generate import Case

__all__ = [
    "Verdict",
    "DifferentialResult",
    "MATRICES",
    "run_differential",
    "injected_fault",
    "active_faults",
    "FAULT_NAMES",
]

#: Matrix presets: which containment arms and which CLS arms vote.
MATRICES: Dict[str, Dict[str, Tuple[str, ...]]] = {
    "quick": {
        "arms": ("explicit", "symbolic"),
        "cls": ("compiled",),
    },
    "std": {
        "arms": ("explicit", "symbolic", "symbolic+reorder", "sat"),
        "cls": ("compiled", "words"),
    },
    "full": {
        "arms": ("explicit", "symbolic", "symbolic+reorder", "sat", "serve"),
        "cls": ("compiled", "words", "jobs2", "serve"),
    },
}

#: Deliberate, realistic engine breakages for mutation-testing the
#: fuzzer.  Enable only via :func:`injected_fault`.
FAULT_NAMES = (
    # The explicit BFS "forgets" any counterexample needing two or more
    # input symbols -- the shape of an off-by-one frontier bug.
    "explicit-misses-deep-witnesses",
    # The symbolic fixpoint reports one delay step too few -- the shape
    # of an iteration-count bug in the delayed-image chain.
    "symbolic-underreports-delay",
)

_ACTIVE_FAULTS: List[str] = []


@contextlib.contextmanager
def injected_fault(name: str) -> Iterator[None]:
    """Enable the named deliberate engine fault within the block."""
    if name not in FAULT_NAMES:
        raise ValueError("unknown fault %r (known: %s)" % (name, FAULT_NAMES))
    _ACTIVE_FAULTS.append(name)
    try:
        yield
    finally:
        _ACTIVE_FAULTS.remove(name)


def active_faults() -> Tuple[str, ...]:
    return tuple(_ACTIVE_FAULTS)


@dataclass
class Verdict:
    """One arm's answers.  ``None`` anywhere means the arm's budget ran
    out (an abstention); a decided field is a binding vote."""

    arm: str
    implies: Optional[bool] = None
    safe: Optional[bool] = None
    witness: Optional[Tuple[int, Tuple[int, ...], Tuple[int, ...]]] = None
    delay: Optional[int] = None
    delay_decided: bool = False
    notes: List[str] = field(default_factory=list)

    def as_json(self) -> Dict[str, Any]:
        return {
            "arm": self.arm,
            "implies": self.implies,
            "safe": self.safe,
            "witness": None
            if self.witness is None
            else {
                "c_state": self.witness[0],
                "inputs": list(self.witness[1]),
                "outputs": list(self.witness[2]),
                "length": len(self.witness[1]),
            },
            "delay": self.delay,
            "delay_decided": self.delay_decided,
        }


@dataclass
class DifferentialResult:
    case: Case
    verdicts: Dict[str, Verdict]
    cls_votes: Dict[str, Optional[bool]]
    disagreements: List[str]

    @property
    def agreed(self) -> bool:
        return not self.disagreements

    def consensus(self) -> Dict[str, Any]:
        """The agreed verdict, for recording into a corpus bundle."""
        implies_votes = [v.implies for v in self.verdicts.values() if v.implies is not None]
        safe_votes = [v.safe for v in self.verdicts.values() if v.safe is not None]
        delays = [v.delay for v in self.verdicts.values() if v.delay_decided]
        lengths = [
            len(v.witness[1]) for v in self.verdicts.values() if v.witness is not None
        ]
        cls_votes = [v for v in self.cls_votes.values() if v is not None]
        return {
            "implies": implies_votes[0] if implies_votes else None,
            "safe": safe_votes[0] if safe_votes else None,
            "witness_length": lengths[0] if lengths else None,
            "delay": delays[0] if delays else None,
            "cls_equivalent": cls_votes[0] if cls_votes else None,
        }


def _witness_tuple(violation) -> Optional[Tuple[int, Tuple[int, ...], Tuple[int, ...]]]:
    if violation is None:
        return None
    return (violation.c_state, tuple(violation.input_symbols), tuple(violation.c_outputs))


# ---------------------------------------------------------------------------
# The containment arms.
# ---------------------------------------------------------------------------


def _explicit_verdict(case: Case) -> Verdict:
    verdict = Verdict("explicit")
    try:
        c_stg = extract_stg(case.candidate)
        d_stg = extract_stg(case.original)
    except (ValueError, SearchBudgetExceeded) as exc:
        verdict.notes.append("stg extraction: %s" % exc)
        return verdict
    try:
        verdict.implies = stg_implies(c_stg, d_stg)
    except SearchBudgetExceeded:
        pass
    try:
        violation = find_violation(c_stg, d_stg)
        if (
            "explicit-misses-deep-witnesses" in _ACTIVE_FAULTS
            and violation is not None
            and len(violation.input_symbols) >= 2
        ):
            violation = None
        verdict.safe = violation is None
        verdict.witness = _witness_tuple(violation)
    except SearchBudgetExceeded:
        pass
    try:
        verdict.delay = delay_needed_for_implication(c_stg, d_stg)
        verdict.delay_decided = True
    except SearchBudgetExceeded:
        pass
    return verdict


def _symbolic_verdict(case: Case, *, reordering: bool) -> Verdict:
    arm = "symbolic+reorder" if reordering else "symbolic"
    verdict = Verdict(arm)
    if reordering:
        manager = BDDManager(reorder="auto", reorder_threshold=256)
        checker = SymbolicContainmentChecker(
            case.candidate, case.original, manager=manager, reorder="auto", partitioned=True
        )
    else:
        checker = SymbolicContainmentChecker(case.candidate, case.original, reorder="off")
    try:
        verdict.implies = checker.implies()
    except SearchBudgetExceeded:
        pass
    try:
        verdict.witness = _witness_tuple(checker.find_violation())
        verdict.safe = verdict.witness is None
    except SearchBudgetExceeded:
        pass
    try:
        delay = checker.delay_needed()
        if (
            "symbolic-underreports-delay" in _ACTIVE_FAULTS
            and delay is not None
            and delay > 0
        ):
            delay -= 1
        verdict.delay = delay
        verdict.delay_decided = True
    except SearchBudgetExceeded:
        pass
    return verdict


#: The SAT arm's completeness bound is exponential in latch count, so
#: it abstains (honestly -- abstentions are never votes) on cases past
#: this combined latch budget instead of stalling the whole fuzz run.
#: 6 keeps the arm on the 3+3-latch scale where each UNSAT proof stays
#: well under a second; at 7 a single safe case costs ~20s.
SAT_LATCH_BUDGET = 6

#: Tight per-question CDCL budgets for fuzzing.  Violations at fuzz
#: sizes surface within a few frames and a few thousand conflicts;
#: proving *safety* can need the full exponential completeness depth,
#: and there the arm abstains quickly rather than grinding -- the
#: explicit/symbolic arms carry those votes.
SAT_FUZZ_CONFLICTS = 3_000
SAT_FUZZ_FRAMES = 12


def _sat_verdict(case: Case) -> Verdict:
    verdict = Verdict("sat")
    if case.candidate.num_latches + case.original.num_latches > SAT_LATCH_BUDGET:
        return verdict
    try:
        verdict.implies = sat_implies(
            case.candidate, case.original, max_conflicts=SAT_FUZZ_CONFLICTS
        )
    except SearchBudgetExceeded:
        pass
    try:
        result = check_safe_replacement(
            case.candidate,
            case.original,
            max_frames=SAT_FUZZ_FRAMES,
            max_conflicts=SAT_FUZZ_CONFLICTS,
        )
        verdict.safe = result.holds
        verdict.witness = _witness_tuple(result.violation)
        if result.witness is not None:
            replay = replay_witness(case.candidate, case.original, result.witness)
            if not replay.ok:
                verdict.notes.append("witness replay failed: %s" % (replay.errors,))
    except SearchBudgetExceeded:
        pass
    # The delayed-containment chain is the expensive question for CNF
    # unrolling; bound it by Thm 4.5's k on retiming cases (the only
    # claim at stake there) and skip it on unrelated pairs, which the
    # explicit and symbolic arms already cross-check.
    if case.session is not None:
        if verdict.implies is True:
            # C ⊑ D is delayed containment at n = 0; no second proof
            # needed (and the CNF chain would cost another full UNSAT).
            verdict.delay = 0
            verdict.delay_decided = True
        elif case.session.theorem45_k > 0:
            try:
                delay = sat_delay_needed(
                    case.candidate,
                    case.original,
                    max_cycles=case.session.theorem45_k,
                    max_conflicts=SAT_FUZZ_CONFLICTS,
                )
                if delay is not None:
                    verdict.delay = delay
                    verdict.delay_decided = True
            except SearchBudgetExceeded:
                pass
    return verdict


def _serve_verdict(case: Case, client) -> Verdict:
    """The served path: the same checks through a live ``repro serve``
    process boundary (JSON round-trip included)."""
    from ..netlist.io_bench import write_bench

    verdict = Verdict("serve")
    request = {
        "op": "safe-replacement",
        "candidate": {"bench": write_bench(case.candidate), "name": "qa_c"},
        "original": {"bench": write_bench(case.original), "name": "qa_d"},
        "engine": "symbolic",
    }
    reply = client.request(request)
    if reply.get("error") == "budget-exceeded":
        return verdict
    if "error" in reply and reply["error"]:
        verdict.notes.append("serve error: %r" % (reply,))
        return verdict
    result = reply["result"]
    verdict.safe = bool(result["safe"])
    witness = result.get("witness")
    if witness is not None:
        verdict.witness = (
            int(witness["c_state"]),
            tuple(int(i) for i in witness["inputs"]),
            tuple(int(o) for o in witness["outputs"]),
        )
    return verdict


# ---------------------------------------------------------------------------
# The CLS arms (backend / jobs / served variants of Cor 5.3).
# ---------------------------------------------------------------------------

CLS_COUNT = 12
CLS_LENGTH = 10


def _cls_vote(case: Case, arm: str, client=None) -> Optional[bool]:
    seed = case.recipe.seed & 0x7FFFFFFF
    if arm == "serve":
        from ..netlist.io_bench import write_bench

        reply = client.request(
            {
                "op": "check-validity",
                "original": {"bench": write_bench(case.original), "name": "qa_d"},
                "retimed": {"bench": write_bench(case.candidate), "name": "qa_c"},
                "samples": CLS_COUNT,
                "length": CLS_LENGTH,
                "seed": seed,
            }
        )
        if "error" in reply and reply["error"]:
            return None
        return bool(reply["result"]["equivalent"])
    sequences = random_ternary_sequences(
        len(case.original.inputs), count=CLS_COUNT, length=CLS_LENGTH, seed=seed
    )
    kwargs: Dict[str, Any] = {}
    if arm == "jobs2":
        kwargs["jobs"] = 2
    backend = "words" if arm == "words" else "compiled"
    previous = get_default_backend()
    set_default_backend(backend)
    try:
        difference = first_cls_difference(
            case.original, case.candidate, sequences, **kwargs
        )
    finally:
        set_default_backend(previous)
    return difference is None


# ---------------------------------------------------------------------------
# The ballot.
# ---------------------------------------------------------------------------


def run_differential(
    case: Case, *, matrix: str = "std", client=None
) -> DifferentialResult:
    """All arms of *matrix* vote on *case*; returns the split ballots.

    ``client`` is a :class:`repro.serve.client.ServeClient` for the
    served arms; without one the serve arms are skipped even in the
    ``full`` matrix.
    """
    spec = MATRICES[matrix]
    verdicts: Dict[str, Verdict] = {}
    for arm in spec["arms"]:
        if arm == "explicit":
            verdicts[arm] = _explicit_verdict(case)
        elif arm == "symbolic":
            verdicts[arm] = _symbolic_verdict(case, reordering=False)
        elif arm == "symbolic+reorder":
            verdicts[arm] = _symbolic_verdict(case, reordering=True)
        elif arm == "sat":
            verdicts[arm] = _sat_verdict(case)
        elif arm == "serve":
            if client is not None:
                verdicts[arm] = _serve_verdict(case, client)

    cls_votes: Dict[str, Optional[bool]] = {}
    for arm in spec["cls"]:
        if arm == "serve" and client is None:
            continue
        cls_votes[arm] = _cls_vote(case, arm, client)

    disagreements = _diff(case, verdicts, cls_votes)
    return DifferentialResult(
        case=case, verdicts=verdicts, cls_votes=cls_votes, disagreements=disagreements
    )


def _diff(
    case: Case, verdicts: Dict[str, Verdict], cls_votes: Dict[str, Optional[bool]]
) -> List[str]:
    problems: List[str] = []

    def split(field: str, votes: Dict[str, Any]) -> None:
        if len(set(votes.values())) > 1:
            problems.append("%s ballot split: %r" % (field, votes))

    split("implies", {a: v.implies for a, v in verdicts.items() if v.implies is not None})
    split("safe", {a: v.safe for a, v in verdicts.items() if v.safe is not None})
    split(
        "delay",
        {a: v.delay for a, v in verdicts.items() if v.delay_decided},
    )
    split(
        "witness-length",
        {
            a: len(v.witness[1])
            for a, v in verdicts.items()
            if v.witness is not None
        },
    )
    decided_cls = {a: v for a, v in cls_votes.items() if v is not None}
    split("cls", decided_cls)

    # Bit-identical witnesses within the symbolic family and across the
    # process boundary (the server runs the symbolic engine).
    reference = verdicts.get("symbolic")
    if reference is not None and reference.witness is not None:
        for other in ("symbolic+reorder", "serve"):
            verdict = verdicts.get(other)
            if verdict is not None and verdict.safe is not None:
                if verdict.witness != reference.witness:
                    problems.append(
                        "witness mismatch symbolic vs %s: %r != %r"
                        % (other, verdict.witness, reference.witness)
                    )

    # Arm-local notes (failed SAT replays, serve transport errors).
    for verdict in verdicts.values():
        for note in verdict.notes:
            problems.append("%s: %s" % (verdict.arm, note))

    # The paper's own theorems vote on retiming cases.
    if case.session is not None:
        k = case.session.theorem45_k
        hazard_free = case.session.hazardous_move_count == 0
        for arm, verdict in verdicts.items():
            if hazard_free and verdict.implies is False:
                problems.append(
                    "%s: Cor 4.4 violated (hazard-free retiming, implies=False)" % arm
                )
            if verdict.delay_decided:
                if verdict.delay is None:
                    problems.append(
                        "%s: Cor 4.3 violated (retiming with no delayed containment)" % arm
                    )
                elif verdict.delay > k:
                    problems.append(
                        "%s: Thm 4.5 violated (delay %d > k %d)" % (arm, verdict.delay, k)
                    )
        # Cor 5.3: a genuine retiming must stay CLS-equivalent.
        for arm, vote in cls_votes.items():
            if vote is False:
                problems.append("cls[%s]: Cor 5.3 violated on a retiming case" % arm)
    return problems
