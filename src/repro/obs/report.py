"""The serialisable :class:`RunReport` -- one run's observability record.

A report is a frozen snapshot of the tracer: aggregated span timings,
monotonic counters, and free-form metadata.  It serialises to a small,
versioned JSON document (``schema`` key) so benchmark jobs can archive
reports as CI artefacts and perf PRs can diff before/after runs::

    {
      "schema": 1,
      "meta":     {"label": "bench", "backend": "compiled", ...},
      "counters": {"compile.circuits": 3, "sim.compiled.binary.cycles": 40, ...},
      "spans":    [{"path": "bench/compile", "count": 3,
                    "total_s": 0.0021, "min_s": ..., "max_s": ...}, ...]
    }

The schema is documented (with a worked example) in
``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple

from .trace import TRACER

__all__ = ["SCHEMA_VERSION", "SpanStats", "RunReport", "build_report"]

SCHEMA_VERSION = 1


@dataclass(frozen=True)
class SpanStats:
    """Aggregate timing of every entry of one span path.

    ``path`` encodes nesting: ``"cli.bench/retime"`` is the ``retime``
    span opened while ``cli.bench`` was active.
    """

    path: str
    count: int
    total_s: float
    min_s: float
    max_s: float

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "count": self.count,
            "total_s": self.total_s,
            "min_s": self.min_s,
            "max_s": self.max_s,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SpanStats":
        return cls(
            path=str(data["path"]),
            count=int(data["count"]),
            total_s=float(data["total_s"]),
            min_s=float(data["min_s"]),
            max_s=float(data["max_s"]),
        )


@dataclass(frozen=True)
class RunReport:
    """Spans + counters + metadata of one traced run."""

    meta: Dict[str, Any]
    counters: Dict[str, int]
    spans: Tuple[SpanStats, ...]

    # -- access ------------------------------------------------------------

    def span(self, path: str) -> Optional[SpanStats]:
        """The :class:`SpanStats` for an exact *path*, or ``None``."""
        for stats in self.spans:
            if stats.path == path:
                return stats
        return None

    def span_paths(self) -> Tuple[str, ...]:
        """All recorded span paths, sorted."""
        return tuple(sorted(stats.path for stats in self.spans))

    def counter(self, name: str) -> int:
        """Counter value (0 when the counter never fired)."""
        return self.counters.get(name, 0)

    # -- serialisation -----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": SCHEMA_VERSION,
            "meta": dict(self.meta),
            "counters": dict(sorted(self.counters.items())),
            "spans": [s.to_dict() for s in sorted(self.spans, key=lambda s: s.path)],
        }

    def to_json(self, *, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    def write(self, path: str) -> None:
        """Write the JSON document to *path*."""
        with open(path, "w") as handle:
            handle.write(self.to_json())
            handle.write("\n")

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunReport":
        schema = data.get("schema")
        if schema != SCHEMA_VERSION:
            raise ValueError(
                "unsupported RunReport schema %r (this build reads %d)"
                % (schema, SCHEMA_VERSION)
            )
        return cls(
            meta=dict(data.get("meta", {})),
            counters={str(k): int(v) for k, v in data.get("counters", {}).items()},
            spans=tuple(SpanStats.from_dict(s) for s in data.get("spans", ())),
        )

    @classmethod
    def from_json(cls, text: str) -> "RunReport":
        return cls.from_dict(json.loads(text))

    @classmethod
    def load(cls, path: str) -> "RunReport":
        with open(path) as handle:
            return cls.from_json(handle.read())

    # -- presentation ------------------------------------------------------

    def summary(self) -> str:
        """Human-readable account: spans first, then counters."""
        lines = ["RunReport"]
        for key in sorted(self.meta):
            lines.append("  meta %-18s %s" % (key, self.meta[key]))
        if self.spans:
            lines.append("  spans (count, total, mean):")
            for stats in sorted(self.spans, key=lambda s: s.path):
                lines.append(
                    "    %-44s %6d  %9.4fs  %9.6fs"
                    % (stats.path, stats.count, stats.total_s, stats.mean_s)
                )
        if self.counters:
            lines.append("  counters:")
            for name in sorted(self.counters):
                lines.append("    %-44s %d" % (name, self.counters[name]))
        return "\n".join(lines)


def build_report() -> RunReport:
    """Freeze the current tracer state into a :class:`RunReport`."""
    spans = tuple(
        SpanStats(path=path, count=int(rec[0]), total_s=rec[1], min_s=rec[2], max_s=rec[3])
        for path, rec in TRACER.spans.items()
    )
    return RunReport(
        meta=dict(TRACER.meta),
        counters=dict(TRACER.counters),
        spans=spans,
    )
