"""``repro.obs`` -- lightweight observability for the whole pipeline.

Hierarchical timed spans, monotonic counters, and a JSON-serialisable
:class:`RunReport`, instrumenting the hot paths end to end: circuit
compilation (:mod:`repro.sim.compiled`), every simulator backend, the
process-pool layer (:mod:`repro.sim.parallel`), fault grading and ATPG,
the retiming engine and validity checks, and redundancy removal.

Usage -- library::

    from repro import obs

    obs.enable(backend="compiled")
    ...                                # instrumented work
    report = obs.report()
    report.write("run.json")
    obs.disable()

Usage -- benchmarks (state-isolated)::

    with obs.timed("fault-grading") as run:
        simulator.run_test_set(tests)
    print(run.report.summary())

Usage -- CLI: every subcommand accepts global ``--trace`` (summary to
stderr) and ``--report FILE.json`` flags, and ``python -m repro bench``
emits a report for a standard compile/simulate/retime/fault workload.

**Overhead contract**: with tracing disabled (the default) every
instrumentation site reduces to a single attribute check
(``if TRACER.enabled:``) -- measured at under 2% on the fault-grading
benchmark, see ``benchmarks/test_bench_observability.py``.  Span and
counter memory is bounded: aggregation is by span path / counter name,
never per event.  The full span/counter naming scheme and the report
JSON schema are documented in ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

from typing import Any

from .report import SCHEMA_VERSION, RunReport, SpanStats, build_report
from .trace import TRACER, TimedRun, Tracer, incr, record_timing, span, timed, traced

__all__ = [
    "SCHEMA_VERSION",
    "RunReport",
    "SpanStats",
    "TRACER",
    "TimedRun",
    "Tracer",
    "build_report",
    "disable",
    "enable",
    "enabled",
    "incr",
    "record_timing",
    "report",
    "reset",
    "span",
    "timed",
    "traced",
]


def enabled() -> bool:
    """Is tracing currently on?"""
    return TRACER.enabled


def enable(**meta: Any) -> None:
    """Turn tracing on; keyword arguments land in the report metadata."""
    TRACER.meta.update(meta)
    TRACER.enabled = True


def disable() -> None:
    """Turn tracing off (recorded data is kept until :func:`reset`)."""
    TRACER.enabled = False


def reset() -> None:
    """Drop all recorded spans, counters and metadata."""
    TRACER.clear()


def report() -> RunReport:
    """Freeze the current tracer state into a :class:`RunReport`."""
    return build_report()
