"""The process-wide tracer: spans, counters, and the hot-path guard.

Design constraints, in order of importance:

1. **Disabled cost is one attribute check.**  Every instrumented hot
   path guards with ``if TRACER.enabled:`` -- a module-global load plus
   a slot read, nothing else.  No context manager is allocated, no
   dictionary touched, no function called.  The acceptance bar for the
   whole subsystem is that the fault-grading benchmark regresses by
   less than 2% with tracing off.
2. **Bounded memory when enabled.**  Spans aggregate by *path* (the
   stack of open span names joined with ``/``) into a fixed-size
   ``[count, total, min, max]`` record; counters are plain integers.  A
   million-cycle simulation produces the same report size as a
   ten-cycle one.
3. **No dependencies.**  This module imports only the standard library,
   so every layer of the stack can import it without cycles.

The tracer is deliberately process-local and single-threaded, matching
the execution model of the library (worker processes of
:mod:`repro.sim.parallel` each get a fresh, disabled tracer; their
wall-clock contributions are folded back in by the parent's
``run_sharded`` instrumentation).
"""

from __future__ import annotations

from contextlib import contextmanager
from functools import wraps
from time import perf_counter
from typing import Any, Dict, Iterator, List, Optional

__all__ = [
    "TRACER",
    "Tracer",
    "TimedRun",
    "span",
    "timed",
    "traced",
    "incr",
    "record_timing",
]


class Tracer:
    """Mutable trace state.  One process-wide instance: :data:`TRACER`.

    Attributes
    ----------
    enabled:
        THE hot-path guard.  Instrumented code must check this before
        doing any other tracing work.
    counters:
        Monotonic counters, name -> int.
    spans:
        Aggregated span timings, path -> ``[count, total, min, max]``
        (seconds).  The path is the names of all open spans joined with
        ``/``, so nesting is preserved without unbounded event lists.
    stack:
        Names of the currently open spans, outermost first.
    meta:
        Free-form run metadata carried into the report (backend, jobs,
        CLI argv, ...).
    """

    __slots__ = ("enabled", "counters", "spans", "stack", "meta")

    def __init__(self) -> None:
        self.enabled = False
        self.counters: Dict[str, int] = {}
        self.spans: Dict[str, List[float]] = {}
        self.stack: List[str] = []
        self.meta: Dict[str, Any] = {}

    # -- state management --------------------------------------------------

    def clear(self) -> None:
        """Drop all recorded data (leaves ``enabled`` untouched)."""
        self.counters.clear()
        self.spans.clear()
        self.stack.clear()
        self.meta.clear()

    def snapshot(self) -> Dict[str, Any]:
        """Copy the full state, for save/restore around :func:`timed`."""
        return {
            "enabled": self.enabled,
            "counters": dict(self.counters),
            "spans": {k: list(v) for k, v in self.spans.items()},
            "stack": list(self.stack),
            "meta": dict(self.meta),
        }

    def restore(self, state: Dict[str, Any]) -> None:
        """Inverse of :meth:`snapshot`."""
        self.enabled = state["enabled"]
        self.counters = dict(state["counters"])
        self.spans = {k: list(v) for k, v in state["spans"].items()}
        self.stack = list(state["stack"])
        self.meta = dict(state["meta"])

    # -- recording ---------------------------------------------------------

    def incr(self, name: str, amount: int = 1) -> None:
        """Add *amount* to counter *name* (only when enabled)."""
        if self.enabled:
            counters = self.counters
            counters[name] = counters.get(name, 0) + amount

    def merge_timing(self, path: str, elapsed: float) -> None:
        """Fold one measured duration into the aggregate for *path*."""
        record = self.spans.get(path)
        if record is None:
            self.spans[path] = [1, elapsed, elapsed, elapsed]
        else:
            record[0] += 1
            record[1] += elapsed
            if elapsed < record[2]:
                record[2] = elapsed
            if elapsed > record[3]:
                record[3] = elapsed

    def record_timing(self, name: str, elapsed: float) -> None:
        """Record an externally measured duration as a span at the
        current nesting position (used e.g. to fold per-shard worker
        wall times, which were measured in another process)."""
        if self.enabled:
            path = "/".join(self.stack + [name]) if self.stack else name
            self.merge_timing(path, elapsed)


#: The process-wide tracer.  Hot paths do ``if TRACER.enabled:``.
TRACER = Tracer()


# ---------------------------------------------------------------------------
# Spans.
# ---------------------------------------------------------------------------


class _NullSpan:
    """Shared do-nothing context manager returned while disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: Any) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    __slots__ = ("name", "start")

    def __init__(self, name: str) -> None:
        self.name = name
        self.start = 0.0

    def __enter__(self) -> "_Span":
        TRACER.stack.append(self.name)
        self.start = perf_counter()
        return self

    def __exit__(self, *exc: Any) -> bool:
        elapsed = perf_counter() - self.start
        stack = TRACER.stack
        path = "/".join(stack)
        if stack and stack[-1] == self.name:
            stack.pop()
        TRACER.merge_timing(path, elapsed)
        return False


def span(name: str):
    """A timed span context manager (no-op while tracing is disabled).

    Nested spans aggregate under their full path: opening
    ``span("retime")`` inside ``span("cli.bench")`` records under
    ``"cli.bench/retime"``.  Repeated entries of the same path merge
    into one ``(count, total, min, max)`` record.
    """
    if not TRACER.enabled:
        return _NULL_SPAN
    return _Span(name)


def traced(name: str):
    """Decorator form of :func:`span` for whole functions.

    Suitable for *cold* entry points (retiming solvers, STG extraction,
    redundancy removal): when tracing is disabled the only cost is the
    wrapper call plus the usual attribute check, which is negligible for
    anything that is not per-cycle work.
    """

    def decorate(fn):
        @wraps(fn)
        def wrapper(*args: Any, **kwargs: Any):
            if not TRACER.enabled:
                return fn(*args, **kwargs)
            with _Span(name):
                return fn(*args, **kwargs)

        return wrapper

    return decorate


def incr(name: str, amount: int = 1) -> None:
    """Module-level convenience for ``TRACER.incr``."""
    if TRACER.enabled:
        counters = TRACER.counters
        counters[name] = counters.get(name, 0) + amount


def record_timing(name: str, elapsed: float) -> None:
    """Module-level convenience for ``TRACER.record_timing``."""
    TRACER.record_timing(name, elapsed)


# ---------------------------------------------------------------------------
# The benchmark helper.
# ---------------------------------------------------------------------------


class TimedRun:
    """Handle yielded by :func:`timed`; ``report`` is set on exit."""

    __slots__ = ("report",)

    def __init__(self) -> None:
        self.report: Optional[Any] = None  # RunReport, set on exit


@contextmanager
def timed(label: str = "timed", **meta: Any) -> Iterator[TimedRun]:
    """Trace a block in isolation and hand back its :class:`RunReport`.

    Saves the tracer's current state, runs the block with a fresh
    enabled tracer, builds the report, then restores whatever tracing
    state was active before -- so benchmarks can measure a region
    without perturbing (or being perturbed by) an outer ``--trace``.

    >>> from repro import obs
    >>> with obs.timed("demo") as run:
    ...     with obs.span("work"):
    ...         pass
    >>> run.report.span("demo/work") is not None
    True
    """
    from .report import build_report  # local import: report imports nothing back

    saved = TRACER.snapshot()
    TRACER.clear()
    TRACER.meta.update(meta)
    TRACER.meta.setdefault("label", label)
    TRACER.enabled = True
    holder = TimedRun()
    start = perf_counter()
    try:
        with _Span(label):
            yield holder
    finally:
        TRACER.enabled = False
        TRACER.meta["elapsed_s"] = perf_counter() - start
        holder.report = build_report()
        TRACER.restore(saved)
